(* Cohort-based distribution tier.  One event per cohort attempt, not
   per client: a cohort expands a single fetch-schedule sample into a
   batched download for all of its members, so a million clients cost
   a few thousand events.  Caches serialize downloads at their egress
   rate through a busy-until watermark; a cohort that would queue
   longer than the client timeout gives up and retries with
   exponential backoff — attempts made while the directory is still
   down (the halt window) fail the same way, which is what winds the
   backoff up before the flash crowd hits. *)

module Engine = Tor_sim.Engine
module Rng = Tor_sim.Rng

type config = {
  clients : int;
  caches : int;
  cohorts_per_cache : int;
  halt : float;
  fetch_spread : float;
  retry_initial : float;
  retry_multiplier : float;
  retry_max : float;
  client_timeout : float;
  cache_bandwidth_bits_per_sec : float;
  diffs : bool;
}

let default_config =
  {
    clients = 1_000_000;
    caches = 16;
    cohorts_per_cache = 64;
    halt = 0.;
    fetch_spread = 1800.;
    retry_initial = 60.;
    retry_multiplier = 2.;
    retry_max = 600.;
    client_timeout = 30.;
    cache_bandwidth_bits_per_sec = 1e9;
    diffs = true;
  }

let validate_config c =
  if c.clients <= 0 then invalid_arg "Distribution: clients must be positive";
  if c.caches <= 0 then invalid_arg "Distribution: caches must be positive";
  if c.cohorts_per_cache <= 0 then
    invalid_arg "Distribution: cohorts_per_cache must be positive";
  if c.halt < 0. then invalid_arg "Distribution: negative halt";
  if c.fetch_spread < 0. then invalid_arg "Distribution: negative fetch_spread";
  if c.retry_initial <= 0. then
    invalid_arg "Distribution: retry_initial must be positive";
  if c.retry_multiplier < 1. then
    invalid_arg "Distribution: retry_multiplier must be >= 1";
  if c.retry_max < c.retry_initial then
    invalid_arg "Distribution: retry_max below retry_initial";
  if c.client_timeout <= 0. then
    invalid_arg "Distribution: client_timeout must be positive";
  if c.cache_bandwidth_bits_per_sec <= 0. then
    invalid_arg "Distribution: cache bandwidth must be positive"

(* Same conventions as [Runenv.Spec.canonical]: %d for ints, %h for a
   lossless float image.  Embedded whole into the spec's canonical
   form, so any distribution change flips the spec digest. *)
let canonical_config c =
  let b = Buffer.create 128 in
  let f x = Buffer.add_string b (Printf.sprintf "%h;" x) in
  let d x = Buffer.add_string b (Printf.sprintf "%d;" x) in
  d c.clients;
  d c.caches;
  d c.cohorts_per_cache;
  f c.halt;
  f c.fetch_spread;
  f c.retry_initial;
  f c.retry_multiplier;
  f c.retry_max;
  f c.client_timeout;
  f c.cache_bandwidth_bits_per_sec;
  Buffer.add_string b (if c.diffs then "diffs;" else "full;");
  Buffer.contents b

type outcome = {
  clients : int;
  caches : int;
  cohorts : int;
  available_at : float;
  time_to_90pct_fresh : float option;
  time_to_full_recovery : float option;
  bytes_served : int;
  bytes_per_cache : float;
  bytes_per_cache_max : int;
  full_fetches : int;
  diff_fetches : int;
  failed_attempts : int;
}

let run ?rng (c : config) ~available_at ~full_bytes ~diff_bytes ~horizon =
  validate_config c;
  if full_bytes <= 0 then invalid_arg "Distribution.run: full_bytes must be positive";
  if available_at < 0. then invalid_arg "Distribution.run: negative available_at";
  let rng =
    match rng with
    | Some r -> r
    | None -> Rng.of_string_seed ("distribution|" ^ canonical_config c)
  in
  let eng = Engine.create () in
  let n_cohorts = c.caches * c.cohorts_per_cache in
  (* Remainder clients go one-per-cohort to the first few cohorts so
     sizes sum exactly to [c.clients]. *)
  let base = c.clients / n_cohorts and rem = c.clients mod n_cohorts in
  let cohort_size i = base + if i < rem then 1 else 0 in
  (* Caches mirror the document from upstream: fetchable once their
     own full-document download completes, with a little jitter. *)
  let upstream = 8. *. float_of_int full_bytes /. c.cache_bandwidth_bits_per_sec in
  let ready =
    Array.init c.caches (fun _ -> available_at +. Rng.float rng 5. +. upstream)
  in
  let busy_until = Array.map (fun t -> t) ready in
  let bytes_cache = Array.make c.caches 0 in
  let per_client_bytes =
    match diff_bytes with Some d when c.diffs -> d | _ -> full_bytes
  in
  let serving_diffs = match diff_bytes with Some _ when c.diffs -> true | _ -> false in
  let fresh = ref 0 in
  let need90 = ((9 * c.clients) + 9) / 10 in
  let t90 = ref None and tfull = ref None in
  let full_fetches = ref 0 and diff_fetches = ref 0 and failed = ref 0 in
  let rec attempt cohort ~backoff () =
    let size = cohort_size cohort in
    let cache = cohort mod c.caches in
    let now = Engine.now eng in
    let retry () =
      incr_failed size;
      (* Jittered backoff (x0.75..1.25) keeps cohorts from
         re-synchronizing on the exact same retry slot. *)
      let delay = backoff *. (0.75 +. Rng.float rng 0.5) in
      let backoff = Float.min c.retry_max (backoff *. c.retry_multiplier) in
      if now +. delay <= horizon then
        ignore (Engine.schedule eng ~at:(now +. delay) (attempt cohort ~backoff))
    in
    if now < ready.(cache) then retry ()
    else begin
      let start = Float.max now busy_until.(cache) in
      if start -. now > c.client_timeout then retry ()
      else begin
        let bytes = size * per_client_bytes in
        let transfer = 8. *. float_of_int bytes /. c.cache_bandwidth_bits_per_sec in
        busy_until.(cache) <- start +. transfer;
        bytes_cache.(cache) <- bytes_cache.(cache) + bytes;
        if serving_diffs then diff_fetches := !diff_fetches + size
        else full_fetches := !full_fetches + size;
        let finish = busy_until.(cache) in
        ignore
          (Engine.schedule eng ~at:finish (fun () ->
               fresh := !fresh + size;
               let t = Engine.now eng -. available_at in
               if !t90 = None && !fresh >= need90 then t90 := Some t;
               if !tfull = None && !fresh >= c.clients then tfull := Some t))
      end
    end
  and incr_failed size = failed := !failed + size in
  (* Cohorts schedule their first attempt uniformly over the fetch
     window, which opens when the outage began — during a halt they
     fail against still-empty caches and wind up their backoff, so
     availability meets a population already in retry-storm mode. *)
  let window_open = Float.max 0. (available_at -. c.halt) in
  for cohort = 0 to n_cohorts - 1 do
    if cohort_size cohort > 0 then begin
      let at = window_open +. Rng.float rng (Float.max c.fetch_spread 1e-9) in
      if at <= horizon then
        ignore (Engine.schedule eng ~at (attempt cohort ~backoff:c.retry_initial))
    end
  done;
  Engine.run eng ~until:horizon;
  let bytes_served = Array.fold_left ( + ) 0 bytes_cache in
  let bytes_per_cache_max = Array.fold_left max 0 bytes_cache in
  {
    clients = c.clients;
    caches = c.caches;
    cohorts = n_cohorts;
    available_at;
    time_to_90pct_fresh = !t90;
    time_to_full_recovery = !tfull;
    bytes_served;
    bytes_per_cache = float_of_int bytes_served /. float_of_int c.caches;
    bytes_per_cache_max;
    full_fetches = !full_fetches;
    diff_fetches = !diff_fetches;
    failed_attempts = !failed;
  }
