type t = string

let size = 32

let of_raw d =
  if String.length d <> size then invalid_arg "Digest32.of_raw: need 32 bytes";
  d

let of_string s = Sha256.digest_string s
let raw t = t
let hex t = Sha256.hex_of_raw t
let short_hex t = String.sub (hex t) 0 10
let equal = String.equal
let compare = String.compare
let pp ppf t = Format.pp_print_string ppf (short_hex t)
let wire_size = size
let zero = String.make size '\x00'
let pair a b = Sha256.digest_string (a ^ b)
