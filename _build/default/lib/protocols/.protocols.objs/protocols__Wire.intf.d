lib/protocols/wire.mli:
