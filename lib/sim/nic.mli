(** Network-interface bandwidth model.

    A NIC serializes transfers FIFO at a piecewise-constant rate.  Rate
    breakpoints model DDoS windows: attack traffic consumes capacity,
    leaving the configured residual rate (the model Jansen et al. and
    the paper use inside Shadow).  A rate of zero stalls transfers
    until the next breakpoint — this is how a full knockout (Figure 11)
    is expressed; queued bytes drain when the window ends, matching
    TCP's retransmission behaviour. *)

type t

val create : bits_per_sec:float -> unit -> t
(** [create ~bits_per_sec ()] is a NIC with a constant base rate.
    Raises [Invalid_argument] on a negative rate. *)

val set_rate : t -> from:Simtime.t -> bits_per_sec:float -> unit
(** [set_rate t ~from ~bits_per_sec] appends a rate breakpoint.
    Breakpoints must be appended in nondecreasing time order. *)

val limit_window : t -> start:Simtime.t -> stop:Simtime.t -> bits_per_sec:float -> unit
(** [limit_window t ~start ~stop ~bits_per_sec] caps the rate during
    [\[start, stop)] and restores the prior rate at [stop]. *)

val rate_at : t -> Simtime.t -> float
(** Effective rate (bits per second) at a given time. *)

val busy_until : t -> Simtime.t
(** Time at which the FIFO queue drains under the current schedule. *)

val reserve : t -> now:Simtime.t -> bytes:int -> Simtime.t
(** [reserve t ~now ~bytes] appends a transfer of [bytes] to the FIFO
    queue and returns its completion time ({!Simtime.never} if the
    rate is zero forever after).  Raises [Invalid_argument] on
    negative [bytes]. *)

val transfer_time : t -> now:Simtime.t -> bytes:int -> Simtime.t
(** Like {!reserve} but without committing the reservation; used by
    planners and tests. *)

val reset : t -> unit
(** [reset t] drops every breakpoint and pending reservation, returning
    the NIC to the state {!create} produced while keeping the
    breakpoint arrays allocated at their high-water capacity. *)
