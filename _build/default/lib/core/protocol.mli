(** The paper's directory protocol: interactive consistency under
    partial synchrony (Section 5.2), assembled from the three
    sub-protocols.

    + {b Dissemination} — every authority broadcasts its vote as a
      DOCUMENT; at each view start, authorities that hold at least
      [n - f] documents send a PROPOSAL to the view's leader, which
      assembles the digest vector and proof [(H, π)]
      ({!Dissemination}).
    + {b Agreement} — single-shot HotStuff ({!Protocols.Hotstuff})
      agrees on one externally valid [(H, π)].
    + {b Aggregation} — authorities fetch any document whose digest
      appears in the agreed vector but which they do not hold (at
      least one correct node has it, by the Present-proof rule),
      aggregate the covered votes with the deployed Figure 2
      algorithm, and exchange consensus signatures.

    Unlike the two baselines there is no lock-step schedule: the
    protocol tolerates arbitrary delays while documents are in flight
    and needs partial synchrony only to finish agreement — which is
    why it survives the Section 4 DDoS and the low-bandwidth settings
    of Figure 10. *)

val name : string

type params = {
  doc_timeout : Tor_sim.Simtime.t;
      (** Δ of the dissemination wait rule: after this, [n - f]
          documents suffice to propose (default 150 s). *)
  view_timeout : Tor_sim.Simtime.t;  (** pacemaker timeout (default 5 s) *)
  fetch_retry : Tor_sim.Simtime.t;   (** aggregation fetch retry (default 10 s) *)
}

val default_params : params

val run : ?params:params -> Protocols.Runenv.t -> Protocols.Runenv.run_result
(** Simulate one consensus instance.  [network_time] in the result is
    simply the decision time: the protocol has no lock-step rounds
    (Section 6.2's measurement convention). *)

type detailed = {
  result : Protocols.Runenv.run_result;
  vectors : Crypto.Digest32.t Icps.vector array;
      (** per-authority agreed digest vector ([[||]] for authorities
          that never decided) *)
  decided_views : int option array;  (** agreement view of each decision *)
}

val run_detailed : ?params:params -> Protocols.Runenv.t -> detailed
(** Like {!run} but also exposes the agreed vectors and views, which
    the Definition 5.1 property tests inspect. *)

(** The protocol is a functor over the agreement engine (paper
    §5.2.2: any view-based consensus protocol fits).  [run] above is
    {!Over_hotstuff} under the plain name; {!Over_tendermint}
    exercises the same dissemination and aggregation sub-protocols
    over Tendermint-style agreement, and the ablation bench compares
    the two. *)
module Make (A : Protocols.Agreement.S) : sig
  val name : string
  val run : ?params:params -> Protocols.Runenv.t -> Protocols.Runenv.run_result
  val run_detailed : ?params:params -> Protocols.Runenv.t -> detailed
end

module Over_hotstuff : sig
  val name : string
  val run : ?params:params -> Protocols.Runenv.t -> Protocols.Runenv.run_result
  val run_detailed : ?params:params -> Protocols.Runenv.t -> detailed
end

module Over_tendermint : sig
  val name : string
  val run : ?params:params -> Protocols.Runenv.t -> Protocols.Runenv.run_result
  val run_detailed : ?params:params -> Protocols.Runenv.t -> detailed
end

module Over_pbft : sig
  val name : string
  val run : ?params:params -> Protocols.Runenv.t -> Protocols.Runenv.run_result
  val run_detailed : ?params:params -> Protocols.Runenv.t -> detailed
end
