(** Single-shot, view-based BFT agreement under partial synchrony
    (two-phase HotStuff in the style of Jolteon, the variant the
    paper's Rust prototype builds on).

    This is the pluggable agreement sub-protocol of Section 5.2.2: it
    agrees on one externally valid value of type ['v] among [n] nodes
    with [f = (n-1)/3] faults and quorum [n - f].  Good-case round
    count is 5 (propose, vote, QC announce, vote, commit), matching
    Appendix B.2's Table 2.

    Structure per view [v] (leader [v mod n]):
    + the leader proposes a value — its own input, or the value of the
      highest QC carried by the timeout certificate that ended view
      [v - 1] (re-proposal preserves safety);
    + nodes vote in phase One if the proposal is externally valid and
      compatible with their lock (same digest, or justified by a
      higher QC than the lock);
    + a phase-One quorum certificate locks the value and triggers
      phase-Two votes; a phase-Two certificate commits it;
    + on view timeout, nodes broadcast TIMEOUT carrying their highest
      QC (and its value); a quorum of timeouts for the same view forms
      a certificate that advances everyone to the next view.  Nodes
      adopt the highest view they hear a timeout for, which keeps
      views synchronized after GST.

    The module is transport-agnostic: the host wires {!callbacks} to
    its network and clock, calls {!handle} on every delivered message,
    and learns the decision through [decide].  Nodes that already
    decided re-send the commit certificate to any node they still hear
    timeouts from, so a decision propagates even if the deciding
    leader crashed mid-broadcast. *)

val name : string
(** ["hotstuff"]. *)

type phase = One | Two

type qc = {
  view : int;
  digest : Crypto.Digest32.t;
  phase : phase;
  sigs : Crypto.Signature.t list; (** quorum of distinct signers *)
}

type 'v msg =
  | Propose of { view : int; value : 'v; justify : qc option }
  | Vote of { view : int; phase : phase; digest : Crypto.Digest32.t; signature : Crypto.Signature.t }
  | Qc_announce of { qc : qc }
  | Commit of { qc : qc; value : 'v }
  | Timeout of {
      view : int;
      high_qc : qc option;
      value : 'v option; (** value of [high_qc], for re-proposal *)
      signature : Crypto.Signature.t;
    }

type 'v callbacks = {
  now : unit -> Tor_sim.Simtime.t;
  schedule : Tor_sim.Simtime.t -> (unit -> unit) -> Tor_sim.Engine.handle;
      (** [schedule delay f] — relative delay *)
  cancel : Tor_sim.Engine.handle -> unit;
      (** cancel a pending timer from {!schedule} *)
  send : dst:int -> 'v msg -> unit;
      (** unicast; [dst] may equal the node itself *)
  validate : 'v -> bool;  (** external validity (Section 5.2.1 proofs) *)
  value_digest : 'v -> Crypto.Digest32.t;
  proposal : unit -> 'v option;
      (** the node's own input, once dissemination is ready *)
  decide : view:int -> 'v -> unit;  (** fired exactly once *)
  on_view : view:int -> unit;
      (** fired on entering each view; the dissemination sub-protocol
          hooks this to send its PROPOSAL to the view's leader *)
  log : string -> unit;
}

type 'v t

val create :
  keyring:Crypto.Keyring.t ->
  n:int ->
  id:int ->
  ?view_timeout:Tor_sim.Simtime.t ->
  'v callbacks ->
  'v t
(** [view_timeout] defaults to 5 s.  Raises [Invalid_argument] if
    [n < 4] (partial synchrony needs n >= 3f + 1 with f >= 1). *)

val start : 'v t -> unit
(** Enter view 0 and start the pacemaker. *)

val handle : 'v t -> src:int -> 'v msg -> unit
(** Process a delivered message.  Malformed or stale messages are
    ignored. *)

val notify_ready : 'v t -> unit
(** Tell the node its [proposal] callback may now return a value; a
    leader waiting to propose retries. *)

val decided : 'v t -> 'v option
val current_view : 'v t -> int

val quorum : n:int -> int
(** [n - (n-1)/3]. *)

val leader : n:int -> view:int -> int
(** Round-robin leader schedule: [view mod n]. *)

val msg_size : value_size:('v -> int) -> 'v msg -> int
(** Modelled wire size of a message, given the value's size. *)
