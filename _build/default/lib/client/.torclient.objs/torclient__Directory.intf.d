lib/client/directory.mli: Crypto Dirdoc
