(** HMAC-SHA256 (RFC 2104).

    Used both as a keyed MAC in its own right and as the core of the
    simulated signature scheme ({!Signature}).  Validated against the
    RFC 4231 test vectors in the test suite. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte raw HMAC-SHA256 of [msg] under [key].
    Keys longer than the 64-byte block size are hashed first, per the
    RFC. *)

val mac_hex : key:string -> string -> string
(** [mac_hex ~key msg] is [mac] rendered as lowercase hex. *)

val equal : string -> string -> bool
(** [equal a b] compares two MACs in time independent of where they
    first differ (constant-time for equal lengths). *)
