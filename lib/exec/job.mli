(** One simulation as a value: a protocol choice plus the serializable
    parameter spec that deterministically rebuilds its environment.

    Jobs are what the {!Pool} executes and what the {!Cache} keys:
    {!key} combines the protocol name with {!Runenv.Spec.digest}, so
    two jobs with the same key are byte-identical simulations and two
    different simulations always have different keys. *)

type protocol = Current | Synchronous | Ours
(** The three directory protocols of the evaluation: the deployed v3
    protocol, Luo et al.'s synchronous interactive consistency, and
    the paper's partial-synchrony protocol.
    [Torpartial.Experiments.protocol] re-exports this type. *)

val protocol_name : protocol -> string

val protocol_of_name : string -> protocol option
(** Accepts the same spellings as the CLI ([sync], [partial], ...). *)

type t = { protocol : protocol; spec : Protocols.Runenv.Spec.t }

val key : t -> string
(** Stable job identity: [protocol_name ^ ":" ^ Spec.digest]. *)

val rng : t -> Tor_sim.Rng.t
(** Deterministic per-job RNG seeded from {!key}: identical however
    the job is scheduled, distinct across distinct jobs. *)

(** Summary of a finished job — the deterministic, domain-portable
    slice of a [run_result] that every sweep consumer
    (Figures 7/10/11, the CLI, the determinism tests) reads. *)
type outcome = {
  key : string;                      (** {!key} of the job that ran *)
  success : bool;                    (** {!Protocols.Runenv.success} *)
  success_latency : float option;    (** Figure 10 metric *)
  decided_at_latest : float option;  (** Figure 11 metric *)
  total_bytes : int;                 (** bytes on the simulated wire *)
}

val outcome : t -> Protocols.Runenv.report -> outcome
(** Project a full experiment {!Protocols.Runenv.report} down to the
    sweep-cache slice, stamped with this job's {!key}. *)
