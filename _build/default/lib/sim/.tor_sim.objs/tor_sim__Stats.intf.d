lib/sim/stats.mli:
