lib/sim/topology.mli: Rng Simtime
