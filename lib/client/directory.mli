(** Client-side consensus-document validation.

    A Tor client accepts a consensus document only if a majority of
    the directory authorities signed the same digest — the property the
    directory protocol labours to provide, and the reason a failed run
    leaves clients with nothing to use. *)

type signed_consensus = {
  consensus : Dirdoc.Consensus.t;
  signatures : Crypto.Signature.t list;
}

val make :
  Crypto.Keyring.t -> Dirdoc.Consensus.t -> signers:int list -> signed_consensus
(** Sign a document as each of [signers]; a test/workload helper
    standing in for the authorities' signature exchange. *)

val verify :
  Crypto.Keyring.t -> n_authorities:int -> signed_consensus -> (unit, string) result
(** Accept iff at least a majority of the [n_authorities] produced
    valid, distinct signatures on this document's signing payload. *)

(** Client freshness rules (dir-spec; Section 3.1 of the paper).

    The three states partition time into half-open intervals with
    strict deadlines, matching dir-spec's fresh-until/valid-until
    semantics:

    - [Fresh]   on [valid_after, valid_after + 1 h)
    - [Stale]   on [valid_after + 1 h, valid_after + 3 h)
    - [Expired] on [valid_after + 3 h, ∞)

    So at exactly one hour the document is already [Stale], and at
    exactly three hours it is already [Expired]. *)
type freshness =
  | Fresh    (** younger than 1 h: use normally *)
  | Stale    (** 1-3 h old: usable, clients should try to refresh *)
  | Expired  (** older than 3 h: must not be used — Tor is down *)

val freshness : now:float -> Dirdoc.Consensus.t -> freshness
(** Both deadlines are strict: [freshness ~now:(valid_after +. 3600.)]
    is [Stale] and [freshness ~now:(valid_after +. 10800.)] is
    [Expired]. *)

val usable : now:float -> Dirdoc.Consensus.t -> bool
(** [Fresh] or [Stale]. *)
