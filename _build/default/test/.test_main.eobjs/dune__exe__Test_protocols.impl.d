test/test_protocols.ml: Alcotest Array Attack Crypto Dirdoc Fun Int Int64 List Option Printf Protocols QCheck QCheck_alcotest String Tor_sim Torpartial
