(** Chrome trace-event JSON export, loadable in Perfetto
    (https://ui.perfetto.dev) or chrome://tracing.

    Phase spans become ["X"] (complete) events and counter samples
    become ["C"] (counter) events, all under pid 0 with one thread per
    node, so Perfetto renders one track per node with its phase bars
    and a separate counter track per (track, node) pair.  Timestamps
    are sim time converted to microseconds (the unit the format
    mandates). *)

val emit :
  ?node_name:(int -> string) ->
  spans:Events.span list ->
  samples:Events.sample list ->
  Buffer.t ->
  unit
(** Append one complete JSON document ([{"traceEvents": [...]}]).
    [node_name] labels each node's track (default ["node N"]). *)

val to_string :
  ?node_name:(int -> string) ->
  spans:Events.span list ->
  samples:Events.sample list ->
  unit ->
  string
