module Sim = Tor_sim
module Signature = Crypto.Signature
module Digest32 = Crypto.Digest32

let name = "synchronous"
let round_seconds = 150.

type msg =
  | Ds_vote of { origin : int; vote : Dirdoc.Vote.t; chain : Signature.t list }
  | Sig_push of { digest : Digest32.t; signature : Signature.t }
  | Sig_request

type node = {
  id : int;
  accepted : Dirdoc.Vote.t option array; (* by origin *)
  confirmations : (int, unit) Hashtbl.t array;
      (* per origin: distinct signers seen across valid chains.  A vote
         is committed only with >= 2 signers (sender plus one echoer) —
         the Dolev-Strong acceptance threshold that makes equivocation
         by the sender detectable before the vote is used. *)
  equivocated : bool array;
  echoed : bool array; (* whether we already forwarded origin's vote *)
  sig_round : Siground.t;
  mutable last_vote_at : Sim.Simtime.t;
}

let committed node ~origin =
  node.accepted.(origin) <> None
  && (origin = node.id || Hashtbl.length node.confirmations.(origin) >= 2)
  && not node.equivocated.(origin)

let msg_size = function
  | Ds_vote { vote; chain; _ } ->
      Wire.vote_push_bytes ~n_relays:(Dirdoc.Vote.n_relays vote)
      + (List.length chain * Wire.signature_bytes)
  | Sig_push _ -> Wire.signature_bytes + Wire.control_bytes
  | Sig_request -> Wire.request_bytes

module Simulator = Runenv.Simulator (struct
  type nonrec msg = msg
end)

let chain_payload ~origin digest =
  Printf.sprintf "ds|%d|%s" origin (Digest32.raw digest)

(* A chain is valid when the first signer is the origin, signers are
   distinct, and every signature covers the origin/digest payload. *)
let chain_valid keyring ~origin ~digest chain =
  match chain with
  | [] -> false
  | first :: _ ->
      first.Signature.signer = origin
      &&
      let payload = chain_payload ~origin digest in
      let signers = List.map (fun s -> s.Signature.signer) chain in
      List.length (List.sort_uniq Int.compare signers) = List.length chain
      && List.for_all (fun s -> Signature.verify keyring s payload) chain

let run (env : Runenv.t) =
  let n = env.n in
  let need = Runenv.majority ~n in
  let engine, net = Simulator.obtain ~driver:name env in
  let trace = Sim.Trace.create ~lanes:(Sim.Engine.shard_count engine) () in
  Runenv.apply_attacks env net;
  let nodes =
    Array.init n (fun id ->
        {
          id;
          accepted = Array.make n None;
          confirmations = Array.init n (fun _ -> Hashtbl.create 4);
          equivocated = Array.make n false;
          echoed = Array.make n false;
          sig_round = Siground.create ~keyring:env.keyring ~node:id ~need;
          last_vote_at = 0.;
        })
  in
  let now () = Sim.Engine.now engine in
  let log ?node level fmt = Sim.Trace.logf trace ~time:(now ()) ?node level fmt in
  (* Message labels, interned once so per-send accounting is an array
     add (DESIGN.md Â§7). *)
  let lbl_ds_vote = Sim.Net.intern net "ds-vote" in
  let lbl_ds_echo = Sim.Net.intern net "ds-echo" in
  let lbl_sig = Sim.Net.intern net "sig" in
  let lbl_sig_request = Sim.Net.intern net "sig-request" in
  let lbl_sig_fetch = Sim.Net.intern net "sig-fetch" in
  let until_cap = Float.min env.horizon (4. *. round_seconds) in
  let tel = Runenv.Telemetry.start env ~engine ~net ~stop:until_cap () in
  let dir_deadline = Some Wire.dir_connection_timeout in
  let agg_memos =
    Array.init (Sim.Engine.shard_count engine) (fun _ ->
        Dirdoc.Aggregate.Memo.create ())
  in
  let send ~src ~dst ~label m =
    let deadline =
      match m with
      | Ds_vote _ -> dir_deadline
      | Sig_push _ | Sig_request -> None
    in
    Sim.Net.send net ~src ~dst ~size:(msg_size m) ~label ?deadline m
  in
  let broadcast ~src ~label m =
    for dst = 0 to n - 1 do
      if dst <> src then send ~src ~dst ~label m
    done
  in
  let accept_vote node ~origin ~vote ~chain =
    let digest = Dirdoc.Vote.digest vote in
    if not (chain_valid env.keyring ~origin ~digest chain) then ()
    else begin
      (match node.accepted.(origin) with
      | Some existing when not (Dirdoc.Vote.equal existing vote) ->
          if not node.equivocated.(origin) then begin
            node.equivocated.(origin) <- true;
            log ~node:node.id Sim.Trace.Warn
              "Detected equivocation by authority %d; excluding its vote." origin
          end
      | Some _ -> ()
      | None -> node.accepted.(origin) <- Some vote);
      (match node.accepted.(origin) with
      | Some existing when Dirdoc.Vote.equal existing vote ->
          let before = Hashtbl.length node.confirmations.(origin) in
          List.iter
            (fun (s : Signature.t) ->
              Hashtbl.replace node.confirmations.(origin) s.Signature.signer ())
            chain;
          if before < 2 && Hashtbl.length node.confirmations.(origin) >= 2 then
            node.last_vote_at <- now ()
      | _ -> ());
      (* Dolev-Strong echo: forward each accepted vote once, while the
         dissemination rounds are still open. *)
      if (not node.echoed.(origin)) && now () < 2. *. round_seconds
         && not node.equivocated.(origin)
      then begin
        node.echoed.(origin) <- true;
        let own =
          Signature.sign env.keyring ~signer:node.id (chain_payload ~origin digest)
        in
        broadcast ~src:node.id ~label:lbl_ds_echo
          (Ds_vote { origin; vote; chain = chain @ [ own ] })
      end
    end
  in
  Sim.Net.set_handler net (fun ~dst ~src msg ->
      let node = nodes.(dst) in
      if Runenv.awake env dst ~now:(now ()) then
        match msg with
        | Ds_vote { origin; vote; chain } ->
            if now () <= 2. *. round_seconds then accept_vote node ~origin ~vote ~chain
        | Sig_push { digest; signature } ->
            if now () <= 4. *. round_seconds then
              Siground.store node.sig_round ~now:(now ()) ~digest signature
        | Sig_request -> (
            match (Siground.consensus node.sig_round, Siground.my_signature node.sig_round) with
            | Some c, Some signature ->
                send ~src:dst ~dst:src ~label:lbl_sig_fetch
                  (Sig_push { digest = Dirdoc.Consensus.digest c; signature })
            | _ -> ()));
  (* Round 1-2: Dolev-Strong broadcast of every vote. -------------------- *)
  let broadcast_own_vote node =
    let id = node.id in
    node.accepted.(id) <- Some env.votes.(id);
    node.echoed.(id) <- true;
    let digest = Dirdoc.Vote.digest env.votes.(id) in
    let own =
      Signature.sign env.keyring ~signer:id (chain_payload ~origin:id digest)
    in
    broadcast ~src:id ~label:lbl_ds_vote
      (Ds_vote { origin = id; vote = env.votes.(id); chain = [ own ] })
  in
  Array.iter
    (fun node ->
      let id = node.id in
      ignore
        (Sim.Engine.schedule engine ~owner:id ~at:0. (fun () ->
             match env.behaviors.(id) with
             | Runenv.Silent -> ()
             | Runenv.Honest -> broadcast_own_vote node
             | Runenv.Crashed { start; stop } ->
                 if start > 0. then broadcast_own_vote node
                 else
                   (* Crashed through the vote instant: broadcast on
                      recovery; peers only accept it while the
                      dissemination rounds are still open. *)
                   ignore
                     (Sim.Engine.schedule engine ~at:stop (fun () ->
                          broadcast_own_vote node))
             | Runenv.Equivocating ->
                 node.accepted.(id) <- Some env.votes.(id);
                 node.echoed.(id) <- true;
                 let variant =
                   let v = env.votes.(id) in
                   let relays = Array.to_list v.Dirdoc.Vote.relays in
                   let trimmed = match relays with [] -> [] | _ :: rest -> rest in
                   Dirdoc.Vote.create ~authority:id
                     ~authority_fingerprint:v.Dirdoc.Vote.authority_fingerprint
                     ~nickname:v.Dirdoc.Vote.nickname ~published:v.Dirdoc.Vote.published
                     ~valid_after:v.Dirdoc.Vote.valid_after ~relays:trimmed
                 in
                 for dst = 0 to n - 1 do
                   if dst <> id then begin
                     let vote = if dst land 1 = 0 then env.votes.(id) else variant in
                     let digest = Dirdoc.Vote.digest vote in
                     let own =
                       Signature.sign env.keyring ~signer:id
                         (chain_payload ~origin:id digest)
                     in
                     send ~src:id ~dst ~label:lbl_ds_vote
                       (Ds_vote { origin = id; vote; chain = [ own ] })
                   end
                 done)))
    nodes;
  (* Round 3: aggregate accepted votes, sign, push. ----------------------- *)
  Array.iter
    (fun node ->
      ignore
        (Sim.Engine.schedule engine ~owner:node.id ~at:(2. *. round_seconds)
           (fun () ->
             if not (Runenv.awake env node.id ~now:(now ())) then ()
             else begin
               let held =
                 List.filter_map
                   (fun j -> if committed node ~origin:j then node.accepted.(j) else None)
                   (List.init n Fun.id)
               in
               if List.length held < need then
                 log ~node:node.id Sim.Trace.Warn
                   "We don't have enough votes to generate a consensus: %d of %d"
                   (List.length held) need
               else begin
                 let c =
                   Dirdoc.Aggregate.consensus_memo
                     ~memo:agg_memos.(Sim.Engine.current_shard engine)
                     ~valid_after:env.valid_after ~votes:held
                 in
                 let signature = Siground.set_consensus node.sig_round ~now:(now ()) c in
                 broadcast ~src:node.id ~label:lbl_sig
                   (Sig_push { digest = Dirdoc.Consensus.digest c; signature })
               end
             end)))
    nodes;
  (* Round 4: fetch missing signatures. ----------------------------------- *)
  Array.iter
    (fun node ->
      ignore
        (Sim.Engine.schedule engine ~owner:node.id ~at:(3. *. round_seconds)
           (fun () ->
             if Runenv.awake env node.id ~now:(now ())
                && Siground.consensus node.sig_round <> None
                && Siground.count node.sig_round < need
             then broadcast ~src:node.id ~label:lbl_sig_request Sig_request)))
    nodes;
  Sim.Engine.run ~until:until_cap engine;
  (* Lock-step phase spans (see current_v3.ml): the Dolev-Strong
     dissemination takes the first two rounds here, committed votes
     standing in for held ones. *)
  let run_end = now () in
  Array.iter
    (fun node ->
      if Runenv.participates env.behaviors.(node.id) then begin
        let id = node.id in
        let committed_count =
          List.length
            (List.filter
               (fun j -> committed node ~origin:j)
               (List.init n Fun.id))
        in
        let consensus = Siground.consensus node.sig_round in
        let decided = Siground.decided_at node.sig_round in
        Runenv.Telemetry.span tel ~node:id ~phase:"vote-dissemination"
          ~start:0. ~stop:(2. *. round_seconds)
          ~complete:(committed_count >= need);
        if committed_count >= need then
          Runenv.Telemetry.span tel ~node:id ~phase:"aggregation"
            ~start:(2. *. round_seconds) ~stop:(3. *. round_seconds)
            ~complete:(consensus <> None);
        if consensus <> None then
          Runenv.Telemetry.span tel ~node:id ~phase:"signature-exchange"
            ~start:(2. *. round_seconds)
            ~stop:
              (match decided with
              | Some d -> Float.max d (2. *. round_seconds)
              | None -> run_end)
            ~complete:(decided <> None)
      end)
    nodes;
  let per_authority =
    Array.map
      (fun node ->
        let decided_at = Siground.decided_at node.sig_round in
        let network_time =
          match decided_at with
          | Some d -> Some (node.last_vote_at +. (d -. (2. *. round_seconds)))
          | None -> None
        in
        {
          Runenv.consensus = Siground.consensus node.sig_round;
          signatures = Siground.count node.sig_round;
          decided_at;
          network_time;
        })
      nodes
  in
  let obs = Runenv.Telemetry.finish tel ~engine ~net ~per_authority in
  { Runenv.protocol = name; per_authority; stats = Sim.Net.stats net; trace; obs }
