lib/dirdoc/workload.ml: Array Crypto Exit_policy Flags Float Hashtbl List Option Printf Relay Stdlib String Tor_sim Version Vote
