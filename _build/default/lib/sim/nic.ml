type t = {
  base_rate : float; (* bytes per second before the first breakpoint *)
  mutable breakpoints : (Simtime.t * float) list; (* reversed: newest first *)
  mutable busy_until : Simtime.t;
}

let bytes_rate bits = bits /. 8.

let create ~bits_per_sec () =
  if bits_per_sec < 0. then invalid_arg "Nic.create: negative rate";
  { base_rate = bytes_rate bits_per_sec; breakpoints = []; busy_until = Simtime.zero }

let last_breakpoint_time t =
  match t.breakpoints with [] -> Simtime.zero | (time, _) :: _ -> time

let set_rate t ~from ~bits_per_sec =
  if bits_per_sec < 0. then invalid_arg "Nic.set_rate: negative rate";
  if from < last_breakpoint_time t then
    invalid_arg "Nic.set_rate: breakpoints must be appended in time order";
  t.breakpoints <- (from, bytes_rate bits_per_sec) :: t.breakpoints

(* Rate in bytes/s in effect at [time]. *)
let byte_rate_at t time =
  let rec find = function
    | [] -> t.base_rate
    | (from, rate) :: older -> if time >= from then rate else find older
  in
  find t.breakpoints

let rate_at t time = byte_rate_at t time *. 8.

let limit_window t ~start ~stop ~bits_per_sec =
  if stop < start then invalid_arg "Nic.limit_window: stop before start";
  let restored = byte_rate_at t stop *. 8. in
  set_rate t ~from:start ~bits_per_sec;
  set_rate t ~from:stop ~bits_per_sec:restored

(* Next breakpoint strictly after [time], if any. *)
let next_change t time =
  List.fold_left
    (fun acc (from, _) -> if from > time then Some (match acc with None -> from | Some a -> Float.min a from) else acc)
    None t.breakpoints

(* Walk the piecewise-constant schedule consuming [bytes] starting at
   [start]; returns the completion time. *)
let finish_time t ~start ~bytes =
  let rec go time remaining =
    if remaining <= 0. then time
    else
      let rate = byte_rate_at t time in
      match next_change t time with
      | None ->
          if rate <= 0. then Simtime.never else time +. (remaining /. rate)
      | Some change ->
          if rate <= 0. then go change remaining
          else
            let capacity = rate *. (change -. time) in
            if remaining <= capacity then time +. (remaining /. rate)
            else go change (remaining -. capacity)
  in
  go start (float_of_int bytes)

let transfer_time t ~now ~bytes =
  if bytes < 0 then invalid_arg "Nic.transfer_time: negative size";
  let start = Float.max now t.busy_until in
  if Simtime.is_infinite start then Simtime.never
  else finish_time t ~start ~bytes

let reserve t ~now ~bytes =
  let finish = transfer_time t ~now ~bytes in
  t.busy_until <- finish;
  finish

let busy_until t = t.busy_until
