(** Point-to-point message network over NICs and a latency matrix.

    Delivery of a [size]-byte message from [src] to [dst]:
    FIFO egress serialization on [src]'s NIC, then propagation latency,
    then FIFO ingress serialization on [dst]'s NIC (reserved in arrival
    order).  Each node has a single NIC shared by both directions,
    modelling a DDoS-saturated access link whose residual capacity is
    one budget (the per-node bandwidth the paper's Shadow runs
    configure).  Channels are reliable by default: a message outlives a
    DDoS window and drains when bandwidth returns, modelling TCP
    retransmission — the partial-synchrony "eventual delivery"
    abstraction.  Without an installed {!Fault} injector, a message is
    dropped only if a NIC's rate is zero with no future breakpoint.

    {!set_fault} interposes a fault injector on the send and delivery
    paths: loss, partitions, jitter, duplication, and crash windows
    then apply to every protocol built on the network (DESIGN.md §8).

    The payload type ['m] is chosen by the protocol layered on top. *)

type 'm t

val create :
  engine:Engine.t ->
  topology:Topology.t ->
  bits_per_sec:float ->
  unit ->
  'm t
(** All NICs start at the given uniform rate; per-node adjustments go
    through {!nic}.  The network sizes itself to the engine's shard
    count: one flight pool and one {!Stats} instance per shard, plus
    the cross-shard mailboxes and the engine round hook that drains
    them (one network per sharded engine). *)

val n : 'm t -> int
val engine : 'm t -> Engine.t
val shards : 'm t -> int

val stats : 'm t -> Stats.t
(** Traffic statistics, as a merged snapshot of the per-shard
    instances — take it after {!Engine.run} returns.  Counters are
    order-insensitive sums, so the snapshot is identical at every shard
    count.  Always a fresh copy, so a report built from it survives a
    later {!reset} of this network. *)

val intern : 'm t -> string -> Stats.label
(** Intern a label on every shard's statistics, returning the shared
    dense id (the same on all shards, so it can ride a cross-shard
    message).  Call at setup, before the run; prefer this over
    [Stats.intern (Net.stats net)], which on a sharded network would
    intern into a throwaway snapshot. *)

val nic : 'm t -> int -> Nic.t
(** The node's shared NIC. *)

val set_handler : 'm t -> (dst:int -> src:int -> 'm -> unit) -> unit
(** Install the delivery callback.  Must be set before any delivery
    fires; the last installed handler wins. *)

val set_fault : 'm t -> Fault.t -> unit
(** Install a fault injector; install before the first send so the
    injector's RNG stream covers the whole run.  Semantics per message
    (fault windows are checked against the send instant for link
    faults, the delivery instant for receiver crashes):
    {ul
    {- a crashed sender transmits nothing (no bytes charged);}
    {- a dropped or partitioned message is charged to the sender's
       egress but never arrives;}
    {- jitter adds extra propagation latency;}
    {- a duplicated message is delivered twice at the same instant;}
    {- a message finishing ingress at a crashed receiver is
       discarded.}}
    Every loss is counted via {!Stats.record_drop} under the message's
    label. *)

val fault : 'm t -> Fault.t option
(** The installed injector, if any. *)

val set_defense : 'm t -> Defense.Plan.t -> unit
(** Install a defense plan through the same interposition seam as
    {!set_fault}; install before the first send, alongside the fault
    injector (an arena {!reset} detaches both).  Semantics per
    message:
    {ul
    {- {b admission} ({!Defense.Admission}): checked at the delivery
       stage, {e before} ingress bandwidth is reserved on the
       receiver's NIC.  Over-budget messages queue up to the bounded
       backlog (delayed to their token's refill instant, FIFO per
       (receiver, sender) pair), further messages are turned away
       without costing the receiver bandwidth.  Self-sends are
       exempt — they never touch a NIC.}
    {- {b rotation} ({!Defense.Rotation}): a rotated-out node's sends
       are suppressed at send time (no bytes charged); messages
       completing ingress at a rotated-out node are discarded after
       the bytes were spent (the sender's budget is wasted on a quiet
       target).}}
    Every turned-away message is counted via {!Stats.record_reject}
    under the message's label — never mixed into the fault-drop
    counters.  Verdicts are pure arithmetic on state touched only by
    the owning node's shard, so runs stay bit-identical at any shard
    count.  Raises [Invalid_argument] on a plan invalid for this
    network's size. *)

val send :
  'm t ->
  src:int ->
  dst:int ->
  size:int ->
  ?label:Stats.label ->
  ?deadline:Simtime.t ->
  'm ->
  unit
(** Enqueue a message.  Self-sends deliver after a scheduling tick with
    no bandwidth cost.  [label] is an id interned with {!Stats.intern}
    on this network's {!stats}.  [deadline] models a transport-level
    connection timeout (Tor's directory client): if delivery would
    complete more than [deadline] seconds after the send, the message
    is dropped — the bytes are still charged to both NICs, as they were
    transmitted into the flood.  Raises [Invalid_argument] on bad node
    ids or a negative size. *)

val broadcast :
  'm t -> src:int -> size:int -> ?label:Stats.label -> ?deadline:Simtime.t -> 'm -> unit
(** [broadcast] sends to every node except [src] (ascending id order,
    one egress reservation each, as n-1 unicasts — Tor has no
    multicast).  The batch's egress reservations are one monotone sweep
    of the source NIC's rate schedule. *)

val limit_node :
  'm t -> node:int -> start:Simtime.t -> stop:Simtime.t -> bits_per_sec:float -> unit
(** Cap [node]'s NIC during a window; the DDoS primitive. *)

val reset : 'm t -> unit
(** [reset t] empties the network for reuse in a fresh run: statistics
    zeroed (interned labels keep their ids), flight pools and
    cross-shard mailboxes cleared, NIC rate schedules and reservations
    dropped, fault injector, defenses and delivery handler detached,
    telemetry disabled with its histograms zeroed.  Pools, mailboxes and
    histogram arrays keep their high-water capacity; the engine wiring
    (trampoline callback, round hook) stays installed.  Callers must
    {!set_handler} again before the next run and reset the engine
    alongside ({!Engine.reset}). *)

(** {1 Telemetry} *)

val enable_obs : 'm t -> unit
(** Start recording per-label delivery latencies (send instant to
    handler invocation) into per-shard histograms.  Off by default; the
    hot path then pays one boolean test per delivery.  Call at setup,
    after the protocol's labels are interned (later {!intern}s are
    still picked up). *)

val obs_metrics : 'm t -> Obs.Metrics.t
(** Merged snapshot of the telemetry metrics: one
    ["delivery-latency/<label>"] histogram per interned label, summed
    over shards (order-insensitive, so identical to a single-shard
    run's).  Take it after {!Engine.run} returns.  Empty when
    {!enable_obs} was never called. *)

val install_probes :
  'm t -> events:Obs.Events.t -> interval:Simtime.t -> stop:Simtime.t -> unit
(** Schedule one recurring probe per node, every [interval] sim seconds
    from time 0 through [stop], recording a ["nic-backlog"] sample (how
    far the node's NIC is booked past now, in seconds) and — on the
    first node of each shard — a ["queue-depth"] sample of that shard's
    event queue.  Probes are read-only and keyed like ordinary events,
    so they never change simulation outcomes; nic-backlog samples are
    bit-identical across shard counts, queue-depth is inherently
    per-shard.  Raises [Invalid_argument] if [interval <= 0]. *)
