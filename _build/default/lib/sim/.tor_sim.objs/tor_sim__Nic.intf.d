lib/sim/nic.mli: Simtime
