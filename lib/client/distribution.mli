(** The downstream consensus distribution tier: directory caches and
    client cohorts.

    The paper's headline harm is not at the 9 authorities but below
    them — when the directory protocol halts for three hours, ~2M
    clients' consensuses expire and Tor is down, and recovery ends
    with every client refetching at once.  This module models that
    fetch path: directory-cache nodes that download the signed
    consensus from the authorities and serve a client population,
    client fetch schedules staggered across the valid-after window,
    retry with exponential backoff on failure, and consensus-diff
    serving ({!Consdiff}) so steady-state refreshes ship deltas
    instead of full documents.

    A literal million-client event loop would be wasteful, so clients
    are modelled as {e cohorts}: a cache-attached aggregate that
    expands one fetch-schedule sample into a batched event for all of
    its members.  A 1M-client flash crowd after a 3-hour halt runs in
    a few thousand simulator events — milliseconds of wall clock —
    while preserving the dynamics that matter: cache serialization,
    queue-wait timeouts, and the retry storm.  Runs are fully
    deterministic in the configuration (DESIGN.md §9). *)

type config = {
  clients : int;              (** total client population *)
  caches : int;               (** directory-cache nodes *)
  cohorts_per_cache : int;    (** client aggregates per cache *)
  halt : float;
      (** seconds the directory protocol had been down before the
          consensus finally appeared: clients have been retrying this
          long and their backoff is already wound up.  [0.] models
          steady state (an ordinary hourly refresh). *)
  fetch_spread : float;
      (** width (s) of the uniform window over which cohorts schedule
          their first fetch — dir-spec clients stagger inside the
          valid-after interval *)
  retry_initial : float;      (** first retry delay (s) after a failure *)
  retry_multiplier : float;   (** exponential backoff factor *)
  retry_max : float;          (** backoff cap (s) *)
  client_timeout : float;
      (** a client abandons an attempt when the cache's queue delay
          exceeds this (s) and retries later — the timeout that turns
          a flash crowd into a retry storm *)
  cache_bandwidth_bits_per_sec : float;  (** egress rate of each cache *)
  diffs : bool;               (** serve consensus diffs when possible *)
}

val default_config : config
(** 1M clients on 16 caches x 64 cohorts, steady state ([halt = 0]),
    30 min fetch spread, 60 s initial retry doubling up to 600 s,
    30 s client timeout, 1 Gbit/s per cache, diffs on. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on non-positive populations, rates, or
    timeouts, a multiplier below 1, or a negative [halt]/[fetch_spread]. *)

val canonical_config : config -> string
(** Canonical serialization (lossless floats), embedded in
    {!Protocols.Runenv.Spec.canonical} so distribution settings
    participate in spec digests. *)

(** Metrics of one distribution run.  Times are in seconds {e after}
    [available_at] (the instant the signed consensus reached the
    caches' upstream). *)
type outcome = {
  clients : int;
  caches : int;
  cohorts : int;
  available_at : float;       (** when the document became fetchable *)
  time_to_90pct_fresh : float option;
      (** when 90% of clients held the new consensus; [None] if never
          reached inside the horizon *)
  time_to_full_recovery : float option;
      (** when every client held it *)
  bytes_served : int;         (** total bytes off all caches *)
  bytes_per_cache : float;    (** mean bytes served per cache *)
  bytes_per_cache_max : int;  (** hottest cache *)
  full_fetches : int;         (** clients served a full document *)
  diff_fetches : int;         (** clients served a consensus diff *)
  failed_attempts : int;
      (** client-weighted attempts that timed out or found no document *)
}

val run :
  ?rng:Tor_sim.Rng.t ->
  config ->
  available_at:float ->
  full_bytes:int ->
  diff_bytes:int option ->
  horizon:float ->
  outcome
(** Simulate the distribution of one consensus.  The document becomes
    fetchable at [available_at]; cohorts start attempting at
    [available_at -. halt] (clamped to 0), spread over
    [fetch_spread], so a halt arrives with backoff already wound up —
    the flash crowd.  [full_bytes] is the serialized document size;
    [diff_bytes = Some d] (with [config.diffs]) serves [d]-byte diffs
    instead.  Events past [horizon] do not run; cohorts still fetching
    then are reported as not recovered.  Deterministic: the RNG
    defaults to one seeded from {!canonical_config}.  Raises
    [Invalid_argument] on an invalid config or non-positive
    [full_bytes]. *)
