type t = { signer : int; tag : string }

(* Domain-separate signing from other HMAC uses of the same secret. *)
let tag_of ring ~signer msg =
  Hmac.mac ~key:(Keyring.secret ring signer) ("sig\x00" ^ msg)

let sign ring ~signer msg = { signer; tag = tag_of ring ~signer msg }

let verify ring sg msg =
  Keyring.mem ring sg.signer && Hmac.equal sg.tag (tag_of ring ~signer:sg.signer msg)

let forge ~signer msg =
  { signer; tag = Sha256.digest_string ("forged\x00" ^ msg) }

let wire_size = 64

let equal a b = a.signer = b.signer && String.equal a.tag b.tag

let pp ppf t =
  Format.fprintf ppf "sig[%d:%s]" t.signer
    (String.sub (Sha256.hex_of_raw t.tag) 0 8)
