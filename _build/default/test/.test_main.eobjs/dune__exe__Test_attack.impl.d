test/test_attack.ml: Alcotest Attack Format List Protocols String Tor_sim
