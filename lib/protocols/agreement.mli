(** The pluggable agreement-engine interface (paper §5.2.2: "we can
    utilize any view-based consensus protocol, such as PBFT,
    Tendermint, or HotStuff").

    {!Hotstuff} and {!Tendermint} both satisfy {!S}; the core protocol
    is a functor over it, so the dissemination and aggregation
    sub-protocols run unchanged over either engine.  This interface is
    the module's entire export: engine implementations live in their
    own modules and nothing else is shared through here. *)

module type S = sig
  type 'v t
  (** One authority's engine instance, carrying values of type ['v]. *)

  type 'v msg
  (** Engine wire messages, opaque to the transport. *)

  (** Environment the host protocol provides to the engine.  The
      engine owns no clock, network, or scheduler of its own — every
      effect goes through these callbacks, which is what lets the same
      engine run under the simulator or any other harness. *)
  type 'v callbacks = {
    now : unit -> Tor_sim.Simtime.t;
    schedule : Tor_sim.Simtime.t -> (unit -> unit) -> Tor_sim.Engine.handle;
        (** absolute-time one-shot timer *)
    cancel : Tor_sim.Engine.handle -> unit;
    send : dst:int -> 'v msg -> unit;
    validate : 'v -> bool;  (** external validity predicate *)
    value_digest : 'v -> Crypto.Digest32.t;
    proposal : unit -> 'v option;
        (** the value this authority proposes when it leads ([None]
            while not yet ready) *)
    decide : view:int -> 'v -> unit;  (** commit notification, fired once *)
    on_view : view:int -> unit;       (** view-change notification *)
    log : string -> unit;
  }

  val name : string
  (** Engine name, used in traces and reports. *)

  val create :
    keyring:Crypto.Keyring.t ->
    n:int ->
    id:int ->
    ?view_timeout:Tor_sim.Simtime.t ->
    'v callbacks ->
    'v t

  val start : 'v t -> unit
  (** Begin view 0.  Call once, after the transport is wired. *)

  val handle : 'v t -> src:int -> 'v msg -> unit
  (** Deliver an incoming engine message. *)

  val notify_ready : 'v t -> unit
  (** Tell the engine that [proposal] may now return a value (the
      dissemination phase completed). *)

  val decided : 'v t -> 'v option
  (** The committed value, once {!type-S.callbacks.decide} fired. *)

  val current_view : 'v t -> int

  val leader : n:int -> view:int -> int
  (** Round-robin leader schedule, shared by all engines. *)

  val msg_size : value_size:('v -> int) -> 'v msg -> int
  (** Wire size of a message given a value-size function, for the
      byte-accounted transport. *)
end
