(** The dissemination sub-protocol (Section 5.2.1).

    Nodes broadcast their documents; each node assembles a signed
    per-sender digest vector (a PROPOSAL) for the current view's
    leader; the leader combines [n - f] proposals into a digest vector
    [H] and an externally verifiable proof [π], the value fed to the
    agreement sub-protocol.  Per entry [j] the proof is one of:

    + {b Present} — [f + 1] proposer signatures on [(j, h_j)]
      together with [j]'s own signature on its digest, guaranteeing at
      least one correct node holds the full document;
    + {b Equivocation} — two digests both signed by [j], justifying
      exclusion;
    + {b Absent} — [f + 1] proposer signatures on [(j, ⊥)],
      guaranteeing the leader is not censoring a document every
      correct node saw (the GST = 0 value-validity argument). *)

type entry = {
  digest : Crypto.Digest32.t option;        (** [None] is ⊥ *)
  sender_sig : Crypto.Signature.t option;   (** σ_j(j, h_j), present iff digest is *)
  proposer_sig : Crypto.Signature.t;        (** σ_i(j, h_j) or σ_i(j, ⊥) *)
}

type proposal = { proposer : int; entries : entry array }

type entry_proof =
  | Present of Crypto.Signature.t * Crypto.Signature.t list
      (** sender's signature on its digest, plus [f+1] proposer sigs *)
  | Equivocation of (Crypto.Digest32.t * Crypto.Signature.t) * (Crypto.Digest32.t * Crypto.Signature.t)
  | Absent of Crypto.Signature.t list

type value = {
  vector : Crypto.Digest32.t option array;  (** H *)
  proofs : entry_proof array;               (** π, one per entry *)
}
(** The agreement sub-protocol's input/output value [(H, π)]. *)

val doc_payload : sender:int -> Crypto.Digest32.t option -> string
(** The byte string signed for digest assertions: ["doc|j|h"] or
    ["doc|j|⊥"]. *)

val sign_document :
  Crypto.Keyring.t -> sender:int -> Crypto.Digest32.t -> Crypto.Signature.t
(** σ_j(j, h_j), attached to the DOCUMENT broadcast. *)

val make_proposal :
  Crypto.Keyring.t ->
  proposer:int ->
  digests:(Crypto.Digest32.t * Crypto.Signature.t) option array ->
  proposal
(** Build node [proposer]'s PROPOSAL from the documents it received:
    entry [j] is [(h_j, σ_j)] or ⊥, each co-signed by the proposer. *)

val proposal_valid : Crypto.Keyring.t -> n:int -> f:int -> proposal -> bool
(** At least [n - f] non-⊥ entries, all signatures verify, and every
    non-⊥ entry carries the sender's own signature. *)

(** Leader-side accumulation of proposals. *)
module Collector : sig
  type t

  val create : Crypto.Keyring.t -> n:int -> f:int -> t

  val add : t -> proposal -> unit
  (** Record a (valid) proposal; invalid ones are ignored, a proposer's
      later proposal replaces its earlier one. *)

  val count : t -> int

  val build : t -> value option
  (** [Some (H, π)] once at least [n - f] proposals are held {e and}
      the assembled vector has at least [n - f] non-⊥ entries
      (the "ready" condition); [None] otherwise. *)
end

val validate : Crypto.Keyring.t -> n:int -> f:int -> value -> bool
(** External validity of [(H, π)]: every entry proof checks out,
    proof kinds match vector entries, and [|H|_{≠⊥} >= n - f]. *)

val value_digest : value -> Crypto.Digest32.t
(** Binding digest of [(H, π)]'s vector, used by the agreement
    sub-protocol. *)

val value_wire_size : value -> int
(** Modelled bytes of [(H, π)] on the wire: O(n) digests plus O(n·f)
    signatures. *)
