(* Telemetry: histogram bucketing/merging, the metrics registry, the
   Chrome trace-event export, streaming log iteration, and the headline
   invariant — with telemetry on, the histograms, phase spans, and
   nic-backlog probes of a sharded run are bit-identical to the
   single-domain run (mirroring test_shards for the base results). *)

module R = Protocols.Runenv
module E = Torpartial.Experiments
module M = Obs.Metrics

(* --- histograms ---------------------------------------------------------- *)

let test_histogram_basics () =
  let h = M.histogram_create () in
  Alcotest.(check int) "empty count" 0 (M.count h);
  Alcotest.(check bool) "empty percentile nan" true
    (Float.is_nan (M.percentile h 0.5));
  List.iter (M.observe h) [ 0.010; 0.020; 0.030; 0.040; 0.100 ];
  Alcotest.(check int) "count" 5 (M.count h);
  Alcotest.(check (float 1e-9)) "sum exact" 0.2 (M.sum h);
  Alcotest.(check (float 1e-9)) "min exact" 0.010 (M.min_value h);
  Alcotest.(check (float 1e-9)) "max exact" 0.100 (M.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 0.04 (M.mean h);
  (* Percentiles are bucket upper bounds clamped to the observed range:
     p0+ sits at the exact min, p100 at the exact max, and the median's
     bound lies between the true median and its bucket edge. *)
  Alcotest.(check (float 1e-9)) "p100 is exact max" 0.100 (M.percentile h 1.0);
  let p50 = M.percentile h 0.5 in
  Alcotest.(check bool) "p50 upper-bounds the median" true
    (p50 >= 0.030 && p50 <= 0.030 *. (10. ** (1. /. 16.)));
  (* Edge behavior: negatives clamp to 0 (underflow bucket), tiny
     values land in the underflow bucket, huge ones in the top bucket —
     no exception, exact min/max still tracked. *)
  let e = M.histogram_create () in
  M.observe e (-1.);
  M.observe e 1e-9;
  M.observe e 1e12;
  Alcotest.(check int) "edges counted" 3 (M.count e);
  Alcotest.(check (float 0.)) "clamped min" 0. (M.min_value e);
  Alcotest.(check (float 0.)) "huge max exact" 1e12 (M.max_value e)

let test_histogram_merge_overlapping () =
  (* Two histograms with overlapping buckets must merge to exactly the
     histogram a single instance would have recorded for the union —
     the property the per-shard latency tables rely on. *)
  let values_a = [ 0.001; 0.010; 0.010; 0.500; 3.0 ] in
  let values_b = [ 0.010; 0.020; 0.500; 0.500; 100.0 ] in
  let a = M.histogram_create () and b = M.histogram_create () in
  let one = M.histogram_create () in
  List.iter (M.observe a) values_a;
  List.iter (M.observe b) values_b;
  List.iter (M.observe one) (values_a @ values_b);
  let m = M.histogram_create () in
  M.merge_histogram ~into:m a;
  M.merge_histogram ~into:m b;
  Alcotest.(check string) "merge == single recording" (M.render one) (M.render m);
  (* Merge order is irrelevant. *)
  let m' = M.histogram_create () in
  M.merge_histogram ~into:m' b;
  M.merge_histogram ~into:m' a;
  Alcotest.(check string) "merge commutes" (M.render m) (M.render m')

let test_registry_merge () =
  let a = M.create () and b = M.create () in
  M.add (M.counter a "msgs") 3;
  M.add (M.counter b "msgs") 4;
  M.incr (M.counter b "only-b");
  M.set_gauge (M.gauge a "depth") 5.;
  M.set_gauge (M.gauge b "depth") 2.;
  M.observe (M.histogram a "lat") 0.01;
  M.observe (M.histogram b "lat") 0.02;
  let into = M.create () in
  M.merge_into ~into a;
  M.merge_into ~into b;
  Alcotest.(check (list (pair string int))) "counters add, by name"
    [ ("msgs", 7); ("only-b", 1) ]
    (M.counters into);
  Alcotest.(check (list (pair string (float 0.)))) "gauges keep max"
    [ ("depth", 5.) ]
    (M.gauges into);
  (match M.find_histogram into "lat" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
      Alcotest.(check int) "histogram observations" 2 (M.count h);
      Alcotest.(check (float 1e-9)) "histogram sum" 0.03 (M.sum h));
  Alcotest.(check bool) "unknown name" true (M.find_histogram into "nope" = None)

(* --- trace-event export -------------------------------------------------- *)

let test_trace_event_json () =
  let events = Obs.Events.create ~lanes:2 () in
  Obs.Events.span events ~lane:1 ~node:1 ~phase:"agreement" ~start:0.5 ~stop:2.5
    ~complete:true;
  Obs.Events.span events ~lane:0 ~node:0 ~phase:"dissemination" ~start:0.
    ~stop:1.5 ~complete:false;
  Obs.Events.sample events ~lane:0 ~node:0 ~track:"nic-backlog" ~time:1.0
    ~value:0.25;
  let spans = Obs.Events.spans events in
  (* Merged accessor sorts on every field: lane placement is invisible. *)
  Alcotest.(check int) "both spans" 2 (List.length spans);
  Alcotest.(check string) "sorted by start" "dissemination"
    (List.hd spans).Obs.Events.phase;
  let json =
    Obs.Trace_event.to_string ~spans ~samples:(Obs.Events.samples events) ()
  in
  let contains needle =
    let n = String.length needle and len = String.length json in
    let rec go i = i + n <= len && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "has complete events" true (contains "\"ph\": \"X\"");
  Alcotest.(check bool) "has counter events" true (contains "\"ph\": \"C\"");
  Alcotest.(check bool) "has thread metadata" true (contains "\"thread_name\"");
  (* Sim seconds to trace microseconds. *)
  Alcotest.(check bool) "span start in us" true (contains "\"ts\": 500000.000");
  Alcotest.(check bool) "span duration in us" true (contains "\"dur\": 2000000.000");
  Alcotest.(check bool) "counter named per node" true
    (contains "\"name\": \"nic-backlog (node 0)\"");
  Alcotest.(check bool) "incomplete span flagged" true
    (contains "\"complete\": false")

(* --- profiler ------------------------------------------------------------ *)

let test_profiler_accumulates () =
  let p = Obs.Profiler.create ~shards:2 in
  Obs.Profiler.add_busy p 0 0.5;
  Obs.Profiler.add_busy p 0 0.25;
  Obs.Profiler.add_wait p 1 0.125;
  Obs.Profiler.add_events p 0 10;
  Obs.Profiler.incr_rounds p 0;
  Obs.Profiler.incr_rounds p 0;
  match Obs.Profiler.report p with
  | [ s0; s1 ] ->
      Alcotest.(check (float 1e-9)) "busy sums" 0.75 s0.Obs.Profiler.busy_s;
      Alcotest.(check (float 1e-9)) "wait sums" 0.125 s1.Obs.Profiler.wait_s;
      Alcotest.(check int) "events" 10 s0.Obs.Profiler.events;
      Alcotest.(check int) "rounds" 2 s0.Obs.Profiler.rounds;
      Alcotest.(check int) "shard ids" 1 s1.Obs.Profiler.shard
  | l -> Alcotest.failf "expected 2 shard entries, got %d" (List.length l)

(* --- streaming log iteration --------------------------------------------- *)

let test_trace_iter_matches_records () =
  let t = Tor_sim.Trace.create ~lanes:3 () in
  (* Interleave lanes with colliding times so the merge has real ties
     to break. *)
  for i = 0 to 29 do
    let lane = i mod 3 in
    Tor_sim.Domain_ctx.set lane;
    Tor_sim.Trace.log t
      ~time:(float_of_int (i / 6))
      ~node:(i mod 5) Tor_sim.Trace.Notice
      (Printf.sprintf "record %d" i)
  done;
  Tor_sim.Domain_ctx.set 0;
  let via_iter = ref [] in
  Tor_sim.Trace.iter t (fun r -> via_iter := r :: !via_iter);
  Alcotest.(check (list string)) "iter order == records order"
    (List.map Tor_sim.Trace.render (Tor_sim.Trace.records t))
    (List.map Tor_sim.Trace.render (List.rev !via_iter));
  let node2 = ref [] in
  Tor_sim.Trace.iter ~node:2 t (fun r -> node2 := r :: !node2);
  Alcotest.(check (list string)) "node filter == for_node"
    (List.map Tor_sim.Trace.render (Tor_sim.Trace.for_node t 2))
    (List.map Tor_sim.Trace.render (List.rev !node2));
  Alcotest.(check string) "dump built on iter"
    (String.concat "\n"
       (List.map Tor_sim.Trace.render (Tor_sim.Trace.records t)))
    (Tor_sim.Trace.dump t)

(* --- end-to-end telemetry ------------------------------------------------ *)

let obs_spec = { R.Spec.default with R.Spec.n_relays = 400; horizon = 600. }

let run_obs spec protocol shards =
  let env = R.of_spec { spec with R.Spec.shards } in
  let env = { env with R.telemetry = true } in
  let report = E.run protocol env in
  match R.report_obs report with
  | Some o -> (report, o)
  | None -> Alcotest.fail "telemetry on but no obs in the result"

(* Everything deterministic about a run's telemetry: histograms in
   canonical text form, every span field, and the nic-backlog probe
   stream.  Queue-depth samples are per-shard by construction and the
   profile is wall-clock, so both stay out of the determinism check. *)
let obs_summary (o : R.obs) =
  ( List.map (fun (name, h) -> (name, M.render h)) (M.histograms o.R.metrics),
    o.R.spans,
    List.filter
      (fun (s : Obs.Events.sample) -> s.Obs.Events.track = "nic-backlog")
      o.R.samples )

let check_obs_shard_counts ~name spec protocol counts =
  let _, base_obs = run_obs spec protocol 1 in
  let base = obs_summary base_obs in
  let hists, spans, samples = base in
  Alcotest.(check bool) (name ^ ": has spans") true (spans <> []);
  Alcotest.(check bool) (name ^ ": has probes") true (samples <> []);
  Alcotest.(check bool)
    (name ^ ": has delivery histograms")
    true
    (List.exists
       (fun (n, _) -> String.length n > 17 && String.sub n 0 17 = "delivery-latency/")
       hists);
  List.iter
    (fun s ->
      let _, got = run_obs spec protocol s in
      Alcotest.(check bool)
        (Printf.sprintf "%s: telemetry at %d shards == 1 shard" name s)
        true
        (obs_summary got = base))
    counts

let test_obs_sharded_ours () =
  check_obs_shard_counts ~name:"ours" obs_spec E.Ours [ 2; 4; 8 ]

let test_obs_sharded_current () =
  check_obs_shard_counts ~name:"current" obs_spec E.Current [ 2; 4 ]

let test_obs_sharded_sync () =
  check_obs_shard_counts ~name:"synchronous" obs_spec E.Synchronous [ 2; 4 ]

let test_report_accessors () =
  let report, o = run_obs obs_spec E.Ours 1 in
  (* Every decided authority contributes one time-to-decision
     observation. *)
  let decided =
    Array.to_list report.R.result.R.per_authority
    |> List.filter (fun (a : R.authority_result) -> a.R.decided_at <> None)
    |> List.length
  in
  (match R.time_to_decision report with
  | None -> Alcotest.fail "time-to-decision histogram missing"
  | Some h ->
      Alcotest.(check int) "one observation per decision" decided (M.count h);
      Alcotest.(check bool) "decisions happened" true (decided > 0));
  (match R.delivery_latency report "document" with
  | None -> Alcotest.fail "document delivery histogram missing"
  | Some h -> Alcotest.(check bool) "documents delivered" true (M.count h > 0));
  Alcotest.(check bool) "unknown label" true
    (R.delivery_latency report "no-such-label" = None);
  (* All phases a healthy partial-synchrony run goes through, each
     complete on every participating node. *)
  let phases =
    List.sort_uniq String.compare
      (List.map (fun (s : Obs.Events.span) -> s.Obs.Events.phase) o.R.spans)
  in
  Alcotest.(check (list string)) "phase taxonomy"
    [ "aggregation"; "agreement"; "dissemination"; "signature-exchange" ]
    phases;
  Alcotest.(check bool) "healthy run: all spans complete" true
    (List.for_all (fun (s : Obs.Events.span) -> s.Obs.Events.complete) o.R.spans);
  (* Telemetry off: no obs, accessors all None. *)
  let plain = E.run E.Ours (R.of_spec obs_spec) in
  Alcotest.(check bool) "off: no obs" true (R.report_obs plain = None);
  Alcotest.(check bool) "off: no histogram" true
    (R.time_to_decision plain = None)

(* A failing run is diagnosable: the deployed protocol under the
   paper's flood never decides, and the stalled-phase reducer names
   the phase its incomplete spans are stuck in.  A healthy run
   diagnoses as None. *)
let test_stalled_phase () =
  let flood_spec =
    (* Past the relay count where the flood defeats the deployed
       protocol (the paper's Figure 10 failure point). *)
    { obs_spec with
      R.Spec.n_relays = 10_000;
      attacks = Attack.Ddos.bandwidth_attack ~n:9 ();
    }
  in
  let env = { (R.of_spec flood_spec) with R.telemetry = true } in
  let report = E.run E.Current env in
  Alcotest.(check bool) "flooded run fails" false report.R.success;
  (match R.stalled_phase env report with
  | None -> Alcotest.fail "failed run should name a stalled phase"
  | Some phase ->
      Alcotest.(check bool) "phase is non-empty" true (phase <> ""));
  let healthy_env = { (R.of_spec obs_spec) with R.telemetry = true } in
  let healthy = E.run E.Ours healthy_env in
  Alcotest.(check bool) "healthy run: no stalled phase" true
    (R.stalled_phase healthy_env healthy = None)

let test_engine_profile_shape () =
  let _, o = run_obs obs_spec E.Ours 2 in
  Alcotest.(check int) "one entry per shard" 2 (List.length o.R.profile);
  List.iteri
    (fun i (s : Obs.Profiler.shard) ->
      Alcotest.(check int) "shard order" i s.Obs.Profiler.shard;
      Alcotest.(check bool) "ran rounds" true (s.Obs.Profiler.rounds > 0);
      Alcotest.(check bool) "nonnegative busy" true (s.Obs.Profiler.busy_s >= 0.);
      Alcotest.(check bool) "nonnegative wait" true (s.Obs.Profiler.wait_s >= 0.))
    o.R.profile;
  Alcotest.(check bool) "shards dispatched events" true
    (List.for_all (fun (s : Obs.Profiler.shard) -> s.Obs.Profiler.events > 0)
       o.R.profile)

let suite =
  [
    ("histogram: bucketing and percentiles", `Quick, test_histogram_basics);
    ("histogram: overlapping merge", `Quick, test_histogram_merge_overlapping);
    ("registry: merge by name", `Quick, test_registry_merge);
    ("trace-event: JSON export", `Quick, test_trace_event_json);
    ("profiler: accumulation", `Quick, test_profiler_accumulates);
    ("trace: iter matches records", `Quick, test_trace_iter_matches_records);
    ("telemetry bit-identical (ours)", `Quick, test_obs_sharded_ours);
    ("telemetry bit-identical (current)", `Quick, test_obs_sharded_current);
    ("telemetry bit-identical (synchronous)", `Quick, test_obs_sharded_sync);
    ("report: telemetry accessors", `Quick, test_report_accessors);
    ("report: stalled-phase diagnosis", `Quick, test_stalled_phase);
    ("engine profile: per-shard shape", `Quick, test_engine_profile_shape);
  ]
