let authority_link_bits_per_sec = 250e6
let ddos_residual_bits_per_sec = 0.5e6
let vote_window_seconds = 300.

let majority_targets ~n = List.init ((n / 2) + 1) Fun.id

let check_targets ~n targets =
  if targets = [] then invalid_arg "Ddos: empty target list";
  List.iter
    (fun t -> if t < 0 || t >= n then invalid_arg "Ddos: target out of range")
    targets

let windows ~targets ~start ~stop ~bits_per_sec ~n =
  check_targets ~n targets;
  if stop < start then invalid_arg "Ddos: stop before start";
  List.map
    (fun node -> { Protocols.Runenv.node; start; stop; bits_per_sec })
    targets

let bandwidth_attack ?targets ?(start = 0.) ?(stop = vote_window_seconds)
    ?(residual_bits_per_sec = ddos_residual_bits_per_sec) ~n () =
  let targets = Option.value targets ~default:(majority_targets ~n) in
  windows ~targets ~start ~stop ~bits_per_sec:residual_bits_per_sec ~n

let knockout ?targets ?(start = 0.) ?(stop = vote_window_seconds) ~n () =
  let targets = Option.value targets ~default:(majority_targets ~n) in
  windows ~targets ~start ~stop ~bits_per_sec:0. ~n
