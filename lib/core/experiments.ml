module Runenv = Protocols.Runenv
module Rng = Tor_sim.Rng
module Job = Exec.Job

type protocol = Exec.Job.protocol = Current | Synchronous | Ours

let protocol_name = Exec.Job.protocol_name

(* Raw protocol drivers; figure internals that only need a
   [run_result] call these directly. *)
let driver = function
  | Current -> Protocols.Current_v3.run
  | Synchronous -> Protocols.Sync_ic.run
  | Ours -> fun env -> Protocol.run env

let default_seed = "torpartial"

(* Distribution glue: once the authorities produce a majority-signed
   document, hand it to the cache/client tier.  The "previous hour"
   document a diff would be computed against is synthesized from the
   produced consensus by undoing plausible churn (per-hour rates from
   Workload.default_churn), seeded from the document digest so the
   diff size is a pure function of the run. *)
let previous_consensus ~rng ~hours (c : Dirdoc.Consensus.t) =
  (* Hourly consensus changes come from relay churn alone (measured
     bandwidths are smoothed and stable hour-over-hour — see
     [consdiff_savings]), so the previous document is the produced one
     minus the relays that joined in the meantime, at the default
     ~1.5%/hour join rate compounded over the gap. *)
  let keep_prob = 0.985 ** float_of_int hours in
  let entries =
    Array.to_list c.Dirdoc.Consensus.entries
    |> List.filter (fun (_ : Dirdoc.Consensus.entry) -> Rng.float rng 1. <= keep_prob)
  in
  Dirdoc.Consensus.create
    ~valid_after:(c.Dirdoc.Consensus.valid_after -. (3600. *. float_of_int hours))
    ~n_votes:c.Dirdoc.Consensus.n_votes ~entries

let majority_signed_consensus (env : Runenv.t) (result : Runenv.run_result) =
  let need = Runenv.majority ~n:env.Runenv.n in
  Array.to_list result.Runenv.per_authority
  |> List.find_map (fun (a : Runenv.authority_result) ->
         match a.Runenv.consensus with
         | Some c when a.Runenv.signatures >= need -> Some c
         | _ -> None)

let distribution_outcome (env : Runenv.t) (result : Runenv.run_result)
    (cfg : Torclient.Distribution.config) =
  match majority_signed_consensus env result with
  | None -> None
  | Some c ->
      let target = Dirdoc.Consensus.serialize c in
      let full_bytes = String.length target in
      let diff_bytes =
        if cfg.Torclient.Distribution.diffs then begin
          let rng =
            Rng.of_string_seed
              ("consdiff|" ^ Crypto.Digest32.hex (Dirdoc.Consensus.digest c))
          in
          let hours =
            1 + int_of_float (cfg.Torclient.Distribution.halt /. 3600.)
          in
          let base =
            Dirdoc.Consensus.serialize (previous_consensus ~rng ~hours c)
          in
          Some (Torclient.Consdiff.wire_size (Torclient.Consdiff.diff ~base ~target))
        end
        else None
      in
      (* The distribution tier runs on its own clock: the document
         becomes available [halt] seconds into the outage plus the
         agreement run's decision latency, and gets the same amount of
         simulated time the agreement core had. *)
      let available_at =
        cfg.Torclient.Distribution.halt
        +. Option.value (Runenv.decided_at_latest result) ~default:0.
      in
      let horizon = available_at +. env.Runenv.horizon in
      Some (Torclient.Distribution.run cfg ~available_at ~full_bytes ~diff_bytes ~horizon)

(* The one execution path shared by the CLI, scenario files, the
   benches, and the sweep pool: every simulation of a named protocol
   goes through here and comes back as a structured report. *)
let run protocol env =
  let result = driver protocol env in
  let distribution =
    match env.Runenv.distribution with
    | Some cfg when Runenv.success env result ->
        distribution_outcome env result cfg
    | Some _ | None -> None
  in
  Runenv.report env ?distribution result

let all_protocols = [ Current; Synchronous; Ours ]

(* Reuse one vote population across protocol and bandwidth sweeps —
   and across sweep workers, seeds and campaign batches: vote
   generation dominates setup cost, and sharing it also makes
   cross-protocol comparisons exact.  The generated votes depend only
   on (seed, n, n_relays, valid_after, divergence), so the cache is
   keyed by exactly those fields (via the canonical spec digest of a
   spec reduced to them) and never changes results.  It is
   domain-safe, so parallel sweep workers share it too. *)
let votes_cache : Dirdoc.Vote.t array Exec.Cache.t = Exec.Cache.create ()

(* A spec carrying only the vote-relevant fields; everything else at
   default so unrelated fields (attacks, horizon, bandwidth, ...)
   cannot fragment the cache. *)
let vote_spec (s : Runenv.Spec.t) =
  {
    Runenv.Spec.default with
    Runenv.Spec.seed = s.Runenv.Spec.seed;
    n = s.Runenv.Spec.n;
    n_relays = s.Runenv.Spec.n_relays;
    valid_after = s.Runenv.Spec.valid_after;
    divergence = s.Runenv.Spec.divergence;
  }

let votes_for_spec (s : Runenv.Spec.t) =
  let vs = vote_spec s in
  Exec.Cache.find_or_compute votes_cache ~key:(Runenv.Spec.digest vs) (fun () ->
      (Runenv.of_spec vs).Runenv.votes)

let spec ?(attacks = []) ?(bandwidth_bits_per_sec = 250e6) ?(horizon = 7200.)
    ~n_relays () =
  { Runenv.Spec.default with n_relays; attacks; bandwidth_bits_per_sec; horizon }

let env_of_spec (s : Runenv.Spec.t) =
  Runenv.of_spec ~votes:(votes_for_spec s) s

let env ?attacks ?bandwidth_bits_per_sec ?horizon ~n_relays () =
  env_of_spec (spec ?attacks ?bandwidth_bits_per_sec ?horizon ~n_relays ())

(* Sweep execution: results memoized by job key (protocol + spec
   digest), so a cell that reappears — across figures, or because
   fig7's binary search re-probes a bandwidth — is simulated once. *)
let results_cache : Job.outcome Exec.Cache.t = Exec.Cache.create ()

let run_job ?(jobs = 1) (job : Job.t) =
  Exec.Cache.find_or_compute results_cache ~key:(Job.key job) (fun () ->
      let e = env_of_spec job.Job.spec in
      (* Per-run sharding composes with sweep parallelism; clamp so a
         [jobs]-worker sweep of [shards]-domain runs cannot
         oversubscribe the host.  Results are shard-count-invariant
         (DESIGN.md §10), so the cache key keeps the requested spec. *)
      let e =
        if jobs = 1 then e
        else
          { e with
            Runenv.shards = Exec.Pool.clamp_shards ~jobs ~shards:e.Runenv.shards
          }
      in
      Job.outcome job (run job.Job.protocol e))

let run_jobs ?(jobs = 1) job_list = Exec.Pool.map ~jobs (run_job ~jobs) job_list

(* --- Figure 1 ----------------------------------------------------------- *)

let fig1 ?(n_relays = 8000) () =
  let attacks = Attack.Ddos.bandwidth_attack ~n:9 () in
  let e = env ~attacks ~n_relays () in
  let result = Protocols.Current_v3.run e in
  (* Show the log of an unattacked authority, like the paper. *)
  Tor_sim.Trace.dump ~node:8 result.Runenv.trace

(* --- Figure 6 ----------------------------------------------------------- *)

let fig6 () =
  let rng = Rng.of_string_seed (default_seed ^ "-metrics") in
  let series = Dirdoc.Metrics_trace.series ~rng () in
  (Dirdoc.Metrics_trace.monthly series, Dirdoc.Metrics_trace.mean series)

(* --- Figure 7 ----------------------------------------------------------- *)

let default_relay_counts = [ 1000; 2000; 3000; 4000; 5000; 6000; 7000; 8000; 9000; 10000 ]

let min_bandwidth_for_success ~n_relays ~precision =
  (* Each probe is one job; the result cache keys probes by spec
     digest, so a re-probed bandwidth is never simulated twice. *)
  let ok mbit =
    let attacks =
      Attack.Ddos.bandwidth_attack ~n:9 ~residual_bits_per_sec:(mbit *. 1e6) ()
    in
    let job = { Job.protocol = Current; spec = spec ~attacks ~n_relays () } in
    (run_job job).Job.success
  in
  let rec search lo hi =
    if hi -. lo < precision then hi
    else
      let mid = (lo +. hi) /. 2. in
      if ok mid then search lo mid else search mid hi
  in
  if ok 0.05 then 0.05 else search 0.05 100.

let fig7 ?(relay_counts = default_relay_counts) ?(precision_mbit = 0.1) ?(jobs = 1) () =
  (* The binary searches are sequential per relay count but
     independent across counts, so that is the parallel axis. *)
  Exec.Pool.map ~jobs
    (fun n_relays ->
      (n_relays, min_bandwidth_for_success ~n_relays ~precision:precision_mbit))
    relay_counts

(* --- Figure 10 ----------------------------------------------------------- *)

type fig10_cell = {
  protocol : protocol;
  bandwidth_mbit : float;
  n_relays : int;
  latency : float option;
}

let default_bandwidths = [ 50.; 20.; 10.; 1.; 0.5 ]

let fig10_sweep ~bandwidths_mbit ~relay_counts =
  Exec.Sweep.make ~protocols:all_protocols ~bandwidths_mbit ~relay_counts ()

let fig10 ?(bandwidths_mbit = default_bandwidths) ?(relay_counts = default_relay_counts)
    ?(jobs = 1) () =
  let cells = Exec.Sweep.cells (fig10_sweep ~bandwidths_mbit ~relay_counts) in
  let outcomes = run_jobs ~jobs (List.map (fun c -> c.Exec.Sweep.job) cells) in
  List.map2
    (fun (c : Exec.Sweep.cell) (o : Job.outcome) ->
      {
        protocol = c.protocol;
        bandwidth_mbit = c.bandwidth_mbit;
        n_relays = c.n_relays;
        latency = (if o.Job.success then o.Job.success_latency else None);
      })
    cells outcomes

(* --- Figure 11 ----------------------------------------------------------- *)

type fig11_row = { protocol : protocol; total_latency : float option }

(* 25 minutes until the lock-step protocols' next scheduled run after
   the 5-minute attack, plus the 10-minute protocol (paper §6.2). *)
let baseline_fallback_seconds = 2100.

let fig11 ?(n_relays = 8000) ?(jobs = 1) () =
  let attacks = Attack.Ddos.knockout ~n:9 () in
  let job_of protocol = { Job.protocol; spec = spec ~attacks ~n_relays () } in
  let outcomes = run_jobs ~jobs (List.map job_of all_protocols) in
  List.map2
    (fun protocol (o : Job.outcome) ->
      let total_latency =
        if o.Job.success then o.Job.decided_at_latest
        else
          match protocol with
          | Current | Synchronous -> Some baseline_fallback_seconds
          | Ours -> None
      in
      { protocol; total_latency })
    all_protocols outcomes

(* --- Table 1 ------------------------------------------------------------- *)

type table1_row = {
  protocol : protocol;
  n : int;
  n_relays : int;
  total_bytes : int;
  bytes_by_label : (string * int) list;
}

let table1_row protocol ~n ~n_relays =
  let e = Runenv.of_spec { Runenv.Spec.default with n; n_relays } in
  let result = driver protocol e in
  let stats = result.Runenv.stats in
  {
    protocol;
    n;
    n_relays;
    total_bytes = Tor_sim.Stats.total_bytes_sent stats;
    bytes_by_label = Tor_sim.Stats.labels stats;
  }

let table1 ?(n_values = [ 5; 7; 9; 13 ]) ?(relay_counts = [ 1000; 2000; 4000 ]) () =
  List.concat_map
    (fun protocol ->
      List.map (fun n -> table1_row protocol ~n ~n_relays:1000) n_values
      @ List.map (fun n_relays -> table1_row protocol ~n:9 ~n_relays) relay_counts)
    all_protocols

(* --- Table 2 ------------------------------------------------------------- *)

type table2_row = { sub_protocol : string; rounds : int }

let table2 () =
  let rows =
    [
      { sub_protocol = "Dissemination"; rounds = 2 };
      { sub_protocol = "Agreement (our HotStuff variant)"; rounds = 5 };
      { sub_protocol = "Aggregation"; rounds = 2 };
    ]
  in
  (* Empirical check: on a uniform-latency network with tiny documents
     and ample bandwidth, the good-case decision time divided by the
     one-way latency approximates the structural round count. *)
  let latency = 0.5 in
  let n = 9 in
  let keyring = Crypto.Keyring.create ~seed:default_seed ~n () in
  let base = Runenv.of_spec { Runenv.Spec.default with n; n_relays = 10 } in
  let e =
    {
      base with
      Runenv.keyring;
      topology = Tor_sim.Topology.uniform ~n ~latency;
      bandwidth_bits_per_sec = 10e9;
    }
  in
  let result = Protocol.run e in
  let measured =
    match Runenv.decided_at_latest result with
    | Some t -> t /. latency
    | None -> nan
  in
  (rows, measured)

(* --- Section 4.3 cost ----------------------------------------------------- *)

let cost_rows () =
  let instance = Attack.Cost.break_one_run () in
  [
    ("flood per target (Mbit/s)", instance.Attack.Cost.flood_mbit_per_sec);
    ("attack duration (s)", instance.Attack.Cost.seconds);
    ("cost to break one run ($)", instance.Attack.Cost.usd);
    ("cost per month ($)", Attack.Cost.monthly_usd instance);
    ("Jansen et al. bridges ($/month)", Attack.Cost.jansen_bridges_monthly_usd);
    ("Jansen et al. scanners ($/month)", Attack.Cost.jansen_scanners_monthly_usd);
  ]

(* --- Table 1 complexity fits ------------------------------------------------ *)

let table1_fits rows =
  List.filter_map
    (fun protocol ->
      let points =
        List.filter_map
          (fun r ->
            if r.protocol = protocol && r.n_relays = 1000 then
              Some (float_of_int r.n, float_of_int r.total_bytes)
            else None)
          rows
        (* de-duplicate the n = 9 row that appears in both sweeps *)
        |> List.sort_uniq compare
      in
      if List.length points >= 3 then
        Some (protocol, Tor_sim.Summary.power_law_fit points)
      else None)
    all_protocols

(* --- Ablations ----------------------------------------------------------------- *)

let recovery_vs_view_timeout ?(timeouts = [ 1.; 5.; 15.; 30. ]) ?(n_relays = 2000) () =
  let attacks = Attack.Ddos.knockout ~n:9 () in
  List.map
    (fun view_timeout ->
      let e = env ~attacks ~n_relays () in
      let params = { Protocol.default_params with Protocol.view_timeout } in
      let result = Protocol.run ~params e in
      let recovery =
        if Runenv.success e result then
          Option.map (fun t -> t -. 300.) (Runenv.decided_at_latest result)
        else None
      in
      (view_timeout, recovery))
    timeouts

let latency_vs_doc_timeout ?(timeouts = [ 30.; 150.; 300. ]) ?(n_relays = 1000) () =
  let behaviors = Array.make 9 Runenv.Honest in
  behaviors.(1) <- Runenv.Silent;
  behaviors.(7) <- Runenv.Silent;
  List.map
    (fun doc_timeout ->
      let e =
        Runenv.of_spec
          { Runenv.Spec.default with n_relays; behaviors = Some behaviors }
      in
      let params = { Protocol.default_params with Protocol.doc_timeout } in
      let result = Protocol.run ~params e in
      let latency =
        if Runenv.success e result then Runenv.success_latency result else None
      in
      (doc_timeout, latency))
    timeouts

type engine_row = {
  engine : string;
  scenario : string;
  engine_latency : float option;
  agreement_bytes : int;
}

let agreement_engines ?(n_relays = 1000) () =
  let engines =
    [
      ("hotstuff", fun e -> Protocol.Over_hotstuff.run e);
      ("tendermint", fun e -> Protocol.Over_tendermint.run e);
      ("pbft", fun e -> Protocol.Over_pbft.run e);
    ]
  in
  let scenarios =
    [
      ("healthy", []);
      ("knockout", Attack.Ddos.knockout ~n:9 ());
    ]
  in
  List.concat_map
    (fun (engine, run) ->
      List.map
        (fun (scenario, attacks) ->
          let e = env ~attacks ~n_relays () in
          let result = run e in
          {
            engine;
            scenario;
            engine_latency =
              (if Runenv.success e result then Runenv.decided_at_latest result else None);
            agreement_bytes = Tor_sim.Stats.label_bytes result.Runenv.stats "agreement";
          })
        scenarios)
    engines

(* Hourly consdiff savings over a churning network: how much client
   download the diff path avoids, using the live network's churn
   scale. *)
let consdiff_savings ?(n_relays = 2000) ?(hours = 4) () =
  let rng = Rng.of_string_seed (default_seed ^ "-churn") in
  let keyring = Crypto.Keyring.create ~seed:default_seed ~n:9 () in
  (* Bandwidth measurements are stable hour-over-hour in practice
     (authorities smooth them), so views here are the ground truth:
     hourly consensus changes come from relay churn alone, which is
     what the consdiff mechanism exploits. *)
  let consensus_of ~valid_after relays =
    let votes =
      Array.init 9 (fun authority ->
          Dirdoc.Vote.create ~authority
            ~authority_fingerprint:(Crypto.Keyring.fingerprint keyring authority)
            ~nickname:(Dirdoc.Workload.authority_nickname authority)
            ~published:(valid_after -. 600.) ~valid_after ~relays)
    in
    Dirdoc.Aggregate.consensus ~valid_after ~votes:(Array.to_list votes)
  in
  let relays0 = Dirdoc.Workload.relays ~rng ~n:n_relays ~published:0. in
  let rec hours_loop hour relays previous acc =
    if hour > hours then List.rev acc
    else begin
      let valid_after = 3600. *. float_of_int hour in
      let c = consensus_of ~valid_after relays in
      let serialized = Dirdoc.Consensus.serialize c in
      let acc =
        match previous with
        | None -> acc
        | Some prev -> (hour, Torclient.Consdiff.savings ~base:prev ~target:serialized) :: acc
      in
      let next = Dirdoc.Workload.evolve ~rng ~published:valid_after relays in
      hours_loop (hour + 1) next (Some serialized) acc
    end
  in
  hours_loop 0 relays0 None []
