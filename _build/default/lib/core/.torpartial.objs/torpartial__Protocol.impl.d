lib/core/protocol.ml: Array Crypto Dirdoc Dissemination Fun Icps List Protocols Tor_sim
