lib/dirdoc/workload.mli: Crypto Relay Tor_sim Vote
