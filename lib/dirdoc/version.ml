type t = { major : int; minor : int; micro : int; patch : int; tag : string option }

let make ?tag major minor micro patch =
  if major < 0 || minor < 0 || micro < 0 || patch < 0 then
    invalid_arg "Version.make: negative component";
  { major; minor; micro; patch; tag }

let to_string v =
  let base = Printf.sprintf "%d.%d.%d.%d" v.major v.minor v.micro v.patch in
  match v.tag with None -> base | Some tag -> base ^ "-" ^ tag

(* Byte-identical to [to_string], written straight into the sink. *)
let feed sink v =
  Crypto.Sink.feed_int sink v.major;
  Crypto.Sink.feed_char sink '.';
  Crypto.Sink.feed_int sink v.minor;
  Crypto.Sink.feed_char sink '.';
  Crypto.Sink.feed_int sink v.micro;
  Crypto.Sink.feed_char sink '.';
  Crypto.Sink.feed_int sink v.patch;
  match v.tag with
  | None -> ()
  | Some tag ->
      Crypto.Sink.feed_char sink '-';
      Crypto.Sink.feed_str sink tag

let of_string s =
  let body, tag =
    match String.index_opt s '-' with
    | None -> (s, None)
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  match String.split_on_char '.' body with
  | [ a; b; c; d ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
      | Some major, Some minor, Some micro, Some patch
        when major >= 0 && minor >= 0 && micro >= 0 && patch >= 0 ->
          Ok { major; minor; micro; patch; tag }
      | _ -> Error (Printf.sprintf "bad version components in %S" s))
  | _ -> Error (Printf.sprintf "bad version format %S" s)

(* Version-spec ordering: numeric on components; a tagged version
   (e.g. -alpha) precedes the untagged release of the same number. *)
let compare a b =
  let c = Int.compare a.major b.major in
  if c <> 0 then c
  else
    let c = Int.compare a.minor b.minor in
    if c <> 0 then c
    else
      let c = Int.compare a.micro b.micro in
      if c <> 0 then c
      else
        let c = Int.compare a.patch b.patch in
        if c <> 0 then c
        else
          match (a.tag, b.tag) with
          | None, None -> 0
          | None, Some _ -> 1
          | Some _, None -> -1
          | Some x, Some y -> String.compare x y

let equal a b = compare a b = 0
let max a b = if compare a b >= 0 then a else b
let pp ppf v = Format.pp_print_string ppf (to_string v)
