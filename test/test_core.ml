(* Tests for the paper's protocol: the ICPS property checkers, the
   dissemination sub-protocol's proofs, the full protocol under
   attacks/faults, and property-based Definition 5.1 checks over
   randomized adversarial schedules. *)

module R = Protocols.Runenv
module D = Torpartial.Dissemination
module Icps = Torpartial.Icps
module Protocol = Torpartial.Protocol

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let behaviors_with pairs =
  let b = Array.make 9 R.Honest in
  List.iter (fun (i, v) -> b.(i) <- v) pairs;
  b

(* --- Icps checkers ---------------------------------------------------------- *)

let test_icps_checkers () =
  let v : int Icps.vector = [| Some 1; None; Some 3 |] in
  checki "non_bot" 2 (Icps.non_bot v);
  checkb "agreement same" true (Icps.agreement ~equal:Int.equal [ v; Array.copy v ]);
  checkb "agreement differs" false
    (Icps.agreement ~equal:Int.equal [ v; [| Some 1; Some 2; Some 3 |] ]);
  checkb "agreement empty" true (Icps.agreement ~equal:Int.equal []);
  let inputs = [| 1; 2; 3 |] in
  checkb "value validity with own value" true
    (Icps.value_validity ~equal:Int.equal ~inputs ~who:0 v);
  checkb "value validity with bot" true
    (Icps.value_validity ~equal:Int.equal ~inputs ~who:1 v);
  checkb "value validity violated" false
    (Icps.value_validity ~equal:Int.equal ~inputs ~who:1 [| None; Some 9; None |]);
  checkb "gst0 requires value" false
    (Icps.value_validity_gst_zero ~equal:Int.equal ~inputs ~who:1 v);
  checkb "common set" true (Icps.common_set_validity ~f:1 v);
  checkb "common set violated" false (Icps.common_set_validity ~f:0 v);
  checki "fault bound 9" 2 (Icps.fault_bound ~n:9);
  checki "fault bound 4" 1 (Icps.fault_bound ~n:4)

(* --- Dissemination ---------------------------------------------------------- *)

let n = 9
let f = 2
let keyring = Crypto.Keyring.create ~seed:"dissemination-tests" ~n ()

let digest_of i = Crypto.Digest32.of_string (Printf.sprintf "doc-%d" i)

let full_digests () =
  Array.init n (fun j ->
      let d = digest_of j in
      Some (d, D.sign_document keyring ~sender:j d))

let proposal_from i ~missing =
  let digests = full_digests () in
  List.iter (fun j -> digests.(j) <- None) missing;
  D.make_proposal keyring ~proposer:i ~digests

let test_proposal_validity () =
  let p = proposal_from 0 ~missing:[] in
  checkb "full proposal valid" true (D.proposal_valid keyring ~n ~f p);
  let p2 = proposal_from 1 ~missing:[ 3; 5 ] in
  checkb "n-f entries valid" true (D.proposal_valid keyring ~n ~f p2);
  let p3 = proposal_from 1 ~missing:[ 3; 5; 7 ] in
  checkb "too few entries invalid" false (D.proposal_valid keyring ~n ~f p3);
  (* Tampering with an entry's digest breaks the proposer signature. *)
  let tampered = proposal_from 0 ~missing:[] in
  tampered.D.entries.(2) <-
    { (tampered.D.entries.(2)) with D.digest = Some (digest_of 8) };
  checkb "tampered invalid" false (D.proposal_valid keyring ~n ~f tampered)

let build_with proposals =
  let collector = D.Collector.create keyring ~n ~f in
  List.iter (D.Collector.add collector) proposals;
  D.Collector.build collector

let test_collector_requires_quorum () =
  let proposals = List.init (n - f - 1) (fun i -> proposal_from i ~missing:[]) in
  checkb "6 proposals not enough" true (build_with proposals = None);
  let proposals = List.init (n - f) (fun i -> proposal_from i ~missing:[]) in
  match build_with proposals with
  | None -> Alcotest.fail "7 proposals should build"
  | Some value ->
      checki "all entries present" n (Icps.non_bot value.D.vector);
      checkb "validates" true (D.validate keyring ~n ~f value)

let test_collector_absent_entries () =
  (* Every proposer misses node 8's document: entry 8 resolves to ⊥
     with an Absent proof. *)
  let proposals = List.init (n - f) (fun i -> proposal_from i ~missing:[ 8 ]) in
  match build_with proposals with
  | None -> Alcotest.fail "should build"
  | Some value ->
      checkb "entry 8 bot" true (value.D.vector.(8) = None);
      checki "rest present" (n - 1) (Icps.non_bot value.D.vector);
      (match value.D.proofs.(8) with
      | D.Absent sigs -> checki "f+1 bot signatures" (f + 1) (List.length sigs)
      | D.Present _ | D.Equivocation _ -> Alcotest.fail "expected Absent proof");
      checkb "validates" true (D.validate keyring ~n ~f value)

let test_collector_equivocation () =
  (* Node 0 signed two different digests; proposals disagree about its
     document, and the leader must exclude it with an equivocation
     proof. *)
  let evil_digest = Crypto.Digest32.of_string "evil" in
  let evil_sig = D.sign_document keyring ~sender:0 evil_digest in
  let proposals =
    List.init (n - f) (fun i ->
        if i < 3 then
          let digests = full_digests () in
          digests.(0) <- Some (evil_digest, evil_sig);
          D.make_proposal keyring ~proposer:i ~digests
        else proposal_from i ~missing:[])
  in
  match build_with proposals with
  | None -> Alcotest.fail "should build"
  | Some value ->
      checkb "equivocator excluded" true (value.D.vector.(0) = None);
      (match value.D.proofs.(0) with
      | D.Equivocation ((d1, _), (d2, _)) ->
          checkb "distinct digests" false (Crypto.Digest32.equal d1 d2)
      | D.Present _ | D.Absent _ -> Alcotest.fail "expected Equivocation proof");
      checkb "validates" true (D.validate keyring ~n ~f value)

let test_validate_rejections () =
  let proposals = List.init (n - f) (fun i -> proposal_from i ~missing:[]) in
  match build_with proposals with
  | None -> Alcotest.fail "should build"
  | Some value ->
      (* Vector/proof tampering must be caught. *)
      let tampered = { value with D.vector = Array.copy value.D.vector } in
      tampered.D.vector.(0) <- Some (digest_of 5);
      checkb "digest swap rejected" false (D.validate keyring ~n ~f tampered);
      let emptied = { value with D.vector = Array.map (fun _ -> None) value.D.vector } in
      checkb "all-bot rejected" false (D.validate keyring ~n ~f emptied);
      let wrong_ring = Crypto.Keyring.create ~seed:"other" ~n () in
      checkb "foreign keyring rejected" false (D.validate wrong_ring ~n ~f value)

let test_value_digest_binding () =
  let proposals = List.init (n - f) (fun i -> proposal_from i ~missing:[]) in
  let with8 = List.init (n - f) (fun i -> proposal_from i ~missing:[ 8 ]) in
  match (build_with proposals, build_with with8) with
  | Some a, Some b ->
      checkb "different vectors, different digests" false
        (Crypto.Digest32.equal (D.value_digest a) (D.value_digest b));
      checkb "wire size positive" true (D.value_wire_size a > 0)
  | _ -> Alcotest.fail "both should build"

(* --- Full protocol --------------------------------------------------------------- *)

let test_protocol_happy_gst_zero () =
  let env = R.of_spec { R.Spec.default with n_relays = 200 } in
  let detailed = Protocol.run_detailed env in
  let result = detailed.Protocol.result in
  checkb "success" true (R.success env result);
  checkb "agreement" true (R.agreement_holds env result);
  (* GST = 0: Value Validity in its strong form — every honest
     authority's document is in the agreed vector. *)
  Array.iteri
    (fun i vector ->
      checki (Printf.sprintf "node %d full vector" i) 9 (Icps.non_bot vector);
      match vector.(i) with
      | Some d ->
          checkb "own digest correct" true
            (Crypto.Digest32.equal d (Dirdoc.Vote.digest env.R.votes.(i)))
      | None -> Alcotest.fail "own entry must be non-bot at GST=0")
    detailed.Protocol.vectors;
  checkb "vectors agree" true
    (Icps.agreement ~equal:Crypto.Digest32.equal
       (Array.to_list detailed.Protocol.vectors))

let test_protocol_ddos_recovery () =
  let attacks = Attack.Ddos.knockout ~n:9 () in
  let env = R.of_spec { R.Spec.default with n_relays = 2000; attacks } in
  let result = Protocol.run env in
  checkb "succeeds despite knockout" true (R.success env result);
  match R.decided_at_latest result with
  | Some t -> checkb "recovers shortly after attack" true (t > 300. && t < 360.)
  | None -> Alcotest.fail "expected decision"

let test_protocol_low_bandwidth () =
  let env =
    R.of_spec
      { R.Spec.default with n_relays = 1000; bandwidth_bits_per_sec = 1e6; horizon = 7200. }
  in
  let result = Protocol.run env in
  checkb "works at 1 Mbit/s where baselines fail" true (R.success env result);
  let baseline = Protocols.Current_v3.run env in
  checkb "baseline indeed fails" false (R.success env baseline)

let test_protocol_equivocator () =
  let env =
    R.of_spec
      {
        R.Spec.default with
        n_relays = 200;
        behaviors = Some (behaviors_with [ (0, R.Equivocating) ]);
      }
  in
  let detailed = Protocol.run_detailed env in
  checkb "agreement with equivocator" true (R.agreement_holds env detailed.Protocol.result);
  checkb "success with equivocator" true (R.success env detailed.Protocol.result);
  checkb "vectors agree" true
    (Icps.agreement ~equal:Crypto.Digest32.equal
       (Array.to_list
          (Array.of_list
             (List.filter (fun v -> Array.length v > 0)
                (Array.to_list detailed.Protocol.vectors)))))

let test_protocol_two_silent () =
  let env =
    R.of_spec
      {
        R.Spec.default with
        n_relays = 200;
        behaviors = Some (behaviors_with [ (3, R.Silent); (6, R.Silent) ]);
      }
  in
  let detailed = Protocol.run_detailed env in
  checkb "success with f silent" true (R.success env detailed.Protocol.result);
  Array.iteri
    (fun i vector ->
      if Array.length vector > 0 then begin
        checkb
          (Printf.sprintf "common set validity at node %d" i)
          true
          (Icps.common_set_validity ~f:2 vector);
        (* Silent nodes' documents can only be ⊥ or their real vote. *)
        checkb "silent slots are bot" true (vector.(3) = None && vector.(6) = None)
      end)
    detailed.Protocol.vectors

let test_protocol_silent_leader () =
  (* Node 0 leads view 0 of HotStuff.  With it silent the protocol must
     rotate views until a live leader drives agreement through. *)
  let env =
    R.of_spec
      {
        R.Spec.default with
        n_relays = 200;
        behaviors = Some (behaviors_with [ (0, R.Silent) ]);
      }
  in
  let detailed = Protocol.run_detailed env in
  checkb "success despite silent leader" true (R.success env detailed.Protocol.result);
  Array.iteri
    (fun i view ->
      match view with
      | Some v when i <> 0 ->
          checkb (Printf.sprintf "node %d decided past view 0" i) true (v > 0)
      | _ -> ())
    detailed.Protocol.decided_views;
  checkb "some view advanced" true
    (Array.exists (fun v -> v <> None) detailed.Protocol.decided_views)

let test_protocol_crashed_leader () =
  (* The view-0 leader is down through the whole dissemination and
     agreement phase, then recovers.  Liveness must not depend on it:
     the other eight authorities rotate leaders and finish without
     it. *)
  let env =
    R.of_spec
      {
        R.Spec.default with
        n_relays = 200;
        behaviors = Some (behaviors_with [ (0, R.Crashed { start = 0.; stop = 400. }) ]);
      }
  in
  let detailed = Protocol.run_detailed env in
  let result = detailed.Protocol.result in
  checkb "success despite crashed leader" true (R.success env result);
  checkb "agreement holds" true (R.agreement_holds env result);
  (* Crash-recovered authorities count as honest, so agreement_holds
     also constrains whatever node 0 decides after it comes back. *)
  List.iter
    (fun i ->
      match detailed.Protocol.decided_views.(i) with
      | Some v -> checkb (Printf.sprintf "node %d rotated views" i) true (v > 0)
      | None -> Alcotest.failf "node %d never decided" i)
    [ 1; 3; 5 ]

let test_protocol_three_silent_blocks () =
  (* f+1 = 3 silent: below the agreement quorum, the protocol must not
     decide (but also must not decide inconsistently). *)
  let env =
    R.of_spec
      {
        R.Spec.default with
        n_relays = 100;
        horizon = 600.;
        behaviors = Some (behaviors_with [ (1, R.Silent); (4, R.Silent); (7, R.Silent) ]);
      }
  in
  let result = Protocol.run env in
  checkb "no decision below quorum" false (R.success env result);
  checkb "but never disagreement" true (R.agreement_holds env result)

(* Definition 5.1 property test over randomized adversarial schedules:
   random Byzantine/silent subsets (≤ f) and random attack windows. *)
let qcheck_definition_5_1 =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* seed = int_range 0 1_000_000 in
        let* n_faulty = int_range 0 2 in
        let* attack_len = float_range 0. 200. in
        let* residual = oneofl [ 0.; 0.5e6; 5e6 ] in
        return (seed, n_faulty, attack_len, residual))
  in
  QCheck.Test.make ~name:"Definition 5.1 under random faults and attacks" ~count:12 gen
    (fun (seed, n_faulty, attack_len, residual) ->
      let rng = Tor_sim.Rng.create (Int64.of_int seed) in
      let behaviors = Array.make 9 R.Honest in
      let faulty = ref [] in
      while List.length !faulty < n_faulty do
        let i = Tor_sim.Rng.int rng 9 in
        if not (List.mem i !faulty) then faulty := i :: !faulty
      done;
      List.iter
        (fun i ->
          behaviors.(i) <- (if Tor_sim.Rng.bool rng then R.Silent else R.Equivocating))
        !faulty;
      let attacks =
        if attack_len > 1. then
          Attack.Ddos.bandwidth_attack ~n:9
            ~targets:(List.init (Tor_sim.Rng.range rng ~min:1 ~max:4) Fun.id)
            ~stop:attack_len ~residual_bits_per_sec:residual ()
        else []
      in
      let env =
        R.of_spec
          {
            R.Spec.default with
            seed = Printf.sprintf "prop-%d" seed;
            n_relays = 100;
            behaviors = Some behaviors;
            attacks;
            horizon = 3600.;
          }
      in
      let detailed = Protocol.run_detailed env in
      let honest = List.filter (fun i -> behaviors.(i) = R.Honest) (List.init 9 Fun.id) in
      let honest_vectors =
        List.filter_map
          (fun i ->
            let v = detailed.Protocol.vectors.(i) in
            if Array.length v > 0 then Some (i, v) else None)
          honest
      in
      (* Termination: with <= f faulty, every honest node decides. *)
      List.length honest_vectors = List.length honest
      (* Agreement. *)
      && Icps.agreement ~equal:Crypto.Digest32.equal (List.map snd honest_vectors)
      (* Common Set Validity. *)
      && List.for_all (fun (_, v) -> Icps.common_set_validity ~f:2 v) honest_vectors
      (* Value Validity: honest slots hold the honest vote or bot. *)
      && List.for_all
           (fun (_, v) ->
             List.for_all
               (fun j ->
                 match v.(j) with
                 | None -> true
                 | Some d ->
                     (not (behaviors.(j) = R.Silent))
                     && (behaviors.(j) = R.Equivocating
                        || Crypto.Digest32.equal d (Dirdoc.Vote.digest env.R.votes.(j))))
               honest)
           honest_vectors)

(* --- Experiments helpers ---------------------------------------------------------- *)

let test_cost_rows_exact () =
  let rows = Torpartial.Experiments.cost_rows () in
  let get name = List.assoc name rows in
  Alcotest.(check (float 1e-9)) "per run" 0.0740 (get "cost to break one run ($)");
  Alcotest.(check (float 1e-9)) "per month" 53.28 (get "cost per month ($)")

let test_table2_structure () =
  let rows, measured = Torpartial.Experiments.table2 () in
  checki "three sub-protocols" 3 (List.length rows);
  let total =
    List.fold_left (fun acc (r : Torpartial.Experiments.table2_row) -> acc + r.rounds) 0 rows
  in
  checki "nine rounds total" 9 total;
  checkb "empirical close to structural" true (measured > 6. && measured <= 9.5)


(* --- Outage timeline -------------------------------------------------------- *)

let test_outage_current_goes_dark () =
  let t =
    Torpartial.Outage.run ~hours:5 ~n_relays:1000
      ~protocol:Torpartial.Experiments.Current ~policy:Torpartial.Outage.Hourly_flood ()
  in
  (* Hour 0 bootstraps; hours 1+ fail; the hour-0 document expires 3 h
     after its valid-after, so clients go dark at hour 3. *)
  checkb "first dark hour is 3" true
    (Torpartial.Outage.first_dark_hour t = Some 3);
  checki "dark from hour 3 on" 2 t.Torpartial.Outage.dark_hours;
  checkb "attack costs cents" true (t.Torpartial.Outage.attacker_usd < 1.)

let test_outage_ours_stays_up () =
  let t =
    Torpartial.Outage.run ~hours:5 ~n_relays:1000
      ~protocol:Torpartial.Experiments.Ours ~policy:Torpartial.Outage.Hourly_flood ()
  in
  checkb "never dark" true (Torpartial.Outage.first_dark_hour t = None);
  checkb "every hour produced" true
    (List.for_all
       (fun (h : Torpartial.Outage.hour) -> h.Torpartial.Outage.consensus_produced)
       t.Torpartial.Outage.hours)

let test_outage_no_attack_baseline () =
  let t =
    Torpartial.Outage.run ~hours:3 ~n_relays:1000
      ~protocol:Torpartial.Experiments.Current ~policy:Torpartial.Outage.No_attack ()
  in
  checki "no dark hours" 0 t.Torpartial.Outage.dark_hours;
  checkb "free for the attacker who never attacked" true
    (t.Torpartial.Outage.attacker_usd = 0.)

(* --- Ablation sanity -------------------------------------------------------- *)

let test_doc_timeout_bounds_latency () =
  (* With silent authorities the dissemination wait binds latency
     almost exactly (the paper's argument against raising timeouts). *)
  let rows = Torpartial.Experiments.latency_vs_doc_timeout ~timeouts:[ 30.; 120. ] ~n_relays:200 () in
  match rows with
  | [ (30., Some l30); (120., Some l120) ] ->
      checkb "30s run close to 30s" true (l30 >= 30. && l30 < 40.);
      checkb "120s run close to 120s" true (l120 >= 120. && l120 < 130.)
  | _ -> Alcotest.fail "expected two successful rows"


(* --- Distribution through the pipeline --------------------------------------- *)

let dist_report ~diffs =
  let env =
    R.of_spec
      {
        R.Spec.default with
        seed = "dist-savings";
        n_relays = 1000;
        distribution =
          Some
            {
              Torclient.Distribution.default_config with
              Torclient.Distribution.clients = 100_000;
              caches = 8;
              cohorts_per_cache = 32;
              diffs;
            };
      }
  in
  Torpartial.Experiments.run Torpartial.Experiments.Ours env

let test_distribution_steady_state_savings () =
  (* Steady state (no halt): clients hold last hour's consensus, so a
     diff fetch replaces the full download.  The paper-motivating bound:
     serving diffs must cut directory bytes by at least 5x — here the
     sizes come from the real serialized documents and the real
     consdiff encoding, not fixtures. *)
  let with_diffs = dist_report ~diffs:true in
  let full = dist_report ~diffs:false in
  match (with_diffs.R.distribution, full.R.distribution) with
  | Some d, Some f ->
      checkb "diff run recovers" true
        (d.Torclient.Distribution.time_to_full_recovery <> None);
      checkb "full run recovers" true
        (f.Torclient.Distribution.time_to_full_recovery <> None);
      checkb "all clients served as diffs" true
        (d.Torclient.Distribution.diff_fetches = 100_000
        && f.Torclient.Distribution.full_fetches = 100_000);
      checkb "diffs cut steady-state bytes >= 5x" true
        (f.Torclient.Distribution.bytes_served
        >= 5 * d.Torclient.Distribution.bytes_served)
  | _ -> Alcotest.fail "expected distribution outcomes on both runs"

let test_distribution_skipped_on_failure () =
  (* A run that produces no consensus has nothing to distribute. *)
  let env =
    R.of_spec
      {
        R.Spec.default with
        seed = "dist-fail";
        n_relays = 4000;
        attacks = Attack.Ddos.bandwidth_attack ~n:9 ();
        distribution = Some Torclient.Distribution.default_config;
      }
  in
  let report = Torpartial.Experiments.run Torpartial.Experiments.Current env in
  checkb "run fails under attack" false report.R.success;
  checkb "no distribution outcome" true (report.R.distribution = None)

(* --- Scenario files ---------------------------------------------------------- *)

let test_scenario_parse_default () =
  match Torpartial.Scenario.parse Torpartial.Scenario.default_text with
  | Error e -> Alcotest.fail e
  | Ok sc ->
      checkb "protocol" true (sc.Torpartial.Scenario.protocol = Torpartial.Experiments.Current);
      (* vote sizes sit just below the ground truth: ~1% divergence *)
      let relays = Dirdoc.Vote.n_relays sc.Torpartial.Scenario.env.R.votes.(0) in
      checkb "relays near 8000" true (relays > 7800 && relays <= 8000);
      checki "five attack windows" 5 (List.length sc.Torpartial.Scenario.env.R.attacks)

let test_scenario_directives () =
  let text =
    "protocol ours # partial synchrony\n\
     relays 123\n\
     bandwidth 10\n\
     seed my-seed\n\
     behavior 2 silent\n\
     behavior 4 crashed:30:120\n\
     attack 7 10 20 1.5\n\
     knockout-majority 0 300\n"
  in
  match Torpartial.Scenario.parse text with
  | Error e -> Alcotest.fail e
  | Ok sc ->
      let env = sc.Torpartial.Scenario.env in
      checkb "behavior applied" true (env.R.behaviors.(2) = R.Silent);
      checkb "crash window parsed" true
        (env.R.behaviors.(4) = R.Crashed { start = 30.; stop = 120. });
      checki "six windows" 6 (List.length env.R.attacks);
      checkb "bandwidth" true (env.R.bandwidth_bits_per_sec = 10e6)

let test_scenario_errors () =
  let expect_error text =
    match Torpartial.Scenario.parse text with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" text)
    | Error e -> e
  in
  checkb "unknown directive has line number" true
    (String.length (expect_error "frobnicate 3") > 0
    && String.sub (expect_error "frobnicate 3") 0 7 = "line 1:");
  ignore (expect_error "protocol alien");
  ignore (expect_error "relays many");
  ignore (expect_error "behavior 42 silent");
  ignore (expect_error "behavior 1 crashed:120:30" (* stop before start *));
  ignore (expect_error "behavior 1 crashed:soon:later");
  ignore (expect_error "behavior 1 crashed:30" (* missing stop *));
  ignore (expect_error "attack 0 10 5 1.0" (* stop before start *));
  ignore (expect_error "clients many");
  ignore (expect_error "clients 0");
  ignore (expect_error "caches 0");
  ignore (expect_error "halt -5");
  ignore (expect_error "diffs maybe");
  ignore (expect_error "defense fortress" (* unknown preset *));
  ignore (expect_error "defense admission:fast:8:16");
  ignore (expect_error "defense admission:0.5:8" (* missing backlog *));
  ignore (expect_error "defense rotate:two:450");
  ignore (expect_error "defense rotate:2" (* missing epoch *));
  ignore (expect_error "defense rotate:2:450:s:extra")

let test_scenario_runs () =
  match Torpartial.Scenario.parse "protocol ours\nrelays 100\nseed s\n" with
  | Error e -> Alcotest.fail e
  | Ok sc ->
      let report = Torpartial.Scenario.run sc in
      checkb "scenario run succeeds" true report.R.success

let test_scenario_distribution_directives () =
  let text =
    "protocol ours\n\
     relays 100\n\
     seed dist\n\
     clients 50000\n\
     caches 8\n\
     halt 3600\n\
     diffs off\n"
  in
  match Torpartial.Scenario.parse text with
  | Error e -> Alcotest.fail e
  | Ok sc -> (
      match sc.Torpartial.Scenario.env.R.distribution with
      | None -> Alcotest.fail "expected a distribution config"
      | Some d ->
          checki "clients" 50_000 d.Torclient.Distribution.clients;
          checki "caches" 8 d.Torclient.Distribution.caches;
          Alcotest.(check (float 0.)) "halt" 3600. d.Torclient.Distribution.halt;
          checkb "diffs off" false d.Torclient.Distribution.diffs;
          let report = Torpartial.Scenario.run sc in
          checkb "scenario with distribution runs" true report.R.success;
          checkb "distribution outcome attached" true (report.R.distribution <> None))

let test_scenario_defense_directives () =
  (* A preset name, then member-wise overrides: the custom admission
     line replaces the preset's bucket, the rotate line composes with
     it.  The seedless rotate form falls back to the committed seed. *)
  let text =
    "protocol ours\n\
     relays 100\n\
     seed defended\n\
     defense both\n\
     defense admission:0.5:8:16\n\
     defense rotate:2:450\n"
  in
  match Torpartial.Scenario.parse text with
  | Error e -> Alcotest.fail e
  | Ok sc -> (
      match sc.Torpartial.Scenario.env.R.defense with
      | None -> Alcotest.fail "expected a defense plan"
      | Some plan ->
          (match plan.Defense.Plan.admission with
          | None -> Alcotest.fail "expected admission"
          | Some a ->
              Alcotest.(check (float 0.)) "rate" 0.5 a.Defense.Admission.rate;
              checki "burst" 8 a.Defense.Admission.burst;
              checki "backlog" 16 a.Defense.Admission.backlog);
          (match plan.Defense.Plan.rotation with
          | None -> Alcotest.fail "expected rotation"
          | Some r ->
              checki "out" 2 r.Defense.Rotation.out;
              Alcotest.(check (float 0.)) "epoch" 450. r.Defense.Rotation.epoch;
              checkb "default seed" true
                (r.Defense.Rotation.seed = Defense.Rotation.default.Defense.Rotation.seed));
          let report = Torpartial.Scenario.run sc in
          checkb "defended scenario runs" true report.R.success);
  (* [defense none] on its own leaves the spec undefended. *)
  match Torpartial.Scenario.parse "protocol ours\nrelays 100\ndefense none\n" with
  | Error e -> Alcotest.fail e
  | Ok sc -> checkb "defense none is undefended" true (sc.Torpartial.Scenario.env.R.defense = None)

let suite =
  [
    ("icps checkers", `Quick, test_icps_checkers);
    ("dissemination proposal validity", `Quick, test_proposal_validity);
    ("dissemination collector quorum", `Quick, test_collector_requires_quorum);
    ("dissemination absent proofs", `Quick, test_collector_absent_entries);
    ("dissemination equivocation proofs", `Quick, test_collector_equivocation);
    ("dissemination validate rejections", `Quick, test_validate_rejections);
    ("dissemination value digest binding", `Quick, test_value_digest_binding);
    ("protocol: happy path (GST=0 value validity)", `Quick, test_protocol_happy_gst_zero);
    ("protocol: DDoS knockout recovery", `Slow, test_protocol_ddos_recovery);
    ("protocol: low bandwidth survival", `Slow, test_protocol_low_bandwidth);
    ("protocol: equivocating authority", `Quick, test_protocol_equivocator);
    ("protocol: two silent authorities", `Quick, test_protocol_two_silent);
    ("protocol: silent hotstuff leader", `Quick, test_protocol_silent_leader);
    ("protocol: crashed hotstuff leader recovers", `Quick, test_protocol_crashed_leader);
    ("protocol: f+1 silent blocks safely", `Quick, test_protocol_three_silent_blocks);
    QCheck_alcotest.to_alcotest qcheck_definition_5_1;
    ("experiments: exact cost figures", `Quick, test_cost_rows_exact);
    ("experiments: table 2 rounds", `Quick, test_table2_structure);
    ("outage: current goes dark at hour 3", `Slow, test_outage_current_goes_dark);
    ("outage: ours stays up", `Slow, test_outage_ours_stays_up);
    ("outage: no-attack baseline", `Slow, test_outage_no_attack_baseline);
    ("ablation: doc timeout bounds latency", `Slow, test_doc_timeout_bounds_latency);
    ("scenario: parse default", `Quick, test_scenario_parse_default);
    ("scenario: directives", `Quick, test_scenario_directives);
    ("scenario: errors", `Quick, test_scenario_errors);
    ("scenario: runs", `Quick, test_scenario_runs);
    ("scenario: distribution directives", `Quick, test_scenario_distribution_directives);
    ("scenario: defense directives", `Quick, test_scenario_defense_directives);
    ("distribution: steady-state diff savings >= 5x", `Slow,
      test_distribution_steady_state_savings);
    ("distribution: skipped on failed runs", `Slow, test_distribution_skipped_on_failure);
  ]
