lib/protocols/siground.ml: Crypto Dirdoc Hashtbl Tor_sim
