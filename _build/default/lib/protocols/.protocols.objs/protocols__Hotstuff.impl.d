lib/protocols/hotstuff.ml: Crypto Hashtbl Int List Option Printf Tor_sim Wire
