(** Vote aggregation — the deterministic algorithm of Figure 2.

    Every authority runs this locally on the set of votes it holds;
    the directory protocol's job is to make that set identical
    everywhere.  The rules, per relay:

    - included iff listed in a strict majority of the aggregated votes
      (see DESIGN.md §4.2 on the threshold reading);
    - nickname from the listing vote with the largest authority id;
    - each flag set iff a strict majority of listing votes assert it
      (tie ⇒ unset);
    - version and protocols by popular vote, ties to the largest;
    - exit policy by popular vote, ties to the lexicographically
      larger summary;
    - bandwidth is the low-median of the measured values, falling back
      to the low-median of advertised values when no vote measured the
      relay. *)

val include_threshold : n_votes:int -> int
(** Minimum number of listing votes for inclusion:
    [n_votes / 2 + 1]. *)

val low_median : int list -> int
(** Tor's median: element at index [(len - 1) / 2] of the sorted list.
    Raises [Invalid_argument] on an empty list. *)

val aggregate_relay : (int * Relay.t) list -> Consensus.entry
(** [aggregate_relay listings] combines one relay's entries from the
    votes that listed it ([(authority_id, entry)] pairs).  Raises
    [Invalid_argument] on an empty list or mismatched fingerprints. *)

module Memo : sig
  type t
  (** A cache of aggregation results, keyed by the (content-addressed)
      set of vote digests and [valid_after].  Scope one memo to one
      simulation run: authorities that aggregate the same vote set then
      share a single computation without any cross-run state. *)

  val create : unit -> t
end

val consensus : valid_after:float -> votes:Vote.t list -> Consensus.t
(** Aggregate whole votes into a consensus document.  Votes must come
    from distinct authorities.  The result is independent of the order
    of [votes]. *)

val consensus_memo : memo:Memo.t -> valid_after:float -> votes:Vote.t list -> Consensus.t
(** {!consensus} through a cache: a repeated (vote set, [valid_after])
    input returns the previously computed document instead of
    re-running the merge. *)
