type t = {
  busy : float array;
  wait : float array;
  rounds : int array;
  barriers : int array;
  events : int array;
}

let create ~shards =
  if shards < 1 then invalid_arg "Profiler.create: shards must be positive";
  { busy = Array.make shards 0.;
    wait = Array.make shards 0.;
    rounds = Array.make shards 0;
    barriers = Array.make shards 0;
    events = Array.make shards 0 }

let now () = Unix.gettimeofday ()

let add_busy t shard dt = t.busy.(shard) <- t.busy.(shard) +. dt
let add_wait t shard dt = t.wait.(shard) <- t.wait.(shard) +. dt
let add_events t shard n = t.events.(shard) <- t.events.(shard) + n
let incr_rounds t shard = t.rounds.(shard) <- t.rounds.(shard) + 1
let add_barriers t shard n = t.barriers.(shard) <- t.barriers.(shard) + n

type shard = {
  shard : int;
  busy_s : float;
  wait_s : float;
  rounds : int;
  barriers : int;
  events : int;
}

let report t =
  List.init (Array.length t.busy) (fun i ->
      { shard = i;
        busy_s = t.busy.(i);
        wait_s = t.wait.(i);
        rounds = t.rounds.(i);
        barriers = t.barriers.(i);
        events = t.events.(i) })
