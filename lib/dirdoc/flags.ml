type flag =
  | Authority
  | BadExit
  | Exit
  | Fast
  | Guard
  | HSDir
  | MiddleOnly
  | NoEdConsensus
  | Running
  | Stable
  | StaleDesc
  | V2Dir
  | Valid

(* Bitset representation: cheap set operations over 10k-relay votes. *)
type t = int

let bit = function
  | Authority -> 1 lsl 0
  | BadExit -> 1 lsl 1
  | Exit -> 1 lsl 2
  | Fast -> 1 lsl 3
  | Guard -> 1 lsl 4
  | HSDir -> 1 lsl 5
  | MiddleOnly -> 1 lsl 6
  | NoEdConsensus -> 1 lsl 7
  | Running -> 1 lsl 8
  | Stable -> 1 lsl 9
  | StaleDesc -> 1 lsl 10
  | V2Dir -> 1 lsl 11
  | Valid -> 1 lsl 12

let all =
  [ Authority; BadExit; Exit; Fast; Guard; HSDir; MiddleOnly; NoEdConsensus;
    Running; Stable; StaleDesc; V2Dir; Valid ]

let empty = 0
let singleton f = bit f
let add f t = t lor bit f
let remove f t = t land lnot (bit f)
let mem f t = t land bit f <> 0
let union = ( lor )
let inter = ( land )
let of_list flags = List.fold_left (fun acc f -> add f acc) empty flags
let to_list t = List.filter (fun f -> mem f t) all

let cardinal t =
  let rec count acc v = if v = 0 then acc else count (acc + (v land 1)) (v lsr 1) in
  count 0 t

let equal = Int.equal
let compare = Int.compare

let flag_to_string = function
  | Authority -> "Authority"
  | BadExit -> "BadExit"
  | Exit -> "Exit"
  | Fast -> "Fast"
  | Guard -> "Guard"
  | HSDir -> "HSDir"
  | MiddleOnly -> "MiddleOnly"
  | NoEdConsensus -> "NoEdConsensus"
  | Running -> "Running"
  | Stable -> "Stable"
  | StaleDesc -> "StaleDesc"
  | V2Dir -> "V2Dir"
  | Valid -> "Valid"

let flag_of_string s = List.find_opt (fun f -> flag_to_string f = s) all

let to_string t = String.concat " " (List.map flag_to_string (to_list t))

(* Byte-identical to [to_string], written straight into the sink. *)
let feed sink t =
  let first = ref true in
  List.iter
    (fun f ->
      if mem f t then begin
        if !first then first := false else Crypto.Sink.feed_char sink ' ';
        Crypto.Sink.feed_str sink (flag_to_string f)
      end)
    all

let of_string s =
  let words = String.split_on_char ' ' s |> List.filter (fun w -> w <> "") in
  let rec build acc = function
    | [] -> Ok acc
    | w :: rest -> (
        match flag_of_string w with
        | Some f -> build (add f acc) rest
        | None -> Error (Printf.sprintf "unknown flag %S" w))
  in
  build empty words

let pp ppf t = Format.pp_print_string ppf (to_string t)
