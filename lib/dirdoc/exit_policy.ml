type policy = Accept | Reject

type t = { policy : policy; ranges : (int * int) list }

let normalize ranges =
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) ranges in
  let rec merge = function
    | [] -> []
    | [ r ] -> [ r ]
    | (lo1, hi1) :: (lo2, hi2) :: rest ->
        if lo2 <= hi1 + 1 then merge ((lo1, Stdlib.max hi1 hi2) :: rest)
        else (lo1, hi1) :: merge ((lo2, hi2) :: rest)
  in
  merge sorted

let make policy ranges =
  if ranges = [] then invalid_arg "Exit_policy.make: empty range list";
  List.iter
    (fun (lo, hi) ->
      if lo < 1 || hi > 65535 || lo > hi then
        invalid_arg "Exit_policy.make: port range out of bounds")
    ranges;
  { policy; ranges = normalize ranges }

let accept_all = { policy = Accept; ranges = [ (1, 65535) ] }
let reject_all = { policy = Reject; ranges = [ (1, 65535) ] }

let policy t = t.policy
let ranges t = t.ranges

let in_ranges t port = List.exists (fun (lo, hi) -> port >= lo && port <= hi) t.ranges

let allows_port t port =
  match t.policy with Accept -> in_ranges t port | Reject -> not (in_ranges t port)

let range_to_string (lo, hi) =
  if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi

let to_string t =
  let keyword = match t.policy with Accept -> "accept" | Reject -> "reject" in
  keyword ^ " " ^ String.concat "," (List.map range_to_string t.ranges)

(* Byte-identical to [to_string], written straight into the sink. *)
let feed sink t =
  Crypto.Sink.feed_str sink
    (match t.policy with Accept -> "accept " | Reject -> "reject ");
  List.iteri
    (fun i (lo, hi) ->
      if i > 0 then Crypto.Sink.feed_char sink ',';
      Crypto.Sink.feed_int sink lo;
      if lo <> hi then begin
        Crypto.Sink.feed_char sink '-';
        Crypto.Sink.feed_int sink hi
      end)
    t.ranges

let parse_range s =
  match String.index_opt s '-' with
  | None -> (
      match int_of_string_opt s with Some p -> Some (p, p) | None -> None)
  | Some i -> (
      let lo = String.sub s 0 i and hi = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> Some (lo, hi)
      | _ -> None)

let of_string s =
  match String.split_on_char ' ' s with
  | [ keyword; body ] -> (
      let policy =
        match keyword with
        | "accept" -> Some Accept
        | "reject" -> Some Reject
        | _ -> None
      in
      match policy with
      | None -> Error (Printf.sprintf "bad exit policy keyword in %S" s)
      | Some policy -> (
          let parts = String.split_on_char ',' body in
          let parsed = List.map parse_range parts in
          if List.exists Option.is_none parsed then
            Error (Printf.sprintf "bad port range in %S" s)
          else
            let ranges = List.filter_map Fun.id parsed in
            match make policy ranges with
            | t -> Ok t
            | exception Invalid_argument m -> Error m))
  | _ -> Error (Printf.sprintf "bad exit policy format %S" s)

(* The physical-equality fast path matters: aggregation compares the
   policies of one relay's listings across votes, which are usually the
   same shared value, and rendering both sides through [sprintf] per
   comparison dominated the aggregation profile. *)
let compare a b =
  if a == b then 0 else String.compare (to_string a) (to_string b)
let equal a b = compare a b = 0
let max a b = if compare a b >= 0 then a else b
let pp ppf t = Format.pp_print_string ppf (to_string t)
