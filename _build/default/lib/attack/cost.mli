(** The attack cost model of Section 4.3.

    Costs follow Jansen et al.'s measurement of DDoS-for-hire stressor
    services: flooding one target with 1 Mbit/s of attack traffic for
    one hour costs $0.00074 (amortized).  The paper's headline numbers
    reproduce exactly: $0.074 to break one hourly consensus run and
    $53.28/month to keep Tor down. *)

val usd_per_mbit_per_hour : float
(** 0.00074 — Jansen et al.'s amortized stressor price. *)

val flood_usd : mbit_per_sec:float -> targets:int -> seconds:float -> float
(** Cost of flooding [targets] hosts at [mbit_per_sec] each for a
    duration.  Raises [Invalid_argument] on negative inputs. *)

type instance = {
  targets : int;             (** authorities attacked (5 of 9) *)
  flood_mbit_per_sec : float;(** per-target attack traffic *)
  seconds : float;           (** attack duration per consensus run *)
  usd : float;               (** cost of breaking one run *)
}

val break_one_run :
  ?link_mbit_per_sec:float ->
  ?required_mbit_per_sec:float ->
  ?targets:int ->
  ?seconds:float ->
  unit ->
  instance
(** The paper's attack instance: flood each of 5 authorities with
    [link - required] = 250 - 10 = 240 Mbit/s for 5 minutes
    ⇒ $0.074. *)

val monthly_usd : instance -> float
(** Breaking every hourly run for 30 days: [usd × 24 × 30]
    ⇒ $53.28/month for the default instance. *)

val jansen_bridges_monthly_usd : float
(** $17,000/month — Jansen et al.'s estimate for attacking Tor's
    bridges, for the Related-Work comparison. *)

val jansen_scanners_monthly_usd : float
(** $2,800/month — likewise for the bandwidth scanners. *)
