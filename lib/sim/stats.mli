(** Per-node traffic accounting.

    Table 1 of the paper compares protocols by communication
    complexity; these counters measure actual bytes on the simulated
    wire, optionally broken down by message label.

    Labels are interned to dense int ids ({!intern}) so the per-send
    accounting is an array add, not a string-hash probe.  Protocols
    intern each label once at setup and pass the id to every send. *)

type t

type label
(** An interned message label, valid for the {!t} that interned it
    (and across {!reset}). *)

val create : n:int -> t

val n : t -> int

val intern : t -> string -> label
(** Intern a label name, returning its dense id; interning the same
    name twice returns the same id. *)

val no_label : label
(** Sentinel accepted by {!record_send} for unlabelled traffic. *)

val label_id : label -> int
(** The dense id behind a label ([no_label] maps to [-1]), letting
    sibling modules key side tables — e.g. per-label latency
    histograms — without exposing the representation. *)

val record_send : t -> node:int -> bytes:int -> label:label -> unit
(** Allocation-free accounting for the network hot path. *)

val record_sent : t -> node:int -> bytes:int -> ?label:label -> unit -> unit
(** Optional-argument convenience over {!record_send}. *)

val record_received : t -> node:int -> bytes:int -> unit

val record_drop : t -> node:int -> label:label -> unit
(** Count one lost message: [node] is the intended recipient ([-1]
    when unattributable), [label] the message's interned label or
    {!no_label}.  Allocation-free, like {!record_send}. *)

val record_dropped : t -> unit
(** [record_drop] with no recipient and no label. *)

val record_reject : t -> node:int -> label:label -> unit
(** Count one message turned away by a defense (admission control,
    rotation quiet period) — deliberately separate from
    {!record_drop}, so verdicts can tell defense behavior from
    injected faults.  Same conventions as {!record_drop}. *)

val bytes_sent : t -> int -> int
val bytes_received : t -> int -> int
val messages_sent : t -> int -> int

val dropped : t -> int
(** Total messages lost, whatever the cause (dead NIC, transport
    deadline, injected fault). *)

val dropped_at : t -> int -> int
(** Messages lost on their way to a node. *)

val rejected : t -> int
(** Total messages turned away by a defense ([0] when no defense is
    installed); never included in {!dropped}. *)

val rejected_at : t -> int -> int
(** Defense-rejected messages addressed to a node. *)

val total_bytes_sent : t -> int
(** Sum over all nodes; the paper's communication-complexity metric. *)

val label_bytes : t -> string -> int
(** Bytes attributed to a message label ([0] for unknown labels). *)

val labels : t -> (string * int) list
(** Labels recorded since the last reset with their byte counts,
    sorted by label. *)

val label_dropped : t -> string -> int
(** Messages dropped under a label ([0] for unknown labels). *)

val dropped_labels : t -> (string * int) list
(** Labels with at least one dropped message since the last reset,
    with their drop counts, sorted by label. *)

val label_rejected : t -> string -> int
(** Messages defense-rejected under a label ([0] for unknown
    labels). *)

val rejected_labels : t -> (string * int) list
(** Labels with at least one defense-rejected message since the last
    reset, with their reject counts, sorted by label. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds every counter of [src] into [into]:
    per-node arrays, the drop and reject totals, and per-label
    counts/drops/rejects/used flags, matching labels by name
    (interning into [into] as needed).
    The sharded engine merges per-shard instances this way at run end;
    merging shards that partition the traffic equals recording it all
    on one instance.  Raises [Invalid_argument] if the node counts
    differ.  [src] is not modified. *)

val reset : t -> unit
(** Clear every counter.  Interned ids remain valid. *)
