module Runenv = Protocols.Runenv

(* Batched evaluation of many run specs that differ only in the
   campaign-variable fields.  Everything else — the vote population,
   keyring, topology, the canonical-form prefix of the spec, and (via
   the per-context arena) the simulator heaps themselves — is built
   once per worker and reused across the whole batch. *)

type plan = {
  attacks : Runenv.attack list;
  behaviors : Runenv.behavior array option;
  fault_plan : Tor_sim.Fault.plan option;
}

let plan_of_spec (s : Runenv.Spec.t) =
  {
    attacks = s.Runenv.Spec.attacks;
    behaviors = s.Runenv.Spec.behaviors;
    fault_plan = s.Runenv.Spec.fault_plan;
  }

let spec_of ~base plan =
  {
    base with
    Runenv.Spec.attacks = plan.attacks;
    behaviors = plan.behaviors;
    fault_plan = plan.fault_plan;
  }

type ctx = {
  base : Runenv.Spec.t;
  prefix : Runenv.Spec.prefix;
  env : Runenv.t;
      (* base environment with a private arena installed; [env_of]
         derives every plan's environment from it, so all runs in this
         context share the keyring/topology/votes and reuse the same
         simulator heaps.  The arena makes a ctx single-domain by
         construction: never share one across domains. *)
}

let create ?votes (base : Runenv.Spec.t) =
  let env = Runenv.of_spec ?votes base in
  { base; prefix = Runenv.Spec.prefix base; env = { env with Runenv.arena = Some (Runenv.Arena.create ()) } }

let base_spec ctx = ctx.base

let digest ctx plan =
  Runenv.Spec.digest_with ctx.prefix ~attacks:plan.attacks
    ~behaviors:plan.behaviors ~fault_plan:plan.fault_plan

let env_of ?(telemetry = false) ctx plan =
  let env =
    Runenv.vary ctx.env ~attacks:plan.attacks ~behaviors:plan.behaviors
      ~fault_plan:plan.fault_plan
  in
  if telemetry then { env with Runenv.telemetry = true } else env

(* Contiguous chunking: worker w gets items [w*n/k, (w+1)*n/k) in
   input order, so the split is deterministic and each context sees a
   prefix-contiguous slice — the same order a sequential run would
   evaluate them in. *)
let chunks ~workers arr =
  let n = Array.length arr in
  List.init workers (fun w ->
      let lo = w * n / workers and hi = (w + 1) * n / workers in
      Array.to_list (Array.sub arr lo (hi - lo)))

let map ?(jobs = 1) ?votes ~base f items =
  if jobs < 1 then invalid_arg "Campaign.map: jobs must be >= 1";
  match items with
  | [] -> []
  | items when jobs = 1 ->
      let ctx = create ?votes base in
      List.map (f ctx) items
  | items ->
      let arr = Array.of_list items in
      let workers = min jobs (Array.length arr) in
      Pool.map ~jobs:workers
        (fun chunk ->
          (* One context — one arena — per chunk; a Pool worker that
             picks up two chunks builds two, which is correct, just
             slightly less reuse. *)
          let ctx = create ?votes base in
          List.map (f ctx) chunk)
        (chunks ~workers arr)
      |> List.concat
