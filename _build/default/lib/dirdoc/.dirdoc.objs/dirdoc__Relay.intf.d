lib/dirdoc/relay.mli: Crypto Exit_policy Flags Format Version
