examples/sustained_attack.ml: List Printf String Torclient Torpartial
