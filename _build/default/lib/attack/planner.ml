type plan = {
  n_relays : int;
  required_mbit_per_sec : float;
  flood_mbit_per_sec : float;
  instance : Cost.instance;
  usd_per_month : float;
}

let make ?(link_mbit_per_sec = 250.) ?(targets = 5) ?(seconds = 300.) ~n_relays
    ~required_mbit_per_sec () =
  let instance =
    Cost.break_one_run ~link_mbit_per_sec ~required_mbit_per_sec ~targets ~seconds ()
  in
  {
    n_relays;
    required_mbit_per_sec;
    flood_mbit_per_sec = instance.Cost.flood_mbit_per_sec;
    instance;
    usd_per_month = Cost.monthly_usd instance;
  }

let hours_to_network_down = 3.

let pp ppf p =
  Format.fprintf ppf
    "%d relays: protocol needs %.1f Mbit/s; flood %d authorities at %.0f Mbit/s for %.0f s \
     => $%.3f per run, $%.2f/month"
    p.n_relays p.required_mbit_per_sec p.instance.Cost.targets p.flood_mbit_per_sec
    p.instance.Cost.seconds p.instance.Cost.usd p.usd_per_month
