(** Sim-time phase spans and counter samples, collected lane-sharded.

    Each engine shard records into its own lane (no synchronization on
    the hot path, same design as [Sim.Trace]); the merged accessors
    sort with comparators over *every* field, so the merged streams are
    identical whichever lane an item landed in.  That is what makes
    span streams bit-identical across shard counts: a span emitted
    mid-run on its node's shard and a span emitted post-run on lane 0
    sort to the same place. *)

type span = {
  node : int;
  phase : string;
  start : float;  (** sim seconds *)
  stop : float;
  complete : bool;
      (** [false] when the phase never finished — the run ended (or the
          node stalled) with the phase still open. *)
}

type sample = {
  node : int;
  track : string;  (** counter name, e.g. ["nic-backlog"] *)
  time : float;
  value : float;
}

type t

val create : ?lanes:int -> unit -> t
(** [lanes] defaults to 1; pass the engine's shard count. *)

val span :
  t ->
  lane:int ->
  node:int ->
  phase:string ->
  start:float ->
  stop:float ->
  complete:bool ->
  unit

val sample :
  t -> lane:int -> node:int -> track:string -> time:float -> value:float -> unit

val spans : t -> span list
(** All spans, sorted by (start, node, phase, stop, complete) —
    independent of lane placement. *)

val samples : t -> sample list
(** All samples, sorted by (time, node, track, value). *)
