(** Scenario files: a small text format describing a simulation run,
    standing in for the tornettools configuration stage of the paper's
    pipeline.  One directive per line; [#] starts a comment.

    {v
    # five-minute flood on a majority of the authorities
    protocol current
    relays 8000
    bandwidth 250
    seed demo
    flood-majority 0 300 0.5
    behavior 3 silent
    attack 7 100 200 1.0
    v}

    Directives:
    - [protocol current|synchronous|ours]
    - [relays N], [bandwidth MBIT], [seed STR], [horizon SECONDS]
    - [behavior NODE silent|equivocating|honest]
    - [attack NODE START STOP RESIDUAL_MBIT] — one bandwidth window
    - [flood-majority START STOP RESIDUAL_MBIT] — the paper's attack
    - [knockout-majority START STOP] — the Figure 11 attack
    - [clients N], [caches N], [halt SECONDS], [diffs on|off] —
      enable the downstream {!Torclient.Distribution} tier; any one of
      these switches it on with defaults for the rest
    - [defense none|admission|rotation|both] — a {!Defense.Plan}
      preset; or spell the members out with
      [defense admission:RATE:BURST:BACKLOG] (per-source token
      buckets: RATE msgs/s sustained, BURST msgs instantly, BACKLOG
      deferred before rejects) and [defense rotate:OUT:EPOCH[:SEED]]
      (OUT authorities rotated out per EPOCH-second epoch).  Later
      [defense] directives merge member-wise, so an [admission:…]
      line composes with a [rotate:…] line *)

type t = {
  protocol : Experiments.protocol;
  env : Protocols.Runenv.t;
}

val parse : string -> (t, string) result
(** Parse scenario text.  Errors carry the offending line number and
    content. *)

val run : t -> Protocols.Runenv.report
(** Execute the scenario's protocol on its environment via
    {!Experiments.run}, the same path the CLI, benches, and sweep
    pool use; the report carries distribution metrics when the
    scenario enabled the client tier. *)

val default_text : string
(** A commented example scenario (the Figure 1 attack), used by the
    CLI's [--example] flag and the tests. *)
