module Runenv = Protocols.Runenv

type protocol = Current | Synchronous | Ours

let protocol_name = function
  | Current -> "current"
  | Synchronous -> "synchronous"
  | Ours -> "ours"

let protocol_of_name = function
  | "current" -> Some Current
  | "synchronous" | "sync" -> Some Synchronous
  | "ours" | "partial" -> Some Ours
  | _ -> None

type t = { protocol : protocol; spec : Runenv.Spec.t }

let key t = protocol_name t.protocol ^ ":" ^ Runenv.Spec.digest t.spec

let rng t = Tor_sim.Rng.of_string_seed (key t)

type outcome = {
  key : string;
  success : bool;
  success_latency : float option;
  decided_at_latest : float option;
  total_bytes : int;
}

let outcome job env (result : Runenv.run_result) =
  {
    key = key job;
    success = Runenv.success env result;
    success_latency = Runenv.success_latency result;
    decided_at_latest = Runenv.decided_at_latest result;
    total_bytes = Tor_sim.Stats.total_bytes_sent result.Runenv.stats;
  }
