type t = float

let zero = 0.
let seconds s = s
let minutes m = m *. 60.
let ms m = m /. 1000.
let add = Stdlib.( +. )
let ( +. ) = Stdlib.( +. )
let is_infinite t = t = infinity
let never = infinity

let pp ppf t =
  if is_infinite t then Format.pp_print_string ppf "never"
  else
    let total_ms = int_of_float (Float.round (t *. 1000.)) in
    let m = total_ms / 60_000 in
    let s = total_ms mod 60_000 / 1000 in
    let milli = total_ms mod 1000 in
    Format.fprintf ppf "%02d:%02d.%03d" m s milli

(* Tor logs wall-clock time; anchor the simulation start at 01:00:00 on
   Jan 01, the top of a consensus hour. *)
let pp_tor_log ppf t =
  let total_ms = int_of_float (Float.round ((t +. 3600.) *. 1000.)) in
  let h = total_ms / 3_600_000 in
  let m = total_ms mod 3_600_000 / 60_000 in
  let s = total_ms mod 60_000 / 1000 in
  let milli = total_ms mod 1000 in
  Format.fprintf ppf "Jan 01 %02d:%02d:%02d.%03d" h m s milli
