type 'v state = Computing | Done of 'v

type 'v t = {
  mutex : Mutex.t;
  done_ : Condition.t;
  table : (string, 'v state) Hashtbl.t;
  capacity : int option;
  order : string Queue.t;
      (* completed keys, oldest first.  Invariant (under [mutex]): the
         queue holds exactly the keys whose table state is [Done], in
         completion order — [Computing] entries are never queued, the
         failure path removes only [Computing] entries, and eviction
         pops the queue and the table together. *)
  mutable n_done : int;
}

let create ?(size = 64) ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Cache.create: capacity must be >= 1"
  | Some _ | None -> ());
  {
    mutex = Mutex.create ();
    done_ = Condition.create ();
    table = Hashtbl.create size;
    capacity;
    order = Queue.create ();
    n_done = 0;
  }

(* Record a completed entry and evict oldest completed entries beyond
   the capacity.  In-flight [Computing] entries are invisible here:
   they hold no value worth bounding and evicting one would strand the
   domains waiting on it. *)
let note_done t key =
  Queue.push key t.order;
  t.n_done <- t.n_done + 1;
  match t.capacity with
  | None -> ()
  | Some cap ->
      while t.n_done > cap do
        let oldest = Queue.pop t.order in
        Hashtbl.remove t.table oldest;
        t.n_done <- t.n_done - 1
      done

let rec find_or_compute t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some (Done v) ->
      Mutex.unlock t.mutex;
      v
  | Some Computing ->
      (* Another domain is computing this key: wait for it to finish
         (or fail) rather than duplicating the work. *)
      Condition.wait t.done_ t.mutex;
      Mutex.unlock t.mutex;
      find_or_compute t ~key f
  | None -> (
      Hashtbl.replace t.table key Computing;
      Mutex.unlock t.mutex;
      match f () with
      | v ->
          Mutex.lock t.mutex;
          Hashtbl.replace t.table key (Done v);
          note_done t key;
          Condition.broadcast t.done_;
          Mutex.unlock t.mutex;
          v
      | exception e ->
          (* Failed computations are not cached; unblock waiters so
             one of them retries. *)
          Mutex.lock t.mutex;
          Hashtbl.remove t.table key;
          Condition.broadcast t.done_;
          Mutex.unlock t.mutex;
          raise e)

let find_opt t key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Done v) -> Some v
    | Some Computing | None -> None
  in
  Mutex.unlock t.mutex;
  r

let length t =
  Mutex.lock t.mutex;
  let n = t.n_done in
  Mutex.unlock t.mutex;
  n
