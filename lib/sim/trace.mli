(** Tor-style simulation log.

    Protocols emit log records that the Figure 1 reproduction formats
    exactly like a directory authority's log ("[notice] We're missing
    votes from 5 authorities ..."). *)

type level = Notice | Info | Warn

type record = {
  time : Simtime.t;
  node : int option; (* None for network-level records *)
  level : level;
  text : string;
}

type t

val create : ?lanes:int -> unit -> t
(** [create ~lanes:s ()] sizes the trace for an [s]-shard engine: each
    domain appends to its own lane (routed by {!Domain_ctx}), so
    logging never contends across domains.  Default one lane. *)

val log : t -> time:Simtime.t -> ?node:int -> level -> string -> unit

val logf :
  t -> time:Simtime.t -> ?node:int -> level -> ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** All records, merged across lanes by a stable (time, node) sort.
    Since a node logs only from its own shard, records with equal
    (time, node) keep their emission order, and the merged view is
    identical at every shard count. *)

val for_node : t -> int -> record list
(** Records emitted by one node, oldest first. *)

val render : record -> string
(** One Tor-style log line: ["Jan 01 01:24:30.011 \[notice\] ..."]. *)

val iter : ?node:int -> t -> (record -> unit) -> unit
(** Visit records in exactly the order of {!records} (optionally one
    node's), as a streaming merge over the lanes — no merged list is
    materialized; memory is bounded by the records of one sim instant,
    not the run.  [dump] and [torda-sim log] are built on it. *)

val dump : ?node:int -> t -> string
(** All (or one node's) records rendered, newline-separated. *)

val clear : t -> unit
