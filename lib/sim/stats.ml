type label = int

let no_label = -1
let label_id l = l

type t = {
  bytes_sent : int array;
  bytes_received : int array;
  messages_sent : int array;
  mutable dropped : int;
  dropped_at : int array; (* per intended recipient *)
  (* Defense rejects (admission turn-aways, rotation quiet periods)
     are counted apart from [dropped] so verdicts never conflate what
     a defense did with what an injected fault did. *)
  mutable rejected : int;
  rejected_at : int array; (* per intended recipient *)
  (* Interned labels: dense ids into parallel arrays.  The per-send
     accounting is then one array add — the old string-keyed [Hashtbl]
     probe (hashing the label on every send) is paid once, at
     [intern]. *)
  intern_table : (string, int) Hashtbl.t;
  mutable label_names : string array;
  mutable label_counts : int array;
  mutable label_drops : int array; (* dropped messages per label *)
  mutable label_rejected : int array; (* defense-rejected messages per label *)
  mutable label_used : bool array; (* recorded at least once since reset *)
  mutable n_labels : int;
}

let create ~n =
  {
    bytes_sent = Array.make n 0;
    bytes_received = Array.make n 0;
    messages_sent = Array.make n 0;
    dropped = 0;
    dropped_at = Array.make n 0;
    rejected = 0;
    rejected_at = Array.make n 0;
    intern_table = Hashtbl.create 16;
    label_names = [||];
    label_counts = [||];
    label_drops = [||];
    label_rejected = [||];
    label_used = [||];
    n_labels = 0;
  }

let n t = Array.length t.bytes_sent

let intern t name =
  match Hashtbl.find_opt t.intern_table name with
  | Some id -> id
  | None ->
      if t.n_labels = Array.length t.label_names then begin
        let fresh = max 8 (2 * t.n_labels) in
        let names = Array.make fresh "" in
        let counts = Array.make fresh 0 in
        let drops = Array.make fresh 0 in
        let rejects = Array.make fresh 0 in
        let used = Array.make fresh false in
        Array.blit t.label_names 0 names 0 t.n_labels;
        Array.blit t.label_counts 0 counts 0 t.n_labels;
        Array.blit t.label_drops 0 drops 0 t.n_labels;
        Array.blit t.label_rejected 0 rejects 0 t.n_labels;
        Array.blit t.label_used 0 used 0 t.n_labels;
        t.label_names <- names;
        t.label_counts <- counts;
        t.label_drops <- drops;
        t.label_rejected <- rejects;
        t.label_used <- used
      end;
      let id = t.n_labels in
      t.label_names.(id) <- name;
      t.label_counts.(id) <- 0;
      t.label_drops.(id) <- 0;
      t.label_rejected.(id) <- 0;
      t.label_used.(id) <- false;
      t.n_labels <- t.n_labels + 1;
      Hashtbl.replace t.intern_table name id;
      id

(* Allocation-free variant for the network hot path: [label] is either
   an interned id or [no_label]. *)
let record_send t ~node ~bytes ~label =
  t.bytes_sent.(node) <- t.bytes_sent.(node) + bytes;
  t.messages_sent.(node) <- t.messages_sent.(node) + 1;
  if label >= 0 then begin
    t.label_counts.(label) <- t.label_counts.(label) + bytes;
    t.label_used.(label) <- true
  end

let record_sent t ~node ~bytes ?(label = no_label) () =
  record_send t ~node ~bytes ~label

let record_received t ~node ~bytes =
  t.bytes_received.(node) <- t.bytes_received.(node) + bytes

(* Allocation-free drop accounting: [node] is the intended recipient
   (or [-1] when unattributable), [label] an interned id or
   [no_label]. *)
let record_drop t ~node ~label =
  t.dropped <- t.dropped + 1;
  if node >= 0 then t.dropped_at.(node) <- t.dropped_at.(node) + 1;
  if label >= 0 then begin
    t.label_drops.(label) <- t.label_drops.(label) + 1;
    t.label_used.(label) <- true
  end

let record_dropped t = record_drop t ~node:(-1) ~label:no_label

(* Allocation-free reject accounting, mirroring [record_drop]: [node]
   is the intended recipient (or [-1]), [label] an interned id or
   [no_label]. *)
let record_reject t ~node ~label =
  t.rejected <- t.rejected + 1;
  if node >= 0 then t.rejected_at.(node) <- t.rejected_at.(node) + 1;
  if label >= 0 then begin
    t.label_rejected.(label) <- t.label_rejected.(label) + 1;
    t.label_used.(label) <- true
  end

let bytes_sent t node = t.bytes_sent.(node)
let bytes_received t node = t.bytes_received.(node)
let messages_sent t node = t.messages_sent.(node)
let dropped t = t.dropped
let dropped_at t node = t.dropped_at.(node)
let rejected t = t.rejected
let rejected_at t node = t.rejected_at.(node)
let total_bytes_sent t = Array.fold_left ( + ) 0 t.bytes_sent

let label_bytes t name =
  match Hashtbl.find_opt t.intern_table name with
  | Some id -> t.label_counts.(id)
  | None -> 0

let label_dropped t name =
  match Hashtbl.find_opt t.intern_table name with
  | Some id -> t.label_drops.(id)
  | None -> 0

let label_rejected t name =
  match Hashtbl.find_opt t.intern_table name with
  | Some id -> t.label_rejected.(id)
  | None -> 0

let labels t =
  let acc = ref [] in
  (* Only labels actually recorded since the last reset appear, exactly
     as the old string-keyed table only held recorded labels. *)
  for id = t.n_labels - 1 downto 0 do
    if t.label_used.(id) then acc := (t.label_names.(id), t.label_counts.(id)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let dropped_labels t =
  let acc = ref [] in
  for id = t.n_labels - 1 downto 0 do
    if t.label_drops.(id) > 0 then
      acc := (t.label_names.(id), t.label_drops.(id)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let rejected_labels t =
  let acc = ref [] in
  for id = t.n_labels - 1 downto 0 do
    if t.label_rejected.(id) > 0 then
      acc := (t.label_names.(id), t.label_rejected.(id)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let merge_into ~into src =
  if n into <> n src then invalid_arg "Stats.merge_into: node-count mismatch";
  for node = 0 to n into - 1 do
    into.bytes_sent.(node) <- into.bytes_sent.(node) + src.bytes_sent.(node);
    into.bytes_received.(node) <- into.bytes_received.(node) + src.bytes_received.(node);
    into.messages_sent.(node) <- into.messages_sent.(node) + src.messages_sent.(node);
    into.dropped_at.(node) <- into.dropped_at.(node) + src.dropped_at.(node);
    into.rejected_at.(node) <- into.rejected_at.(node) + src.rejected_at.(node)
  done;
  into.dropped <- into.dropped + src.dropped;
  into.rejected <- into.rejected + src.rejected;
  (* Labels merge by name, so the two sides' intern orders need not
     match; [into] interns any label it has not seen. *)
  for id = 0 to src.n_labels - 1 do
    let tid = intern into src.label_names.(id) in
    into.label_counts.(tid) <- into.label_counts.(tid) + src.label_counts.(id);
    into.label_drops.(tid) <- into.label_drops.(tid) + src.label_drops.(id);
    into.label_rejected.(tid) <- into.label_rejected.(tid) + src.label_rejected.(id);
    if src.label_used.(id) then into.label_used.(tid) <- true
  done

let reset t =
  Array.fill t.bytes_sent 0 (n t) 0;
  Array.fill t.bytes_received 0 (n t) 0;
  Array.fill t.messages_sent 0 (n t) 0;
  t.dropped <- 0;
  Array.fill t.dropped_at 0 (n t) 0;
  t.rejected <- 0;
  Array.fill t.rejected_at 0 (n t) 0;
  (* Interned ids stay valid across reset; only the counts clear. *)
  Array.fill t.label_counts 0 t.n_labels 0;
  Array.fill t.label_drops 0 t.n_labels 0;
  Array.fill t.label_rejected 0 t.n_labels 0;
  Array.fill t.label_used 0 t.n_labels false
