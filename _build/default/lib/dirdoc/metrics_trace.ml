module Rng = Tor_sim.Rng

type point = { day : int; date : string; relays : float }

let paper_mean = 7141.79

let start_days = Timefmt.days_from_civil ~year:2022 ~month:9 ~day:1
let end_days = Timefmt.days_from_civil ~year:2024 ~month:10 ~day:31
let n_days = end_days - start_days + 1

let date_of_day day =
  let year, month, d = Timefmt.civil_from_days (start_days + day) in
  Printf.sprintf "%04d-%02d-%02d" year month d

(* Qualitative shape of the live census over the window: high in late
   2022, a trough around mid-2023, recovery through 2024. *)
let shape day =
  let t = float_of_int day /. float_of_int (n_days - 1) in
  let trough = -650. *. exp (-.(((t -. 0.42) /. 0.16) ** 2.)) in
  let recovery = 900. *. Float.max 0. (t -. 0.55) /. 0.45 in
  let seasonal = 120. *. sin (t *. 14.) in
  trough +. recovery +. seasonal

let series ~rng () =
  let raw =
    List.init n_days (fun day -> shape day +. Rng.gaussian rng ~mean:0. ~stddev:60.)
  in
  let raw_mean = List.fold_left ( +. ) 0. raw /. float_of_int n_days in
  let offset = paper_mean -. raw_mean in
  List.mapi
    (fun day v -> { day; date = date_of_day day; relays = Float.max 0. (v +. offset) })
    raw

let mean points =
  List.fold_left (fun acc p -> acc +. p.relays) 0. points /. float_of_int (List.length points)

let minimum points = List.fold_left (fun acc p -> Float.min acc p.relays) infinity points
let maximum points = List.fold_left (fun acc p -> Float.max acc p.relays) neg_infinity points

let monthly points =
  let table = Hashtbl.create 32 in
  List.iter
    (fun p ->
      let month = String.sub p.date 0 7 in
      let sum, count =
        Option.value (Hashtbl.find_opt table month) ~default:(0., 0)
      in
      Hashtbl.replace table month (sum +. p.relays, count + 1))
    points;
  Hashtbl.fold (fun month (sum, count) acc -> (month, sum /. float_of_int count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
