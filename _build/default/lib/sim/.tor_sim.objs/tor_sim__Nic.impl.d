lib/sim/nic.ml: Float List Simtime
