lib/attack/planner.mli: Cost Format
