test/test_main.ml: Alcotest Test_attack Test_client Test_core Test_crypto Test_dirdoc Test_protocols Test_sim
