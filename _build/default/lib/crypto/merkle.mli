(** Merkle trees over digests.

    Used to commit to a vector of vote digests in one 32-byte root, and
    to let a node prove membership of one entry without shipping the
    vector — an ablation the benches compare against whole-vector
    proofs. *)

type proof = (side * Digest32.t) list
(** Inclusion proof: sibling digests from leaf to root. *)

and side = Left | Right
(** Which side the sibling sits on at each level. *)

val root : Digest32.t list -> Digest32.t
(** [root leaves] is the Merkle root.  A singleton list is its own
    root; an odd level duplicates its last node.  Raises
    [Invalid_argument] on an empty list. *)

val prove : Digest32.t list -> index:int -> proof
(** [prove leaves ~index] is the inclusion proof for [leaves.(index)].
    Raises [Invalid_argument] if [index] is out of range. *)

val verify : root:Digest32.t -> leaf:Digest32.t -> index:int -> proof -> bool
(** [verify ~root ~leaf ~index p] checks [p] against [root].  [index]
    is accepted for interface symmetry; the path itself encodes the
    position. *)

val proof_wire_size : proof -> int
(** Modelled bytes a proof occupies on the simulated wire. *)
