lib/dirdoc/relay.ml: Crypto Exit_policy Flags Format Int Option Printf String Version
