(** Per-node traffic accounting.

    Table 1 of the paper compares protocols by communication
    complexity; these counters measure actual bytes on the simulated
    wire, optionally broken down by message label. *)

type t

val create : n:int -> t

val n : t -> int

val record_sent : t -> node:int -> bytes:int -> ?label:string -> unit -> unit
val record_received : t -> node:int -> bytes:int -> unit
val record_dropped : t -> unit

val bytes_sent : t -> int -> int
val bytes_received : t -> int -> int
val messages_sent : t -> int -> int
val dropped : t -> int

val total_bytes_sent : t -> int
(** Sum over all nodes; the paper's communication-complexity metric. *)

val label_bytes : t -> string -> int
(** Bytes attributed to a message label ([0] for unknown labels). *)

val labels : t -> (string * int) list
(** All labels with their byte counts, sorted by label. *)

val reset : t -> unit
