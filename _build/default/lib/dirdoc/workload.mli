(** Synthetic relay populations and per-authority views.

    Substitutes for tornettools + live Tor consensus history (see
    DESIGN.md §2).  A ground-truth population is sampled from
    realistic property distributions; each authority then observes a
    perturbed view of it — a few relays missed, bandwidth-measurement
    jitter, occasional flag disagreement — so that votes differ across
    authorities and the Figure 2 aggregation rules are actually
    exercised. *)

type divergence = {
  missing_prob : float;     (** chance an authority misses a relay *)
  bw_jitter : float;        (** relative stddev of measured bandwidth *)
  flag_flip_prob : float;   (** chance one non-core flag flips *)
  unmeasured_prob : float;  (** chance an authority has no measurement *)
}

val default_divergence : divergence
(** 1% missing, 10% bandwidth jitter, 2% flag flips, 15% unmeasured —
    in line with observed cross-authority vote deltas. *)

val no_divergence : divergence
(** Identical views; used by determinism tests. *)

val relays : rng:Tor_sim.Rng.t -> n:int -> published:float -> Relay.t list
(** [relays ~rng ~n ~published] samples [n] ground-truth relays with
    distinct fingerprints: log-normal-ish bandwidths, ~35% exit
    relays, guard/stable/fast flags correlated with bandwidth, a
    current version mix. *)

val authority_view :
  rng:Tor_sim.Rng.t -> divergence:divergence -> Relay.t list -> Relay.t list
(** One authority's perturbed observation of the ground truth. *)

val votes :
  rng:Tor_sim.Rng.t ->
  ?divergence:divergence ->
  keyring:Crypto.Keyring.t ->
  n_authorities:int ->
  n_relays:int ->
  valid_after:float ->
  unit ->
  Vote.t array
(** Generate one vote per authority over a shared ground truth.
    Authority fingerprints come from [keyring]; vote [i] is indexed by
    authority [i]. *)

val authority_nickname : int -> string
(** Stable human-readable names ("moria1", "tor26", ... for the first
    nine, then "auth9", ...). *)

type churn = {
  leave_prob : float;    (** chance an existing relay disappears *)
  join_frac : float;     (** new relays as a fraction of the population *)
  rekey_prob : float;    (** chance a relay publishes a new descriptor *)
}

val default_churn : churn
(** ~1.5% leave, ~1.5% join, 30% republish per hour — the live
    network's hourly churn scale. *)

val evolve :
  rng:Tor_sim.Rng.t -> ?churn:churn -> published:float -> Relay.t list -> Relay.t list
(** One hour of relay churn over a ground-truth population: some
    relays leave, new ones join, and some republish their descriptor
    (fresh published time and jittered bandwidth).  Feeding the result
    back in simulates a live network across consensus hours; the
    consdiff savings measurements use exactly this. *)
