lib/protocols/runenv.mli: Crypto Dirdoc Tor_sim
