lib/protocols/current_v3.mli: Runenv
