lib/crypto/keyring.ml: Array Hmac Printf Sha256 String
