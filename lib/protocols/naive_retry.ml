type result = {
  outputs : (int * Dirdoc.Consensus.t) option array;
  iterations_run : int;
  agreement : bool;
  majority_signed_documents : Dirdoc.Consensus.t list;
}

let rerun_interval_seconds = 1800.

let split_attack () =
  (* A full knockout during the two signature rounds: authorities 5-8
     neither send nor receive signatures before the 600 s deadline, so
     only 0-4 finish iteration 0. *)
  List.map
    (fun node -> { Runenv.node; start = 300.; stop = 600.; bits_per_sec = 0. })
    [ 5; 6; 7; 8 ]

let run ?(iterations = 3) (env : Runenv.t) =
  let n = env.n in
  let need = Runenv.majority ~n in
  let outputs = Array.make n None in
  let majority_docs = ref [] in
  let remember doc =
    if not (List.exists (Dirdoc.Consensus.equal doc) !majority_docs) then
      majority_docs := doc :: !majority_docs
  in
  let iterations_run = ref 0 in
  let all_adopted () = Array.for_all Option.is_some outputs in
  let iteration = ref 0 in
  while !iteration < iterations && not (all_adopted ()) do
    let k = !iteration in
    incr iterations_run;
    (* Relay lists move on between iterations; only the first run is
       under the attack that caused the failure. *)
    let iter_env =
      if k = 0 then env
      else
        Runenv.of_spec
          {
            Runenv.Spec.default with
            seed = Printf.sprintf "retry-%d" k;
            valid_after = env.valid_after;
            n;
            n_relays = Dirdoc.Vote.n_relays env.votes.(0);
            bandwidth_bits_per_sec = env.bandwidth_bits_per_sec;
          }
    in
    let iter_env = { iter_env with Runenv.keyring = env.keyring } in
    let result = Current_v3.run iter_env in
    Array.iteri
      (fun i (a : Runenv.authority_result) ->
        match a.consensus with
        | Some doc when a.signatures >= need ->
            remember doc;
            if outputs.(i) = None then outputs.(i) <- Some (k, doc)
        | _ -> ())
      result.Runenv.per_authority;
    incr iteration
  done;
  let docs =
    Array.to_list outputs |> List.filter_map (Option.map snd)
  in
  let agreement =
    match docs with
    | [] -> true
    | first :: rest -> List.for_all (Dirdoc.Consensus.equal first) rest
  in
  {
    outputs;
    iterations_run = !iterations_run;
    agreement;
    majority_signed_documents = !majority_docs;
  }
