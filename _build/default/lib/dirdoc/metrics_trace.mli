(** Synthetic relay-census time series (Figure 6 substitute).

    The paper plots the live Tor relay count from September 2022 to
    October 2024 (mean 7141.79) to motivate sweeping the relay-count
    parameter.  We generate a seeded series with the same window,
    mean, and qualitative shape: a 2022 high, a mid-2023 trough, and a
    2024 recovery, plus daily noise. *)

type point = { day : int; date : string; relays : float }
(** [day] counts from 2022-09-01; [date] is ["YYYY-MM-DD"]. *)

val paper_mean : float
(** 7141.79, the dashed line in Figure 6. *)

val series : rng:Tor_sim.Rng.t -> unit -> point list
(** Daily points covering 2022-09-01 .. 2024-10-31 whose mean is
    [paper_mean] to within 1e-6 (the generator recentres the shape). *)

val mean : point list -> float
val minimum : point list -> float
val maximum : point list -> float

val monthly : point list -> (string * float) list
(** Month label ("2023-04") and that month's average; what the bench
    prints as the Figure 6 series. *)
