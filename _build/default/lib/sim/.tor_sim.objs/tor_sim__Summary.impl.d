lib/sim/summary.ml: Float List
