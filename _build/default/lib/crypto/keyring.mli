(** Deterministic key registry for the simulated PKI.

    The paper's protocols use Ed25519/RSA signatures; inside a
    single-process simulation we substitute an HMAC-based scheme whose
    verification consults this registry (see DESIGN.md §2).  Keys are
    derived deterministically from a seed so every experiment is
    reproducible. *)

type t
(** An immutable registry mapping node ids [0 .. n-1] to secret keys. *)

val create : ?seed:string -> n:int -> unit -> t
(** [create ~seed ~n ()] derives [n] secret keys from [seed]
    (default seed ["torpartial-pki"]).  Raises [Invalid_argument]
    if [n <= 0]. *)

val size : t -> int
(** Number of registered nodes. *)

val secret : t -> int -> string
(** [secret t id] is the secret key of node [id].
    Raises [Invalid_argument] if [id] is out of range. *)

val fingerprint : t -> int -> string
(** [fingerprint t id] is a 40-char uppercase hex identity fingerprint
    for node [id], in the style of Tor authority fingerprints. *)

val mem : t -> int -> bool
(** [mem t id] is [true] iff [id] is a registered node. *)
