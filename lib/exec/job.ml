module Runenv = Protocols.Runenv

type protocol = Current | Synchronous | Ours

let protocol_name = function
  | Current -> "current"
  | Synchronous -> "synchronous"
  | Ours -> "ours"

let protocol_of_name = function
  | "current" -> Some Current
  | "synchronous" | "sync" -> Some Synchronous
  | "ours" | "partial" -> Some Ours
  | _ -> None

type t = { protocol : protocol; spec : Runenv.Spec.t }

let key t = protocol_name t.protocol ^ ":" ^ Runenv.Spec.digest t.spec

let rng t = Tor_sim.Rng.of_string_seed (key t)

type outcome = {
  key : string;
  success : bool;
  success_latency : float option;
  decided_at_latest : float option;
  total_bytes : int;
}

let outcome job (report : Runenv.report) =
  {
    key = key job;
    success = report.Runenv.success;
    success_latency = report.Runenv.success_latency;
    decided_at_latest = report.Runenv.decided_at_latest;
    total_bytes = report.Runenv.total_bytes;
  }
