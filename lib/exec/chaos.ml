module Runenv = Protocols.Runenv
module Fault = Tor_sim.Fault
module Rng = Tor_sim.Rng

type config = {
  seed : string;
  plans : int;
  n : int;
  n_relays : int;
  bandwidth_bits_per_sec : float;
  horizon : float;
  liveness_bound : float;
  defense : Defense.Plan.t option;
}

let default_config =
  {
    seed = "chaos";
    plans = 20;
    n = 9;
    n_relays = 1000;
    bandwidth_bits_per_sec = 250e6;
    horizon = 7200.;
    liveness_bound = 900.;
    defense = None;
  }

let fault_bound ~n = (n - 1) / 3

let base_spec config =
  {
    Runenv.Spec.default with
    Runenv.Spec.seed = config.seed;
    n = config.n;
    n_relays = config.n_relays;
    bandwidth_bits_per_sec = config.bandwidth_bits_per_sec;
    horizon = config.horizon;
    defense = config.defense;
  }

(* Sampling ----------------------------------------------------------- *)

(* Every fault and crash window must clear well before the horizon,
   otherwise the liveness invariant ("decide within [liveness_bound] of
   the last fault clearing") would be vacuous for most cases. *)
let clear_by config = Float.min (config.horizon /. 2.) 1800.

let sample_window config rng =
  let bound = clear_by config in
  let start = Rng.float rng (bound /. 2.) in
  let stop = start +. 15. +. Rng.float rng ((bound /. 2.) -. 15.) in
  (start, stop)

let sample_endpoint config rng =
  if Rng.int rng 3 = 0 then Fault.any else Rng.int rng config.n

let sample_fault config rng =
  let start, stop = sample_window config rng in
  let kind =
    match Rng.int rng 5 with
    | 0 ->
        Fault.Drop
          {
            src = sample_endpoint config rng;
            dst = sample_endpoint config rng;
            prob = 0.25 +. Rng.float rng 0.75;
          }
    | 1 -> Fault.Partition { a = Rng.int rng config.n; b = Rng.int rng config.n }
    | 2 ->
        Fault.Delay
          {
            src = sample_endpoint config rng;
            dst = sample_endpoint config rng;
            max_extra = 1. +. Rng.float rng 30.;
          }
    | 3 ->
        Fault.Duplicate
          {
            src = sample_endpoint config rng;
            dst = sample_endpoint config rng;
            prob = 0.25 +. Rng.float rng 0.75;
          }
    | _ -> Fault.Crash { node = Rng.int rng config.n }
  in
  { Fault.kind; start; stop }

let sample_case config ~index =
  let rng = Rng.of_string_seed (config.seed ^ "/plan-" ^ string_of_int index) in
  let n_faults = 1 + Rng.int rng 5 in
  let faults = List.init n_faults (fun _ -> sample_fault config rng) in
  let plan = { Fault.seed = "plan-" ^ string_of_int index; faults } in
  let behaviors = Array.make config.n Runenv.Honest in
  let n_misbehave = Rng.int rng (fault_bound ~n:config.n + 2) in
  for _ = 1 to n_misbehave do
    let node = Rng.int rng config.n in
    behaviors.(node) <-
      (match Rng.int rng 3 with
      | 0 -> Runenv.Silent
      | 1 -> Runenv.Equivocating
      | _ ->
          let start, stop = sample_window config rng in
          Runenv.Crashed { start; stop })
  done;
  (plan, behaviors)

let spec_of_case config ~plan ~behaviors =
  let non_honest = Array.exists (fun b -> b <> Runenv.Honest) behaviors in
  {
    (base_spec config) with
    Runenv.Spec.behaviors = (if non_honest then Some (Array.copy behaviors) else None);
    fault_plan = (if plan.Fault.faults = [] then None else Some plan);
  }

let sample_spec config ~index =
  let plan, behaviors = sample_case config ~index in
  spec_of_case config ~plan ~behaviors

(* Invariant scoping --------------------------------------------------- *)

(* Distinct nodes that are misbehaving or crash-faulted: the count the
   safety invariant compares against the BFT bound.  Crash-recovery
   nodes are counted conservatively — quorum-intersection arguments
   budget them against f even though they are not Byzantine. *)
let faulty_node_sets ~plan ~behaviors =
  let faulty = Hashtbl.create 8 and permanent = Hashtbl.create 8 in
  Array.iteri
    (fun i b ->
      match b with
      | Runenv.Honest -> ()
      | Runenv.Crashed _ -> Hashtbl.replace faulty i ()
      | Runenv.Silent | Runenv.Equivocating ->
          Hashtbl.replace faulty i ();
          Hashtbl.replace permanent i ())
    behaviors;
  List.iter (fun node -> Hashtbl.replace faulty node ()) (Fault.crash_nodes plan);
  (Hashtbl.length faulty, Hashtbl.length permanent)

let case_clears_at ~plan ~behaviors =
  Array.fold_left
    (fun acc b ->
      match b with
      | Runenv.Crashed { stop; _ } -> Float.max acc stop
      | Runenv.Honest | Runenv.Silent | Runenv.Equivocating -> acc)
    (Fault.clears_at plan) behaviors

(* Execution ----------------------------------------------------------- *)

type protocol_report = {
  protocol : Job.protocol;
  success : bool;
  agreement : bool;
  decided_at_latest : float option;
  dropped : int;
  rejected : int; (* defense turn-aways; never counted in [dropped] *)
}

type verdict = {
  index : int;
  spec_digest : string;
  plan : Fault.plan;
  behaviors : Runenv.behavior array option;
  node_faults : int;
  permanent_faults : int;
  faults_clear_at : float;
  reports : protocol_report list;
  safety_applicable : bool;
  safety_ok : bool;
  liveness_applicable : bool;
  liveness_ok : bool;
  stalled_phase : string option;
  shrunk : Runenv.Spec.t option;
}

type report = {
  config : config;
  verdicts : verdict list;
  safety_violations : int;
  liveness_violations : int;
}

let report_of ~run_protocol protocol env =
  let (r : Runenv.report) = run_protocol protocol env in
  {
    protocol;
    success = r.Runenv.success;
    agreement = r.Runenv.agreement;
    decided_at_latest = r.Runenv.decided_at_latest;
    dropped = r.Runenv.dropped;
    rejected = r.Runenv.rejected;
  }

(* Safety and liveness of one (plan, behaviors) case, judged from a run
   of the partial-synchrony protocol alone.  Shared by the main verdict
   and by every shrink step. *)
let judge config ~plan ~behaviors ours =
  let f = fault_bound ~n:config.n in
  let node_faults, permanent_faults = faulty_node_sets ~plan ~behaviors in
  let clears = case_clears_at ~plan ~behaviors in
  let safety_applicable = node_faults <= f in
  let safety_ok = (not safety_applicable) || ours.agreement in
  let liveness_applicable =
    permanent_faults <= f && clears +. config.liveness_bound <= config.horizon
  in
  let liveness_ok =
    (not liveness_applicable)
    || ours.success
       &&
       match ours.decided_at_latest with
       | Some d -> d <= clears +. config.liveness_bound
       | None -> false
  in
  ( node_faults,
    permanent_faults,
    clears,
    safety_applicable,
    safety_ok,
    liveness_applicable,
    liveness_ok )

(* The campaign-variable projection of a chaos case: chaos never sets
   attacks, so a case is entirely (behaviors, fault_plan). *)
let campaign_plan config ~plan ~behaviors =
  Campaign.plan_of_spec (spec_of_case config ~plan ~behaviors)

let case_fails config ~ctx ~run_protocol ~plan ~behaviors =
  let env = Campaign.env_of ctx (campaign_plan config ~plan ~behaviors) in
  let ours = report_of ~run_protocol Job.Ours env in
  let _, _, _, _, safety_ok, _, liveness_ok = judge config ~plan ~behaviors ours in
  not (safety_ok && liveness_ok)

(* Greedy shrink: while the failure still reproduces, drop one plan
   fault or revert one misbehaving node to honest per step.  Each probe
   is a full deterministic re-run, so the result is a genuinely minimal
   (for this reduction order) failing spec. *)
let shrink config ~ctx ~run_protocol ~plan ~behaviors =
  let candidates (plan, behaviors) =
    let without_fault =
      List.mapi
        (fun i _ ->
          ( { plan with Fault.faults = List.filteri (fun j _ -> j <> i) plan.Fault.faults },
            behaviors ))
        plan.Fault.faults
    in
    let honest_node =
      List.filter_map
        (fun i ->
          if behaviors.(i) = Runenv.Honest then None
          else begin
            let b = Array.copy behaviors in
            b.(i) <- Runenv.Honest;
            Some (plan, b)
          end)
        (List.init (Array.length behaviors) Fun.id)
    in
    without_fault @ honest_node
  in
  let rec go case =
    match
      List.find_opt
        (fun (plan, behaviors) -> case_fails config ~ctx ~run_protocol ~plan ~behaviors)
        (candidates case)
    with
    | Some smaller -> go smaller
    | None -> case
  in
  let plan, behaviors = go (plan, behaviors) in
  spec_of_case config ~plan ~behaviors

let verdict_of_case config ~ctx ~run_protocol ~index =
  let plan, behaviors = sample_case config ~index in
  let cplan = campaign_plan config ~plan ~behaviors in
  let env = Campaign.env_of ctx cplan in
  let reports =
    List.map
      (fun p -> report_of ~run_protocol p env)
      [ Job.Current; Job.Synchronous; Job.Ours ]
  in
  let ours = List.nth reports 2 in
  let ( node_faults,
        permanent_faults,
        faults_clear_at,
        safety_applicable,
        safety_ok,
        liveness_applicable,
        liveness_ok ) =
    judge config ~plan ~behaviors ours
  in
  (* Diagnose a liveness failure: replay the same case with telemetry
     on (telemetry never changes outcomes, so the replay reproduces the
     failure exactly) and ask which phase the stuck authorities were
     inside.  When every correct authority decided — just after the
     bound — there is no incomplete span to blame. *)
  let stalled_phase =
    if liveness_ok then None
    else begin
      let env = { env with Runenv.telemetry = true } in
      let r = run_protocol Job.Ours env in
      match Runenv.stalled_phase env r with
      | Some _ as phase -> phase
      | None -> Some "decided-late"
    end
  in
  let shrunk =
    if safety_ok && liveness_ok then None
    else Some (shrink config ~ctx ~run_protocol ~plan ~behaviors)
  in
  {
    index;
    spec_digest = Campaign.digest ctx cplan;
    plan;
    behaviors = cplan.Campaign.behaviors;
    node_faults;
    permanent_faults;
    faults_clear_at;
    reports;
    safety_applicable;
    safety_ok;
    liveness_applicable;
    liveness_ok;
    stalled_phase;
    shrunk;
  }

let check ?(config = default_config) ~run_protocol ~jobs () =
  if config.plans < 0 then invalid_arg "Chaos.check: negative plan count";
  (* The vote population depends only on (seed, n, n_relays,
     valid_after, divergence) — identical across cases — so generate it
     once and share it (immutable) with every campaign worker; each
     worker's context then reuses one simulator arena and one
     spec-digest prefix across all its cases. *)
  let base = base_spec config in
  let votes = (Runenv.of_spec base).Runenv.votes in
  let verdicts =
    Campaign.map ~jobs ~votes ~base
      (fun ctx index -> verdict_of_case config ~ctx ~run_protocol ~index)
      (List.init config.plans Fun.id)
  in
  let count p = List.length (List.filter p verdicts) in
  {
    config;
    verdicts;
    safety_violations = count (fun v -> not v.safety_ok);
    liveness_violations = count (fun v -> not v.liveness_ok);
  }

(* Rendering ----------------------------------------------------------- *)

let behavior_to_string = function
  | Runenv.Honest -> "honest"
  | Runenv.Silent -> "silent"
  | Runenv.Equivocating -> "equivocating"
  | Runenv.Crashed { start; stop } -> Printf.sprintf "crashed:%g:%g" start stop

let pp_behaviors ppf = function
  | None -> Format.pp_print_string ppf "all-honest"
  | Some behaviors ->
      let cells =
        Array.to_list behaviors
        |> List.mapi (fun i b -> (i, b))
        |> List.filter (fun (_, b) -> b <> Runenv.Honest)
        |> List.map (fun (i, b) -> Printf.sprintf "%d:%s" i (behavior_to_string b))
      in
      Format.pp_print_string ppf (String.concat " " cells)

let status ~applicable ~ok =
  if not applicable then "n/a" else if ok then "ok" else "VIOLATED"

let pp_verdict ppf v =
  let by_protocol p = List.find (fun r -> r.protocol = p) v.reports in
  let mark r = if r.success then "ok" else "fail" in
  Format.fprintf ppf
    "plan %03d %s  faults=%d nodes=%d  current:%s sync:%s ours:%s  safety:%s liveness:%s"
    v.index
    (String.sub v.spec_digest 0 12)
    (List.length v.plan.Fault.faults)
    v.node_faults
    (mark (by_protocol Job.Current))
    (mark (by_protocol Job.Synchronous))
    (mark (by_protocol Job.Ours))
    (status ~applicable:v.safety_applicable ~ok:v.safety_ok)
    (status ~applicable:v.liveness_applicable ~ok:v.liveness_ok);
  (* Defense rejects, kept apart from fault drops; printed only when a
     defense actually turned traffic away, so undefended output is
     byte-identical to the pre-defense harness. *)
  let total_rejected = List.fold_left (fun acc r -> acc + r.rejected) 0 v.reports in
  if total_rejected > 0 then
    Format.fprintf ppf "  rejected:%s"
      (String.concat "/"
         (List.map
            (fun p -> string_of_int (by_protocol p).rejected)
            [ Job.Current; Job.Synchronous; Job.Ours ]));
  (match v.stalled_phase with
  | None -> ()
  | Some phase -> Format.fprintf ppf "@,  stalled in: %s" phase);
  match v.shrunk with
  | None -> ()
  | Some spec ->
      Format.fprintf ppf "@,  shrunk digest: %s" (Runenv.Spec.digest spec);
      (match spec.Runenv.Spec.fault_plan with
      | Some plan when plan.Fault.faults <> [] ->
          Format.fprintf ppf "@,  shrunk plan: %a" Fault.pp plan
      | _ -> Format.fprintf ppf "@,  shrunk plan: (none)");
      Format.fprintf ppf "@,  shrunk behaviors: %a" pp_behaviors spec.Runenv.Spec.behaviors
