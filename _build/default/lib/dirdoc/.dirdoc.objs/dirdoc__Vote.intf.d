lib/dirdoc/vote.mli: Crypto Relay
