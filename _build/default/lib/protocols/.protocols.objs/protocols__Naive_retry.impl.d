lib/protocols/naive_retry.ml: Array Current_v3 Dirdoc List Option Printf Runenv
