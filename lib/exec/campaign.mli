(** Amortized campaign evaluation: many runs, one simulator.

    A campaign is a batch of run specs sharing every field except the
    three campaign-variable ones — attacks, behaviors, fault plan
    (exactly what the chaos harness and attack sweeps vary).  A
    {!ctx} holds, per worker: the base environment (keyring, topology,
    vote population — the dominant setup cost), the precomputed
    {!Protocols.Runenv.Spec.prefix} of the canonical form (so per-plan
    digests skip re-serializing the invariant fields), and a private
    {!Protocols.Runenv.Arena} (so successive runs reset and reuse the
    same simulator heaps instead of reallocating them).

    None of the sharing changes results: environments come from
    {!Protocols.Runenv.vary} (validated like [of_spec]), digests are
    byte-compatible with {!Protocols.Runenv.Spec.digest}, and arena
    reuse is pinned bit-identical to fresh construction by the test
    suite. *)

type plan = {
  attacks : Protocols.Runenv.attack list;
  behaviors : Protocols.Runenv.behavior array option;
      (** [None] = all honest, as in {!Protocols.Runenv.Spec.t} *)
  fault_plan : Tor_sim.Fault.plan option;
}
(** The campaign-variable fields of one run. *)

val plan_of_spec : Protocols.Runenv.Spec.t -> plan
(** Project a spec onto its campaign-variable fields. *)

val spec_of : base:Protocols.Runenv.Spec.t -> plan -> Protocols.Runenv.Spec.t
(** Reassemble the full spec of a plan.  [spec_of ~base
    (plan_of_spec s) = s] whenever [s] and [base] agree outside the
    variable fields. *)

type ctx
(** Per-worker evaluation context.  Holds an arena, so it is
    single-domain by construction: {!map} builds one per worker and
    never shares them. *)

val create : ?votes:Dirdoc.Vote.t array -> Protocols.Runenv.Spec.t -> ctx
(** Build a context for a base spec.  [votes] as in
    {!Protocols.Runenv.of_spec}: pass a cached population to skip vote
    generation.  Raises [Invalid_argument] on the inputs [of_spec]
    rejects. *)

val base_spec : ctx -> Protocols.Runenv.Spec.t

val digest : ctx -> plan -> string
(** {!Protocols.Runenv.Spec.digest} of [spec_of ~base plan], computed
    via the context's precomputed prefix — the invariant spec fields
    are serialized once per context, not once per plan. *)

val env_of : ?telemetry:bool -> ctx -> plan -> Protocols.Runenv.t
(** The plan's run environment: {!Protocols.Runenv.vary} over the
    context's base environment, sharing its votes/keyring/topology and
    its arena.  Running a protocol on consecutive [env_of] results
    reuses one resettable simulator per driver.  [telemetry] (default
    [false]) sets {!Protocols.Runenv.t.telemetry} on the result;
    neither it nor the shared arena changes simulation outcomes. *)

val map :
  ?jobs:int ->
  ?votes:Dirdoc.Vote.t array ->
  base:Protocols.Runenv.Spec.t ->
  (ctx -> 'a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs ~base f items] evaluates [f ctx item] for every item,
    order-preserving, on up to [jobs] domains (default 1 =
    sequential, no domains spawned).  Items are split into contiguous
    chunks, one fresh context per chunk, so each context stays on one
    domain and sees items in input order.  Results are independent of
    [jobs] whenever [f] is a pure function of its item (the usual
    case: sample a plan, run it, report).  Exceptions propagate as in
    {!Pool.map}. *)
