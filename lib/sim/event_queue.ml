(* Struct-of-arrays binary heap.  The comparison key (time, seq) lives
   in two parallel scalar arrays — an unboxed [float array] for times
   and an [int array] for the FIFO tie-break — so sift comparisons read
   flat memory instead of chasing a pointer to a boxed entry record per
   slot.  Payloads sit in a third parallel array that the sifts move in
   lock-step but never inspect. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

(* Does slot [i]'s key precede the explicit key [(time, seq)]? *)
let precedes_key q i time seq =
  q.times.(i) < time || (q.times.(i) = time && q.seqs.(i) < seq)

let grow q payload =
  let capacity = Array.length q.times in
  if q.size = capacity then begin
    let fresh = max 16 (capacity * 2) in
    let times = Array.make fresh 0. in
    let seqs = Array.make fresh 0 in
    let payloads = Array.make fresh payload in
    Array.blit q.times 0 times 0 q.size;
    Array.blit q.seqs 0 seqs 0 q.size;
    Array.blit q.payloads 0 payloads 0 q.size;
    q.times <- times;
    q.seqs <- seqs;
    q.payloads <- payloads
  end

(* Hole-based sifts: walk the hole to its final position moving keys
   one way, then write the carried entry once — one store per level
   instead of a three-array swap per level. *)

let sift_up q i time seq payload =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if precedes_key q parent time seq then continue := false
    else begin
      q.times.(!i) <- q.times.(parent);
      q.seqs.(!i) <- q.seqs.(parent);
      q.payloads.(!i) <- q.payloads.(parent);
      i := parent
    end
  done;
  q.times.(!i) <- time;
  q.seqs.(!i) <- seq;
  q.payloads.(!i) <- payload

let sift_down q time seq payload =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    if l >= q.size then continue := false
    else begin
      (* smaller of the two children *)
      let c =
        if r < q.size && precedes_key q r q.times.(l) q.seqs.(l) then r else l
      in
      if precedes_key q c time seq then begin
        q.times.(!i) <- q.times.(c);
        q.seqs.(!i) <- q.seqs.(c);
        q.payloads.(!i) <- q.payloads.(c);
        i := c
      end
      else continue := false
    end
  done;
  q.times.(!i) <- time;
  q.seqs.(!i) <- seq;
  q.payloads.(!i) <- payload

let push q ~time payload =
  if Float.is_nan time || Simtime.is_infinite time then
    invalid_arg "Event_queue.push: time must be finite";
  let seq = q.next_seq in
  q.next_seq <- q.next_seq + 1;
  grow q payload;
  q.size <- q.size + 1;
  sift_up q (q.size - 1) time seq payload

(* Like [push] but with a caller-chosen tie-break key instead of the
   queue's own insertion counter.  The sharded engine derives keys from
   (creator node, per-creator counter), which makes the pop order at
   equal times independent of how nodes are partitioned into queues. *)
let push_keyed q ~time ~key payload =
  if Float.is_nan time || Simtime.is_infinite time then
    invalid_arg "Event_queue.push: time must be finite";
  grow q payload;
  q.size <- q.size + 1;
  sift_up q (q.size - 1) time key payload

(* Remove the root, re-heapifying with the last slot's entry.  The
   vacated slot keeps the popped payload (it is a value the caller now
   owns, so the array never retains a payload longer than the pop that
   freed it). *)
let pop_root q =
  let time = q.times.(0) and payload = q.payloads.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    let lt = q.times.(q.size) and ls = q.seqs.(q.size) and lp = q.payloads.(q.size) in
    q.payloads.(q.size) <- payload;
    sift_down q lt ls lp
  end;
  (time, payload)

let pop q =
  if q.size = 0 then None
  else
    let time, payload = pop_root q in
    Some (time, payload)

let pop_if_before q ~horizon ~default =
  if q.size = 0 || q.times.(0) > horizon then default
  else snd (pop_root q)

(* Two-bound pop for conservative-lookahead rounds: the cross-shard
   safety horizon is exclusive (an event AT the horizon may tie with
   mail another shard has not published yet), while the run's [until]
   cap stays inclusive, matching [pop_if_before]. *)
let pop_if_within q ~strict ~le ~default =
  if q.size = 0 then default
  else
    let head = q.times.(0) in
    if head >= strict || head > le then default else snd (pop_root q)

let peek_time q = if q.size = 0 then None else Some q.times.(0)
let size q = q.size
let is_empty q = q.size = 0

(* O(1) reuse: drop the live prefix and restart the tie-break counter.
   The payload array deliberately keeps its stale entries — callers
   whose payloads are heap values and who care about retention should
   pop the queue dry instead. *)
let clear q =
  q.size <- 0;
  q.next_seq <- 0
