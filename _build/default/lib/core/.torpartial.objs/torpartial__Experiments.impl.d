lib/core/experiments.ml: Array Attack Crypto Dirdoc Hashtbl List Option Protocol Protocols Tor_sim Torclient
