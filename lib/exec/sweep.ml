module Runenv = Protocols.Runenv

type t = {
  protocols : Job.protocol list;
  bandwidths_mbit : float list;
  relay_counts : int list;
  base : Runenv.Spec.t;
}

let make ?(protocols = [ Job.Current; Job.Synchronous; Job.Ours ])
    ?(bandwidths_mbit = [ 250. ]) ?(relay_counts = [ 1000 ])
    ?(base = Runenv.Spec.default) () =
  { protocols; bandwidths_mbit; relay_counts; base }

type cell = {
  protocol : Job.protocol;
  bandwidth_mbit : float;
  n_relays : int;
  job : Job.t;
}

let cells t =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun bandwidth_mbit ->
          List.map
            (fun n_relays ->
              let spec =
                {
                  t.base with
                  Runenv.Spec.bandwidth_bits_per_sec = bandwidth_mbit *. 1e6;
                  n_relays;
                }
              in
              { protocol; bandwidth_mbit; n_relays; job = { Job.protocol; spec } })
            t.relay_counts)
        t.bandwidths_mbit)
    t.protocols

let jobs t = List.map (fun c -> c.job) (cells t)

let size t =
  List.length t.protocols * List.length t.bandwidths_mbit
  * List.length t.relay_counts
