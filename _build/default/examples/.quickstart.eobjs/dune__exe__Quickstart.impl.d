examples/quickstart.ml: Array Crypto Dirdoc Printf Protocols String Torpartial
