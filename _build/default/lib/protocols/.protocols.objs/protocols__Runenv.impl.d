lib/protocols/runenv.ml: Array Crypto Dirdoc Float Fun List Option Tor_sim
