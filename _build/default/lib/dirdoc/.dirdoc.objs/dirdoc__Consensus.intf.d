lib/dirdoc/consensus.mli: Crypto Exit_policy Flags Version
