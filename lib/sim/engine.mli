(** Discrete-event simulation engine.

    The engine owns the clock and a queue of scheduled events.
    Protocols never read wall-clock time; everything observable happens
    inside a scheduled event, which makes runs deterministic.

    Events live in a pool of reusable cells (DESIGN.md §7): scheduling
    in steady state allocates nothing, and a {!handle} is an immediate
    int carrying the cell's generation, so {!cancel} is O(1) and safe
    against cell reuse.  Hot paths that would otherwise allocate a
    closure per event can {!register_callback} once and schedule
    [(callback, int)] pairs via {!schedule_call}. *)

type t

type handle
(** A scheduled event that can still be cancelled.  Stale handles
    (fired, cancelled, or from another engine's recycled cell) are
    detected by generation and ignored. *)

type callback
(** A typed continuation registered once with the engine; scheduling it
    stores only an [int] argument, no closure. *)

val create : unit -> t

val now : t -> Simtime.t
(** Current simulated time. *)

val schedule : t -> at:Simtime.t -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] at absolute time [at].  Raises
    [Invalid_argument] if [at] is in the past. *)

val schedule_in : t -> after:Simtime.t -> (unit -> unit) -> handle
(** [schedule_in t ~after f] runs [f] after a relative delay. *)

val register_callback : t -> (int -> unit) -> callback
(** Register a continuation for {!schedule_call}.  Meant to be called
    a handful of times at setup (e.g. once per network); the closure is
    shared by every event scheduled against it. *)

val schedule_call : t -> at:Simtime.t -> callback -> int -> handle
(** [schedule_call t ~at cb arg] runs the registered continuation [cb]
    with [arg] at time [at] — the allocation-free counterpart of
    {!schedule} for pooled payloads addressed by index.  Raises
    [Invalid_argument] if [at] is in the past. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling a fired or already-cancelled
    event is a no-op. *)

val run : ?until:Simtime.t -> t -> unit
(** Execute events in time order until the queue drains or the next
    event lies strictly beyond [until].  The clock ends at the last
    executed event (or at [until] when given and reached). *)

val pending : t -> int
(** Number of events still queued (including cancelled husks). *)
