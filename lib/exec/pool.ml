(* Fixed-size domain pool fed by a bounded work queue.  The producer
   (the calling domain) pushes job indices; workers block on a
   condition variable when the queue is empty and the producer blocks
   when it is full, so arbitrarily large job lists run in constant
   queue memory. *)

type 'a channel = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  buffer : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let channel capacity =
  {
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    buffer = Queue.create ();
    capacity;
    closed = false;
  }

let push chan x =
  Mutex.lock chan.mutex;
  while Queue.length chan.buffer >= chan.capacity do
    Condition.wait chan.not_full chan.mutex
  done;
  Queue.push x chan.buffer;
  Condition.signal chan.not_empty;
  Mutex.unlock chan.mutex

let close chan =
  Mutex.lock chan.mutex;
  chan.closed <- true;
  Condition.broadcast chan.not_empty;
  Mutex.unlock chan.mutex

let pop chan =
  Mutex.lock chan.mutex;
  while Queue.is_empty chan.buffer && not chan.closed do
    Condition.wait chan.not_empty chan.mutex
  done;
  let item =
    if Queue.is_empty chan.buffer then None
    else begin
      let x = Queue.pop chan.buffer in
      Condition.signal chan.not_full;
      Some x
    end
  in
  Mutex.unlock chan.mutex;
  item

let default_jobs () = Domain.recommended_domain_count ()

let clamp_shards ~jobs ~shards =
  if jobs < 1 then invalid_arg "Pool.clamp_shards: jobs must be >= 1";
  if shards < 1 then invalid_arg "Pool.clamp_shards: shards must be >= 1";
  if jobs = 1 then shards
  else
    (* Every pool worker would spawn [shards - 1] extra domains for the
       duration of each run; keep the whole tree within the host's
       recommended domain budget so runs time-slice instead of
       thrashing. *)
    let budget = max 1 (Domain.recommended_domain_count () / jobs) in
    min shards budget

type 'b slot =
  | Pending
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ~jobs f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match items with
  | [] -> []
  | items when jobs = 1 ->
      (* Sequential fallback: no domains, no queue, same semantics. *)
      List.map f items
  | items ->
      let input = Array.of_list items in
      let n = Array.length input in
      let results = Array.make n Pending in
      let workers = min jobs n in
      let chan = channel (2 * workers) in
      let worker () =
        let rec loop () =
          match pop chan with
          | None -> ()
          | Some i ->
              (results.(i) <-
                (match f input.(i) with
                | v -> Value v
                | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
              loop ()
        in
        loop ()
      in
      let domains = Array.init workers (fun _ -> Domain.spawn worker) in
      for i = 0 to n - 1 do
        push chan i
      done;
      close chan;
      Array.iter Domain.join domains;
      (* Re-raise the lowest-index failure so error reporting does not
         depend on worker scheduling. *)
      Array.iter
        (function
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
          | Value _ -> ()
          | Pending -> assert false)
        results;
      Array.to_list
        (Array.map
           (function Value v -> v | Pending | Raised _ -> assert false)
           results)
