let include_threshold ~n_votes = (n_votes / 2) + 1

let low_median values =
  if values = [] then invalid_arg "Aggregate.low_median: empty list";
  let sorted = List.sort Int.compare values in
  List.nth sorted ((List.length sorted - 1) / 2)

(* Popular vote over an arbitrary property: the most common value wins,
   with count ties broken toward the larger value (Figure 2).  Sorting
   ascending and preferring later runs on equal counts implements the
   tie-break directly. *)
let popular ~compare_value values =
  let sorted = List.sort compare_value values in
  let rec scan best best_count current count = function
    | [] -> if count >= best_count then current else best
    | v :: rest ->
        if compare_value v current = 0 then scan best best_count current (count + 1) rest
        else
          let best, best_count =
            if count >= best_count then (current, count) else (best, best_count)
          in
          scan best best_count v 1 rest
  in
  match sorted with
  | [] -> invalid_arg "Aggregate.popular: empty"
  | first :: rest -> scan first 0 first 1 rest

let aggregate_relay listings =
  if listings = [] then invalid_arg "Aggregate.aggregate_relay: empty listings";
  let fingerprint = (snd (List.hd listings)).Relay.fingerprint in
  List.iter
    (fun (_, (r : Relay.t)) ->
      if not (String.equal r.fingerprint fingerprint) then
        invalid_arg "Aggregate.aggregate_relay: mismatched fingerprints")
    listings;
  let n_listing = List.length listings in
  (* Nickname: the vote with the largest authority id decides. *)
  let nickname =
    let _, relay =
      List.fold_left
        (fun (best_id, best_r) (id, r) ->
          if id > best_id then (id, r) else (best_id, best_r))
        (List.hd listings) (List.tl listings)
    in
    relay.Relay.nickname
  in
  (* Flags: strict majority of listing votes; ties stay unset. *)
  let flags =
    List.fold_left
      (fun acc flag ->
        let yes =
          List.length (List.filter (fun (_, r) -> Flags.mem flag r.Relay.flags) listings)
        in
        if 2 * yes > n_listing then Flags.add flag acc else acc)
      Flags.empty Flags.all
  in
  let relays = List.map snd listings in
  let version =
    popular ~compare_value:Version.compare
      (List.map (fun (r : Relay.t) -> r.version) relays)
  in
  let protocols =
    popular ~compare_value:String.compare
      (List.map (fun (r : Relay.t) -> r.protocols) relays)
  in
  let exit_policy =
    popular ~compare_value:Exit_policy.compare
      (List.map (fun (r : Relay.t) -> r.exit_policy) relays)
  in
  let bandwidth =
    let measured = List.filter_map (fun (r : Relay.t) -> r.measured) relays in
    match measured with
    | [] -> low_median (List.map (fun (r : Relay.t) -> r.bandwidth) relays)
    | _ -> low_median measured
  in
  { Consensus.fingerprint; nickname; flags; version; protocols; bandwidth; exit_policy }

let consensus ~valid_after ~votes =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (v : Vote.t) ->
      if Hashtbl.mem seen v.Vote.authority then
        invalid_arg "Aggregate.consensus: duplicate authority vote";
      Hashtbl.replace seen v.Vote.authority ())
    votes;
  let n_votes = List.length votes in
  let threshold = include_threshold ~n_votes in
  (* Gather per-fingerprint listings across all votes. *)
  let table : (string, (int * Relay.t) list ref) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (v : Vote.t) ->
      Array.iter
        (fun (r : Relay.t) ->
          match Hashtbl.find_opt table r.fingerprint with
          | Some cell -> cell := (v.Vote.authority, r) :: !cell
          | None -> Hashtbl.add table r.fingerprint (ref [ (v.Vote.authority, r) ]))
        v.Vote.relays)
    votes;
  let entries =
    Hashtbl.fold
      (fun _ cell acc ->
        let listings = !cell in
        if List.length listings >= threshold then aggregate_relay listings :: acc
        else acc)
      table []
  in
  Consensus.create ~valid_after ~n_votes ~entries
