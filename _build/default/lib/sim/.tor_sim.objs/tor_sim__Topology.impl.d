lib/sim/topology.ml: Array Float Rng Simtime
