lib/protocols/dolev_strong.mli: Crypto
