lib/protocols/sync_ic.ml: Array Crypto Dirdoc Float Fun Hashtbl Int List Printf Runenv Siground Tor_sim Wire
