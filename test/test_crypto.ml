(* Tests for the crypto substrate: SHA-256 against the NIST vectors,
   HMAC against RFC 4231, the simulated signature scheme's soundness,
   and Merkle proofs. *)

open Crypto

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let str = Alcotest.string

(* --- SHA-256 ------------------------------------------------------------ *)

let nist_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_nist () =
  List.iter
    (fun (input, expected) -> check str input expected (Sha256.digest_hex input))
    nist_vectors

let test_million_a () =
  check str "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex (String.make 1_000_000 'a'))

let test_streaming_matches_oneshot () =
  (* Absorbing in arbitrary chunks must equal the one-shot digest. *)
  let data = String.init 10_000 (fun i -> Char.chr (i * 7 mod 256)) in
  let ctx = Sha256.init () in
  let rec feed pos step =
    if pos < String.length data then begin
      let len = min step (String.length data - pos) in
      Sha256.feed_bytes ctx (Bytes.of_string data) ~pos ~len;
      feed (pos + len) ((step * 3 mod 97) + 1)
    end
  in
  feed 0 1;
  check str "streaming" (Sha256.digest_hex data) (Sha256.hex_of_raw (Sha256.finalize ctx))

let test_feed_bounds () =
  let ctx = Sha256.init () in
  Alcotest.check_raises "negative pos" (Invalid_argument "Sha256.feed_bytes")
    (fun () -> Sha256.feed_bytes ctx (Bytes.create 4) ~pos:(-1) ~len:2);
  Alcotest.check_raises "overflow" (Invalid_argument "Sha256.feed_bytes") (fun () ->
      Sha256.feed_bytes ctx (Bytes.create 4) ~pos:2 ~len:3)

let qcheck_streaming =
  QCheck.Test.make ~name:"sha256 chunked = one-shot" ~count:50
    QCheck.(pair (string_of_size (Gen.int_range 0 500)) (int_range 1 64))
    (fun (s, chunk) ->
      let ctx = Sha256.init () in
      let rec feed pos =
        if pos < String.length s then begin
          let len = min chunk (String.length s - pos) in
          Sha256.feed_bytes ctx (Bytes.of_string s) ~pos ~len;
          feed (pos + len)
        end
      in
      feed 0;
      String.equal (Sha256.finalize ctx) (Sha256.digest_string s))

(* The padding boundaries — 55/56 (length field fits / doesn't fit in
   the final block) and 63/64/65 (around a full block) — are where a
   chunked absorption can disagree with the one-shot digest.  Pin every
   split of messages at those lengths, then fuzz arbitrary cut lists. *)
let test_chunk_boundaries () =
  let data = String.init 130 (fun i -> Char.chr (i * 11 mod 256)) in
  List.iter
    (fun total ->
      let msg = String.sub data 0 total in
      let oneshot = Sha256.digest_hex msg in
      for split = 0 to total do
        let ctx = Sha256.init () in
        Sha256.feed_string ctx (String.sub msg 0 split);
        Sha256.feed_string ctx (String.sub msg split (total - split));
        check str
          (Printf.sprintf "len %d split %d" total split)
          oneshot
          (Sha256.hex_of_raw (Sha256.finalize ctx))
      done)
    [ 55; 56; 63; 64; 65; 119; 127; 128; 129 ]

let qcheck_random_splits =
  QCheck.Test.make ~name:"sha256 random split points = one-shot" ~count:100
    QCheck.(
      pair
        (string_of_size (Gen.int_range 0 300))
        (list_of_size (Gen.int_range 0 8) (int_range 0 300)))
    (fun (s, cuts) ->
      let n = String.length s in
      let cuts =
        List.sort_uniq Int.compare (List.filter (fun c -> c <= n) (0 :: n :: cuts))
      in
      let ctx = Sha256.init () in
      let rec feed = function
        | a :: (b :: _ as rest) ->
            Sha256.feed_string ctx (String.sub s a (b - a));
            feed rest
        | _ -> ()
      in
      feed cuts;
      String.equal (Sha256.finalize ctx) (Sha256.digest_string s))

(* --- Sink ------------------------------------------------------------------ *)

let test_sink_feeders () =
  let sink = Sink.create ~size:4 () in
  Sink.feed_str sink "x=";
  Sink.feed_int sink (-42);
  Sink.feed_char sink '|';
  Sink.feed_int sink 0;
  Sink.feed_char sink '|';
  Sink.feed_int sink max_int;
  Sink.feed_char sink '|';
  Sink.feed_int sink min_int;
  check str "ints and growth"
    (Printf.sprintf "x=-42|0|%d|%d" max_int min_int)
    (Sink.contents sink);
  Alcotest.(check int) "length" (String.length (Sink.contents sink)) (Sink.length sink);
  check str "digest = digest of contents"
    (Sha256.digest_hex (Sink.contents sink))
    (Sha256.hex_of_raw (Sink.digest sink));
  let ctx = Sha256.init () in
  Sink.feed_sha256 sink ctx;
  check str "feed_sha256 streams contents"
    (Sha256.digest_hex (Sink.contents sink))
    (Sha256.hex_of_raw (Sha256.finalize ctx));
  Sink.clear sink;
  Alcotest.(check int) "clear empties" 0 (Sink.length sink);
  Sink.feed_fixed sink (-0.);
  check str "negative zero like %.0f" "-0" (Sink.contents sink);
  Sink.clear sink;
  Sink.feed_fixed sink 1700007200.;
  check str "integral timestamp" "1700007200" (Sink.contents sink)

let qcheck_sink_int =
  QCheck.Test.make ~name:"sink feed_int matches string_of_int" ~count:500
    QCheck.int
    (fun n ->
      let sink = Sink.create () in
      Sink.feed_int sink n;
      String.equal (Sink.contents sink) (string_of_int n))

let qcheck_sink_fixed =
  QCheck.Test.make ~name:"sink feed_fixed matches %.0f" ~count:500 QCheck.float
    (fun x ->
      let sink = Sink.create () in
      Sink.feed_fixed sink x;
      String.equal (Sink.contents sink) (Printf.sprintf "%.0f" x))

(* --- HMAC ----------------------------------------------------------------- *)

(* RFC 4231 test cases. *)
let test_hmac_rfc4231 () =
  check str "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key:(String.make 20 '\x0b') "Hi There");
  check str "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?");
  check str "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'));
  (* case 6: key longer than the block size gets hashed first *)
  check str "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_equal () =
  let a = Hmac.mac ~key:"k" "m" in
  checkb "same" true (Hmac.equal a (Hmac.mac ~key:"k" "m"));
  checkb "different msg" false (Hmac.equal a (Hmac.mac ~key:"k" "m'"));
  checkb "different key" false (Hmac.equal a (Hmac.mac ~key:"k'" "m"));
  checkb "different length" false (Hmac.equal a "short")

(* --- Digest32 -------------------------------------------------------------- *)

let test_digest32 () =
  let d = Digest32.of_string "hello" in
  check str "hex" (Sha256.digest_hex "hello") (Digest32.hex d);
  check str "short hex" (String.sub (Sha256.digest_hex "hello") 0 10) (Digest32.short_hex d);
  checkb "roundtrip raw" true (Digest32.equal d (Digest32.of_raw (Digest32.raw d)));
  checkb "pair differs from parts" false (Digest32.equal (Digest32.pair d d) d);
  checkb "pair not commutative" false
    (Digest32.equal
       (Digest32.pair d (Digest32.of_string "x"))
       (Digest32.pair (Digest32.of_string "x") d));
  Alcotest.(check int) "wire size" 32 Digest32.wire_size;
  Alcotest.check_raises "bad raw" (Invalid_argument "Digest32.of_raw: need 32 bytes")
    (fun () -> ignore (Digest32.of_raw "short"))

(* --- Keyring ---------------------------------------------------------------- *)

let test_keyring () =
  let a = Keyring.create ~seed:"s" ~n:9 () in
  let b = Keyring.create ~seed:"s" ~n:9 () in
  let c = Keyring.create ~seed:"t" ~n:9 () in
  checkb "deterministic" true (String.equal (Keyring.secret a 3) (Keyring.secret b 3));
  checkb "seed-dependent" false (String.equal (Keyring.secret a 3) (Keyring.secret c 3));
  checkb "distinct per node" false (String.equal (Keyring.secret a 0) (Keyring.secret a 1));
  Alcotest.(check int) "size" 9 (Keyring.size a);
  checkb "mem in range" true (Keyring.mem a 8);
  checkb "mem out of range" false (Keyring.mem a 9);
  let fp = Keyring.fingerprint a 0 in
  Alcotest.(check int) "fingerprint length" 40 (String.length fp);
  checkb "fingerprint hex" true
    (String.for_all (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'A' && ch <= 'F')) fp);
  Alcotest.check_raises "bad id" (Invalid_argument "Keyring.secret: bad node id")
    (fun () -> ignore (Keyring.secret a 9));
  Alcotest.check_raises "bad n" (Invalid_argument "Keyring.create: n must be positive")
    (fun () -> ignore (Keyring.create ~n:0 ()))

(* --- Signature ---------------------------------------------------------------- *)

let test_signature () =
  let ring = Keyring.create ~n:4 () in
  let s = Signature.sign ring ~signer:2 "message" in
  checkb "verifies" true (Signature.verify ring s "message");
  checkb "wrong message" false (Signature.verify ring s "other");
  checkb "claimed wrong signer" false
    (Signature.verify ring { s with Signature.signer = 1 } "message");
  checkb "forged" false (Signature.verify ring (Signature.forge ~signer:2 "message") "message");
  checkb "unknown signer" false
    (Signature.verify ring { s with Signature.signer = 99 } "message");
  Alcotest.(check int) "kappa" 64 Signature.wire_size;
  checkb "equal" true (Signature.equal s (Signature.sign ring ~signer:2 "message"))

(* --- Merkle ---------------------------------------------------------------- *)

let leaves k = List.init k (fun i -> Digest32.of_string (Printf.sprintf "leaf-%d" i))

let test_merkle_roundtrip () =
  List.iter
    (fun k ->
      let ls = leaves k in
      let root = Merkle.root ls in
      List.iteri
        (fun index leaf ->
          let proof = Merkle.prove ls ~index in
          checkb
            (Printf.sprintf "verify k=%d i=%d" k index)
            true
            (Merkle.verify ~root ~leaf ~index proof))
        ls)
    [ 1; 2; 3; 4; 5; 7; 8; 16; 33 ]

let test_merkle_tamper () =
  let ls = leaves 8 in
  let root = Merkle.root ls in
  let proof = Merkle.prove ls ~index:3 in
  checkb "wrong leaf" false
    (Merkle.verify ~root ~leaf:(Digest32.of_string "evil") ~index:3 proof);
  checkb "wrong root" false
    (Merkle.verify ~root:(Digest32.of_string "evil") ~leaf:(List.nth ls 3) ~index:3 proof);
  Alcotest.(check int) "proof size" (3 * 33) (Merkle.proof_wire_size proof)

let test_merkle_errors () =
  Alcotest.check_raises "empty root" (Invalid_argument "Merkle.root: empty leaf list")
    (fun () -> ignore (Merkle.root []));
  Alcotest.check_raises "bad index" (Invalid_argument "Merkle.prove: index out of range")
    (fun () -> ignore (Merkle.prove (leaves 4) ~index:4))

let qcheck_merkle =
  QCheck.Test.make ~name:"merkle proofs verify for random sizes" ~count:40
    QCheck.(int_range 1 64)
    (fun k ->
      let ls = leaves k in
      let root = Merkle.root ls in
      List.for_all
        (fun index -> Merkle.verify ~root ~leaf:(List.nth ls index) ~index (Merkle.prove ls ~index))
        (List.init k Fun.id))

let suite =
  [
    ("sha256 NIST vectors", `Quick, test_nist);
    ("sha256 one million a's", `Slow, test_million_a);
    ("sha256 streaming", `Quick, test_streaming_matches_oneshot);
    ("sha256 feed bounds", `Quick, test_feed_bounds);
    QCheck_alcotest.to_alcotest qcheck_streaming;
    ("sha256 chunk boundaries", `Quick, test_chunk_boundaries);
    QCheck_alcotest.to_alcotest qcheck_random_splits;
    ("sink feeders", `Quick, test_sink_feeders);
    QCheck_alcotest.to_alcotest qcheck_sink_int;
    QCheck_alcotest.to_alcotest qcheck_sink_fixed;
    ("hmac RFC 4231", `Quick, test_hmac_rfc4231);
    ("hmac constant-time equal", `Quick, test_hmac_equal);
    ("digest32", `Quick, test_digest32);
    ("keyring", `Quick, test_keyring);
    ("signature scheme", `Quick, test_signature);
    ("merkle roundtrip", `Quick, test_merkle_roundtrip);
    ("merkle tamper detection", `Quick, test_merkle_tamper);
    ("merkle errors", `Quick, test_merkle_errors);
    QCheck_alcotest.to_alcotest qcheck_merkle;
  ]
