(* Tests for the parallel sweep engine: Spec digest stability, the
   bounded-queue domain pool, the domain-safe result cache, sweep
   compilation, and jobs=1 vs jobs=4 determinism over a Figure 10
   sub-grid. *)

module R = Protocols.Runenv
module E = Torpartial.Experiments

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Spec digests ----------------------------------------------------------- *)

let test_spec_digest_stability () =
  let d1 = R.Spec.digest R.Spec.default in
  let d2 = R.Spec.digest { R.Spec.default with R.Spec.n_relays = 1000 } in
  checki "64 hex chars" 64 (String.length d1);
  Alcotest.(check string) "structurally equal specs digest equally" d1 d2;
  let variants =
    [
      { R.Spec.default with R.Spec.seed = "other" };
      { R.Spec.default with R.Spec.n_relays = 1001 };
      { R.Spec.default with R.Spec.bandwidth_bits_per_sec = 10e6 };
      { R.Spec.default with R.Spec.horizon = 3600. };
      { R.Spec.default with R.Spec.shards = 4 };
      { R.Spec.default with R.Spec.attacks = Attack.Ddos.knockout ~n:9 () };
      { R.Spec.default with R.Spec.behaviors = Some (Array.make 9 R.Silent) };
      {
        R.Spec.default with
        R.Spec.divergence = Some Dirdoc.Workload.default_divergence;
      };
      {
        R.Spec.default with
        R.Spec.behaviors =
          Some
            (let b = Array.make 9 R.Honest in
             b.(0) <- R.Crashed { start = 10.; stop = 60. };
             b);
      };
      {
        R.Spec.default with
        R.Spec.distribution = Some Torclient.Distribution.default_config;
      };
      {
        R.Spec.default with
        R.Spec.distribution =
          Some { Torclient.Distribution.default_config with halt = 10800. };
      };
      {
        R.Spec.default with
        R.Spec.distribution =
          Some { Torclient.Distribution.default_config with diffs = false };
      };
      {
        R.Spec.default with
        R.Spec.distribution =
          Some { Torclient.Distribution.default_config with caches = 32 };
      };
      {
        R.Spec.default with
        R.Spec.fault_plan =
          Some
            {
              Tor_sim.Fault.seed = "variant";
              faults =
                [
                  {
                    Tor_sim.Fault.kind = Tor_sim.Fault.Drop { src = 0; dst = 1; prob = 0.5 };
                    start = 0.;
                    stop = 60.;
                  };
                ];
            };
      };
    ]
  in
  List.iteri
    (fun i s ->
      checkb
        (Printf.sprintf "changing field %d changes the digest" i)
        false
        (R.Spec.digest s = d1))
    variants;
  let digests = List.map R.Spec.digest variants in
  checki "variant digests all distinct" (List.length digests)
    (List.length (List.sort_uniq compare digests))

let test_spec_prefix_digest () =
  (* The campaign fast path: [canonical_with]/[digest_with] over a
     precomputed prefix must be byte-identical to serializing the
     assembled spec from scratch, for every shape of the three
     variable fields. *)
  let base =
    {
      R.Spec.default with
      R.Spec.seed = "prefix-test";
      n_relays = 123;
      bandwidth_bits_per_sec = 10e6;
      horizon = 3600.;
      shards = 4;
    }
  in
  let p = R.Spec.prefix base in
  let behaviors =
    let b = Array.make 9 R.Honest in
    b.(2) <- R.Silent;
    b.(5) <- R.Crashed { start = 10.; stop = 60. };
    b
  in
  let fault_plan =
    Some
      {
        Tor_sim.Fault.seed = "prefix";
        faults =
          [
            {
              Tor_sim.Fault.kind = Tor_sim.Fault.Drop { src = 0; dst = 1; prob = 0.5 };
              start = 0.;
              stop = 60.;
            };
          ];
      }
  in
  let cases =
    [
      ([], None, None);
      (Attack.Ddos.knockout ~n:9 (), None, None);
      ([], Some behaviors, None);
      ([], None, fault_plan);
      (Attack.Ddos.bandwidth_attack ~n:9 (), Some behaviors, fault_plan);
    ]
  in
  List.iteri
    (fun i (attacks, behaviors, fault_plan) ->
      let spec = { base with R.Spec.attacks; behaviors; fault_plan } in
      Alcotest.(check string)
        (Printf.sprintf "case %d: canonical_with matches canonical" i)
        (R.Spec.canonical spec)
        (R.Spec.canonical_with p ~attacks ~behaviors ~fault_plan);
      Alcotest.(check string)
        (Printf.sprintf "case %d: digest_with matches digest" i)
        (R.Spec.digest spec)
        (R.Spec.digest_with p ~attacks ~behaviors ~fault_plan))
    cases

let test_spec_rng_deterministic () =
  let a = R.Spec.rng R.Spec.default in
  let b = R.Spec.rng { R.Spec.default with R.Spec.n_relays = 1000 } in
  checkb "same spec, same stream" true
    (List.init 8 (fun _ -> Tor_sim.Rng.next_int64 a)
    = List.init 8 (fun _ -> Tor_sim.Rng.next_int64 b));
  let c = R.Spec.rng { R.Spec.default with R.Spec.seed = "other" } in
  checkb "different spec, different stream" false
    (Tor_sim.Rng.next_int64 (R.Spec.rng R.Spec.default) = Tor_sim.Rng.next_int64 c)

(* --- Pool ------------------------------------------------------------------- *)

let test_pool_empty () =
  Alcotest.(check (list int)) "empty list" [] (Exec.Pool.map ~jobs:4 (fun x -> x) [])

let test_pool_order_and_fallback () =
  let input = List.init 25 Fun.id in
  let expect = List.map (fun x -> x * x) input in
  Alcotest.(check (list int)) "jobs=4 preserves order" expect
    (Exec.Pool.map ~jobs:4 (fun x -> x * x) input);
  Alcotest.(check (list int)) "jobs=1 sequential fallback" expect
    (Exec.Pool.map ~jobs:1 (fun x -> x * x) input);
  Alcotest.(check (list int)) "jobs far above item count" expect
    (Exec.Pool.map ~jobs:64 (fun x -> x * x) input)

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.map: jobs must be >= 1") (fun () ->
      ignore (Exec.Pool.map ~jobs:0 Fun.id [ 1 ]))

let test_pool_exception () =
  (* The lowest-index failure wins, independent of scheduling; the
     pool must drain and join cleanly rather than hang. *)
  Alcotest.check_raises "lowest-index exception propagates" (Failure "boom 3")
    (fun () ->
      ignore
        (Exec.Pool.map ~jobs:3
           (fun x ->
             if x mod 5 = 3 then failwith (Printf.sprintf "boom %d" x) else x)
           (List.init 17 Fun.id)))

(* --- Cache ------------------------------------------------------------------ *)

let test_cache_computes_once () =
  let cache = Exec.Cache.create () in
  let count = Atomic.make 0 in
  let compute () =
    Atomic.incr count;
    42
  in
  checki "first call computes" 42 (Exec.Cache.find_or_compute cache ~key:"k" compute);
  checki "second call reads" 42 (Exec.Cache.find_or_compute cache ~key:"k" compute);
  checki "computed once" 1 (Atomic.get count);
  (* 32 concurrent requests for one fresh key: still one computation. *)
  let hits =
    Exec.Pool.map ~jobs:4
      (fun _ ->
        Exec.Cache.find_or_compute cache ~key:"k2" (fun () ->
            Atomic.incr count;
            7))
      (List.init 32 Fun.id)
  in
  checkb "every requester sees the value" true (List.for_all (( = ) 7) hits);
  checki "k2 computed once under contention" 2 (Atomic.get count);
  checki "two completed entries" 2 (Exec.Cache.length cache);
  checkb "find_opt hit" true (Exec.Cache.find_opt cache "k" = Some 42);
  checkb "find_opt miss" true (Exec.Cache.find_opt cache "absent" = None)

let test_cache_exception_not_cached () =
  let cache = Exec.Cache.create () in
  let count = ref 0 in
  Alcotest.check_raises "failure propagates" (Failure "nope") (fun () ->
      ignore
        (Exec.Cache.find_or_compute cache ~key:"k" (fun () ->
             incr count;
             failwith "nope")));
  checki "failed computation is retried" 5
    (Exec.Cache.find_or_compute cache ~key:"k" (fun () ->
         incr count;
         5));
  checki "ran twice" 2 !count

let test_cache_eviction () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Cache.create: capacity must be >= 1") (fun () ->
      ignore (Exec.Cache.create ~capacity:0 () : unit Exec.Cache.t));
  let cache = Exec.Cache.create ~capacity:2 () in
  let count = ref 0 in
  let get key =
    Exec.Cache.find_or_compute cache ~key (fun () ->
        incr count;
        key)
  in
  Alcotest.(check string) "a computes" "a" (get "a");
  Alcotest.(check string) "b computes" "b" (get "b");
  checki "bound not yet hit" 2 (Exec.Cache.length cache);
  Alcotest.(check string) "c evicts the oldest" "c" (get "c");
  checki "bounded at capacity" 2 (Exec.Cache.length cache);
  checkb "oldest entry gone" true (Exec.Cache.find_opt cache "a" = None);
  checkb "younger entries survive" true
    (Exec.Cache.find_opt cache "b" = Some "b"
    && Exec.Cache.find_opt cache "c" = Some "c");
  checki "three computations so far" 3 !count;
  (* An evicted key is recomputed, re-inserted, and evicts in turn. *)
  Alcotest.(check string) "a recomputes after eviction" "a" (get "a");
  checki "recomputation happened" 4 !count;
  checkb "b evicted in turn" true (Exec.Cache.find_opt cache "b" = None);
  Alcotest.(check string) "c still cached" "c" (get "c");
  checki "c still a hit" 4 !count

(* --- Sweep compilation ------------------------------------------------------- *)

let test_sweep_compiles_grid () =
  let sweep =
    Exec.Sweep.make
      ~protocols:[ E.Current; E.Ours ]
      ~bandwidths_mbit:[ 10.; 1. ] ~relay_counts:[ 100; 200; 300 ] ()
  in
  checki "size" 12 (Exec.Sweep.size sweep);
  let cells = Exec.Sweep.cells sweep in
  checki "one cell per grid point" 12 (List.length cells);
  let keys = List.map (fun c -> Exec.Job.key c.Exec.Sweep.job) cells in
  checki "job keys all distinct" 12 (List.length (List.sort_uniq compare keys));
  match cells with
  | first :: _ ->
      checkb "protocol-major order" true
        (first.Exec.Sweep.protocol = E.Current
        && first.Exec.Sweep.bandwidth_mbit = 10.
        && first.Exec.Sweep.n_relays = 100)
  | [] -> Alcotest.fail "no cells"

(* --- Determinism across worker counts ---------------------------------------- *)

(* Summarize without the Experiments result cache, so the jobs=1 and
   jobs=4 runs both actually simulate. *)
let summarize (job : Exec.Job.t) =
  let env = R.of_spec job.Exec.Job.spec in
  let report = E.run job.Exec.Job.protocol env in
  ( Exec.Job.key job,
    report.R.success,
    report.R.success_latency,
    report.R.decided_at_latest,
    report.R.total_bytes )

let test_fig10_subgrid_determinism () =
  let sweep = Exec.Sweep.make ~bandwidths_mbit:[ 50. ] ~relay_counts:[ 100; 150 ] () in
  let jobs = Exec.Sweep.jobs sweep in
  let sequential = Exec.Pool.map ~jobs:1 summarize jobs in
  let parallel = Exec.Pool.map ~jobs:4 summarize jobs in
  checkb "jobs=1 and jobs=4 summaries identical" true (sequential = parallel);
  let cells1 = E.fig10 ~bandwidths_mbit:[ 50. ] ~relay_counts:[ 100; 150 ] ~jobs:1 () in
  let cells4 = E.fig10 ~bandwidths_mbit:[ 50. ] ~relay_counts:[ 100; 150 ] ~jobs:4 () in
  checkb "fig10 cells identical across worker counts" true (cells1 = cells4)

let test_run_job_cached () =
  (* Distinctively-seeded job so this test owns its cache entry. *)
  let job =
    {
      Exec.Job.protocol = E.Ours;
      spec = { R.Spec.default with R.Spec.seed = "test-run-job-cached"; n_relays = 100 };
    }
  in
  let o1 = E.run_job job in
  let o2 = E.run_job job in
  checkb "same outcome object from the cache" true (o1 == o2);
  checkb "key matches the job" true (o1.Exec.Job.key = Exec.Job.key job)

(* --- Campaign ----------------------------------------------------------------- *)

let campaign_base =
  { R.Spec.default with R.Spec.seed = "campaign-test"; n_relays = 100; horizon = 600. }

let test_campaign_plan_roundtrip () =
  let spec =
    {
      campaign_base with
      R.Spec.attacks = Attack.Ddos.knockout ~n:9 ();
      behaviors = Some (Array.make 9 R.Silent);
    }
  in
  checkb "spec_of inverts plan_of_spec" true
    (Exec.Campaign.spec_of ~base:campaign_base (Exec.Campaign.plan_of_spec spec) = spec);
  let ctx = Exec.Campaign.create campaign_base in
  checkb "base spec preserved" true (Exec.Campaign.base_spec ctx = campaign_base);
  let plan = Exec.Campaign.plan_of_spec spec in
  Alcotest.(check string) "ctx digest matches the assembled spec digest"
    (R.Spec.digest spec)
    (Exec.Campaign.digest ctx plan)

let test_campaign_map_determinism () =
  (* Same items, same results, for every worker count — each worker
     builds its own context, so chunking must not leak into results. *)
  let plans =
    List.init 6 (fun i ->
        Exec.Campaign.plan_of_spec
          (Exec.Chaos.sample_spec
             { Exec.Chaos.default_config with Exec.Chaos.seed = "campaign-map"; n_relays = 100 }
             ~index:i))
  in
  let eval ctx plan =
    let report = E.run E.Ours (Exec.Campaign.env_of ctx plan) in
    ( Exec.Campaign.digest ctx plan,
      report.R.success,
      report.R.decided_at_latest,
      report.R.total_bytes )
  in
  let seq = Exec.Campaign.map ~base:campaign_base eval plans in
  let par = Exec.Campaign.map ~jobs:3 ~base:campaign_base eval plans in
  checki "one result per plan" (List.length plans) (List.length seq);
  checkb "jobs=1 and jobs=3 identical" true (seq = par)

(* --- Chaos ------------------------------------------------------------------ *)

let chaos_config =
  (* Small network so the full campaign (3 protocols x plans x 2 worker
     counts) stays test-sized. *)
  { Exec.Chaos.default_config with Exec.Chaos.seed = "chaos-test"; plans = 6; n_relays = 100 }

let test_chaos_jobs_determinism () =
  let run jobs = Exec.Chaos.check ~config:chaos_config ~run_protocol:E.run ~jobs () in
  let r1 = run 1 in
  let r3 = run 3 in
  checkb "verdicts independent of worker count" true
    (r1.Exec.Chaos.verdicts = r3.Exec.Chaos.verdicts);
  checki "one verdict per plan" chaos_config.Exec.Chaos.plans
    (List.length r1.Exec.Chaos.verdicts);
  checki "no safety violations" 0 r1.Exec.Chaos.safety_violations;
  checki "no liveness violations" 0 r1.Exec.Chaos.liveness_violations

let test_chaos_breaks_current () =
  (* Regression pin: sampled case 15 of the default campaign (seed
     "chaos") breaks the deployed v3 protocol — its only fault plus two
     misbehaving authorities push v3 below the vote majority — while
     the partial-synchrony protocol rides it out. *)
  let spec = Exec.Chaos.sample_spec Exec.Chaos.default_config ~index:15 in
  let env = R.of_spec spec in
  let current = E.run E.Current env in
  let ours = E.run E.Ours env in
  checkb "current v3 fails" false current.R.success;
  checkb "ours succeeds" true ours.R.success;
  checkb "ours agreement holds" true ours.R.agreement

let suite =
  [
    ("spec: digest stability", `Quick, test_spec_digest_stability);
    ("spec: per-spec rng determinism", `Quick, test_spec_rng_deterministic);
    ("pool: empty job list", `Quick, test_pool_empty);
    ("pool: order and sequential fallback", `Quick, test_pool_order_and_fallback);
    ("pool: invalid jobs rejected", `Quick, test_pool_invalid_jobs);
    ("pool: a job that raises", `Quick, test_pool_exception);
    ("cache: computes once under contention", `Quick, test_cache_computes_once);
    ("cache: exceptions not cached", `Quick, test_cache_exception_not_cached);
    ("cache: capacity bound evicts FIFO", `Quick, test_cache_eviction);
    ("spec: prefix digest fast path", `Quick, test_spec_prefix_digest);
    ("campaign: plan/spec roundtrip and digests", `Quick, test_campaign_plan_roundtrip);
    ("campaign: map independent of jobs", `Slow, test_campaign_map_determinism);
    ("sweep: compiles the grid", `Quick, test_sweep_compiles_grid);
    ("sweep: fig10 sub-grid determinism jobs=1 vs jobs=4", `Slow,
      test_fig10_subgrid_determinism);
    ("sweep: run_job memoizes by spec digest", `Quick, test_run_job_cached);
    ("chaos: verdicts independent of jobs", `Slow, test_chaos_jobs_determinism);
    ("chaos: sampled plan breaks current v3", `Quick, test_chaos_breaks_current);
  ]
