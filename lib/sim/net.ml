(* Every message in flight is a slot in a struct-of-arrays pool, and
   the whole egress→arrival→finish chain runs through ONE engine
   callback (the trampoline): each event is (callback, flight index),
   so a send allocates no closures — the old implementation allocated
   up to three nested ones per message.  A flight's [stage] tells the
   trampoline what the next step is; slots recycle through a free list
   and only grow at a new high-water mark of concurrently in-flight
   messages.  A recycled slot keeps its last payload until reuse — the
   payloads are the simulation's own documents, alive elsewhere, so
   nothing leaks beyond the run. *)

let stage_self = 0 (* deliver locally, no bandwidth cost *)
let stage_arrival = 1 (* reserve ingress on the receiver's NIC *)
let stage_finish = 2 (* ingress done: deliver *)
let stage_finish_expired = 3 (* ingress done but past the deadline: drop *)

(* The stage field carries one flag bit above the 2-bit stage: a
   fault-injected duplicate delivers its payload twice at finish. *)
let flag_duplicate = 4
let stage_of bits = bits land 3

type 'm t = {
  engine : Engine.t;
  topology : Topology.t;
  nics : Nic.t array; (* one shared NIC per node: egress and ingress *)
  stats : Stats.t;
  mutable fault : Fault.t option; (* installed injector, if any *)
  mutable handler : (dst:int -> src:int -> 'm -> unit) option;
  mutable trampoline : Engine.callback option;
  (* flight pool, struct-of-arrays *)
  mutable fl_msg : 'm array;
  mutable fl_src : int array;
  mutable fl_dst : int array;
  mutable fl_size : int array;
  mutable fl_stage : int array;
  mutable fl_label : Stats.label array; (* interned label, for drop accounting *)
  mutable fl_sent_at : float array;
  mutable fl_deadline : float array; (* nan: no deadline *)
  mutable fl_next : int array; (* free-list links *)
  mutable fl_len : int;
  mutable fl_free : int;
}

let n t = Topology.n t.topology
let engine t = t.engine
let stats t = t.stats

let check_node t id name =
  if id < 0 || id >= n t then invalid_arg ("Net." ^ name ^ ": node out of range")

let nic t id =
  check_node t id "nic";
  t.nics.(id)

let set_handler t f = t.handler <- Some f

let set_fault t fault = t.fault <- Some fault
let fault t = t.fault

let deliver t ~dst ~src msg =
  match t.handler with
  | None -> failwith "Net.deliver: no handler installed"
  | Some f -> f ~dst ~src msg

let alloc_flight t msg =
  if t.fl_free < 0 then begin
    (* grow the pool, seeding fresh slots with the message at hand *)
    let cap = Array.length t.fl_src in
    let fresh = max 16 (2 * cap) in
    let grow_int a = let b = Array.make fresh 0 in Array.blit a 0 b 0 t.fl_len; b in
    let grow_float a = let b = Array.make fresh nan in Array.blit a 0 b 0 t.fl_len; b in
    let msgs = Array.make fresh msg in
    Array.blit t.fl_msg 0 msgs 0 t.fl_len;
    t.fl_msg <- msgs;
    t.fl_src <- grow_int t.fl_src;
    t.fl_dst <- grow_int t.fl_dst;
    t.fl_size <- grow_int t.fl_size;
    t.fl_stage <- grow_int t.fl_stage;
    t.fl_label <-
      (let b = Array.make fresh Stats.no_label in
       Array.blit t.fl_label 0 b 0 t.fl_len;
       b);
    t.fl_sent_at <- grow_float t.fl_sent_at;
    t.fl_deadline <- grow_float t.fl_deadline;
    t.fl_next <- grow_int t.fl_next;
    for i = cap to fresh - 1 do
      t.fl_next.(i) <- (if i + 1 < fresh then i + 1 else -1)
    done;
    t.fl_free <- cap;
    t.fl_len <- fresh
  end;
  let fl = t.fl_free in
  t.fl_free <- t.fl_next.(fl);
  t.fl_msg.(fl) <- msg;
  fl

let release_flight t fl =
  t.fl_next.(fl) <- t.fl_free;
  t.fl_free <- fl

(* Whether [node] is inside an injected crash window right now. *)
let crashed_now t node =
  match t.fault with
  | None -> false
  | Some fa -> Fault.crashed fa ~node ~now:(Engine.now t.engine)

let trampoline t fl =
  let bits = t.fl_stage.(fl) in
  let stage = stage_of bits in
  if stage = stage_self then begin
    let src = t.fl_src.(fl) and dst = t.fl_dst.(fl) and msg = t.fl_msg.(fl) in
    let label = t.fl_label.(fl) in
    release_flight t fl;
    if crashed_now t dst then Stats.record_drop t.stats ~node:dst ~label
    else deliver t ~dst ~src msg
  end
  else if stage = stage_arrival then begin
    let dst = t.fl_dst.(fl) and size = t.fl_size.(fl) in
    let arrival = Engine.now t.engine in
    (* Reserve the receiver's NIC at arrival, so ingress reservations
       happen in arrival order, not send order. *)
    let finish = Nic.reserve t.nics.(dst) ~now:arrival ~bytes:size in
    if Simtime.is_infinite finish then begin
      Stats.record_drop t.stats ~node:dst ~label:t.fl_label.(fl);
      release_flight t fl
    end
    else begin
      let deadline = t.fl_deadline.(fl) in
      let expired =
        (not (Float.is_nan deadline)) && finish -. t.fl_sent_at.(fl) > deadline
      in
      t.fl_stage.(fl) <-
        (if expired then stage_finish_expired else stage_finish)
        lor (bits land flag_duplicate);
      match t.trampoline with
      | Some cb -> ignore (Engine.schedule_call t.engine ~at:finish cb fl)
      | None -> assert false
    end
  end
  else begin
    (* stage_finish / stage_finish_expired *)
    let dst = t.fl_dst.(fl) and label = t.fl_label.(fl) in
    Stats.record_received t.stats ~node:dst ~bytes:t.fl_size.(fl);
    if stage = stage_finish_expired then begin
      Stats.record_drop t.stats ~node:dst ~label;
      release_flight t fl
    end
    else if crashed_now t dst then begin
      (* The receiver is inside a crash window when ingress completes:
         the message reached a dead node. *)
      Stats.record_drop t.stats ~node:dst ~label;
      release_flight t fl
    end
    else begin
      let src = t.fl_src.(fl) and msg = t.fl_msg.(fl) in
      let duplicate = bits land flag_duplicate <> 0 in
      release_flight t fl;
      deliver t ~dst ~src msg;
      if duplicate then deliver t ~dst ~src msg
    end
  end

let create ~engine ~topology ~bits_per_sec () =
  let n = Topology.n topology in
  let t =
    {
      engine;
      topology;
      nics = Array.init n (fun _ -> Nic.create ~bits_per_sec ());
      stats = Stats.create ~n;
      fault = None;
      handler = None;
      trampoline = None;
      fl_msg = [||];
      fl_src = [||];
      fl_dst = [||];
      fl_size = [||];
      fl_stage = [||];
      fl_label = [||];
      fl_sent_at = [||];
      fl_deadline = [||];
      fl_next = [||];
      fl_len = 0;
      fl_free = -1;
    }
  in
  t.trampoline <- Some (Engine.register_callback engine (fun fl -> trampoline t fl));
  t

let the_trampoline t =
  match t.trampoline with Some cb -> cb | None -> assert false

(* Internal send with sentinel-encoded optionals: [label] is an
   interned id or [Stats.no_label], [deadline] is NaN for none.  The
   caller has validated the node ids. *)
let send_msg t ~src ~dst ~size ~label ~deadline msg =
  let now = Engine.now t.engine in
  if (match t.fault with Some fa -> Fault.crashed fa ~node:src ~now | None -> false)
  then
    (* A down node transmits nothing: no bytes charged, the message
       simply never existed on the wire. *)
    Stats.record_drop t.stats ~node:dst ~label
  else if src = dst then begin
    (* Local delivery: no bandwidth cost, but still asynchronous so
       handlers never reenter the caller. *)
    let fl = alloc_flight t msg in
    t.fl_src.(fl) <- src;
    t.fl_dst.(fl) <- dst;
    t.fl_stage.(fl) <- stage_self;
    t.fl_label.(fl) <- label;
    ignore (Engine.schedule_call t.engine ~at:now (the_trampoline t) fl)
  end
  else begin
    Stats.record_send t.stats ~node:src ~bytes:size ~label;
    (* Link-fault verdict at send time: RNG draws happen in send order,
       which the engine makes deterministic. *)
    let decision =
      match t.fault with
      | None -> Fault.pass
      | Some fa -> Fault.decide fa ~now ~src ~dst
    in
    let egress_done = Nic.reserve t.nics.(src) ~now ~bytes:size in
    if Simtime.is_infinite egress_done then
      Stats.record_drop t.stats ~node:dst ~label
    else if decision.Fault.drop then
      (* Lost in the network after transmission: egress was charged,
         no arrival is scheduled. *)
      Stats.record_drop t.stats ~node:dst ~label
    else begin
      let arrival =
        Simtime.add egress_done (Topology.latency t.topology ~src ~dst)
        +. decision.Fault.extra_delay
      in
      let fl = alloc_flight t msg in
      t.fl_src.(fl) <- src;
      t.fl_dst.(fl) <- dst;
      t.fl_size.(fl) <- size;
      t.fl_stage.(fl) <-
        (stage_arrival lor if decision.Fault.duplicate then flag_duplicate else 0);
      t.fl_label.(fl) <- label;
      t.fl_sent_at.(fl) <- now;
      t.fl_deadline.(fl) <- deadline;
      ignore (Engine.schedule_call t.engine ~at:arrival (the_trampoline t) fl)
    end
  end

let send t ~src ~dst ~size ?label ?deadline msg =
  check_node t src "send";
  check_node t dst "send";
  if size < 0 then invalid_arg "Net.send: negative size";
  let label = match label with None -> Stats.no_label | Some l -> l in
  let deadline = match deadline with None -> nan | Some d -> d in
  send_msg t ~src ~dst ~size ~label ~deadline msg

let broadcast t ~src ~size ?label ?deadline msg =
  check_node t src "broadcast";
  if size < 0 then invalid_arg "Net.send: negative size";
  let label = match label with None -> Stats.no_label | Some l -> l in
  let deadline = match deadline with None -> nan | Some d -> d in
  (* One validated pass: n-1 unicasts in ascending id order whose
     egress reservations walk the source NIC's rate schedule once,
     monotonically (the NIC cursor makes the batch a single sweep). *)
  for dst = 0 to n t - 1 do
    if dst <> src then send_msg t ~src ~dst ~size ~label ~deadline msg
  done

let limit_node t ~node ~start ~stop ~bits_per_sec =
  check_node t node "limit_node";
  Nic.limit_window t.nics.(node) ~start ~stop ~bits_per_sec
