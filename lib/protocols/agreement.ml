(* See agreement.mli for the interface documentation. *)

module type S = sig
  type 'v t
  type 'v msg

  type 'v callbacks = {
    now : unit -> Tor_sim.Simtime.t;
    schedule : Tor_sim.Simtime.t -> (unit -> unit) -> Tor_sim.Engine.handle;
    cancel : Tor_sim.Engine.handle -> unit;
    send : dst:int -> 'v msg -> unit;
    validate : 'v -> bool;
    value_digest : 'v -> Crypto.Digest32.t;
    proposal : unit -> 'v option;
    decide : view:int -> 'v -> unit;
    on_view : view:int -> unit;
    log : string -> unit;
  }

  val name : string

  val create :
    keyring:Crypto.Keyring.t ->
    n:int ->
    id:int ->
    ?view_timeout:Tor_sim.Simtime.t ->
    'v callbacks ->
    'v t

  val start : 'v t -> unit
  val handle : 'v t -> src:int -> 'v msg -> unit
  val notify_ready : 'v t -> unit
  val decided : 'v t -> 'v option
  val current_view : 'v t -> int
  val leader : n:int -> view:int -> int
  val msg_size : value_size:('v -> int) -> 'v msg -> int
end
