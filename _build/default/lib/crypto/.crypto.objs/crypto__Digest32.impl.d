lib/crypto/digest32.ml: Format Sha256 String
