(* Multi-domain sharding: engine clamping and partitioning, the
   conservative-lookahead building blocks (keyed queue pops, topology
   lookahead bound, statistics merging), and the headline invariant —
   a sharded run is bit-identical to the single-domain run, for clean
   specs and across seeded chaos plans. *)

open Tor_sim
module R = Protocols.Runenv
module E = Torpartial.Experiments

(* --- Topology.min_latency ------------------------------------------------ *)

let test_min_latency_uniform () =
  let t = Topology.uniform ~n:5 ~latency:0.042 in
  Alcotest.(check (float 1e-12)) "uniform min" 0.042 (Topology.min_latency t);
  (* Degenerate uniform: a zero lookahead means sharding is unsafe;
     the bound must report it rather than hide it. *)
  let z = Topology.uniform ~n:5 ~latency:0. in
  Alcotest.(check (float 0.)) "zero-latency min" 0. (Topology.min_latency z)

let test_min_latency_single_node () =
  let t = Topology.uniform ~n:1 ~latency:0.01 in
  Alcotest.(check bool) "no links: never" true
    (Simtime.is_infinite (Topology.min_latency t))

let test_min_latency_matrix_and_realistic () =
  let m =
    Topology.of_matrix
      [| [| 0.; 0.03; 0.2 |]; [| 0.03; 0.; 0.007 |]; [| 0.2; 0.007; 0. |] |]
  in
  Alcotest.(check (float 1e-12)) "matrix min off-diagonal" 0.007
    (Topology.min_latency m);
  let r = Topology.realistic ~n:9 ~rng:(Rng.of_string_seed "min-latency") in
  let ml = Topology.min_latency r in
  Alcotest.(check bool) "realistic min within clamp" true
    (ml >= 0.005 && ml <= 0.150);
  (* The bound really is a lower bound on every link. *)
  for src = 0 to 8 do
    for dst = 0 to 8 do
      if src <> dst then
        Alcotest.(check bool) "bounds every link" true
          (Topology.latency r ~src ~dst >= ml)
    done
  done

(* --- Stats.merge_into ---------------------------------------------------- *)

let test_stats_merge_disjoint () =
  (* Two shards recording disjoint labels must merge to exactly what
     one instance records for the union of the traffic. *)
  let one = Stats.create ~n:4 in
  let a = Stats.create ~n:4 and b = Stats.create ~n:4 in
  let va = Stats.intern a "vote" and fb = Stats.intern b "fetch" in
  let vo = Stats.intern one "vote" and fo = Stats.intern one "fetch" in
  Stats.record_send a ~node:0 ~bytes:100 ~label:va;
  Stats.record_send one ~node:0 ~bytes:100 ~label:vo;
  Stats.record_received a ~node:1 ~bytes:100;
  Stats.record_received one ~node:1 ~bytes:100;
  Stats.record_send b ~node:2 ~bytes:7 ~label:fb;
  Stats.record_send one ~node:2 ~bytes:7 ~label:fo;
  Stats.record_drop b ~node:3 ~label:fb;
  Stats.record_drop one ~node:3 ~label:fo;
  let m = Stats.create ~n:4 in
  Stats.merge_into ~into:m a;
  Stats.merge_into ~into:m b;
  Alcotest.(check int) "total bytes" (Stats.total_bytes_sent one)
    (Stats.total_bytes_sent m);
  for node = 0 to 3 do
    Alcotest.(check int) "bytes_sent" (Stats.bytes_sent one node) (Stats.bytes_sent m node);
    Alcotest.(check int) "bytes_received" (Stats.bytes_received one node)
      (Stats.bytes_received m node);
    Alcotest.(check int) "messages_sent" (Stats.messages_sent one node)
      (Stats.messages_sent m node);
    Alcotest.(check int) "dropped_at" (Stats.dropped_at one node) (Stats.dropped_at m node)
  done;
  Alcotest.(check int) "dropped" (Stats.dropped one) (Stats.dropped m);
  Alcotest.(check (list (pair string int))) "labels" (Stats.labels one) (Stats.labels m);
  Alcotest.(check (list (pair string int))) "dropped labels" (Stats.dropped_labels one)
    (Stats.dropped_labels m)

let test_stats_merge_overlapping () =
  (* The same label interned on both shards — possibly under different
     dense ids — must merge by name, not by id. *)
  let a = Stats.create ~n:2 and b = Stats.create ~n:2 in
  let _ = Stats.intern a "only-a" in
  let va = Stats.intern a "vote" in
  let vb = Stats.intern b "vote" in
  (* different dense ids on purpose *)
  Stats.record_send a ~node:0 ~bytes:10 ~label:va;
  Stats.record_send b ~node:1 ~bytes:32 ~label:vb;
  Stats.record_drop b ~node:0 ~label:vb;
  let m = Stats.create ~n:2 in
  Stats.merge_into ~into:m a;
  Stats.merge_into ~into:m b;
  Alcotest.(check int) "vote bytes summed" 42 (Stats.label_bytes m "vote");
  Alcotest.(check int) "vote drops" 1 (Stats.label_dropped m "vote");
  Alcotest.(check int) "unused label invisible" 0 (Stats.label_bytes m "only-a");
  Alcotest.(check (list (pair string int))) "labels by name" [ ("vote", 42) ]
    (Stats.labels m);
  Alcotest.(check
              (list (pair string int)))
    "dropped labels by name"
    [ ("vote", 1) ]
    (Stats.dropped_labels m)

let test_stats_merge_size_mismatch () =
  let a = Stats.create ~n:2 and b = Stats.create ~n:3 in
  Alcotest.check_raises "node counts must match"
    (Invalid_argument "Stats.merge_into: node-count mismatch") (fun () ->
      Stats.merge_into ~into:a b)

(* --- Event_queue: keyed pushes and two-bound pops ------------------------ *)

let test_queue_push_keyed_order () =
  let q = Event_queue.create () in
  (* Equal times pop in key order, independent of push order. *)
  Event_queue.push_keyed q ~time:1. ~key:30 "c";
  Event_queue.push_keyed q ~time:1. ~key:10 "a";
  Event_queue.push_keyed q ~time:0.5 ~key:99 "first";
  Event_queue.push_keyed q ~time:1. ~key:20 "b";
  let popped = List.init 4 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "key order at equal times"
    [ "first"; "a"; "b"; "c" ] popped

let test_queue_pop_if_within () =
  let q = Event_queue.create () in
  Event_queue.push_keyed q ~time:1. ~key:0 "a";
  (* Head at the strict bound stays queued... *)
  Alcotest.(check string) "strict bound excludes" "none"
    (Event_queue.pop_if_within q ~strict:1. ~le:10. ~default:"none");
  (* ...but below the strict bound and at the inclusive cap it pops. *)
  Alcotest.(check string) "le bound includes" "a"
    (Event_queue.pop_if_within q ~strict:2. ~le:1. ~default:"none");
  Event_queue.push_keyed q ~time:3. ~key:0 "b";
  Alcotest.(check string) "beyond le stays" "none"
    (Event_queue.pop_if_within q ~strict:10. ~le:2.9 ~default:"none");
  Alcotest.(check string) "within both pops" "b"
    (Event_queue.pop_if_within q ~strict:3.5 ~le:3. ~default:"none");
  Alcotest.(check string) "empty queue" "none"
    (Event_queue.pop_if_within q ~strict:10. ~le:10. ~default:"none")

(* --- Engine sharding ----------------------------------------------------- *)

let test_engine_shard_clamping () =
  let count ?shards ?nodes ?lookahead () =
    Engine.shard_count (Engine.create ?shards ?nodes ?lookahead ())
  in
  Alcotest.(check int) "default single" 1 (count ());
  Alcotest.(check int) "explicit single" 1 (count ~shards:1 ~nodes:8 ~lookahead:0.005 ());
  Alcotest.(check int) "two shards" 2 (count ~shards:2 ~nodes:8 ~lookahead:0.005 ());
  Alcotest.(check int) "capped at nodes" 8 (count ~shards:50 ~nodes:8 ~lookahead:0.005 ());
  Alcotest.(check int) "one node" 1 (count ~shards:4 ~nodes:1 ~lookahead:0.005 ());
  Alcotest.(check int) "zero lookahead" 1 (count ~shards:4 ~nodes:8 ~lookahead:0. ());
  Alcotest.(check int) "unbounded lookahead" 1
    (count ~shards:4 ~nodes:8 ~lookahead:Simtime.never ());
  Alcotest.check_raises "negative shards"
    (Invalid_argument "Engine.create: shards must be >= 1") (fun () ->
      ignore (Engine.create ~shards:0 ~nodes:8 ~lookahead:0.005 ()))

let test_engine_shard_partition () =
  let e = Engine.create ~shards:4 ~nodes:9 ~lookahead:0.005 () in
  Alcotest.(check int) "ownerless on shard 0" 0 (Engine.shard_of_node e (-1));
  (* Contiguous blocks covering all nodes, each shard non-empty. *)
  let seen = Array.make 4 0 in
  let prev = ref 0 in
  for node = 0 to 8 do
    let s = Engine.shard_of_node e node in
    Alcotest.(check bool) "monotone" true (s >= !prev);
    prev := s;
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun s c -> Alcotest.(check bool) (Printf.sprintf "shard %d non-empty" s) true (c > 0))
    seen

let test_engine_multi_domain_run () =
  (* Two shards, events on both sides, no cross-shard traffic: all
     events run, in time order per shard, and the clock ends aligned. *)
  let e = Engine.create ~shards:2 ~nodes:4 ~lookahead:0.01 () in
  let log = Array.make 2 [] in
  for node = 0 to 3 do
    for k = 0 to 4 do
      let at = (0.1 *. float_of_int k) +. (0.01 *. float_of_int node) in
      ignore
        (Engine.schedule e ~owner:node ~at (fun () ->
             let d = Engine.current_shard e in
             log.(d) <- (node, at) :: log.(d)))
    done
  done;
  Engine.run e;
  let all = List.concat [ log.(0); log.(1) ] in
  Alcotest.(check int) "all events ran" 20 (List.length all);
  Array.iter
    (fun lane ->
      let times = List.rev_map snd lane in
      Alcotest.(check bool) "per-shard time order" true
        (List.sort compare times = times))
    log;
  Alcotest.(check (float 1e-9)) "clock at last event" 0.43 (Engine.now e);
  Alcotest.(check int) "queue drained" 0 (Engine.pending e)

let test_engine_cross_shard_schedule_raises () =
  let e = Engine.create ~shards:2 ~nodes:4 ~lookahead:0.01 () in
  let raised = ref false in
  ignore
    (Engine.schedule e ~owner:0 ~at:0.1 (fun () ->
         (* Node 0 lives on shard 0; node 3 on shard 1.  Direct
            scheduling into another shard's queue mid-run is the data
            race the mailboxes exist to prevent. *)
         match Engine.schedule e ~owner:3 ~at:0.2 (fun () -> ()) with
         | _ -> ()
         | exception Invalid_argument _ -> raised := true));
  Engine.run e;
  Alcotest.(check bool) "cross-shard schedule rejected" true !raised

(* --- Sharded protocol runs are bit-identical ----------------------------- *)

(* Everything observable about a run: the verdicts, traffic totals,
   per-label accounting, each authority's document digest / signature
   count / decision times, and the full merged trace.  Structural
   equality on [report] itself would compare hash tables, so flatten
   to a canonical summary first. *)
let summary (r : R.report) =
  let auth (a : R.authority_result) =
    ( (match a.R.consensus with
      | Some c -> Crypto.Digest32.hex (Dirdoc.Consensus.digest c)
      | None -> "none"),
      a.R.signatures,
      a.R.decided_at,
      a.R.network_time )
  in
  let stats = r.R.result.R.stats in
  ( ( r.R.protocol,
      r.R.success,
      r.R.agreement,
      r.R.success_latency,
      r.R.decided_at_latest ),
    (r.R.total_bytes, r.R.dropped, Stats.labels stats, Stats.dropped_labels stats),
    Array.to_list (Array.map auth r.R.result.R.per_authority),
    List.map Trace.render (Trace.records r.R.result.R.trace) )

let run_with_shards spec protocol shards =
  summary (E.run protocol (R.of_spec { spec with R.Spec.shards }))

let check_shard_counts ~name spec protocol counts =
  let base = run_with_shards spec protocol 1 in
  List.iter
    (fun s ->
      let got = run_with_shards spec protocol s in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d shards == 1 shard" name s)
        true (got = base))
    counts

let e2e_spec =
  { R.Spec.default with R.Spec.n_relays = 400; horizon = 600. }

let test_sharded_run_deterministic () =
  check_shard_counts ~name:"ours" e2e_spec E.Ours [ 2; 4; 8 ]

let test_sharded_run_deterministic_current () =
  check_shard_counts ~name:"current" e2e_spec E.Current [ 2; 4 ]

let test_sharded_run_deterministic_sync () =
  check_shard_counts ~name:"synchronous" e2e_spec E.Synchronous [ 2; 4 ]

let test_sharded_run_deterministic_attack () =
  let spec =
    {
      R.Spec.default with
      R.Spec.n_relays = 400;
      horizon = 900.;
      attacks = Attack.Ddos.bandwidth_attack ~n:9 ();
    }
  in
  check_shard_counts ~name:"ours under flood" spec E.Ours [ 2; 4 ]

let test_sharded_chaos_deterministic () =
  (* The satellite gate: >= 20 seeded chaos fault plans — drops,
     partitions, jitter, duplicates, crash windows, misbehaving
     authorities — each bit-identical between 1 and 2 domains. *)
  let config =
    { Exec.Chaos.default_config with Exec.Chaos.n_relays = 120; horizon = 900. }
  in
  for index = 0 to 19 do
    let spec = Exec.Chaos.sample_spec config ~index in
    let base = run_with_shards spec E.Ours 1 in
    let sharded = run_with_shards spec E.Ours 2 in
    Alcotest.(check bool)
      (Printf.sprintf "chaos plan %d: 2 shards == 1 shard" index)
      true (sharded = base)
  done

(* --- Arena reuse is bit-identical ---------------------------------------- *)

(* The campaign counterpart of the sharding invariant: running a plan
   on a reused (reset) simulator arena must produce exactly the report
   a fresh construction produces.  [warmup] runs a *different* plan
   through the context first, so the arena is genuinely dirty — stale
   heap payloads, interned labels, NIC schedules — when the plan under
   test acquires it. *)
let fresh_vs_reused ~name ?(shards = 1) protocol specs =
  let base = { e2e_spec with R.Spec.shards } in
  let ctx = Exec.Campaign.create base in
  let warmup =
    Exec.Campaign.plan_of_spec
      { base with R.Spec.attacks = Attack.Ddos.knockout ~n:9 () }
  in
  ignore (E.run protocol (Exec.Campaign.env_of ctx warmup) : R.report);
  List.iteri
    (fun i spec ->
      let spec = { spec with R.Spec.shards } in
      let fresh = summary (E.run protocol (R.of_spec spec)) in
      let reused =
        summary
          (E.run protocol (Exec.Campaign.env_of ctx (Exec.Campaign.plan_of_spec spec)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s@%dd plan %d: reused arena == fresh" name shards i)
        true (reused = fresh))
    specs

let flood_spec =
  { e2e_spec with R.Spec.attacks = Attack.Ddos.bandwidth_attack ~n:9 () }

let test_arena_reuse_ours () =
  fresh_vs_reused ~name:"ours" E.Ours [ e2e_spec; flood_spec ];
  fresh_vs_reused ~name:"ours" ~shards:4 E.Ours [ e2e_spec; flood_spec ]

let test_arena_reuse_current () =
  fresh_vs_reused ~name:"current" E.Current [ e2e_spec; flood_spec ];
  fresh_vs_reused ~name:"current" ~shards:4 E.Current [ e2e_spec; flood_spec ]

let test_arena_reuse_sync () =
  fresh_vs_reused ~name:"synchronous" E.Synchronous [ e2e_spec; flood_spec ];
  fresh_vs_reused ~name:"synchronous" ~shards:4 E.Synchronous [ e2e_spec; flood_spec ]

let test_arena_reuse_chaos () =
  (* 20 seeded chaos plans — faults, partitions, crash windows,
     misbehaving authorities — streamed through ONE context, each
     compared against its own fresh run. *)
  let config =
    { Exec.Chaos.default_config with Exec.Chaos.n_relays = 120; horizon = 900. }
  in
  let base = Exec.Chaos.base_spec config in
  let ctx = Exec.Campaign.create base in
  for index = 0 to 19 do
    let spec = Exec.Chaos.sample_spec config ~index in
    let fresh = summary (E.run E.Ours (R.of_spec spec)) in
    let reused =
      summary (E.run E.Ours (Exec.Campaign.env_of ctx (Exec.Campaign.plan_of_spec spec)))
    in
    Alcotest.(check bool)
      (Printf.sprintf "chaos plan %d: reused arena == fresh" index)
      true (reused = fresh)
  done

let test_arena_reset_after_exception () =
  (* A run that dies mid-simulation leaves the arena dirty at an
     arbitrary point; reset-on-acquire must still hand back a simulator
     that reproduces the fresh result. *)
  let env = R.of_spec e2e_spec in
  let env = { env with R.arena = Some (R.Arena.create ()) } in
  let module S = R.Simulator (struct
    type msg = unit
  end) in
  let engine, _net = S.obtain ~driver:"test-exn" env in
  ignore
    (Tor_sim.Engine.schedule engine ~owner:0 ~at:1.0 (fun () -> failwith "mid-run"));
  Alcotest.check_raises "simulated failure propagates" (Failure "mid-run") (fun () ->
      Tor_sim.Engine.run engine);
  (* Same slot, acquired again: reset on acquisition, fully reusable. *)
  let engine2, net2 = S.obtain ~driver:"test-exn" env in
  Alcotest.(check int) "queue empty after reset" 0 (Tor_sim.Engine.pending engine2);
  let delivered = ref 0 in
  Net.set_handler net2 (fun ~dst:_ ~src:_ () -> incr delivered);
  Net.send net2 ~src:0 ~dst:1 ~size:100 ();
  Tor_sim.Engine.run engine2;
  Alcotest.(check int) "reused simulator delivers" 1 !delivered;
  (* And a full protocol run through the same dirtied arena still
     matches fresh. *)
  let fresh = summary (E.run E.Ours (R.of_spec e2e_spec)) in
  let reused = summary (E.run E.Ours env) in
  Alcotest.(check bool) "protocol run after exception == fresh" true (reused = fresh)

let test_arena_obs_reset () =
  (* Telemetry accumulated by one run must not leak into the next
     run's histograms/spans through the reused network and engine. *)
  let ctx = Exec.Campaign.create e2e_spec in
  let plan = Exec.Campaign.plan_of_spec e2e_spec in
  let fresh_env = { (R.of_spec e2e_spec) with R.telemetry = true } in
  let fresh = E.run E.Ours fresh_env in
  let first = E.run E.Ours (Exec.Campaign.env_of ~telemetry:true ctx plan) in
  let second = E.run E.Ours (Exec.Campaign.env_of ~telemetry:true ctx plan) in
  let counts r =
    ( Option.map Obs.Metrics.count (R.time_to_decision r),
      Option.map Obs.Metrics.count (R.delivery_latency r "proposal"),
      Option.map
        (fun (o : R.obs) -> List.length o.R.spans)
        (R.report_obs r) )
  in
  Alcotest.(check bool) "first reused telemetry == fresh" true
    (counts first = counts fresh);
  Alcotest.(check bool) "second reused telemetry == fresh (no accumulation)" true
    (counts second = counts fresh)

let test_effective_shards () =
  let env = R.of_spec { e2e_spec with R.Spec.shards = 4 } in
  Alcotest.(check int) "requested honored" 4 (R.effective_shards env);
  let env1 = R.of_spec e2e_spec in
  Alcotest.(check int) "default single" 1 (R.effective_shards env1);
  let many = R.of_spec { e2e_spec with R.Spec.shards = 64 } in
  Alcotest.(check int) "capped at n" 9 (R.effective_shards many)

(* --- Pool.clamp_shards --------------------------------------------------- *)

let test_pool_clamp_shards () =
  let rec_count = Exec.Pool.default_jobs () in
  Alcotest.(check int) "jobs=1 passes through" 8
    (Exec.Pool.clamp_shards ~jobs:1 ~shards:8);
  Alcotest.(check int) "within budget" (max 1 (min 2 (rec_count / 2)))
    (Exec.Pool.clamp_shards ~jobs:2 ~shards:2);
  Alcotest.(check int) "oversubscription floored at 1" 1
    (Exec.Pool.clamp_shards ~jobs:(2 * rec_count) ~shards:8);
  Alcotest.check_raises "jobs >= 1"
    (Invalid_argument "Pool.clamp_shards: jobs must be >= 1") (fun () ->
      ignore (Exec.Pool.clamp_shards ~jobs:0 ~shards:2));
  Alcotest.check_raises "shards >= 1"
    (Invalid_argument "Pool.clamp_shards: shards must be >= 1") (fun () ->
      ignore (Exec.Pool.clamp_shards ~jobs:2 ~shards:0))

let suite =
  [
    ("topology min latency: uniform", `Quick, test_min_latency_uniform);
    ("topology min latency: single node", `Quick, test_min_latency_single_node);
    ( "topology min latency: matrix + realistic",
      `Quick,
      test_min_latency_matrix_and_realistic );
    ("stats merge: disjoint labels", `Quick, test_stats_merge_disjoint);
    ("stats merge: overlapping labels", `Quick, test_stats_merge_overlapping);
    ("stats merge: size mismatch", `Quick, test_stats_merge_size_mismatch);
    ("event queue: keyed push order", `Quick, test_queue_push_keyed_order);
    ("event queue: two-bound pop", `Quick, test_queue_pop_if_within);
    ("engine: shard clamping", `Quick, test_engine_shard_clamping);
    ("engine: shard partition", `Quick, test_engine_shard_partition);
    ("engine: multi-domain run", `Quick, test_engine_multi_domain_run);
    ( "engine: cross-shard schedule raises",
      `Quick,
      test_engine_cross_shard_schedule_raises );
    ("runenv: effective shards", `Quick, test_effective_shards);
    ("pool: clamp shards", `Quick, test_pool_clamp_shards);
    ("sharded run bit-identical (ours)", `Quick, test_sharded_run_deterministic);
    ( "sharded run bit-identical (current)",
      `Quick,
      test_sharded_run_deterministic_current );
    ( "sharded run bit-identical (synchronous)",
      `Quick,
      test_sharded_run_deterministic_sync );
    ( "sharded run bit-identical under flood",
      `Quick,
      test_sharded_run_deterministic_attack );
    ("sharded chaos plans bit-identical", `Slow, test_sharded_chaos_deterministic);
    ("arena reuse bit-identical (ours)", `Quick, test_arena_reuse_ours);
    ("arena reuse bit-identical (current)", `Quick, test_arena_reuse_current);
    ("arena reuse bit-identical (synchronous)", `Quick, test_arena_reuse_sync);
    ("arena reuse across chaos plans", `Slow, test_arena_reuse_chaos);
    ("arena reusable after mid-run exception", `Quick, test_arena_reset_after_exception);
    ("arena telemetry does not accumulate", `Quick, test_arena_obs_reset);
  ]
