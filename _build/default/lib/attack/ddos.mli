(** DDoS attack scenarios against the directory authorities
    (Section 4).

    The attack model is the one the paper (and Jansen et al.) use in
    Shadow: a stressor flood consumes the target's link, leaving a
    residual bandwidth for the directory protocol.  Knocking out a
    majority of the 9 authorities for the first two protocol rounds
    (300 s) is enough to stop consensus generation. *)

val authority_link_bits_per_sec : float
(** 250 Mbit/s — the authority link capacity reported in the 2021
    incident (gitlab issue #33018) and by bandwidth measurements. *)

val ddos_residual_bits_per_sec : float
(** 0.5 Mbit/s — bandwidth left to a node under a stressor flood
    (Jansen et al., the dashed line of Figure 7). *)

val vote_window_seconds : float
(** 300 s — the first two rounds, during which votes travel; the only
    window the attacker must cover. *)

val majority_targets : n:int -> int list
(** The smallest majority of authorities ([⌊n/2⌋ + 1] of them —
    5 of 9), lowest ids first. *)

val bandwidth_attack :
  ?targets:int list ->
  ?start:Tor_sim.Simtime.t ->
  ?stop:Tor_sim.Simtime.t ->
  ?residual_bits_per_sec:float ->
  n:int ->
  unit ->
  Protocols.Runenv.attack list
(** The paper's attack: flood a majority of authorities
    ([majority_targets] by default) during the vote window
    ([0, 300 s)), leaving [ddos_residual_bits_per_sec].  Raises
    [Invalid_argument] on an empty or out-of-range target list. *)

val knockout :
  ?targets:int list ->
  ?start:Tor_sim.Simtime.t ->
  ?stop:Tor_sim.Simtime.t ->
  n:int ->
  unit ->
  Protocols.Runenv.attack list
(** The Figure 11 scenario: targets fully offline (zero residual)
    during the window; their traffic drains when it ends. *)
