(* Tests for the discrete-event simulator: event ordering, the NIC
   bandwidth model (incl. DDoS windows and deadlines), determinism. *)

open Tor_sim

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

(* --- Simtime ---------------------------------------------------------------- *)

let test_simtime () =
  checkf "minutes" 300. (Simtime.minutes 5.);
  checkf "ms" 0.15 (Simtime.ms 150.);
  checkb "never" true (Simtime.is_infinite Simtime.never);
  Alcotest.(check string) "pp" "02:30.000" (Format.asprintf "%a" Simtime.pp 150.);
  Alcotest.(check string) "tor log epoch" "Jan 01 01:00:00.000"
    (Format.asprintf "%a" Simtime.pp_tor_log 0.);
  Alcotest.(check string) "tor log" "Jan 01 01:24:30.011"
    (Format.asprintf "%a" Simtime.pp_tor_log 1470.011)

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.of_string_seed "seed" and d = Rng.of_string_seed "seed" in
  Alcotest.(check int64) "string seed" (Rng.next_int64 c) (Rng.next_int64 d)

let test_rng_split () =
  let a = Rng.create 1L in
  let child = Rng.split a in
  checkb "child differs from parent stream" true
    (Rng.next_int64 child <> Rng.next_int64 a)

let qcheck_rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair (int_range 1 1000) small_int)
    (fun (bound, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_rng_range =
  QCheck.Test.make ~name:"rng range inclusive" ~count:200
    QCheck.(pair (pair (int_range (-50) 50) (int_range 0 100)) small_int)
    (fun ((min, extra), seed) ->
      let max = min + extra in
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.range rng ~min ~max in
      v >= min && v <= max)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 7L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_gaussian () =
  let rng = Rng.create 9L in
  let k = 20_000 in
  let sum = ref 0. in
  for _ = 1 to k do
    sum := !sum +. Rng.gaussian rng ~mean:5. ~stddev:2.
  done;
  let mean = !sum /. float_of_int k in
  checkb "gaussian mean near 5" true (Float.abs (mean -. 5.) < 0.1)

let test_rng_errors () =
  let rng = Rng.create 0L in
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng ([] : int list)))

(* --- Event queue ------------------------------------------------------------ *)

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let pop () = match Event_queue.pop q with Some (_, x) -> x | None -> "-" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] [ first; second; third ];
  checkb "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun x -> Event_queue.push q ~time:1. x) [ 1; 2; 3; 4; 5 ];
  let out = List.init 5 (fun _ -> match Event_queue.pop q with Some (_, x) -> x | None -> -1) in
  Alcotest.(check (list int)) "insertion order at equal times" [ 1; 2; 3; 4; 5 ] out

let test_queue_invalid_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "infinite" (Invalid_argument "Event_queue.push: time must be finite")
    (fun () -> Event_queue.push q ~time:infinity ())

let qcheck_queue_sorted =
  QCheck.Test.make ~name:"event queue pops sorted" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 100) (float_range 0. 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      let out = drain [] in
      out = List.sort Float.compare times)

(* Interleaved push/pop stress against a sorted-list model: exercises
   the vacated-slot handling in [pop] (the popped root is parked in the
   freed slot) under repeated fill/drain cycles, including FIFO ties. *)
let qcheck_queue_interleaved =
  QCheck.Test.make ~name:"event queue interleaved push/pop matches model"
    ~count:100
    QCheck.(
      list_of_size (Gen.int_range 0 300)
        (pair bool (int_range 0 20) (* coarse times force FIFO ties *)))
    (fun ops ->
      let q = Event_queue.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      let pop_both () =
        match (Event_queue.pop q, !model) with
        | None, [] -> ()
        | Some (time, s), (mt, ms) :: rest ->
            if not (Float.equal time mt && s = ms) then ok := false;
            model := rest
        | Some _, [] -> ok := false
        | None, _ :: _ ->
            ok := false;
            model := []
      in
      List.iter
        (fun (is_pop, t) ->
          if is_pop then pop_both ()
          else begin
            let t = float_of_int t in
            Event_queue.push q ~time:t !seq;
            (* insert after every entry at an earlier-or-equal time, so
               the model pops FIFO within equal times *)
            let rec ins = function
              | ((mt, _) as hd) :: rest when mt <= t -> hd :: ins rest
              | rest -> (t, !seq) :: rest
            in
            model := ins !model;
            incr seq
          end)
        ops;
      while not (Event_queue.is_empty q) || !model <> [] do
        pop_both ()
      done;
      !ok)

(* --- Engine -------------------------------------------------------------- *)

let test_engine_order_and_clock () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Engine.now e) :: !log in
  ignore (Engine.schedule e ~at:2. (note "b"));
  ignore (Engine.schedule e ~at:1. (note "a"));
  ignore (Engine.schedule_in e ~after:3. (note "c"));
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.))))
    "ordered with clock" [ ("a", 1.); ("b", 2.); ("c", 3.) ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:1. (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  checkb "cancelled event did not fire" false !fired

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~at:1. (fun () -> incr fired));
  ignore (Engine.schedule e ~at:10. (fun () -> incr fired));
  Engine.run ~until:5. e;
  checki "only events before horizon" 1 !fired;
  checkf "clock at horizon" 5. (Engine.now e)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let order = ref [] in
  ignore
    (Engine.schedule e ~at:1. (fun () ->
         order := "outer" :: !order;
         ignore (Engine.schedule_in e ~after:1. (fun () -> order := "inner" :: !order))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "inner"; "outer" ] !order

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:5. (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: time is in the past")
    (fun () -> ignore (Engine.schedule e ~at:1. (fun () -> ())))

(* Event cells are pooled and recycled; a handle carries the cell's
   generation, so a handle kept across the cell's reuse must become
   inert instead of cancelling the NEW occupant. *)
let test_engine_pool_reuse_and_stale_cancel () =
  let e = Engine.create () in
  let fired = ref 0 in
  (* Fire one event, keep its (now stale) handle. *)
  let stale = Engine.schedule e ~at:1. (fun () -> incr fired) in
  Engine.run e;
  checki "first fired" 1 !fired;
  (* The freed cell is recycled for the next event. *)
  let fresh = Engine.schedule e ~at:2. (fun () -> incr fired) in
  Engine.cancel e stale;
  (* stale: must be a no-op *)
  Engine.run e;
  checki "stale cancel did not kill the recycled cell" 2 !fired;
  Engine.cancel e fresh;
  (* fired: also a no-op *)
  (* Cancelling twice is a no-op too. *)
  let h = Engine.schedule e ~at:3. (fun () -> incr fired) in
  Engine.cancel e h;
  Engine.cancel e h;
  Engine.run e;
  checki "double cancel" 2 !fired

(* Schedule/cancel churn: the pool must recycle cells without leaking
   (pending drains to zero) and cancelled events must never fire even
   when their cells are reused many times over. *)
let test_engine_pool_stress () =
  let e = Engine.create () in
  let rng = Rng.create 3L in
  let fired = ref 0 in
  let expected = ref 0 in
  for round = 0 to 99 do
    let base = float_of_int round +. 1. in
    let handles =
      List.init 50 (fun k ->
          Engine.schedule e
            ~at:(base +. (float_of_int k /. 1000.))
            (fun () -> incr fired))
    in
    let cancelled =
      List.filter (fun _ -> Rng.int rng 2 = 0) handles
    in
    List.iter (fun h -> Engine.cancel e h) cancelled;
    (* cancel some twice — still inert *)
    List.iteri (fun i h -> if i land 1 = 0 then Engine.cancel e h) cancelled;
    expected := !expected + 50 - List.length cancelled;
    Engine.run e
  done;
  checki "every non-cancelled event fired exactly once" !expected !fired;
  checki "no events leaked in the queue" 0 (Engine.pending e)

(* Cancelled events still advance the clock to their scheduled time:
   the husk is popped, not skipped. *)
let test_engine_cancelled_advances_clock () =
  let e = Engine.create () in
  let h = Engine.schedule e ~at:7. (fun () -> ()) in
  Engine.cancel e h;
  Engine.run e;
  checkf "clock reaches the cancelled event's time" 7. (Engine.now e)

let test_queue_pop_if_before () =
  let q = Event_queue.create () in
  checki "empty yields default" (-1) (Event_queue.pop_if_before q ~horizon:10. ~default:(-1));
  Event_queue.push q ~time:1. 100;
  Event_queue.push q ~time:5. 200;
  Event_queue.push q ~time:9. 300;
  checki "pops earliest" 100 (Event_queue.pop_if_before q ~horizon:10. ~default:(-1));
  checki "pops next" 200 (Event_queue.pop_if_before q ~horizon:5. ~default:(-1));
  checki "beyond horizon stays queued" (-1)
    (Event_queue.pop_if_before q ~horizon:8.999 ~default:(-1));
  checki "still there" 1 (Event_queue.size q);
  checki "exact horizon pops" 300 (Event_queue.pop_if_before q ~horizon:9. ~default:(-1));
  checki "drained" (-1) (Event_queue.pop_if_before q ~horizon:infinity ~default:(-1))

(* --- NIC ---------------------------------------------------------------- *)

let test_nic_basic_rate () =
  (* 1 Mbit/s = 125 kB/s; 125 kB takes 1 s. *)
  let nic = Nic.create ~bits_per_sec:1e6 () in
  checkf "transfer time" 1. (Nic.transfer_time nic ~now:0. ~bytes:125_000);
  checkf "fifo accumulates" 2.
    (let _ = Nic.reserve nic ~now:0. ~bytes:125_000 in
     Nic.reserve nic ~now:0. ~bytes:125_000)

let test_nic_zero_rate_forever () =
  let nic = Nic.create ~bits_per_sec:0. () in
  checkb "never finishes" true
    (Simtime.is_infinite (Nic.transfer_time nic ~now:0. ~bytes:1))

let test_nic_window_stall () =
  (* Rate zero during [0, 10); transfer enqueued at t=0 completes at
     10 + size/rate once the window lifts. *)
  let nic = Nic.create ~bits_per_sec:1e6 () in
  Nic.limit_window nic ~start:0. ~stop:10. ~bits_per_sec:0.;
  checkf "drains after window" 11. (Nic.reserve nic ~now:0. ~bytes:125_000)

let test_nic_window_partial () =
  (* 2 s worth of bytes at full rate, but the second half of the
     transfer crosses into a half-rate window. *)
  let nic = Nic.create ~bits_per_sec:1e6 () in
  Nic.limit_window nic ~start:1. ~stop:100. ~bits_per_sec:0.5e6;
  (* 250 kB: 125 kB in the first second, the rest at half rate = 2 s. *)
  checkf "split across rates" 3. (Nic.reserve nic ~now:0. ~bytes:250_000)

let test_nic_window_restores () =
  let nic = Nic.create ~bits_per_sec:1e6 () in
  Nic.limit_window nic ~start:5. ~stop:10. ~bits_per_sec:0.1e6;
  checkf "before" 1e6 (Nic.rate_at nic 0.);
  checkf "inside" 0.1e6 (Nic.rate_at nic 7.);
  checkf "after" 1e6 (Nic.rate_at nic 12.)

let test_nic_breakpoint_order () =
  let nic = Nic.create ~bits_per_sec:1e6 () in
  Nic.set_rate nic ~from:10. ~bits_per_sec:2e6;
  Alcotest.check_raises "out of order"
    (Invalid_argument "Nic.set_rate: breakpoints must be appended in time order")
    (fun () -> Nic.set_rate nic ~from:5. ~bits_per_sec:1e6)

(* Reference list-walk model of the rate schedule, written the way the
   pre-indexed NIC worked: a newest-first association of breakpoints,
   scanned end to end per lookup.  The arithmetic per segment matches
   the NIC op for op, so results must be EXACTLY equal (float 0.). *)
module Nic_reference = struct
  type t = {
    base : float; (* bytes/s *)
    mutable bps_newest_first : (float * float) list; (* from, bytes/s *)
    mutable busy_until : float;
  }

  let create ~bits_per_sec = { base = bits_per_sec /. 8.; bps_newest_first = []; busy_until = 0. }

  let set_rate t ~from ~bits_per_sec =
    t.bps_newest_first <- (from, bits_per_sec /. 8.) :: t.bps_newest_first

  let rate_at t time =
    let rec go = function
      | [] -> t.base
      | (from, r) :: rest -> if from <= time then r else go rest
    in
    go t.bps_newest_first

  (* Next breakpoint strictly after [time], or none. *)
  let next_change t time =
    List.fold_left
      (fun acc (from, _) ->
        if from > time then
          match acc with Some c when c <= from -> acc | _ -> Some from
        else acc)
      None t.bps_newest_first

  let finish_at t ~start ~bytes =
    let rec walk time remaining =
      if remaining <= 0. then time
      else
        let rate = rate_at t time in
        match next_change t time with
        | None -> if rate <= 0. then Simtime.never else time +. (remaining /. rate)
        | Some change ->
            if rate <= 0. then walk change remaining
            else
              let capacity = rate *. (change -. time) in
              if remaining <= capacity then time +. (remaining /. rate)
              else walk change (remaining -. capacity)
    in
    walk start (float_of_int bytes)

  let reserve t ~now ~bytes =
    let start = Float.max now t.busy_until in
    if Simtime.is_infinite start then begin
      t.busy_until <- Simtime.never;
      Simtime.never
    end
    else begin
      let finish = finish_at t ~start ~bytes in
      t.busy_until <- finish;
      finish
    end
end

let exactf = Alcotest.check (Alcotest.float 0.)

(* Drive the indexed NIC and the list-walk reference through the same
   randomized schedule-and-reserve history; every reservation and every
   planner lookup must agree bit for bit.  Covers duplicate breakpoint
   times (newest wins), zero-rate windows, boundary-sharing windows, and
   out-of-cursor-order [transfer_time] probes. *)
let test_nic_matches_reference () =
  let rng = Rng.create 77L in
  for _trial = 1 to 50 do
    let base = float_of_int (1 + Rng.int rng 100) *. 1e5 in
    let nic = Nic.create ~bits_per_sec:base () in
    let reference = Nic_reference.create ~bits_per_sec:base in
    (* A random breakpoint schedule appended in time order; some times
       repeat so the newest-duplicate rule is exercised. *)
    let time = ref 0. in
    for _ = 1 to 1 + Rng.int rng 12 do
      time := !time +. float_of_int (Rng.int rng 20);
      let rate = if Rng.int rng 4 = 0 then 0. else float_of_int (Rng.int rng 100) *. 1e5 in
      Nic.set_rate nic ~from:!time ~bits_per_sec:rate;
      Nic_reference.set_rate reference ~from:!time ~bits_per_sec:rate
    done;
    (* Reservations at nondecreasing [now]s (the engine guarantee). *)
    let now = ref 0. in
    for _ = 1 to 30 do
      now := !now +. float_of_int (Rng.int rng 15);
      let bytes = Rng.int rng 2_000_000 in
      (* A planner probe at an arbitrary (possibly earlier) time first:
         must not disturb the committed cursor. *)
      let probe_at = float_of_int (Rng.int rng 200) in
      let expected_probe =
        let start = Float.max probe_at (Nic_reference.(reference.busy_until)) in
        if Simtime.is_infinite start then Simtime.never
        else Nic_reference.finish_at reference ~start ~bytes
      in
      exactf "transfer_time matches reference" expected_probe
        (Nic.transfer_time nic ~now:probe_at ~bytes);
      exactf "rate_at matches reference"
        (Nic_reference.rate_at reference probe_at *. 8.)
        (Nic.rate_at nic probe_at);
      exactf "reserve matches reference"
        (Nic_reference.reserve reference ~now:!now ~bytes)
        (Nic.reserve nic ~now:!now ~bytes)
    done
  done

let test_nic_window_edge_cases () =
  (* Zero-length window: restores instantly, transfer unaffected. *)
  let nic = Nic.create ~bits_per_sec:1e6 () in
  Nic.limit_window nic ~start:5. ~stop:5. ~bits_per_sec:0.;
  checkf "zero-length window restores" 1e6 (Nic.rate_at nic 5.);
  checkf "transfer through it" 8. (Nic.transfer_time nic ~now:0. ~bytes:1_000_000);
  (* Boundary-sharing windows: the second may start exactly where the
     first stopped. *)
  let nic2 = Nic.create ~bits_per_sec:1e6 () in
  Nic.limit_window nic2 ~start:0. ~stop:10. ~bits_per_sec:0.5e6;
  Nic.limit_window nic2 ~start:10. ~stop:20. ~bits_per_sec:0.25e6;
  checkf "first window" 0.5e6 (Nic.rate_at nic2 5.);
  checkf "second window" 0.25e6 (Nic.rate_at nic2 15.);
  checkf "restored after both" 1e6 (Nic.rate_at nic2 25.);
  (* Duplicate times: the latest-appended breakpoint wins. *)
  let nic3 = Nic.create ~bits_per_sec:1e6 () in
  Nic.set_rate nic3 ~from:10. ~bits_per_sec:2e6;
  Nic.set_rate nic3 ~from:10. ~bits_per_sec:4e6;
  checkf "newest duplicate wins" 4e6 (Nic.rate_at nic3 10.);
  checkf "before unchanged" 1e6 (Nic.rate_at nic3 9.)

(* --- Stats --------------------------------------------------------------- *)

let test_stats () =
  let s = Stats.create ~n:3 in
  let vote = Stats.intern s "vote" in
  Stats.record_sent s ~node:0 ~bytes:100 ~label:vote ();
  Stats.record_sent s ~node:0 ~bytes:50 ~label:vote ();
  Stats.record_sent s ~node:1 ~bytes:10 ();
  Stats.record_received s ~node:2 ~bytes:100;
  checki "bytes sent" 150 (Stats.bytes_sent s 0);
  checki "messages" 2 (Stats.messages_sent s 0);
  checki "total" 160 (Stats.total_bytes_sent s);
  checki "label" 150 (Stats.label_bytes s "vote");
  checki "unknown label" 0 (Stats.label_bytes s "nope");
  checki "received" 100 (Stats.bytes_received s 2);
  Stats.reset s;
  checki "after reset" 0 (Stats.total_bytes_sent s)

let test_stats_interning () =
  let s = Stats.create ~n:2 in
  let vote = Stats.intern s "vote" in
  let again = Stats.intern s "vote" in
  checkb "interning is idempotent" true (vote = again);
  let sig_ = Stats.intern s "sig" in
  checkb "distinct names, distinct ids" true (vote <> sig_);
  (* The allocation-free path and the optional-argument wrapper land in
     the same counters. *)
  Stats.record_send s ~node:0 ~bytes:100 ~label:vote;
  Stats.record_sent s ~node:1 ~bytes:40 ~label:vote ();
  Stats.record_send s ~node:0 ~bytes:7 ~label:Stats.no_label;
  checki "label bytes" 140 (Stats.label_bytes s "vote");
  checki "unlabelled traffic still counted" 147 (Stats.bytes_sent s 0 + Stats.bytes_sent s 1);
  (* Only labels recorded since the last reset are listed, sorted. *)
  Alcotest.(check (list (pair string int)))
    "labels lists recorded only" [ ("vote", 140) ] (Stats.labels s);
  Stats.record_send s ~node:0 ~bytes:5 ~label:sig_;
  Alcotest.(check (list (pair string int)))
    "sorted by name" [ ("sig", 5); ("vote", 140) ] (Stats.labels s);
  Stats.reset s;
  Alcotest.(check (list (pair string int))) "reset clears labels" [] (Stats.labels s);
  (* Interned ids survive reset. *)
  Stats.record_send s ~node:0 ~bytes:9 ~label:vote;
  checki "id valid after reset" 9 (Stats.label_bytes s "vote")

(* --- Trace --------------------------------------------------------------- *)

let test_trace () =
  let t = Trace.create () in
  Trace.log t ~time:0.011 ~node:3 Trace.Notice "hello";
  Trace.logf t ~time:1. Trace.Warn "count %d" 7;
  Alcotest.(check int) "records" 2 (List.length (Trace.records t));
  Alcotest.(check int) "node filter" 1 (List.length (Trace.for_node t 3));
  Alcotest.(check string) "render" "Jan 01 01:00:00.011 [notice] hello"
    (Trace.render (List.hd (Trace.records t)));
  let contains ~needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "dump contains warn" true (contains ~needle:"[warn] count 7" (Trace.dump t))

(* --- Topology ---------------------------------------------------------------- *)

let test_topology () =
  let t = Topology.uniform ~n:4 ~latency:0.05 in
  checkf "uniform" 0.05 (Topology.latency t ~src:0 ~dst:3);
  checkf "self" 0. (Topology.latency t ~src:2 ~dst:2);
  let rng = Rng.create 5L in
  let r = Topology.realistic ~n:9 ~rng in
  for i = 0 to 8 do
    for j = 0 to 8 do
      let l = Topology.latency r ~src:i ~dst:j in
      checkb "symmetric" true (l = Topology.latency r ~src:j ~dst:i);
      if i <> j then checkb "in range" true (l >= 0.005 && l <= 0.150)
    done
  done;
  Alcotest.check_raises "bad matrix" (Invalid_argument "Topology.of_matrix: not square")
    (fun () -> ignore (Topology.of_matrix [| [| 0. |]; [| 0.; 0. |] |]))

(* --- Net ---------------------------------------------------------------- *)

let make_net ?(n = 3) ?(bits_per_sec = 1e9) ?(latency = 0.01) () =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~latency in
  let net = Net.create ~engine ~topology ~bits_per_sec () in
  (engine, net)

let test_net_delivery_time () =
  let engine, net = make_net ~bits_per_sec:1e6 ~latency:0.5 () in
  let arrived = ref [] in
  Net.set_handler net (fun ~dst ~src msg -> arrived := (dst, src, msg, Engine.now engine) :: !arrived);
  (* 125 kB at 1 Mbit/s: 1 s egress + 0.5 s latency + 1 s ingress. *)
  Net.send net ~src:0 ~dst:1 ~size:125_000 "m";
  Engine.run engine;
  match !arrived with
  | [ (1, 0, "m", t) ] -> checkf "delivery time" 2.5 t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_net_deadline_drop () =
  let engine, net = make_net ~bits_per_sec:1e6 ~latency:0.5 () in
  let arrived = ref 0 in
  Net.set_handler net (fun ~dst:_ ~src:_ _ -> incr arrived);
  Net.send net ~src:0 ~dst:1 ~size:125_000 ~deadline:1. "slow";
  Net.send net ~src:0 ~dst:1 ~size:100 ~deadline:10. "fast";
  Engine.run engine;
  checki "slow dropped, fast delivered" 1 !arrived;
  checki "dropped counted" 1 (Stats.dropped (Net.stats net))

let test_net_self_send () =
  let engine, net = make_net () in
  let got = ref false in
  Net.set_handler net (fun ~dst ~src _ -> if dst = 0 && src = 0 then got := true);
  Net.send net ~src:0 ~dst:0 ~size:1_000_000 "self";
  Engine.run engine;
  checkb "self-delivery" true !got;
  checki "no bandwidth charged" 0 (Stats.bytes_sent (Net.stats net) 0)

let test_net_broadcast () =
  let engine, net = make_net ~n:5 () in
  let count = ref 0 in
  Net.set_handler net (fun ~dst:_ ~src:_ _ -> incr count);
  Net.broadcast net ~src:2 ~size:10 "b";
  Engine.run engine;
  checki "n-1 deliveries" 4 !count;
  checki "n-1 sends" 4 (Stats.messages_sent (Net.stats net) 2)

let test_net_limit_node () =
  let engine, net = make_net ~bits_per_sec:1e6 ~latency:0. () in
  Net.limit_node net ~node:1 ~start:0. ~stop:10. ~bits_per_sec:0.;
  let times = ref [] in
  Net.set_handler net (fun ~dst:_ ~src:_ _ -> times := Engine.now engine :: !times);
  (* Receiver offline: ingress stalls until the window lifts. *)
  Net.send net ~src:0 ~dst:1 ~size:125_000 "m";
  Engine.run engine;
  (match !times with
  | [ t ] -> checkb "delivered after window" true (t >= 10.)
  | _ -> Alcotest.fail "expected one delivery")

let test_net_determinism () =
  let run () =
    let engine, net = make_net ~n:4 ~bits_per_sec:1e6 ~latency:0.02 () in
    let log = ref [] in
    Net.set_handler net (fun ~dst ~src msg ->
        log := (dst, src, msg, Engine.now engine) :: !log;
        if msg < 3 then Net.broadcast net ~src:dst ~size:(1000 * (msg + 1)) (msg + 1));
    Net.broadcast net ~src:0 ~size:500 0;
    Engine.run engine;
    !log
  in
  checkb "identical runs" true (run () = run ())

(* --- Fault injection -------------------------------------------------------- *)

let fault_plan faults = { Fault.seed = "test"; faults }

let with_fault ?(n = 3) ?(bits_per_sec = 1e9) ?(latency = 0.01) faults =
  let engine, net = make_net ~n ~bits_per_sec ~latency () in
  Net.set_fault net (Fault.instantiate (fault_plan faults));
  (engine, net)

let test_fault_drop_window () =
  (* Certain loss inside [10, 20): the window is half-open, judged at
     send time. *)
  let engine, net =
    with_fault [ { Fault.kind = Fault.Drop { src = 0; dst = 1; prob = 1. }; start = 10.; stop = 20. } ]
  in
  let arrived = ref [] in
  Net.set_handler net (fun ~dst:_ ~src:_ msg -> arrived := msg :: !arrived);
  List.iter
    (fun (at, msg) ->
      ignore
        (Engine.schedule engine ~at (fun () -> Net.send net ~src:0 ~dst:1 ~size:10 msg)))
    [ (9.99, "before"); (10., "at-start"); (15., "inside"); (20., "at-stop") ];
  Engine.run engine;
  checkb "half-open window" true (List.sort compare !arrived = [ "at-stop"; "before" ]);
  checki "drops counted" 2 (Stats.dropped (Net.stats net))

let test_fault_drop_never () =
  let engine, net =
    with_fault [ { Fault.kind = Fault.Drop { src = Fault.any; dst = Fault.any; prob = 0. }; start = 0.; stop = 100. } ]
  in
  let arrived = ref 0 in
  Net.set_handler net (fun ~dst:_ ~src:_ _ -> incr arrived);
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 ~size:10 ()
  done;
  Engine.run engine;
  checki "p=0 never drops" 20 !arrived

let test_fault_partition_bidirectional () =
  let engine, net =
    with_fault [ { Fault.kind = Fault.Partition { a = 0; b = 1 }; start = 0.; stop = 100. } ]
  in
  let arrived = ref [] in
  Net.set_handler net (fun ~dst ~src _ -> arrived := (src, dst) :: !arrived);
  Net.send net ~src:0 ~dst:1 ~size:10 ();
  Net.send net ~src:1 ~dst:0 ~size:10 ();
  Net.send net ~src:0 ~dst:2 ~size:10 ();
  Net.send net ~src:2 ~dst:1 ~size:10 ();
  Engine.run engine;
  checkb "only the cut link lost" true
    (List.sort compare !arrived = [ (0, 2); (2, 1) ])

let test_fault_delay () =
  let run faults =
    let engine, net = with_fault ~latency:0.5 faults in
    let times = ref [] in
    Net.set_handler net (fun ~dst:_ ~src:_ _ -> times := Engine.now engine :: !times);
    for _ = 1 to 5 do
      Net.send net ~src:0 ~dst:1 ~size:10 ()
    done;
    Engine.run engine;
    List.rev !times
  in
  let base = run [] in
  let jitter =
    [ { Fault.kind = Fault.Delay { src = 0; dst = 1; max_extra = 2. }; start = 0.; stop = 100. } ]
  in
  let delayed = run jitter in
  List.iter2
    (fun b d -> checkb "within [0, max_extra)" true (d >= b && d < b +. 2.))
    base delayed;
  checkb "jitter replays bit-identically" true (run jitter = delayed)

let test_fault_duplicate () =
  let engine, net =
    with_fault [ { Fault.kind = Fault.Duplicate { src = 0; dst = 1; prob = 1. }; start = 0.; stop = 100. } ]
  in
  let times = ref [] in
  Net.set_handler net (fun ~dst:_ ~src:_ _ -> times := Engine.now engine :: !times);
  Net.send net ~src:0 ~dst:1 ~size:10 ();
  Engine.run engine;
  match !times with
  | [ t1; t2 ] -> checkf "same arrival instant" t1 t2
  | l -> Alcotest.failf "expected two deliveries, got %d" (List.length l)

let test_fault_crash () =
  let engine, net =
    with_fault ~latency:0.01
      [ { Fault.kind = Fault.Crash { node = 1 }; start = 5.; stop = 15. } ]
  in
  let arrived = ref [] in
  Net.set_handler net (fun ~dst ~src:_ msg -> arrived := (dst, msg) :: !arrived);
  (* Sender crashed: nothing leaves, not even bytes. *)
  ignore
    (Engine.schedule engine ~at:6. (fun () -> Net.send net ~src:1 ~dst:0 ~size:10 "from-crashed"));
  (* Receiver crashed at delivery time: sent at 4.999, arrives > 5. *)
  ignore
    (Engine.schedule engine ~at:4.999 (fun () ->
         Net.send net ~src:0 ~dst:1 ~size:10 "into-crash"));
  (* After recovery both directions work again. *)
  ignore
    (Engine.schedule engine ~at:15. (fun () -> Net.send net ~src:1 ~dst:0 ~size:10 "recovered"));
  Engine.run engine;
  checkb "only the post-recovery message survives" true
    (!arrived = [ (0, "recovered") ]);
  (* Only the post-recovery send is charged; the in-window send cost
     nothing. *)
  checki "crashed sender sends no bytes" 10 (Stats.bytes_sent (Net.stats net) 1);
  checki "both casualties counted" 2 (Stats.dropped (Net.stats net))

let test_fault_drop_labels () =
  let engine, net =
    with_fault [ { Fault.kind = Fault.Drop { src = 0; dst = 1; prob = 1. }; start = 0.; stop = 100. } ]
  in
  let lbl = Net.intern net "vote" in
  Net.set_handler net (fun ~dst:_ ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 ~size:10 ~label:lbl ();
  Net.send net ~src:0 ~dst:2 ~size:10 ~label:lbl ();
  Engine.run engine;
  let stats = Net.stats net in
  checki "per-label drop count" 1 (Stats.label_dropped stats "vote");
  checki "per-node drop count" 1 (Stats.dropped_at stats 1);
  checkb "dropped_labels lists the label" true (Stats.dropped_labels stats = [ ("vote", 1) ])

let test_fault_determinism () =
  (* Probabilistic faults replay identically: the RNG stream is keyed
     off the plan alone and consumed in simulated-event order. *)
  let faults =
    [
      { Fault.kind = Fault.Drop { src = Fault.any; dst = Fault.any; prob = 0.5 }; start = 0.; stop = 50. };
      { Fault.kind = Fault.Duplicate { src = Fault.any; dst = Fault.any; prob = 0.3 }; start = 0.; stop = 50. };
      { Fault.kind = Fault.Delay { src = Fault.any; dst = Fault.any; max_extra = 1. }; start = 0.; stop = 50. };
    ]
  in
  let run () =
    let engine, net = with_fault ~n:4 faults in
    let log = ref [] in
    Net.set_handler net (fun ~dst ~src msg ->
        log := (dst, src, msg, Engine.now engine) :: !log;
        if msg < 2 then Net.broadcast net ~src:dst ~size:(100 * (msg + 1)) (msg + 1));
    Net.broadcast net ~src:0 ~size:50 0;
    Engine.run engine;
    !log
  in
  checkb "identical faulty runs" true (run () = run ())

let test_fault_plan_validate () =
  let fault kind = { Fault.kind; start = 0.; stop = 1. } in
  Fault.validate ~n:3 (fault_plan [ fault (Fault.Drop { src = Fault.any; dst = 2; prob = 0.5 }) ]);
  let invalid msg plan =
    match Fault.validate ~n:3 plan with
    | () -> Alcotest.failf "%s: expected Invalid_argument" msg
    | exception Invalid_argument _ -> ()
  in
  invalid "endpoint out of range" (fault_plan [ fault (Fault.Crash { node = 3 }) ]);
  invalid "probability out of range"
    (fault_plan [ fault (Fault.Drop { src = 0; dst = 1; prob = 1.5 }) ]);
  invalid "window stops before start"
    (fault_plan [ { Fault.kind = Fault.Partition { a = 0; b = 1 }; start = 2.; stop = 1. } ]);
  (* Canonical form is stable and digest-worthy: equal plans digest
     equal, any field change changes it. *)
  let p1 = fault_plan [ fault (Fault.Drop { src = 0; dst = 1; prob = 0.5 }) ] in
  let p2 = fault_plan [ fault (Fault.Drop { src = 0; dst = 1; prob = 0.5 }) ] in
  let p3 = fault_plan [ fault (Fault.Drop { src = 0; dst = 1; prob = 0.25 }) ] in
  checkb "equal plans digest equal" true (Fault.digest p1 = Fault.digest p2);
  checkb "prob change changes digest" false (Fault.digest p1 = Fault.digest p3)

(* --- Summary --------------------------------------------------------------- *)

let test_summary_stats () =
  checkf "mean" 2. (Summary.mean [ 1.; 2.; 3. ]);
  checkf "stddev" (sqrt (2. /. 3.)) (Summary.stddev [ 1.; 2.; 3. ]);
  checkf "median odd" 2. (Summary.median [ 3.; 1.; 2. ]);
  checkf "p100" 9. (Summary.percentile [ 1.; 9.; 5. ] ~p:100.);
  Alcotest.check_raises "empty mean" (Invalid_argument "Summary.mean: empty list")
    (fun () -> ignore (Summary.mean []));
  Alcotest.check_raises "bad percentile"
    (Invalid_argument "Summary.percentile: p out of range") (fun () ->
      ignore (Summary.percentile [ 1. ] ~p:101.))

let test_summary_linear_fit () =
  let fit = Summary.linear_fit [ (0., 1.); (1., 3.); (2., 5.) ] in
  checkf "slope" 2. fit.Summary.slope;
  checkf "intercept" 1. fit.Summary.intercept;
  checkf "perfect r2" 1. fit.Summary.r_squared

let test_summary_power_law () =
  (* y = 4 x^3 exactly. *)
  let points = List.map (fun x -> (x, 4. *. (x ** 3.))) [ 2.; 4.; 8.; 16. ] in
  let fit = Summary.power_law_fit points in
  checkb "recovers exponent 3" true (Float.abs (fit.Summary.slope -. 3.) < 1e-9);
  Alcotest.check_raises "rejects nonpositive"
    (Invalid_argument "Summary.power_law_fit: coordinates must be positive") (fun () ->
      ignore (Summary.power_law_fit [ (0., 1.); (1., 2.) ]))

let suite =
  [
    ("simtime", `Quick, test_simtime);
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng split", `Quick, test_rng_split);
    QCheck_alcotest.to_alcotest qcheck_rng_bounds;
    QCheck_alcotest.to_alcotest qcheck_rng_range;
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("rng gaussian mean", `Slow, test_rng_gaussian);
    ("rng errors", `Quick, test_rng_errors);
    ("event queue ordering", `Quick, test_queue_order);
    ("event queue FIFO ties", `Quick, test_queue_fifo_ties);
    ("event queue invalid time", `Quick, test_queue_invalid_time);
    QCheck_alcotest.to_alcotest qcheck_queue_sorted;
    QCheck_alcotest.to_alcotest qcheck_queue_interleaved;
    ("engine order and clock", `Quick, test_engine_order_and_clock);
    ("engine cancel", `Quick, test_engine_cancel);
    ("engine horizon", `Quick, test_engine_horizon);
    ("engine nested scheduling", `Quick, test_engine_nested_schedule);
    ("engine rejects past events", `Quick, test_engine_past_raises);
    ("engine pool reuse + stale cancel", `Quick, test_engine_pool_reuse_and_stale_cancel);
    ("engine pool churn stress", `Quick, test_engine_pool_stress);
    ("engine cancelled event advances clock", `Quick, test_engine_cancelled_advances_clock);
    ("event queue pop_if_before", `Quick, test_queue_pop_if_before);
    ("nic basic rate", `Quick, test_nic_basic_rate);
    ("nic zero rate forever", `Quick, test_nic_zero_rate_forever);
    ("nic stalls through offline window", `Quick, test_nic_window_stall);
    ("nic split across rate change", `Quick, test_nic_window_partial);
    ("nic window restores rate", `Quick, test_nic_window_restores);
    ("nic breakpoint ordering", `Quick, test_nic_breakpoint_order);
    ("nic matches list-walk reference", `Quick, test_nic_matches_reference);
    ("nic window edge cases", `Quick, test_nic_window_edge_cases);
    ("stats counters", `Quick, test_stats);
    ("stats label interning", `Quick, test_stats_interning);
    ("trace", `Quick, test_trace);
    ("topology", `Quick, test_topology);
    ("net delivery time", `Quick, test_net_delivery_time);
    ("net deadline drop", `Quick, test_net_deadline_drop);
    ("net self send", `Quick, test_net_self_send);
    ("net broadcast", `Quick, test_net_broadcast);
    ("net limit node", `Quick, test_net_limit_node);
    ("net determinism", `Quick, test_net_determinism);
    ("fault drop window half-open", `Quick, test_fault_drop_window);
    ("fault drop p=0", `Quick, test_fault_drop_never);
    ("fault partition bidirectional", `Quick, test_fault_partition_bidirectional);
    ("fault delay jitter", `Quick, test_fault_delay);
    ("fault duplicate", `Quick, test_fault_duplicate);
    ("fault crash window", `Quick, test_fault_crash);
    ("fault drop labels", `Quick, test_fault_drop_labels);
    ("fault determinism", `Quick, test_fault_determinism);
    ("fault plan validation + digest", `Quick, test_fault_plan_validate);
    ("summary statistics", `Quick, test_summary_stats);
    ("summary linear fit", `Quick, test_summary_linear_fit);
    ("summary power-law fit", `Quick, test_summary_power_law);
  ]
