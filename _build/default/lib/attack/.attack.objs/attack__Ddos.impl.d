lib/attack/ddos.ml: Fun List Option Protocols
