(* Pooled event cells.  [schedule] used to allocate a fresh
   record-plus-closure per event; the hot paths (Net's per-message
   chains) now run through reusable cells drawn from a free list, and
   an event is identified in the queue by its cell index — an immediate
   int, so the queue payload array holds no pointers.

   A handle packs (generation, cell index) into one int.  The
   generation counts how many times the cell has been recycled; a
   handle whose generation no longer matches its cell is stale (the
   event already fired or was cancelled and the cell reused), so
   [cancel] on it is a safe O(1) no-op.  Cell indices fit 24 bits
   (16.7M outstanding events), generations use the remaining bits and
   cannot overflow in practice (2^38 recycles of one cell). *)

let idx_bits = 24
let idx_mask = (1 lsl idx_bits) - 1

type cell = {
  mutable time : Simtime.t;
  mutable gen : int;
  mutable state : int; (* 0 free, 1 scheduled, 2 cancelled *)
  mutable kind : int; (* -1: run [action]; >= 0: registered callback id *)
  mutable arg : int;
  mutable action : unit -> unit;
  mutable next_free : int; (* free-list link, -1 ends the list *)
}

let st_free = 0
let st_scheduled = 1
let st_cancelled = 2
let nop () = ()

type handle = int
type callback = int

type t = {
  mutable clock : Simtime.t;
  queue : int Event_queue.t;
  mutable cells : cell array;
  mutable n_cells : int;
  mutable free_head : int;
  mutable callbacks : (int -> unit) array;
  mutable n_callbacks : int;
}

let create () =
  {
    clock = Simtime.zero;
    queue = Event_queue.create ();
    cells = [||];
    n_cells = 0;
    free_head = -1;
    callbacks = [||];
    n_callbacks = 0;
  }

let now t = t.clock

let register_callback t f =
  if t.n_callbacks = Array.length t.callbacks then begin
    let fresh = Array.make (max 4 (2 * t.n_callbacks)) f in
    Array.blit t.callbacks 0 fresh 0 t.n_callbacks;
    t.callbacks <- fresh
  end;
  t.callbacks.(t.n_callbacks) <- f;
  t.n_callbacks <- t.n_callbacks + 1;
  t.n_callbacks - 1

(* Take a cell off the free list, allocating one only at a new
   high-water mark of outstanding events. *)
let acquire t =
  if t.free_head >= 0 then begin
    let idx = t.free_head in
    t.free_head <- t.cells.(idx).next_free;
    idx
  end
  else begin
    if t.n_cells = Array.length t.cells then begin
      let dummy =
        { time = 0.; gen = 0; state = st_free; kind = -1; arg = 0; action = nop; next_free = -1 }
      in
      let fresh = Array.make (max 16 (2 * t.n_cells)) dummy in
      Array.blit t.cells 0 fresh 0 t.n_cells;
      t.cells <- fresh
    end;
    let idx = t.n_cells in
    if idx > idx_mask then failwith "Engine: event pool exhausted";
    t.cells.(idx) <-
      { time = 0.; gen = 0; state = st_free; kind = -1; arg = 0; action = nop; next_free = -1 };
    t.n_cells <- t.n_cells + 1;
    idx
  end

let release t idx =
  let cell = t.cells.(idx) in
  cell.gen <- cell.gen + 1;
  cell.state <- st_free;
  cell.action <- nop;
  cell.next_free <- t.free_head;
  t.free_head <- idx

let enqueue t ~at ~kind ~arg action =
  if at < t.clock then invalid_arg "Engine.schedule: time is in the past";
  let idx = acquire t in
  let cell = t.cells.(idx) in
  cell.time <- at;
  cell.state <- st_scheduled;
  cell.kind <- kind;
  cell.arg <- arg;
  cell.action <- action;
  (match Event_queue.push t.queue ~time:at idx with
  | () -> ()
  | exception e ->
      release t idx;
      raise e);
  (cell.gen lsl idx_bits) lor idx

let schedule t ~at action = enqueue t ~at ~kind:(-1) ~arg:0 action

let schedule_in t ~after action =
  if after < 0. then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(Simtime.add t.clock after) action

let schedule_call t ~at callback arg = enqueue t ~at ~kind:callback ~arg nop

let cancel t h =
  let idx = h land idx_mask in
  if idx < t.n_cells then begin
    let cell = t.cells.(idx) in
    if cell.gen = h lsr idx_bits && cell.state = st_scheduled then
      cell.state <- st_cancelled
  end

let run ?until t =
  let horizon = Option.value until ~default:Simtime.never in
  let rec loop () =
    let idx = Event_queue.pop_if_before t.queue ~horizon ~default:(-1) in
    if idx >= 0 then begin
      let cell = t.cells.(idx) in
      (* A cancelled event still advances the clock to its slot, like
         any popped event. *)
      t.clock <- cell.time;
      let state = cell.state and kind = cell.kind and arg = cell.arg in
      let action = cell.action in
      (* Release before dispatch: the cell may be reacquired by events
         the dispatched code schedules, and the generation bump makes
         any handle still pointing here stale — cancelling a fired
         event stays a no-op. *)
      release t idx;
      if state = st_scheduled then
        if kind >= 0 then t.callbacks.(kind) arg else action ();
      loop ()
    end
  in
  loop ();
  match until with
  | Some u when t.clock < u && not (Simtime.is_infinite u) -> t.clock <- u
  | _ -> ()

let pending t = Event_queue.size t.queue
