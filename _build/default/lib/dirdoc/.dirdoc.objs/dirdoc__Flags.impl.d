lib/dirdoc/flags.ml: Format Int List Printf String
