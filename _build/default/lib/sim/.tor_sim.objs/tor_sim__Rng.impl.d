lib/sim/rng.ml: Array Char Crypto Float Int64 List String
