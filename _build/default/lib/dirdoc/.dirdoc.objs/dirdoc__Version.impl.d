lib/dirdoc/version.ml: Format Int Printf String
