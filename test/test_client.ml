(* Tests for the Tor client substrate: consensus verification,
   freshness rules, bandwidth-weighted circuit building, and the
   client state machine. *)

module Directory = Torclient.Directory
module Circuit = Torclient.Circuit
module Flags = Dirdoc.Flags

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let keyring = Crypto.Keyring.create ~seed:"client-tests" ~n:9 ()

let fp i = Printf.sprintf "%040X" i

let entry ?(flags = [ Flags.Running; Flags.Valid ]) ?(bandwidth = 1000)
    ?(exit_policy = Dirdoc.Exit_policy.reject_all) i =
  {
    Dirdoc.Consensus.fingerprint = fp i;
    nickname = Printf.sprintf "relay%d" i;
    flags = Flags.of_list flags;
    version = Dirdoc.Version.make 0 4 8 12;
    protocols = Dirdoc.Relay.default_protocols;
    bandwidth;
    exit_policy;
  }

let guard_flags = [ Flags.Running; Flags.Valid; Flags.Guard; Flags.Stable ]
let exit_flags = [ Flags.Running; Flags.Valid; Flags.Exit ]

let sample_consensus ?(valid_after = 0.) ?(entries = []) () =
  Dirdoc.Consensus.create ~valid_after ~n_votes:9 ~entries

let usable_population () =
  [
    entry ~flags:guard_flags ~bandwidth:5000 1;
    entry ~flags:guard_flags ~bandwidth:100 2;
    entry ~flags:exit_flags ~exit_policy:Dirdoc.Exit_policy.accept_all ~bandwidth:2000 3;
    entry
      ~flags:exit_flags
      ~exit_policy:(Dirdoc.Exit_policy.make Dirdoc.Exit_policy.Accept [ (443, 443) ])
      ~bandwidth:800 4;
    entry ~bandwidth:1500 5;
    entry ~bandwidth:300 6;
  ]

(* --- Directory.verify ---------------------------------------------------------- *)

let test_verify_majority () =
  let c = sample_consensus () in
  let ok = Directory.make keyring c ~signers:[ 0; 1; 2; 3; 4 ] in
  checkb "5 of 9 accepted" true (Directory.verify keyring ~n_authorities:9 ok = Ok ());
  let short = Directory.make keyring c ~signers:[ 0; 1; 2; 3 ] in
  checkb "4 of 9 rejected" true
    (Result.is_error (Directory.verify keyring ~n_authorities:9 short))

let test_verify_duplicates_and_forgeries () =
  let c = sample_consensus () in
  let payload = Dirdoc.Consensus.signing_payload c in
  let sig0 = Crypto.Signature.sign keyring ~signer:0 payload in
  let sc =
    {
      Directory.consensus = c;
      signatures =
        [ sig0; sig0; sig0; sig0; sig0 (* duplicates count once *) ];
    }
  in
  checkb "duplicate signers rejected" true
    (Result.is_error (Directory.verify keyring ~n_authorities:9 sc));
  let forged =
    {
      Directory.consensus = c;
      signatures = List.init 5 (fun i -> Crypto.Signature.forge ~signer:i payload);
    }
  in
  checkb "forged signatures rejected" true
    (Result.is_error (Directory.verify keyring ~n_authorities:9 forged))

let test_verify_wrong_document () =
  let a = sample_consensus () in
  let b = sample_consensus ~valid_after:3600. () in
  let sc_b = Directory.make keyring b ~signers:[ 0; 1; 2; 3; 4 ] in
  (* Signatures from b glued onto a must not verify. *)
  let mixed = { Directory.consensus = a; signatures = sc_b.Directory.signatures } in
  checkb "transplanted signatures rejected" true
    (Result.is_error (Directory.verify keyring ~n_authorities:9 mixed))

(* --- Freshness ---------------------------------------------------------------- *)

let test_freshness_windows () =
  let c = sample_consensus ~valid_after:1000. () in
  checkb "fresh" true (Directory.freshness ~now:2000. c = Directory.Fresh);
  checkb "stale" true (Directory.freshness ~now:(1000. +. 7200.) c = Directory.Stale);
  checkb "expired" true (Directory.freshness ~now:(1000. +. 10801.) c = Directory.Expired);
  checkb "usable stale" true (Directory.usable ~now:(1000. +. 7200.) c);
  checkb "unusable expired" false (Directory.usable ~now:(1000. +. 10801.) c)

let test_freshness_boundaries () =
  (* Both deadlines are strict (half-open intervals): at exactly
     valid_after + 1 h the document is already Stale, and at exactly
     valid_after + 3 h it is already Expired. *)
  let va = 1000. in
  let c = sample_consensus ~valid_after:va () in
  checkb "fresh at valid_after" true (Directory.freshness ~now:va c = Directory.Fresh);
  checkb "fresh just before 1 h" true
    (Directory.freshness ~now:(va +. 3599.999) c = Directory.Fresh);
  checkb "stale at exactly 1 h" true
    (Directory.freshness ~now:(va +. 3600.) c = Directory.Stale);
  checkb "stale just before 3 h" true
    (Directory.freshness ~now:(va +. 10799.999) c = Directory.Stale);
  checkb "expired at exactly 3 h" true
    (Directory.freshness ~now:(va +. 10800.) c = Directory.Expired);
  checkb "still usable at exactly 1 h" true (Directory.usable ~now:(va +. 3600.) c);
  checkb "unusable at exactly 3 h" false (Directory.usable ~now:(va +. 10800.) c)

(* --- Circuit ---------------------------------------------------------------- *)

let test_eligibility () =
  let c = sample_consensus ~entries:(usable_population ()) () in
  checki "guards" 2 (List.length (Circuit.eligible_guards c));
  checki "exits for 443" 2 (List.length (Circuit.eligible_exits ~port:443 c));
  checki "exits for 22" 1 (List.length (Circuit.eligible_exits ~port:22 c));
  checki "middles include everyone running" 6 (List.length (Circuit.eligible_middles c))

let test_badexit_excluded () =
  let bad =
    entry
      ~flags:(Flags.BadExit :: exit_flags)
      ~exit_policy:Dirdoc.Exit_policy.accept_all 9
  in
  let c = sample_consensus ~entries:[ bad ] () in
  checki "BadExit filtered" 0 (List.length (Circuit.eligible_exits ~port:80 c))

let test_build_distinct_hops () =
  let rng = Tor_sim.Rng.of_string_seed "circuits" in
  let c = sample_consensus ~entries:(usable_population ()) () in
  for _ = 1 to 50 do
    match Circuit.build ~rng ~port:443 c with
    | Ok { guard; middle; exit } ->
        checkb "guard is a guard" true (Flags.mem Flags.Guard guard.Dirdoc.Consensus.flags);
        checkb "exit allows port" true
          (Dirdoc.Exit_policy.allows_port exit.Dirdoc.Consensus.exit_policy 443);
        checkb "three distinct relays" true
          (guard.Dirdoc.Consensus.fingerprint <> middle.Dirdoc.Consensus.fingerprint
          && middle.Dirdoc.Consensus.fingerprint <> exit.Dirdoc.Consensus.fingerprint
          && guard.Dirdoc.Consensus.fingerprint <> exit.Dirdoc.Consensus.fingerprint)
    | Error e -> Alcotest.fail (Circuit.error_to_string e)
  done

let test_build_errors () =
  let rng = Tor_sim.Rng.of_string_seed "circuits" in
  let no_exit = sample_consensus ~entries:[ entry ~flags:guard_flags 1; entry 2 ] () in
  (match Circuit.build ~rng ~port:80 no_exit with
  | Error Circuit.No_exit -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected No_exit");
  let no_guard =
    sample_consensus
      ~entries:
        [ entry ~flags:exit_flags ~exit_policy:Dirdoc.Exit_policy.accept_all 1; entry 2 ]
      ()
  in
  match Circuit.build ~rng ~port:80 no_guard with
  | Error Circuit.No_guard -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected No_guard"

let test_bandwidth_weighting () =
  (* The 5000 kB/s guard should be picked far more often than the
     100 kB/s one. *)
  let rng = Tor_sim.Rng.of_string_seed "weighting" in
  let c = sample_consensus ~entries:(usable_population ()) () in
  let big = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    match Circuit.bandwidth_weighted ~rng (Circuit.eligible_guards c) with
    | Some g when g.Dirdoc.Consensus.fingerprint = fp 1 -> incr big
    | Some _ -> ()
    | None -> Alcotest.fail "expected a guard"
  done;
  let share = float_of_int !big /. float_of_int trials in
  (* Expected 5000/5100 = 0.98. *)
  checkb "weighted towards bandwidth" true (share > 0.9);
  checkb "empty list" true (Circuit.bandwidth_weighted ~rng [] = None)

(* --- Client state machine ------------------------------------------------------- *)

let test_client_lifecycle () =
  let client = Torclient.Client.create ~keyring ~n_authorities:9 in
  checkb "bootstrapping: no circuits" false (Torclient.Client.can_build_circuits client ~now:0.);
  let c1 = sample_consensus ~valid_after:0. ~entries:(usable_population ()) () in
  let sc1 = Directory.make keyring c1 ~signers:[ 0; 1; 2; 3; 4 ] in
  checkb "adopts verified document" true (Torclient.Client.offer client ~now:600. sc1 = Ok ());
  checkb "circuits available" true (Torclient.Client.can_build_circuits client ~now:600.);
  (* An older document is refused. *)
  let old = sample_consensus ~valid_after:(-3600.) () in
  let sc_old = Directory.make keyring old ~signers:[ 0; 1; 2; 3; 4 ] in
  checkb "older document refused" true
    (Result.is_error (Torclient.Client.offer client ~now:700. sc_old));
  (* Time passes: the held document expires and circuits stop. *)
  checkb "expired -> no circuits" false
    (Torclient.Client.can_build_circuits client ~now:11000.);
  (match Torclient.Client.build_circuit client ~now:11000.
           ~rng:(Tor_sim.Rng.of_string_seed "c") ~port:443 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must refuse circuits on an expired consensus");
  (* A fresh hour's document restores service. *)
  let c2 = sample_consensus ~valid_after:10800. ~entries:(usable_population ()) () in
  let sc2 = Directory.make keyring c2 ~signers:[ 2; 3; 4; 5; 6; 7 ] in
  checkb "new hour adopted" true (Torclient.Client.offer client ~now:11400. sc2 = Ok ());
  match Torclient.Client.build_circuit client ~now:11400.
          ~rng:(Tor_sim.Rng.of_string_seed "c") ~port:443 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_client_rejects_unverified () =
  let client = Torclient.Client.create ~keyring ~n_authorities:9 in
  let c = sample_consensus ~entries:(usable_population ()) () in
  let sc = Directory.make keyring c ~signers:[ 0; 1 ] in
  checkb "too few signatures refused" true
    (Result.is_error (Torclient.Client.offer client ~now:0. sc));
  checkb "still bootstrapping" false (Torclient.Client.can_build_circuits client ~now:0.)


(* --- Consensus diffs ---------------------------------------------------------- *)

let consensus_pair () =
  let rng = Tor_sim.Rng.of_string_seed "consdiff-tests" in
  let votes =
    Dirdoc.Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:300 ~valid_after:0. ()
  in
  let base = Dirdoc.Aggregate.consensus ~valid_after:0. ~votes:(Array.to_list votes) in
  (* Next hour: ~2% of relays churn out. *)
  let votes2 =
    Array.map
      (fun (v : Dirdoc.Vote.t) ->
        let relays =
          Array.to_list v.Dirdoc.Vote.relays |> List.filteri (fun i _ -> i mod 50 <> 0)
        in
        Dirdoc.Vote.create ~authority:v.Dirdoc.Vote.authority
          ~authority_fingerprint:v.Dirdoc.Vote.authority_fingerprint
          ~nickname:v.Dirdoc.Vote.nickname ~published:v.Dirdoc.Vote.published
          ~valid_after:3600. ~relays)
      votes
  in
  let target = Dirdoc.Aggregate.consensus ~valid_after:3600. ~votes:(Array.to_list votes2) in
  (Dirdoc.Consensus.serialize base, Dirdoc.Consensus.serialize target)

let test_consdiff_roundtrip () =
  let base, target = consensus_pair () in
  let d = Torclient.Consdiff.diff ~base ~target in
  (match Torclient.Consdiff.patch ~base d with
  | Ok patched -> checkb "patch(diff) = target" true (String.equal patched target)
  | Error e -> Alcotest.fail e);
  checkb "diff is much smaller than the document" true
    (Torclient.Consdiff.wire_size d * 4 < String.length target);
  checkb "savings reported" true (Torclient.Consdiff.savings ~base ~target > 0.5)

let test_consdiff_identity () =
  let base, _ = consensus_pair () in
  let d = Torclient.Consdiff.diff ~base ~target:base in
  checki "no commands for identical documents" 0 (List.length d.Torclient.Consdiff.commands);
  match Torclient.Consdiff.patch ~base d with
  | Ok patched -> checkb "identity patch" true (String.equal patched base)
  | Error e -> Alcotest.fail e

let test_consdiff_wrong_base () =
  let base, target = consensus_pair () in
  let d = Torclient.Consdiff.diff ~base ~target in
  checkb "refuses a different base" true
    (Result.is_error (Torclient.Consdiff.patch ~base:target d));
  (* Tampering with the target digest must be caught after patching. *)
  let tampered = { d with Torclient.Consdiff.target_digest = Crypto.Digest32.of_string "x" } in
  checkb "refuses a tampered target digest" true
    (Result.is_error (Torclient.Consdiff.patch ~base tampered))

let test_consdiff_disjoint_documents () =
  (* Even totally different documents roundtrip (as one big rewrite). *)
  let base, _ = consensus_pair () in
  let other =
    Dirdoc.Consensus.serialize
      (Dirdoc.Consensus.create ~valid_after:7200. ~n_votes:9 ~entries:[])
  in
  let d = Torclient.Consdiff.diff ~base ~target:other in
  match Torclient.Consdiff.patch ~base d with
  | Ok patched -> checkb "full rewrite roundtrips" true (String.equal patched other)
  | Error e -> Alcotest.fail e

(* A realistic 9-authority, 1000-relay pair with default cross-authority
   vote divergence and one hour of relay churn between them. *)
let divergent_consensuses () =
  let rng = Tor_sim.Rng.of_string_seed "consdiff-divergent" in
  let votes =
    Dirdoc.Workload.votes ~rng ~divergence:Dirdoc.Workload.default_divergence ~keyring
      ~n_authorities:9 ~n_relays:1000 ~valid_after:0. ()
  in
  let base = Dirdoc.Aggregate.consensus ~valid_after:0. ~votes:(Array.to_list votes) in
  let votes2 =
    Array.map
      (fun (v : Dirdoc.Vote.t) ->
        let relays =
          Array.to_list v.Dirdoc.Vote.relays |> List.filteri (fun i _ -> i mod 40 <> 7)
        in
        Dirdoc.Vote.create ~authority:v.Dirdoc.Vote.authority
          ~authority_fingerprint:v.Dirdoc.Vote.authority_fingerprint
          ~nickname:v.Dirdoc.Vote.nickname ~published:v.Dirdoc.Vote.published
          ~valid_after:3600. ~relays)
      votes
  in
  let target =
    Dirdoc.Aggregate.consensus ~valid_after:3600. ~votes:(Array.to_list votes2)
  in
  (base, target)

let test_consdiff_divergent_1k_roundtrip () =
  let base_c, target_c = divergent_consensuses () in
  let base = Dirdoc.Consensus.serialize base_c in
  let target = Dirdoc.Consensus.serialize target_c in
  checkb "population is ~1k relays" true (Dirdoc.Consensus.n_entries base_c > 900);
  let d = Torclient.Consdiff.diff ~base ~target in
  (match Torclient.Consdiff.patch ~base d with
  | Ok patched -> checkb "patch(diff) = target at 9x1k scale" true (String.equal patched target)
  | Error e -> Alcotest.fail e);
  checkb "diff much smaller than the full document" true
    (Torclient.Consdiff.wire_size d * 5 < String.length target)

let test_consdiff_signing_payload () =
  (* A client that applies a diff must end up byte-for-byte on the
     document the authorities signed: reparsing the patched text yields
     the target's exact signing payload (and digest), so the majority
     signatures verify against the diff-assembled document. *)
  let base_c, target_c = divergent_consensuses () in
  let base = Dirdoc.Consensus.serialize base_c in
  let target = Dirdoc.Consensus.serialize target_c in
  let d = Torclient.Consdiff.diff ~base ~target in
  match Torclient.Consdiff.patch ~base d with
  | Error e -> Alcotest.fail e
  | Ok patched -> (
      match Dirdoc.Consensus.parse patched with
      | Error e -> Alcotest.fail e
      | Ok reparsed ->
          checkb "signing payload byte-for-byte" true
            (String.equal
               (Dirdoc.Consensus.signing_payload reparsed)
               (Dirdoc.Consensus.signing_payload target_c));
          checkb "digest equal" true
            (Crypto.Digest32.equal
               (Dirdoc.Consensus.digest reparsed)
               (Dirdoc.Consensus.digest target_c)))

let test_consdiff_empty_fast_path () =
  let base, _ = consensus_pair () in
  let d = Torclient.Consdiff.diff ~base ~target:base in
  checki "no commands" 0 (List.length d.Torclient.Consdiff.commands);
  checkb "wire size is just the headers" true
    (Torclient.Consdiff.wire_size d <= (2 * Crypto.Digest32.wire_size) + 32);
  match Torclient.Consdiff.patch ~base d with
  | Ok patched -> checkb "identity patch" true (String.equal patched base)
  | Error e -> Alcotest.fail e

(* --- Distribution tier -------------------------------------------------------- *)

module Dist = Torclient.Distribution

let dist_config =
  {
    Dist.default_config with
    Dist.clients = 100_000;
    caches = 8;
    cohorts_per_cache = 32;
    halt = 10800.;
  }

let run_dist ?(cfg = dist_config) () =
  Dist.run cfg ~available_at:11100. ~full_bytes:600_000 ~diff_bytes:(Some 30_000)
    ~horizon:(11100. +. 7200.)

let test_distribution_deterministic () =
  let a = run_dist () and b = run_dist () in
  checkb "same config, same outcome" true (a = b)

let test_distribution_metrics () =
  let o = run_dist () in
  checki "every client counted" 100_000 o.Dist.clients;
  checki "cohort count" (8 * 32) o.Dist.cohorts;
  (match (o.Dist.time_to_90pct_fresh, o.Dist.time_to_full_recovery) with
  | Some t90, Some tfull ->
      checkb "t90 positive" true (t90 > 0.);
      checkb "t90 <= tfull" true (t90 <= tfull)
  | _ -> Alcotest.fail "flash crowd must fully recover within the horizon");
  (* Every client fetched exactly once, as a diff. *)
  checki "diff fetches" 100_000 o.Dist.diff_fetches;
  checki "no full fetches" 0 o.Dist.full_fetches;
  checki "bytes = clients x diff size" (100_000 * 30_000) o.Dist.bytes_served;
  checkb "halt winds up retries" true (o.Dist.failed_attempts > 0);
  checkb "mean <= hottest cache" true
    (o.Dist.bytes_per_cache <= float_of_int o.Dist.bytes_per_cache_max)

let test_distribution_diffs_off () =
  let o = run_dist ~cfg:{ dist_config with Dist.diffs = false } () in
  checki "full fetches" 100_000 o.Dist.full_fetches;
  checki "no diff fetches" 0 o.Dist.diff_fetches;
  checki "bytes = clients x full size" (100_000 * 600_000) o.Dist.bytes_served

let test_distribution_validation () =
  let reject msg cfg =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore
          (Dist.run cfg ~available_at:0. ~full_bytes:1000 ~diff_bytes:None ~horizon:10.))
  in
  reject "Distribution: clients must be positive" { dist_config with Dist.clients = 0 };
  reject "Distribution: caches must be positive" { dist_config with Dist.caches = 0 };
  reject "Distribution: negative halt" { dist_config with Dist.halt = -1. };
  reject "Distribution: retry_max below retry_initial"
    { dist_config with Dist.retry_initial = 60.; retry_max = 30. };
  Alcotest.check_raises "bad full_bytes"
    (Invalid_argument "Distribution.run: full_bytes must be positive") (fun () ->
      ignore
        (Dist.run dist_config ~available_at:0. ~full_bytes:0 ~diff_bytes:None ~horizon:10.))

let test_distribution_canonical_distinct () =
  let base = Dist.canonical_config dist_config in
  List.iter
    (fun (label, cfg) ->
      checkb label false (String.equal base (Dist.canonical_config cfg)))
    [
      ("clients change", { dist_config with Dist.clients = 99_999 });
      ("caches change", { dist_config with Dist.caches = 9 });
      ("halt change", { dist_config with Dist.halt = 0. });
      ("diffs change", { dist_config with Dist.diffs = false });
    ]

let suite =
  [
    ("verify: majority rule", `Quick, test_verify_majority);
    ("verify: duplicates and forgeries", `Quick, test_verify_duplicates_and_forgeries);
    ("verify: transplanted signatures", `Quick, test_verify_wrong_document);
    ("freshness windows", `Quick, test_freshness_windows);
    ("freshness boundary semantics", `Quick, test_freshness_boundaries);
    ("circuit eligibility", `Quick, test_eligibility);
    ("circuit BadExit exclusion", `Quick, test_badexit_excluded);
    ("circuit distinct hops", `Quick, test_build_distinct_hops);
    ("circuit errors", `Quick, test_build_errors);
    ("circuit bandwidth weighting", `Quick, test_bandwidth_weighting);
    ("client lifecycle", `Quick, test_client_lifecycle);
    ("client rejects unverified", `Quick, test_client_rejects_unverified);
    ("consdiff roundtrip", `Quick, test_consdiff_roundtrip);
    ("consdiff identity", `Quick, test_consdiff_identity);
    ("consdiff rejects wrong base/target", `Quick, test_consdiff_wrong_base);
    ("consdiff disjoint documents", `Quick, test_consdiff_disjoint_documents);
    ("consdiff divergent 9x1k roundtrip", `Slow, test_consdiff_divergent_1k_roundtrip);
    ("consdiff reproduces the signing payload", `Slow, test_consdiff_signing_payload);
    ("consdiff empty-diff fast path", `Quick, test_consdiff_empty_fast_path);
    ("distribution: deterministic", `Quick, test_distribution_deterministic);
    ("distribution: flash-crowd metrics", `Quick, test_distribution_metrics);
    ("distribution: full fetches without diffs", `Quick, test_distribution_diffs_off);
    ("distribution: config validation", `Quick, test_distribution_validation);
    ("distribution: canonical config distinct", `Quick, test_distribution_canonical_distinct);
  ]
