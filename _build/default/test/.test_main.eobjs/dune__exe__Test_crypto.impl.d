test/test_crypto.ml: Alcotest Bytes Char Crypto Digest32 Fun Gen Hmac Keyring List Merkle Printf QCheck QCheck_alcotest Sha256 Signature String
