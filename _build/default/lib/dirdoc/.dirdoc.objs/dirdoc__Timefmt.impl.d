lib/dirdoc/timefmt.ml: Float Printf String
