lib/client/consdiff.mli: Crypto
