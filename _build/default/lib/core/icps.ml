type 'a vector = 'a option array

let non_bot v =
  Array.fold_left (fun acc e -> match e with Some _ -> acc + 1 | None -> acc) 0 v

let entries_equal equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> equal x y
  | None, Some _ | Some _, None -> false

let vectors_equal equal a b =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a || (entries_equal equal a.(i) b.(i) && go (i + 1))
  in
  go 0

let agreement ~equal = function
  | [] -> true
  | first :: rest -> List.for_all (vectors_equal equal first) rest

let value_validity ~equal ~inputs ~who v =
  match v.(who) with None -> true | Some x -> equal x inputs.(who)

let value_validity_gst_zero ~equal ~inputs ~who v =
  match v.(who) with None -> false | Some x -> equal x inputs.(who)

let common_set_validity ~f v = non_bot v >= Array.length v - f

let fault_bound ~n = (n - 1) / 3
