test/test_core.ml: Alcotest Array Attack Crypto Dirdoc Fun Int Int64 List Printf Protocols QCheck QCheck_alcotest String Tor_sim Torpartial
