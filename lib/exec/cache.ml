type 'v state = Computing | Done of 'v

type 'v t = {
  mutex : Mutex.t;
  done_ : Condition.t;
  table : (string, 'v state) Hashtbl.t;
}

let create ?(size = 64) () =
  { mutex = Mutex.create (); done_ = Condition.create (); table = Hashtbl.create size }

let rec find_or_compute t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some (Done v) ->
      Mutex.unlock t.mutex;
      v
  | Some Computing ->
      (* Another domain is computing this key: wait for it to finish
         (or fail) rather than duplicating the work. *)
      Condition.wait t.done_ t.mutex;
      Mutex.unlock t.mutex;
      find_or_compute t ~key f
  | None -> (
      Hashtbl.replace t.table key Computing;
      Mutex.unlock t.mutex;
      match f () with
      | v ->
          Mutex.lock t.mutex;
          Hashtbl.replace t.table key (Done v);
          Condition.broadcast t.done_;
          Mutex.unlock t.mutex;
          v
      | exception e ->
          (* Failed computations are not cached; unblock waiters so
             one of them retries. *)
          Mutex.lock t.mutex;
          Hashtbl.remove t.table key;
          Condition.broadcast t.done_;
          Mutex.unlock t.mutex;
          raise e)

let find_opt t key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Done v) -> Some v
    | Some Computing | None -> None
  in
  Mutex.unlock t.mutex;
  r

let length t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold
      (fun _ state acc -> match state with Done _ -> acc + 1 | Computing -> acc)
      t.table 0
  in
  Mutex.unlock t.mutex;
  n
