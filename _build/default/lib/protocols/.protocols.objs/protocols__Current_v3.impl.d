lib/protocols/current_v3.ml: Array Crypto Dirdoc Float Fun List Printf Runenv Siground String Tor_sim Wire
