(** Consensus documents — the output of the directory protocol.

    An entry carries the aggregated properties of one relay; the
    document carries the validity window Tor clients enforce (stale
    after 1 h, invalid after 3 h — the rule that turns repeated
    consensus failures into a network outage). *)

type entry = {
  fingerprint : string;
  nickname : string;
  flags : Flags.t;
  version : Version.t;
  protocols : string;
  bandwidth : int;
  exit_policy : Exit_policy.t;
}

type t = private {
  valid_after : float;
  fresh_until : float;
  valid_until : float;
  n_votes : int;          (** votes aggregated into this document *)
  entries : entry array;  (** sorted by fingerprint *)
  digest : Crypto.Digest32.t;
  signing_payload : string;
      (** cached domain-tagged digest — every authority signs the same
          payload, so it is derived once at construction *)
}

val create : valid_after:float -> n_votes:int -> entries:entry list -> t
(** Sorts entries, rejects duplicate fingerprints, derives the
    validity window ([+1 h] fresh, [+3 h] valid) and digest. *)

val n_entries : t -> int
val find : t -> fingerprint:string -> entry option
val digest : t -> Crypto.Digest32.t
val equal : t -> t -> bool

val is_fresh : t -> now:float -> bool
(** Clients should still use the document. *)

val is_valid : t -> now:float -> bool
(** Document not yet past the 3-hour hard deadline. *)

val wire_size : t -> int
(** Modelled serialized size (header + 220 bytes per entry). *)

val serialize : t -> string
(** Dir-spec-style text rendering. *)

val parse : string -> (t, string) result
(** Parse text produced by {!serialize}; [parse (serialize c)] equals
    [c] content-wise. *)

val signing_payload : t -> string
(** The byte string authorities sign: the digest prefixed with a
    domain tag.  Cached at construction; this is a field read. *)
