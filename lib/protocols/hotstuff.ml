module Sim = Tor_sim
module Signature = Crypto.Signature
module Digest32 = Crypto.Digest32

let name = "hotstuff"

type phase = One | Two

type qc = { view : int; digest : Digest32.t; phase : phase; sigs : Signature.t list }

type 'v msg =
  | Propose of { view : int; value : 'v; justify : qc option }
  | Vote of { view : int; phase : phase; digest : Digest32.t; signature : Signature.t }
  | Qc_announce of { qc : qc }
  | Commit of { qc : qc; value : 'v }
  | Timeout of {
      view : int;
      high_qc : qc option;
      value : 'v option;
      signature : Signature.t;
    }

type 'v callbacks = {
  now : unit -> Sim.Simtime.t;
  schedule : Sim.Simtime.t -> (unit -> unit) -> Sim.Engine.handle;
  cancel : Sim.Engine.handle -> unit;
  send : dst:int -> 'v msg -> unit;
  validate : 'v -> bool;
  value_digest : 'v -> Digest32.t;
  proposal : unit -> 'v option;
  decide : view:int -> 'v -> unit;
  on_view : view:int -> unit;
  log : string -> unit;
}

type 'v t = {
  keyring : Crypto.Keyring.t;
  n : int;
  id : int;
  f : int;
  quorum : int;
  view_timeout : Sim.Simtime.t;
  cb : 'v callbacks;
  mutable view : int;
  mutable timer : Sim.Engine.handle option;
  mutable proposed_in : int; (* last view in which this node proposed, -1 if none *)
  mutable voted1 : int;      (* last view with a phase-One vote *)
  mutable voted2 : int;      (* last view with a phase-Two vote *)
  mutable locked : qc option;
  mutable high_qc : qc option;
  mutable high_value : 'v option; (* value matching high_qc *)
  mutable carry : ('v * qc) option; (* value the view's leader must re-propose *)
  mutable decided : 'v option;
  mutable decided_qc : qc option;
  proposals : (int, 'v) Hashtbl.t; (* view -> proposal value seen *)
  votes1 : (int, (int, Signature.t) Hashtbl.t) Hashtbl.t; (* view -> signer -> sig *)
  votes2 : (int, (int, Signature.t) Hashtbl.t) Hashtbl.t;
  timeouts : (int, (int, qc option * 'v option) Hashtbl.t) Hashtbl.t;
}

let quorum ~n = n - ((n - 1) / 3)
let leader ~n ~view = view mod n

let create ~keyring ~n ~id ?(view_timeout = 5.) cb =
  if n < 4 then invalid_arg "Hotstuff.create: need n >= 4";
  {
    keyring;
    n;
    id;
    f = (n - 1) / 3;
    quorum = quorum ~n;
    view_timeout;
    cb;
    view = -1;
    timer = None;
    proposed_in = -1;
    voted1 = -1;
    voted2 = -1;
    locked = None;
    high_qc = None;
    high_value = None;
    carry = None;
    decided = None;
    decided_qc = None;
    proposals = Hashtbl.create 16;
    votes1 = Hashtbl.create 16;
    votes2 = Hashtbl.create 16;
    timeouts = Hashtbl.create 16;
  }

let leader_of t view = view mod t.n
let decided t = t.decided
let current_view t = t.view

(* --- signing payloads ------------------------------------------------- *)

let phase_tag = function One -> "one" | Two -> "two"

let vote_payload ~phase ~view digest =
  Printf.sprintf "hs|vote|%s|%d|%s" (phase_tag phase) view (Digest32.raw digest)

let timeout_payload ~view = Printf.sprintf "hs|timeout|%d" view

let qc_valid t (qc : qc) =
  List.length qc.sigs >= t.quorum
  && (let signers = List.map (fun s -> s.Signature.signer) qc.sigs in
      List.length (List.sort_uniq Int.compare signers) = List.length qc.sigs)
  &&
  let payload = vote_payload ~phase:qc.phase ~view:qc.view qc.digest in
  List.for_all (fun s -> Signature.verify t.keyring s payload) qc.sigs

let qc_view = function None -> -1 | Some (qc : qc) -> qc.view

(* --- message sizes ----------------------------------------------------- *)

let qc_size = function
  | None -> 8
  | Some (qc : qc) ->
      Wire.digest_bytes + 16 + (List.length qc.sigs * Signature.wire_size)

let msg_size ~value_size = function
  | Propose { value; justify; _ } ->
      Wire.control_bytes + value_size value + qc_size justify
  | Vote _ -> Wire.control_bytes + Wire.digest_bytes + Signature.wire_size
  | Qc_announce { qc } -> Wire.control_bytes + qc_size (Some qc)
  | Commit { qc; value } -> Wire.control_bytes + qc_size (Some qc) + value_size value
  | Timeout { high_qc; value; _ } ->
      Wire.control_bytes + Signature.wire_size + qc_size high_qc
      + (match value with None -> 0 | Some v -> value_size v)

(* --- view machinery ---------------------------------------------------- *)

let broadcast t msg =
  for dst = 0 to t.n - 1 do
    t.cb.send ~dst msg
  done

let update_high_qc t (qc : qc) value =
  if qc.phase = One && qc.view > qc_view t.high_qc then begin
    t.high_qc <- Some qc;
    (match value with Some _ -> t.high_value <- value | None -> ());
    (* Two-phase rule: a phase-One QC is also the lock. *)
    if qc.view > qc_view t.locked then t.locked <- Some qc
  end

let rec enter_view t view =
  if view > t.view && t.decided = None then begin
    t.view <- view;
    Option.iter t.cb.cancel t.timer;
    t.timer <- Some (t.cb.schedule t.view_timeout (fun () -> on_timer t));
    t.cb.log (Printf.sprintf "entering view %d (leader %d)" view (leader_of t view));
    t.cb.on_view ~view;
    try_propose t
  end

and try_propose t =
  if t.decided = None && leader_of t t.view = t.id && t.proposed_in < t.view then begin
    let candidate =
      match t.carry with
      | Some (value, qc) -> Some (value, Some qc)
      | None -> (
          (* Prefer re-proposing our own highest QC'd value if any;
             otherwise use the dissemination input. *)
          match (t.high_qc, t.high_value) with
          | Some qc, Some value -> Some (value, Some qc)
          | _ -> Option.map (fun v -> (v, None)) (t.cb.proposal ()))
    in
    match candidate with
    | None -> () (* not ready; notify_ready will retry *)
    | Some (value, justify) ->
        t.proposed_in <- t.view;
        broadcast t (Propose { view = t.view; value; justify })
  end

and on_timer t =
  if t.decided = None then begin
    (* Re-broadcast the timeout for the current view and keep the timer
       running; receivers de-duplicate by signer. *)
    if t.view >= 0 then begin
      let signature =
        Signature.sign t.keyring ~signer:t.id (timeout_payload ~view:t.view)
      in
      broadcast t
        (Timeout { view = t.view; high_qc = t.high_qc; value = t.high_value; signature })
    end;
    t.timer <- Some (t.cb.schedule t.view_timeout (fun () -> on_timer t))
  end

let record_vote table ~view ~signer signature =
  let per_view =
    match Hashtbl.find_opt table view with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.add table view h;
        h
  in
  if Hashtbl.mem per_view signer then false
  else begin
    Hashtbl.replace per_view signer signature;
    true
  end

(* --- handlers ----------------------------------------------------------- *)

let decide_once t ~view value qc =
  if t.decided = None then begin
    t.decided <- Some value;
    t.decided_qc <- Some qc;
    Option.iter t.cb.cancel t.timer;
    t.timer <- None;
    t.cb.log (Printf.sprintf "decided in view %d" view);
    t.cb.decide ~view value
  end

let on_propose t ~src ~view ~value ~justify =
  if view >= t.view && src = leader_of t view && t.decided = None then begin
    (match justify with
    | Some qc when not (qc_valid t qc) -> ()
    | justify ->
        if t.cb.validate value then begin
          let digest = t.cb.value_digest value in
          (* A justify QC must actually certify this value. *)
          let justify_ok =
            match justify with
            | None -> true
            | Some qc -> Digest32.equal qc.digest digest && qc.phase = One
          in
          let lock_ok =
            match t.locked with
            | None -> true
            | Some lock ->
                Digest32.equal lock.digest digest || qc_view justify > lock.view
          in
          if justify_ok && lock_ok then begin
            enter_view t view;
            Hashtbl.replace t.proposals view value;
            (match justify with
            | Some qc -> update_high_qc t qc (Some value)
            | None -> ());
            if t.voted1 < view then begin
              t.voted1 <- view;
              let signature =
                Signature.sign t.keyring ~signer:t.id
                  (vote_payload ~phase:One ~view digest)
              in
              t.cb.send ~dst:(leader_of t view)
                (Vote { view; phase = One; digest; signature })
            end
          end
        end)
  end

let quorum_sigs per_view = Hashtbl.fold (fun _ signature acc -> signature :: acc) per_view []

let on_vote t ~view ~phase ~digest ~signature =
  let payload = vote_payload ~phase ~view digest in
  if
    view >= 0 && leader_of t view = t.id
    && Signature.verify t.keyring signature payload
  then begin
    let table = match phase with One -> t.votes1 | Two -> t.votes2 in
    let fresh = record_vote table ~view ~signer:signature.Signature.signer signature in
    let per_view = Hashtbl.find table view in
    if fresh && Hashtbl.length per_view = t.quorum then begin
      let qc = { view; digest; phase; sigs = quorum_sigs per_view } in
      match phase with
      | One -> broadcast t (Qc_announce { qc })
      | Two -> (
          match Hashtbl.find_opt t.proposals view with
          | Some value -> broadcast t (Commit { qc; value })
          | None -> ())
    end
  end

let on_qc_announce t ~qc =
  if qc_valid t qc && qc.phase = One && t.decided = None then begin
    let value = Hashtbl.find_opt t.proposals qc.view in
    update_high_qc t qc value;
    if qc.view = t.view && t.voted2 < qc.view then begin
      t.voted2 <- qc.view;
      let signature =
        Signature.sign t.keyring ~signer:t.id (vote_payload ~phase:Two ~view:qc.view qc.digest)
      in
      t.cb.send ~dst:(leader_of t qc.view)
        (Vote { view = qc.view; phase = Two; digest = qc.digest; signature })
    end
  end

let on_commit t ~qc ~value =
  if
    qc.phase = Two && qc_valid t qc
    && Digest32.equal (t.cb.value_digest value) qc.digest
    && t.cb.validate value
  then decide_once t ~view:qc.view value qc

let on_timeout t ~src ~view ~high_qc ~value ~signature =
  if Signature.verify t.keyring signature (timeout_payload ~view) && signature.Signature.signer = src
  then begin
    (match t.decided with
    | Some decided_value ->
        (* Help a straggler: re-send the decision certificate. *)
        (match t.decided_qc with
        | Some qc -> t.cb.send ~dst:src (Commit { qc; value = decided_value })
        | None -> ())
    | None ->
        (match high_qc with
        | Some qc when qc_valid t qc -> update_high_qc t qc value
        | _ -> ());
        let per_view =
          match Hashtbl.find_opt t.timeouts view with
          | Some h -> h
          | None ->
              let h = Hashtbl.create 8 in
              Hashtbl.add t.timeouts view h;
              h
        in
        if not (Hashtbl.mem per_view src) then begin
          Hashtbl.replace per_view src (high_qc, value);
          (* Adopt higher views so the pacemaker converges after GST. *)
          if view > t.view then enter_view t view;
          if Hashtbl.length per_view >= t.quorum && view >= t.view then begin
            (* Timeout certificate: advance, carrying the highest QC'd
               value for the next leader to re-propose. *)
            let best =
              Hashtbl.fold
                (fun _ (qc, v) acc ->
                  match (qc, v) with
                  | Some (qc : qc), Some v when qc.phase = One && qc_valid t qc -> (
                      match acc with
                      | Some (_, (best_qc : qc)) when best_qc.view >= qc.view -> acc
                      | _ -> Some (v, qc))
                  | _ -> acc)
                per_view None
            in
            (match (best, t.high_qc, t.high_value) with
            | None, Some qc, Some v when qc.phase = One -> t.carry <- Some (v, qc)
            | _ -> t.carry <- best);
            enter_view t (view + 1)
          end
        end)
  end

let handle t ~src msg =
  match msg with
  | Propose { view; value; justify } -> on_propose t ~src ~view ~value ~justify
  | Vote { view; phase; digest; signature } -> on_vote t ~view ~phase ~digest ~signature
  | Qc_announce { qc } -> on_qc_announce t ~qc
  | Commit { qc; value } -> on_commit t ~qc ~value
  | Timeout { view; high_qc; value; signature } ->
      on_timeout t ~src ~view ~high_qc ~value ~signature

let start t = enter_view t 0
let notify_ready t = try_propose t
