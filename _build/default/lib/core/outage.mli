(** The end-to-end outage experiment: "five minutes of DDoS brings
    down Tor".

    Simulates a day of hourly consensus runs.  Under the paper's
    attack policy the stressor floods 5 of 9 authorities for the first
    300 s of every hour ($0.074 each).  Each hour's directory-protocol
    run is actually simulated; a client then tracks the newest
    document it can verify and the dir-spec freshness rules decide
    when circuit building stops: three consecutive failures expire the
    last valid consensus and the network goes dark (the January 2021
    incident, sustained).

    Running the same timeline over the paper's protocol shows the
    mitigation: every hourly run still produces a consensus (a few
    seconds after each flood ends), so clients never lose service. *)

type attack_policy =
  | No_attack
  | Hourly_flood  (** 5 authorities, 300 s, 0.5 Mbit/s residual, every hour *)

type hour = {
  index : int;                (** hour number, 0-based *)
  consensus_produced : bool;  (** did this hour's run succeed? *)
  client_usable : bool;       (** can clients build circuits at hour end? *)
  client_status : Torclient.Directory.freshness option;
      (** freshness of the newest document the client holds *)
}

type timeline = {
  protocol : Experiments.protocol;
  policy : attack_policy;
  hours : hour list;
  dark_hours : int;  (** hours during which clients could not build circuits *)
  attacker_usd : float;  (** total stressor spend over the timeline *)
}

val run :
  ?hours:int ->
  ?n_relays:int ->
  protocol:Experiments.protocol ->
  policy:attack_policy ->
  unit ->
  timeline
(** Default: 12 hours, 2,000 relays.  Every hour re-runs the directory
    protocol in its own simulation (fresh votes, same seed lineage)
    and feeds any produced consensus to a client. *)

val first_dark_hour : timeline -> int option
(** The first hour at whose end clients could no longer build
    circuits; [None] if the network stayed up.  Under [Hourly_flood]
    against the current protocol this is hour 3 — the 3-hour validity
    horizon of the last pre-attack consensus. *)
