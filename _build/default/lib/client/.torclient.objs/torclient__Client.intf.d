lib/client/client.mli: Circuit Crypto Dirdoc Directory Tor_sim
