(** Binary-heap priority queue of timestamped events.

    Events at equal times pop in insertion order (the sequence number
    breaks ties), which keeps the simulation deterministic.

    The heap is laid out struct-of-arrays: the [(time, seq)] ordering
    key lives in an unboxed [float array] plus an [int array], so sift
    comparisons never dereference a boxed per-entry record; payloads
    ride in a parallel array untouched by comparisons.  Pushing
    allocates nothing once the arrays have grown to the high-water
    mark. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:Simtime.t -> 'a -> unit
(** [push q ~time e] enqueues [e] at [time].  Raises
    [Invalid_argument] on a non-finite or NaN time. *)

val pop : 'a t -> (Simtime.t * 'a) option
(** Remove and return the earliest event, insertion-ordered within
    equal times. *)

val push_keyed : 'a t -> time:Simtime.t -> key:int -> 'a -> unit
(** [push_keyed q ~time ~key e] enqueues [e] at [time] with an explicit
    tie-break key: equal-time events pop in ascending [key] order
    instead of insertion order.  The sharded engine uses
    (creator, per-creator counter) keys so the order at equal times
    does not depend on which queue an event was pushed into.  Do not
    mix with {!push} in one queue unless the key spaces are disjoint.
    Raises [Invalid_argument] on a non-finite or NaN time. *)

val pop_if_before : 'a t -> horizon:Simtime.t -> default:'a -> 'a
(** [pop_if_before q ~horizon ~default] pops and returns the earliest
    payload iff its time is at or before [horizon]; otherwise returns
    [default] and leaves the queue untouched.  A single operation
    replacing the peek-then-pop pattern, and — unlike {!pop} — free of
    allocation, so callers whose payloads carry their own timestamps
    (or that pick an out-of-band [default]) can drain the queue without
    producing garbage. *)

val pop_if_within : 'a t -> strict:Simtime.t -> le:Simtime.t -> default:'a -> 'a
(** [pop_if_within q ~strict ~le ~default] pops the earliest payload
    iff its time is strictly before [strict] AND at or before [le];
    otherwise returns [default].  The sharded engine's round pop: the
    lookahead horizon is exclusive (an event exactly at it could tie
    with unpublished cross-shard mail), the [until] cap inclusive. *)

val peek_time : 'a t -> Simtime.t option
(** Time of the earliest event without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** [clear q] empties the queue in O(1), keeping the arrays at their
    high-water capacity and restarting the insertion tie-break counter,
    so a cleared queue behaves exactly like a fresh one.  The payload
    array retains whatever values it held; callers recycling queues of
    heap payloads should drain with {!pop} if retention matters. *)
