lib/core/outage.mli: Experiments Torclient
