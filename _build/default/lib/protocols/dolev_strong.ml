module Signature = Crypto.Signature
module Digest32 = Crypto.Digest32

type 'v outcome = Value of 'v | Bottom

type 'v relay = { value : 'v; chain : Signature.t list }

type 'v node = {
  keyring : Crypto.Keyring.t;
  n : int;
  f : int;
  id : int;
  sender : int;
  digest : 'v -> Digest32.t;
  mutable extracted : (Digest32.t * 'v) list; (* at most 2 kept *)
}

let rounds ~f = f + 1

let create ~keyring ~n ~f ~id ~sender ~digest =
  if f < 0 || f >= n then invalid_arg "Dolev_strong.create: need 0 <= f < n";
  if id < 0 || id >= n || sender < 0 || sender >= n then
    invalid_arg "Dolev_strong.create: id out of range";
  { keyring; n; f; id; sender; digest; extracted = [] }

let payload t d = Printf.sprintf "dsb|%d|%s" t.sender (Digest32.raw d)

let initial_broadcast t value =
  if t.id <> t.sender then invalid_arg "Dolev_strong.initial_broadcast: not the sender";
  let d = t.digest value in
  t.extracted <- [ (d, value) ];
  { value; chain = [ Signature.sign t.keyring ~signer:t.id (payload t d) ] }

(* A chain received in round r is valid if it has exactly r distinct
   signers, the first being the sender, all covering the value. *)
let chain_valid t ~round { value; chain } =
  List.length chain >= round
  && (match chain with
     | first :: _ -> first.Signature.signer = t.sender
     | [] -> false)
  && (let signers = List.map (fun s -> s.Signature.signer) chain in
      List.length (List.sort_uniq Int.compare signers) = List.length chain)
  &&
  let p = payload t (t.digest value) in
  List.for_all (fun s -> Signature.verify t.keyring s p) chain

let receive t ~round relay =
  if round < 1 || round > rounds ~f:t.f then None
  else if not (chain_valid t ~round relay) then None
  else
    let d = t.digest relay.value in
    if List.exists (fun (d', _) -> Digest32.equal d d') t.extracted then None
    else if List.length t.extracted >= 2 then None (* equivocation already proven *)
    else begin
      t.extracted <- (d, relay.value) :: t.extracted;
      (* Forward with our signature, unless we are in the final round
         or have already signed this chain. *)
      let already_signed =
        List.exists (fun s -> s.Signature.signer = t.id) relay.chain
      in
      if round >= rounds ~f:t.f || already_signed then None
      else
        Some
          {
            relay with
            chain = relay.chain @ [ Signature.sign t.keyring ~signer:t.id (payload t d) ];
          }
    end

let output t =
  match t.extracted with [ (_, v) ] -> Value v | [] | _ :: _ -> Bottom

let extracted t = List.rev_map snd t.extracted
