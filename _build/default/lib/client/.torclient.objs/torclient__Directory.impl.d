lib/client/directory.ml: Crypto Dirdoc Int List Printf
