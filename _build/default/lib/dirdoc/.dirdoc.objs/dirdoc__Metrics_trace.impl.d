lib/dirdoc/metrics_trace.ml: Float Hashtbl List Option Printf String Timefmt Tor_sim
