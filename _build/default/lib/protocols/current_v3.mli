(** The currently deployed Tor directory protocol, version 3
    (dir-spec; Figure 4 of the paper).

    Four lock-step rounds of 150 s each, started hourly:

    + round 1 — every authority pushes its vote to every other;
    + round 2 — authorities fetch any votes they are still missing
      from {e every} other authority (the duplication that inflates
      traffic under constrained bandwidth);
    + round 3 — each authority aggregates the votes it holds
      (Figure 2 rules), signs the resulting consensus document, and
      pushes the signature;
    + round 4 — missing signatures are fetched.

    An authority computes a consensus only if it holds votes from a
    majority of authorities at t = 300 s; the document is valid only
    with a majority of matching signatures.  Both the bounded-synchrony
    assumption and the failure log lines of Figure 1 live here. *)

val name : string

val round_seconds : float
(** 150 s — the deployed bounded-synchrony parameter Δ. *)

val run : Runenv.t -> Runenv.run_result
(** Simulate one consensus attempt.  The returned per-authority
    results carry the computed documents, signature counts, and
    latency metrics; the trace contains Tor-style log lines. *)
