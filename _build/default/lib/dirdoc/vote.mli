(** v3 status votes — the input documents of the directory protocol.

    A vote is an authority's signed snapshot of every relay it knows.
    Protocol simulations pass votes by reference and account for their
    size with {!wire_size} (an analytic function of the relay count,
    calibrated in DESIGN.md §4.1); {!serialize}/{!parse} produce and
    read the dir-spec-style text form for interoperability tests and
    the examples. *)

type t = private {
  authority : int;               (** authority index, 0-based *)
  authority_fingerprint : string;
  nickname : string;
  published : float;
  valid_after : float;
  fresh_until : float;
  valid_until : float;
  relays : Relay.t array;        (** sorted by fingerprint, unique *)
  digest : Crypto.Digest32.t;    (** canonical content digest *)
}

val create :
  authority:int ->
  authority_fingerprint:string ->
  nickname:string ->
  published:float ->
  valid_after:float ->
  relays:Relay.t list ->
  t
(** Sorts relays by fingerprint, rejects duplicates, derives
    [fresh_until = valid_after + 1 h] and [valid_until = valid_after
    + 3 h] (Tor's staleness rules), and computes the content digest.
    Raises [Invalid_argument] on duplicates or a negative authority
    id. *)

val n_relays : t -> int

val find : t -> fingerprint:string -> Relay.t option
(** Binary search by fingerprint. *)

val wire_size : t -> int
(** Modelled bytes on the wire: [header + 560 * n_relays]. *)

val wire_size_for : n_relays:int -> int
(** The same function without a vote in hand; used by planners. *)

val digest : t -> Crypto.Digest32.t

val equal : t -> t -> bool
(** Content equality, via digests. *)

val serialize : t -> string
(** Render as dir-spec-style text. *)

val parse : string -> (t, string) result
(** Parse text produced by {!serialize}.  [parse (serialize v)] equals
    [v] content-wise. *)
