lib/client/consdiff.ml: Array Buffer Crypto Float List String
