lib/dirdoc/vote.ml: Array Buffer Crypto Exit_policy Flags List Option Printf Relay Result String Timefmt Version
