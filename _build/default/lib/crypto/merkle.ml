type side = Left | Right
type proof = (side * Digest32.t) list

(* One level up: pair adjacent nodes, duplicating a trailing odd node. *)
let level_up nodes =
  let rec pair acc = function
    | [] -> List.rev acc
    | [ last ] -> List.rev (Digest32.pair last last :: acc)
    | a :: b :: rest -> pair (Digest32.pair a b :: acc) rest
  in
  pair [] nodes

let root leaves =
  if leaves = [] then invalid_arg "Merkle.root: empty leaf list";
  let rec go = function
    | [ only ] -> only
    | nodes -> go (level_up nodes)
  in
  go leaves

let prove leaves ~index =
  let n = List.length leaves in
  if n = 0 then invalid_arg "Merkle.prove: empty leaf list";
  if index < 0 || index >= n then invalid_arg "Merkle.prove: index out of range";
  let rec go nodes idx acc =
    match nodes with
    | [ _ ] -> List.rev acc
    | _ ->
        let arr = Array.of_list nodes in
        let len = Array.length arr in
        let sibling_idx = if idx land 1 = 0 then idx + 1 else idx - 1 in
        let sibling =
          if sibling_idx >= len then arr.(idx) (* odd node paired with itself *)
          else arr.(sibling_idx)
        in
        let side = if idx land 1 = 0 then Right else Left in
        go (level_up nodes) (idx / 2) ((side, sibling) :: acc)
  in
  go leaves index []

let verify ~root:expected ~leaf ~index proof =
  ignore index;
  let computed =
    List.fold_left
      (fun acc (side, sibling) ->
        match side with
        | Right -> Digest32.pair acc sibling
        | Left -> Digest32.pair sibling acc)
      leaf proof
  in
  Digest32.equal computed expected

let proof_wire_size proof = List.length proof * (1 + Digest32.wire_size)
