type signed_consensus = {
  consensus : Dirdoc.Consensus.t;
  signatures : Crypto.Signature.t list;
}

let make keyring consensus ~signers =
  let payload = Dirdoc.Consensus.signing_payload consensus in
  {
    consensus;
    signatures = List.map (fun signer -> Crypto.Signature.sign keyring ~signer payload) signers;
  }

let verify keyring ~n_authorities { consensus; signatures } =
  let payload = Dirdoc.Consensus.signing_payload consensus in
  let valid_signers =
    List.filter_map
      (fun s ->
        if Crypto.Signature.verify keyring s payload then Some s.Crypto.Signature.signer
        else None)
      signatures
    |> List.sort_uniq Int.compare
  in
  let need = (n_authorities / 2) + 1 in
  if List.length valid_signers >= need then Ok ()
  else
    Error
      (Printf.sprintf "consensus has %d valid signatures, need %d"
         (List.length valid_signers) need)

type freshness = Fresh | Stale | Expired

let freshness ~now (c : Dirdoc.Consensus.t) =
  if Dirdoc.Consensus.is_fresh c ~now then Fresh
  else if Dirdoc.Consensus.is_valid c ~now then Stale
  else Expired

let usable ~now c =
  match freshness ~now c with Fresh | Stale -> true | Expired -> false
