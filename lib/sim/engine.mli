(** Discrete-event simulation engine, shardable across OCaml domains.

    The engine owns the clock and a queue of scheduled events.
    Protocols never read wall-clock time; everything observable happens
    inside a scheduled event, which makes runs deterministic.

    Events live in pools of reusable cells (DESIGN.md §7): scheduling
    in steady state allocates nothing, and a {!handle} is an immediate
    int carrying the cell's generation, so {!cancel} is O(1) and safe
    against cell reuse.  Hot paths that would otherwise allocate a
    closure per event can {!register_callback} once and schedule
    [(callback, int)] pairs via {!schedule_call}.

    With [create ~shards ~nodes ~lookahead], nodes are partitioned
    into contiguous shard blocks, each run by its own domain under
    conservative-lookahead synchronization (DESIGN.md §10): a shard
    only executes events strictly earlier than the global clock lower
    bound (the minimum over {e all} shards' queue heads, its own
    included) plus the minimum cross-node propagation latency, so no
    event — not even one caused transitively, by feedback through
    another shard — is ever created in a shard's past.  Equal-time
    events order by a sharding-invariant (creator node, per-creator
    counter) key, so any shard count — including 1 — replays the same
    simulation bit for bit. *)

type t

type handle
(** A scheduled event that can still be cancelled.  Stale handles
    (fired, cancelled, or from another engine's recycled cell) are
    detected by generation and ignored. *)

type callback
(** A typed continuation registered once with the engine; scheduling it
    stores only an [int] argument, no closure. *)

val create :
  ?shards:int -> ?nodes:int -> ?lookahead:Simtime.t -> unit -> t
(** [create ~shards ~nodes ~lookahead ()] builds an engine whose
    events are owned by nodes [0 .. nodes-1] (plus ownerless events,
    owner [-1], which live on shard 0), partitioned over [shards]
    domains.  [lookahead] must be the minimum cross-node propagation
    latency ({!Topology.min_latency}).  The shard count is clamped to
    1 whenever sharding is unsafe or pointless: [shards = 1],
    [nodes < 2], or a non-positive/unbounded [lookahead]; it is also
    capped at [nodes] and at 64.  [create ()] is the classic
    single-domain engine.  Raises [Invalid_argument] if [shards < 1]
    or [nodes < 0]. *)

val shard_count : t -> int
(** Effective number of shards after clamping (1 for [create ()]). *)

val current_shard : t -> int
(** The shard index the calling domain executes (0 outside a sharded
    run). *)

val shard_of_node : t -> int -> int
(** The shard owning a node's events ([-1], ownerless, maps to 0). *)

val now : t -> Simtime.t
(** Current simulated time — of the calling domain's shard during a
    sharded run.  Shard clocks are aligned again when {!run}
    returns. *)

val schedule : t -> ?owner:int -> at:Simtime.t -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] at absolute time [at].  [owner] is the
    node the event belongs to, deciding its shard; it defaults to the
    owner of the currently executing event ([-1], shard 0, at setup).
    During a sharded run an event may only target its own shard —
    cross-shard communication goes through {!Net}'s mailboxes.  Raises
    [Invalid_argument] if [at] is in the past or [owner] is outside
    [[-1, nodes)]. *)

val schedule_in : t -> ?owner:int -> after:Simtime.t -> (unit -> unit) -> handle
(** [schedule_in t ~after f] runs [f] after a relative delay. *)

val register_callback : t -> (int -> unit) -> callback
(** Register a continuation for {!schedule_call}.  Meant to be called
    a handful of times at setup (e.g. once per network); the closure is
    shared by every event scheduled against it. *)

val schedule_call : t -> ?owner:int -> at:Simtime.t -> callback -> int -> handle
(** [schedule_call t ~at cb arg] runs the registered continuation [cb]
    with [arg] at time [at] — the allocation-free counterpart of
    {!schedule} for pooled payloads addressed by index.  Raises
    [Invalid_argument] if [at] is in the past. *)

val alloc_key : t -> int
(** Allocate the next (creator, counter) tie-break key in the calling
    context — the key {!schedule} would have used.  For cross-shard
    mail: allocate the key on the sending shard (where it is
    sharding-invariant), carry it with the message, and enqueue with
    {!schedule_call_keyed} on the receiving shard. *)

val schedule_call_keyed :
  t -> owner:int -> at:Simtime.t -> key:int -> callback -> int -> handle
(** {!schedule_call} with an explicit pre-allocated tie-break key
    (from {!alloc_key}); used by {!Net}'s mailbox drain. *)

val set_round_hook : t -> (int -> unit) -> unit
(** Install the per-round mail drain: during a sharded run, shard [d]
    calls [hook d] at every round start, before publishing its clock
    lower bound.  One consumer ({!Net}) per engine; the last installed
    hook wins. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling a fired or already-cancelled
    event is a no-op.  During a sharded run, only cancel handles owned
    by the calling shard. *)

val run : ?until:Simtime.t -> t -> unit
(** Execute events in time order until the queue drains or the next
    event lies strictly beyond [until].  The clock ends at the last
    executed event (or at [until] when given and reached).  With more
    than one shard, spawns [shards - 1] domains for the duration of
    the run; if any shard raises, every domain unwinds and the
    lowest-numbered shard's exception is re-raised. *)

val pending : t -> int
(** Number of events still queued (including cancelled husks), summed
    over shards. *)

val reset : t -> unit
(** [reset t] returns the engine to the state {!create} left it in —
    clocks at zero, queues empty, every cell free, creator counters
    zeroed, profiler detached — while keeping cell pools, queue arrays
    and registered callbacks (plus the round hook) allocated and
    installed, so a long campaign reuses one engine instead of
    rebuilding it per run.  O(pool size), allocation-free.  Handles and
    keys from before the reset are stale; cancelling one is a no-op.
    Raises [Invalid_argument] during a sharded run. *)

val note_send : t -> arrival:Simtime.t -> unit
(** [note_send t ~arrival] tells the engine the executing shard just
    queued cross-shard mail arriving at [arrival].  {!Net} calls this
    on every mailbox push; the sharded run uses it to bound the
    solo-shard fast path (a shard running alone may advance to the next
    global minimum plus lookahead, clamped to [arrival + lookahead] so
    feedback through its own sends can never land in its executed
    past).  A no-op outside a sharded run. *)

(** {1 Telemetry} *)

val enable_profiler : t -> unit
(** Attach a wall-clock profiler recording, per shard and per round,
    busy time (dispatching events) and barrier-wait time.  Idempotent.
    When no profiler is attached (the default) the run loops pay one
    branch per round, nothing per event. *)

val profile : t -> Obs.Profiler.shard list option
(** Accumulated profile, one entry per shard; [None] unless
    {!enable_profiler} was called.  Read it after {!run} returns —
    worker domains have joined by then. *)

val queue_depth : t -> int
(** Events queued on the calling domain's shard (cancelled husks
    included) — the probe view of local backlog, safe to read from
    inside a sharded run, unlike {!pending}. *)
