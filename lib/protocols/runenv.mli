(** Shared run environment and result types for protocol simulations.

    Every protocol implementation (current v3, Luo et al.'s
    synchronous fix, and the paper's partial-synchrony protocol)
    consumes a [Runenv.t] and produces a [run_result], so the benches
    can sweep bandwidths, relay counts, and attacks uniformly. *)

type attack = {
  node : int;
  start : Tor_sim.Simtime.t;
  stop : Tor_sim.Simtime.t;
  bits_per_sec : float; (** residual bandwidth during the window *)
}

type behavior =
  | Honest
  | Silent        (** sends nothing at all, ever — a dead authority *)
  | Equivocating  (** sends conflicting documents to different peers *)
  | Crashed of { start : Tor_sim.Simtime.t; stop : Tor_sim.Simtime.t }
      (** down during [\[start, stop)], then recovers: the network
          suppresses its traffic during the window (via a compiled
          {!Tor_sim.Fault.Crash} entry) and the protocol drivers defer
          a node crashed at time 0 until its recovery instant. *)

(** A bag of reusable simulator instances keyed by driver name, shared
    across the runs of a campaign (DESIGN.md §12).  The slot type is
    extensible because each driver's network is monomorphic in its own
    message type; drivers stash and recover their slots through
    {!module-Simulator}. *)
module Arena : sig
  type slot = ..
  type t

  val create : unit -> t
  val find : t -> string -> slot option

  val set : t -> string -> slot -> unit
  (** Replace any existing slot under the same name. *)
end

type t = {
  n : int;
  keyring : Crypto.Keyring.t;
  topology : Tor_sim.Topology.t;
  votes : Dirdoc.Vote.t array;       (** input vote of each authority *)
  valid_after : float;
  bandwidth_bits_per_sec : float;    (** base NIC rate, all authorities *)
  attacks : attack list;
  behaviors : behavior array;
  fault_plan : Tor_sim.Fault.plan option; (** injected network faults *)
  defense : Defense.Plan.t option;
      (** installed defenses (admission control, rotation); [None] =
          undefended.  Installed on the network by {!apply_attacks},
          honored by the drivers through {!awake}. *)
  distribution : Torclient.Distribution.config option;
      (** downstream cache/client tier; [None] = agreement core only *)
  horizon : Tor_sim.Simtime.t;       (** stop simulating at this time *)
  shards : int;
      (** requested engine shard (domain) count; see
          {!effective_shards}.  Results are bit-identical at every
          shard count — this only chooses the execution strategy. *)
  telemetry : bool;
      (** record phase spans, latency histograms, probes and the engine
          profile into {!run_result.obs}.  Default [false] (zero-cost:
          the hot paths pay a branch, never an allocation).  Like
          [shards], telemetry never changes simulation outcomes — and
          unlike [shards] it is deliberately NOT part of {!Spec.t}, so
          flipping it cannot invalidate existing spec digests; enable
          it with a record update: [{ env with Runenv.telemetry = true }]. *)
  arena : Arena.t option;
      (** reusable simulator instances for campaign evaluation.  Like
          [telemetry], NOT part of {!Spec.t}: reusing an arena never
          changes simulation outcomes (a test pins reports
          bit-identical fresh vs reused), it only skips reconstruction.
          [None] (the default from {!of_spec}) rebuilds the simulator
          per run; [Exec.Campaign] installs one arena per worker
          domain.  An arena must never be shared across domains. *)
  rotation : Defense.Rotation.t array;
      (** per-node rotation membership caches derived from [defense]
          ([[||]] when rotation is off) — internal plumbing for
          {!awake}, built by {!of_spec}.  Node [i]'s cache must only
          be consulted from [i]'s shard. *)
}

val awake : t -> int -> now:Tor_sim.Simtime.t -> bool
(** Whether authority [id] processes events at [now]: [false] for
    [Silent] always, for [Crashed] inside its window, and for a node
    the defense {!rotated_out} of the active subset.  The drivers
    guard message handlers and scheduled round actions with this
    instead of hard-coding [Silent]'s permanence. *)

val rotated_out : t -> int -> now:Tor_sim.Simtime.t -> bool
(** Whether the environment's rotation defense has authority [id]
    quiet at [now] ([false] when no rotation is configured).  Folded
    into {!awake}; exposed for diagnostics. *)

val participates : behavior -> bool
(** [false] only for [Silent] — the node never takes part. *)

(** Declarative run specification: the serializable description of an
    environment.  A [Spec.t] carries everything [of_spec] needs to
    rebuild a [t] deterministically, so a spec (or its digest) fully
    identifies a simulation — the sweep engine keys its job cache and
    per-job RNG streams on {!Spec.digest}. *)
module Spec : sig
  type t = {
    seed : string;
    valid_after : float;
    n : int;                          (** number of authorities *)
    n_relays : int;
    bandwidth_bits_per_sec : float;
    attacks : attack list;
    behaviors : behavior array option; (** [None] = all honest *)
    divergence : Dirdoc.Workload.divergence option;
    fault_plan : Tor_sim.Fault.plan option;
        (** injected network faults; [None] = fault-free.  Participates
            in {!canonical}/{!digest} so cached sweep results keyed on a
            digest never conflate faulty and fault-free runs. *)
    defense : Defense.Plan.t option;
        (** defenses to install (admission control and/or rotation);
            [None] = undefended.  Participates in
            {!canonical}/{!digest} — introducing the field moved every
            digest once, by design, and distinct defense configs key
            distinct jobs.  NOT campaign-variable: a campaign compares
            fault plans under one fixed defense posture. *)
    distribution : Torclient.Distribution.config option;
        (** downstream distribution tier (caches, cohort sizes,
            schedule/backoff parameters, diff serving); [None] runs the
            agreement core alone.  Participates in
            {!canonical}/{!digest}, so distinct distribution configs
            always key distinct jobs. *)
    horizon : Tor_sim.Simtime.t;
    shards : int;
        (** engine shard (domain) count for the simulation run,
            default 1.  Participates in {!canonical}/{!digest} (the
            execution strategy is part of the experiment description)
            even though results are bit-identical at every value —
            the determinism tests rely on exactly that. *)
  }

  val default : t
  (** 9 honest authorities, 1000 relays, 250 Mbit/s, no attacks, seed
      ["torpartial"], no distribution tier, horizon 7200 s. *)

  val canonical : t -> string
  (** Canonical serialization (stable across processes and OCaml
      versions; floats rendered losslessly). *)

  val digest : t -> string
  (** SHA-256 of {!canonical} as 64 hex characters.  Structurally
      equal specs always digest identically; any field change changes
      the digest.  This is the job key of the sweep engine. *)

  val rng : t -> Tor_sim.Rng.t
  (** A deterministic per-spec RNG seeded from {!digest}, for
      job-level auxiliary randomness that must not depend on worker
      count or scheduling order. *)

  type prefix
  (** The precomputed invariant chunks of {!canonical} for a campaign:
      everything except the three campaign-variable fields (attacks,
      behaviors, fault_plan). *)

  val prefix : t -> prefix
  (** Compute the invariant chunks once; {!digest_with} then reuses
      them for every plan in the batch. *)

  val canonical_with :
    prefix ->
    attacks:attack list ->
    behaviors:behavior array option ->
    fault_plan:Tor_sim.Fault.plan option ->
    string
  (** Byte-identical to {!canonical} of the spec assembled from the
      prefix's base and the given variable fields (a test pins it). *)

  val digest_with :
    prefix ->
    attacks:attack list ->
    behaviors:behavior array option ->
    fault_plan:Tor_sim.Fault.plan option ->
    string
  (** [digest] of {!canonical_with} — the per-plan job key, without
      re-serializing the invariant fields. *)
end

val of_spec : ?votes:Dirdoc.Vote.t array -> Spec.t -> t
(** Build an environment from a spec: realistic latencies, votes
    generated from the seeded workload (pass [votes] to reuse a
    population across configurations — the generated votes depend
    only on [seed], [n], [n_relays], [valid_after], and
    [divergence], so a cached population is exactly what would have
    been generated).  Raises [Invalid_argument] on inconsistent
    array lengths or malformed attack windows. *)

val vary :
  t ->
  attacks:attack list ->
  behaviors:behavior array option ->
  fault_plan:Tor_sim.Fault.plan option ->
  t
(** [vary env ~attacks ~behaviors ~fault_plan] is [env] with the three
    campaign-variable fields replaced, validated exactly as {!of_spec}
    validates them ([None] behaviors means all honest).  Everything
    expensive — keyring, topology, votes — is shared with [env].
    Raises [Invalid_argument] on the same malformed inputs {!of_spec}
    rejects. *)

val effective_shards : t -> int
(** The shard count the engine will actually use for this environment:
    [1] unless [shards > 1], [n >= 2], and the topology's
    {!Tor_sim.Topology.min_latency} is positive and finite (the
    conservative lookahead needs a real lower bound), and never more
    than [n]. *)

(** Per-driver engine+network acquisition, arena-aware.  Each protocol
    driver instantiates this once with its message type and calls
    {!Simulator.obtain} where it used to build the simulator by hand:
    without an arena that is exactly what [obtain] does; with one, the
    slot stashed under the driver's name is reset
    ({!Tor_sim.Engine.reset} + {!Tor_sim.Net.reset}) and reused when
    its construction parameters (n, the identical topology, base
    bandwidth, effective shard count) match, and rebuilt-and-replaced
    otherwise.  Reset happens on acquisition, so an arena left dirty by
    a raised exception is safe to reuse. *)
module Simulator (M : sig
  type msg
end) : sig
  val obtain : driver:string -> t -> Tor_sim.Engine.t * M.msg Tor_sim.Net.t
end

(** Outcome of one authority at the end of a run. *)
type authority_result = {
  consensus : Dirdoc.Consensus.t option;  (** document it computed *)
  signatures : int;          (** matching signatures it holds (incl. own) *)
  decided_at : Tor_sim.Simtime.t option;
      (** when it held the document plus a majority of signatures *)
  network_time : Tor_sim.Simtime.t option;
      (** the paper's latency metric: summed per-round network time *)
}

(** Telemetry bundle of one run, present iff {!t.telemetry} was set.
    Everything except [profile] (wall-clock, host-dependent) and the
    ["queue-depth"] samples (per-shard by construction) is
    bit-identical at every shard count, like the rest of the result. *)
type obs = {
  metrics : Obs.Metrics.t;
      (** ["time-to-decision"] (seconds until each deciding authority
          decided) and ["delivery-latency/<label>"] (send to handler,
          per interned message label) histograms. *)
  spans : Obs.Events.span list;
      (** protocol-phase spans, one track per node; [complete = false]
          marks a phase the run ended inside *)
  samples : Obs.Events.sample list;
      (** periodic ["nic-backlog"] (per node) and ["queue-depth"] (per
          shard) probes *)
  profile : Obs.Profiler.shard list;
      (** wall-clock busy vs barrier-wait per engine shard *)
}

type run_result = {
  protocol : string;
  per_authority : authority_result array;
  stats : Tor_sim.Stats.t;
  trace : Tor_sim.Trace.t;
  obs : obs option;
}

(** Instrumentation helper shared by the protocol drivers.  All
    emission functions are no-ops on a [None] context, so drivers
    instrument unconditionally and the off-path cost is one option
    test per phase transition. *)
module Telemetry : sig
  type ctx

  val start :
    t ->
    engine:Tor_sim.Engine.t ->
    net:'m Tor_sim.Net.t ->
    ?stop:Tor_sim.Simtime.t ->
    unit ->
    ctx option
  (** [None] unless the environment has [telemetry] set.  Otherwise
      enables the engine profiler and the net's latency histograms and
      installs the periodic probes (every 5 sim seconds until [stop],
      default the environment horizon).  Call at setup, after message
      labels are interned and before [Engine.run]. *)

  val span :
    ?complete:bool ->
    ctx option ->
    node:int ->
    phase:string ->
    start:Tor_sim.Simtime.t ->
    stop:Tor_sim.Simtime.t ->
    unit
  (** Emit one finished span directly — how the lock-step drivers
      record their fixed round structure after the run. *)

  val phase_begin : ctx option -> node:int -> string -> unit
  (** Open a phase at the current sim time (from the node's own
      shard). *)

  val phase_end : ctx option -> node:int -> string -> unit
  (** Close an open phase as complete; a no-op if it is not open, so
      calling it from every place that can end a phase is safe. *)

  val finish :
    ctx option ->
    engine:Tor_sim.Engine.t ->
    net:'m Tor_sim.Net.t ->
    per_authority:authority_result array ->
    obs option
  (** After the run: closes still-open phases as incomplete, builds the
      ["time-to-decision"] histogram from [decided_at], merges the
      net's latency histograms, and attaches the engine profile. *)
end

val majority : n:int -> int
(** [n / 2 + 1] — signatures needed for a valid consensus document. *)

val success : t -> run_result -> bool
(** A run succeeds when at least a majority of honest authorities
    produced the same consensus document carrying at least a majority
    of signatures.  Crashed-and-recovered authorities count as honest;
    [Silent] and [Equivocating] ones do not. *)

val agreement_holds : t -> run_result -> bool
(** No two honest (including crash-recovered) authorities decided
    different documents (vacuously true when fewer than two decided) —
    the chaos harness's safety invariant. *)

val success_latency : run_result -> Tor_sim.Simtime.t option
(** Largest [network_time] among deciding authorities — the series
    plotted in Figure 10. *)

val decided_at_latest : run_result -> Tor_sim.Simtime.t option
(** Largest [decided_at] among deciding authorities — the recovery
    time plotted in Figure 11. *)

(** Structured outcome of a full experiment: the agreement verdict
    derived from a {!run_result}, plus the distribution-tier metrics
    when the environment carries a {!Spec.t.distribution} config.
    Every consumer — [torda-sim run]/[distribute], scenarios, the
    bench harness, [Exec.Chaos] — reads this one record instead of
    recomputing verdicts from raw results. *)
type report = {
  protocol : string;
  result : run_result;  (** the raw per-authority results and trace *)
  success : bool;                  (** {!success} *)
  agreement : bool;                (** {!agreement_holds} *)
  success_latency : Tor_sim.Simtime.t option;   (** {!success_latency} *)
  decided_at_latest : Tor_sim.Simtime.t option; (** {!decided_at_latest} *)
  total_bytes : int;    (** authority-tier bytes on the wire *)
  dropped : int;        (** messages lost to attacks or faults *)
  rejected : int;
      (** messages turned away by the installed defenses (admission
          over-budget, rotation quiet periods); [0] when undefended.
          Deliberately not folded into [dropped]. *)
  distribution : Torclient.Distribution.outcome option;
      (** client-tier metrics; [None] when no distribution config *)
}

val report :
  t -> ?distribution:Torclient.Distribution.outcome -> run_result -> report
(** Assemble a {!report} from a raw result, computing the agreement
    verdict and traffic totals with the helpers above. *)

val report_obs : report -> obs option
(** The run's telemetry bundle ([None] when telemetry was off). *)

val time_to_decision : report -> Obs.Metrics.histogram option
(** The ["time-to-decision"] histogram: one observation per authority
    that decided, at its decision time. *)

val delivery_latency : report -> string -> Obs.Metrics.histogram option
(** [delivery_latency r label] — the delivery-latency histogram of one
    interned message label (e.g. ["vote"], ["consensus-sig"]). *)

val stalled_phase : t -> report -> string option
(** Diagnosis for a failed run: among correct authorities that never
    decided, each one's latest-begun incomplete phase span, reduced to
    the most common phase name (ties alphabetically).  [None] when
    telemetry was off or every correct authority decided. *)

val apply_attacks : t -> 'm Tor_sim.Net.t -> unit
(** Install every attack window on the network's NICs, install the
    environment's fault injector ({!Spec.t.fault_plan} plus one
    {!Tor_sim.Fault.Crash} entry per [Crashed] behavior), and install
    the environment's defenses ({!Tor_sim.Net.set_defense}) on the
    network.  Call once, before the first send. *)

val default_valid_after : float
(** POSIX time of the simulated consensus hour (2026-01-01 01:00). *)
