lib/dirdoc/exit_policy.ml: Format Fun Int List Option Printf Stdlib String
