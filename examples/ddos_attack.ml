(* The paper's headline experiment (Sections 4 and 6): a five-minute
   DDoS on five of the nine directory authorities.

   Part 1 reproduces Figure 1 — the current protocol's authority log as
   the attack breaks the 150 s bounded-synchrony assumption.
   Part 2 runs the paper's partial-synchrony protocol through the same
   attack and shows it recovering seconds after the flood stops.

     dune exec examples/ddos_attack.exe *)

module R = Protocols.Runenv

let n_relays = 8000 (* the live network's scale *)

let () =
  print_endline "=== Part 1: the current Tor directory protocol under DDoS ===\n";
  (* Flood 5 of 9 authorities for the 300 s vote window, leaving the
     0.5 Mbit/s residual bandwidth Jansen et al. measured. *)
  let attacks = Attack.Ddos.bandwidth_attack ~n:9 () in
  let env =
    R.of_spec { R.Spec.default with seed = "ddos-example"; n_relays; attacks }
  in
  let result = Protocols.Current_v3.run env in
  Printf.printf "consensus produced: %b\n\n" (R.success env result);
  print_endline "log of unattacked authority 'faravahar' (compare paper Figure 1):";
  print_endline (Tor_sim.Trace.dump ~node:8 result.R.trace);

  print_endline "\n=== Part 2: the partial-synchrony protocol, same attack ===\n";
  let env2 =
    R.of_spec { R.Spec.default with seed = "ddos-example"; n_relays; attacks }
  in
  let ours = Torpartial.Protocol.run env2 in
  Printf.printf "consensus produced: %b\n" (R.success env2 ours);
  (match R.decided_at_latest ours with
  | Some t ->
      Printf.printf "decided at t = %.1f s — %.1f s after the attack window closed\n" t
        (t -. 300.)
  | None -> print_endline "no decision");

  (* The attacker's bill, per Section 4.3. *)
  let instance = Attack.Cost.break_one_run () in
  Printf.printf
    "\nattacker cost: $%.3f for this hour's run, $%.2f/month to keep Tor down\n"
    instance.Attack.Cost.usd
    (Attack.Cost.monthly_usd instance)
