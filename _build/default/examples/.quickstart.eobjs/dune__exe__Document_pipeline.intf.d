examples/document_pipeline.mli:
