lib/sim/net.ml: Array Engine Nic Simtime Stats Topology
