lib/core/icps.mli:
