lib/core/icps.ml: Array List
