module Rng = Tor_sim.Rng

type divergence = {
  missing_prob : float;
  bw_jitter : float;
  flag_flip_prob : float;
  unmeasured_prob : float;
}

let default_divergence =
  { missing_prob = 0.01; bw_jitter = 0.10; flag_flip_prob = 0.02; unmeasured_prob = 0.15 }

let no_divergence =
  { missing_prob = 0.; bw_jitter = 0.; flag_flip_prob = 0.; unmeasured_prob = 0. }

(* The nine real directory authorities, for log realism. *)
let authority_nicknames =
  [| "moria1"; "tor26"; "dizum"; "gabelmoo"; "dannenberg"; "maatuska"; "longclaw";
     "bastet"; "faravahar" |]

let authority_nickname i =
  if i >= 0 && i < Array.length authority_nicknames then authority_nicknames.(i)
  else Printf.sprintf "auth%d" i

let nickname_syllables =
  [| "tor"; "nym"; "iron"; "quiet"; "blue"; "night"; "free"; "deep"; "grey"; "swift";
     "hidden"; "north"; "salt"; "ember"; "drift" |]

let random_fingerprint rng =
  let hex = "0123456789ABCDEF" in
  String.init 40 (fun _ -> hex.[Rng.int rng 16])

let random_address rng =
  Printf.sprintf "%d.%d.%d.%d" (Rng.range rng ~min:1 ~max:223) (Rng.int rng 256)
    (Rng.int rng 256) (Rng.range rng ~min:1 ~max:254)

let version_mix rng =
  (* A realistic spread: mostly current stable, a tail of older
     releases and an alpha. *)
  let roll = Rng.int rng 100 in
  if roll < 55 then Version.make 0 4 8 12
  else if roll < 75 then Version.make 0 4 8 11
  else if roll < 88 then Version.make 0 4 7 16
  else if roll < 96 then Version.make 0 4 8 10
  else Version.make ~tag:"alpha" 0 4 9 1

let exit_policy_mix rng =
  let roll = Rng.int rng 100 in
  if roll < 65 then Exit_policy.reject_all
  else if roll < 80 then Exit_policy.make Exit_policy.Accept [ (80, 80); (443, 443) ]
  else if roll < 90 then
    Exit_policy.make Exit_policy.Accept [ (20, 23); (80, 80); (443, 443); (993, 995) ]
  else Exit_policy.accept_all

(* Bandwidth in kB/s: log-uniform across ~3 decades, like the live
   network's long-tailed capacity distribution. *)
let bandwidth_mix rng =
  let exponent = 2. +. Rng.float rng 3. in
  int_of_float (10. ** exponent)

let base_flags rng ~bandwidth ~exit =
  let flags = Flags.of_list [ Flags.Running; Flags.Valid; Flags.V2Dir ] in
  let flags = if exit then Flags.add Flags.Exit flags else flags in
  let flags = if bandwidth > 2_000 then Flags.add Flags.Fast flags else flags in
  let flags =
    if bandwidth > 5_000 && Rng.int rng 100 < 60 then
      Flags.add Flags.Guard (Flags.add Flags.Stable flags)
    else if Rng.int rng 100 < 40 then Flags.add Flags.Stable flags
    else flags
  in
  if Rng.int rng 100 < 25 then Flags.add Flags.HSDir flags else flags

let relay_nickname rng i =
  let syllable () = nickname_syllables.(Rng.int rng (Array.length nickname_syllables)) in
  Printf.sprintf "%s%s%04d" (syllable ()) (syllable ()) (i mod 10000)

let relays ~rng ~n ~published =
  let seen = Hashtbl.create (2 * n) in
  let rec fresh_fingerprint () =
    let fp = random_fingerprint rng in
    if Hashtbl.mem seen fp then fresh_fingerprint ()
    else begin
      Hashtbl.add seen fp ();
      fp
    end
  in
  List.init n (fun i ->
      let bandwidth = bandwidth_mix rng in
      let exit_policy = exit_policy_mix rng in
      let exit = Exit_policy.policy exit_policy = Exit_policy.Accept in
      let flags = base_flags rng ~bandwidth ~exit in
      Relay.make ~fingerprint:(fresh_fingerprint ()) ~nickname:(relay_nickname rng i)
        ~address:(random_address rng)
        ~or_port:(Rng.range rng ~min:443 ~max:9999)
        ~dir_port:(if Rng.int rng 100 < 30 then 80 else 0)
        ~published:(Float.round published) ~flags ~version:(version_mix rng) ~bandwidth
        ~measured:bandwidth ~exit_policy ())

(* Flags an authority may legitimately disagree about; Running/Valid
   stay put so inclusion itself is stable under small divergence. *)
let flippable_flags = [ Flags.Fast; Flags.Stable; Flags.Guard; Flags.HSDir ]

let perturb_relay rng divergence (r : Relay.t) =
  let flags =
    if Rng.float rng 1.0 < divergence.flag_flip_prob then
      let flag = List.nth flippable_flags (Rng.int rng (List.length flippable_flags)) in
      if Flags.mem flag r.flags then Flags.remove flag r.flags else Flags.add flag r.flags
    else r.flags
  in
  let measured =
    if Rng.float rng 1.0 < divergence.unmeasured_prob then None
    else
      match r.measured with
      | None -> None
      | Some m ->
          let jitter = Rng.gaussian rng ~mean:1.0 ~stddev:divergence.bw_jitter in
          Some (Stdlib.max 1 (int_of_float (float_of_int m *. Float.max 0.1 jitter)))
  in
  Relay.make ~fingerprint:r.fingerprint ~nickname:r.nickname ~address:r.address
    ~or_port:r.or_port ~dir_port:r.dir_port ~published:r.published ~flags
    ~version:r.version ~protocols:r.protocols ~bandwidth:r.bandwidth ?measured
    ~exit_policy:r.exit_policy ()

let authority_view ~rng ~divergence ground_truth =
  List.filter_map
    (fun r ->
      if Rng.float rng 1.0 < divergence.missing_prob then None
      else Some (perturb_relay rng divergence r))
    ground_truth

let votes ~rng ?(divergence = default_divergence) ~keyring ~n_authorities ~n_relays
    ~valid_after () =
  let published = valid_after -. 600. in
  let ground_truth = relays ~rng ~n:n_relays ~published in
  Array.init n_authorities (fun authority ->
      let view = authority_view ~rng ~divergence ground_truth in
      Vote.create ~authority
        ~authority_fingerprint:(Crypto.Keyring.fingerprint keyring authority)
        ~nickname:(authority_nickname authority) ~published ~valid_after ~relays:view)

type churn = { leave_prob : float; join_frac : float; rekey_prob : float }

let default_churn = { leave_prob = 0.015; join_frac = 0.015; rekey_prob = 0.30 }

let evolve ~rng ?(churn = default_churn) ~published ground_truth =
  let survivors =
    List.filter (fun _ -> Rng.float rng 1.0 >= churn.leave_prob) ground_truth
  in
  let republished =
    List.map
      (fun (r : Relay.t) ->
        if Rng.float rng 1.0 < churn.rekey_prob then
          let jitter = Float.max 0.5 (Rng.gaussian rng ~mean:1.0 ~stddev:0.05) in
          let bandwidth = Stdlib.max 1 (int_of_float (float_of_int r.bandwidth *. jitter)) in
          Relay.make ~fingerprint:r.fingerprint ~nickname:r.nickname ~address:r.address
            ~or_port:r.or_port ~dir_port:r.dir_port ~published:(Float.round published)
            ~flags:r.flags ~version:r.version ~protocols:r.protocols ~bandwidth
            ?measured:(Option.map (fun _ -> bandwidth) r.measured)
            ~exit_policy:r.exit_policy ()
        else r)
      survivors
  in
  let n_joining =
    int_of_float (Float.round (float_of_int (List.length ground_truth) *. churn.join_frac))
  in
  let fresh = relays ~rng ~n:n_joining ~published in
  (* Joining relays could collide with survivors only if the RNG
     repeated a 160-bit fingerprint; guard anyway. *)
  let taken = Hashtbl.create (List.length republished) in
  List.iter (fun (r : Relay.t) -> Hashtbl.replace taken r.fingerprint ()) republished;
  republished @ List.filter (fun (r : Relay.t) -> not (Hashtbl.mem taken r.fingerprint)) fresh
