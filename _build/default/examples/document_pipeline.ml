(* The document pipeline: generate a synthetic relay population, render
   an authority's vote in dir-spec-style text, parse it back, and
   aggregate nine divergent votes into a consensus document with the
   Figure 2 rules.

     dune exec examples/document_pipeline.exe *)

let () =
  let keyring = Crypto.Keyring.create ~seed:"pipeline" ~n:9 () in
  let rng = Tor_sim.Rng.of_string_seed "pipeline" in
  let valid_after =
    match Dirdoc.Timefmt.of_string "2026-01-01 01:00:00" with
    | Ok t -> t
    | Error e -> failwith e
  in

  (* Nine authorities observe the same 40-relay ground truth with
     realistic measurement divergence. *)
  let votes =
    Dirdoc.Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:40 ~valid_after ()
  in

  (* A vote serializes to dir-spec-style text ... *)
  let text = Dirdoc.Vote.serialize votes.(0) in
  let lines = String.split_on_char '\n' text in
  Printf.printf "--- moria1's vote (first 16 of %d lines) ---\n" (List.length lines);
  List.iteri (fun i l -> if i < 16 then print_endline l) lines;

  (* ... and parses back to the same content. *)
  (match Dirdoc.Vote.parse text with
  | Ok back ->
      Printf.printf "\nparse(serialize(vote)) equals the original: %b\n"
        (Dirdoc.Vote.equal votes.(0) back)
  | Error e -> Printf.printf "parse error: %s\n" e);

  (* Aggregate all nine votes with the deployed rules (Figure 2). *)
  let consensus =
    Dirdoc.Aggregate.consensus ~valid_after ~votes:(Array.to_list votes)
  in
  Printf.printf "\nconsensus covers %d relays (votes disagreed on the rest)\n"
    (Dirdoc.Consensus.n_entries consensus);

  (* Show how the rules resolved one relay: the bandwidth is the
     low-median of the authorities' measurements. *)
  let sample = votes.(0).Dirdoc.Vote.relays.(0) in
  let measurements =
    Array.to_list votes
    |> List.filter_map (fun v ->
           match Dirdoc.Vote.find v ~fingerprint:sample.Dirdoc.Relay.fingerprint with
           | Some r -> r.Dirdoc.Relay.measured
           | None -> None)
  in
  match Dirdoc.Consensus.find consensus ~fingerprint:sample.Dirdoc.Relay.fingerprint with
  | Some entry ->
      Printf.printf "\nrelay %s (%s):\n" (String.sub entry.Dirdoc.Consensus.fingerprint 0 8)
        entry.Dirdoc.Consensus.nickname;
      Printf.printf "  measurements across votes: [%s]\n"
        (String.concat "; " (List.map string_of_int measurements));
      Printf.printf "  consensus bandwidth (low-median): %d kB/s\n"
        entry.Dirdoc.Consensus.bandwidth;
      Printf.printf "  consensus flags: %s\n"
        (Dirdoc.Flags.to_string entry.Dirdoc.Consensus.flags)
  | None -> print_endline "\n(sample relay did not reach the consensus)"
