(** Interactive Consistency under Partial Synchrony (Definition 5.1).

    The functionality the paper introduces: each of [n] nodes starts
    with a value; every correct node outputs the same length-[n]
    vector whose entries are values or [⊥], with

    + {b Termination} — every correct node outputs;
    + {b Agreement} — correct nodes output identical vectors;
    + {b Value Validity} — a correct node's own slot holds its input
      or [⊥], and specifically its input when GST = 0;
    + {b Common Set Validity} — at least [n - f] slots are non-[⊥].

    This module holds the vector type and pure property checkers the
    property-based tests run against protocol outputs. *)

type 'a vector = 'a option array
(** Output vector: [None] is ⊥. *)

val non_bot : 'a vector -> int
(** [|V|_{≠⊥}] — the number of non-empty entries. *)

val agreement : equal:('a -> 'a -> bool) -> 'a vector list -> bool
(** All vectors equal component-wise (vacuously true for [<= 1]). *)

val value_validity :
  equal:('a -> 'a -> bool) -> inputs:'a array -> who:int -> 'a vector -> bool
(** Node [who]'s own slot is its input or ⊥. *)

val value_validity_gst_zero :
  equal:('a -> 'a -> bool) -> inputs:'a array -> who:int -> 'a vector -> bool
(** The stronger GST = 0 form: the slot must hold the input. *)

val common_set_validity : f:int -> 'a vector -> bool
(** [non_bot v >= Array.length v - f]. *)

val fault_bound : n:int -> int
(** Largest [f] with [n >= 3f + 1]. *)
