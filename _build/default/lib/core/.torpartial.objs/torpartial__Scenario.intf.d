lib/core/scenario.mli: Experiments Protocols
