(** A composable defense configuration: admission control, rotation,
    both, or neither.

    A plan is a serializable value that rides in
    [Runenv.Spec.defense], participates in the spec digest, and is
    installed on the network ({!Net.set_defense}) and the run
    environment each run — so arena-reused simulators pick it up
    exactly like a fault plan, and defense-off specs behave
    byte-identically to a world without the defense layer. *)

type t = {
  admission : Admission.config option;
  rotation : Rotation.config option;
}

val none : t
val admission_only : t
(** {!Admission.default} alone. *)

val rotation_only : t
(** {!Rotation.default} alone. *)

val both : t
(** Both defaults composed. *)

val is_empty : t -> bool

val preset : string -> t option
(** ["none"], ["admission"], ["rotation"], ["both"] — the
    [torda-sim chaos --defense] vocabulary. *)

val validate : n:int -> t -> unit
(** Raises [Invalid_argument] on an invalid member config. *)

val canonical : t -> string
(** Canonical serialization; structurally equal plans serialize
    identically.  Feeds [Runenv.Spec.canonical] so defenses
    participate in job digests. *)

val digest : t -> string
(** SHA-256 of {!canonical}, 64 hex characters. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, e.g.
    [admission[rate=2/s,burst=32,backlog=64] rotate[out=1,epoch=150s,seed=mptc]]. *)
