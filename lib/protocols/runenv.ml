module Sim = Tor_sim

type attack = {
  node : int;
  start : Sim.Simtime.t;
  stop : Sim.Simtime.t;
  bits_per_sec : float;
}

type behavior =
  | Honest
  | Silent
  | Equivocating
  | Crashed of { start : Sim.Simtime.t; stop : Sim.Simtime.t }

type t = {
  n : int;
  keyring : Crypto.Keyring.t;
  topology : Sim.Topology.t;
  votes : Dirdoc.Vote.t array;
  valid_after : float;
  bandwidth_bits_per_sec : float;
  attacks : attack list;
  behaviors : behavior array;
  fault_plan : Sim.Fault.plan option;
  distribution : Torclient.Distribution.config option;
  horizon : Sim.Simtime.t;
  shards : int;
}

let awake t id ~now =
  match t.behaviors.(id) with
  | Honest | Equivocating -> true
  | Silent -> false
  | Crashed { start; stop } -> not (now >= start && now < stop)

let participates = function
  | Honest | Equivocating | Crashed _ -> true
  | Silent -> false

let default_valid_after =
  match Dirdoc.Timefmt.of_string "2026-01-01 01:00:00" with
  | Ok t -> t
  | Error _ -> assert false

module Spec = struct
  type runenv_attack = attack

  type t = {
    seed : string;
    valid_after : float;
    n : int;
    n_relays : int;
    bandwidth_bits_per_sec : float;
    attacks : runenv_attack list;
    behaviors : behavior array option;
    divergence : Dirdoc.Workload.divergence option;
    fault_plan : Sim.Fault.plan option;
    distribution : Torclient.Distribution.config option;
    horizon : Sim.Simtime.t;
    shards : int;
  }

  let default =
    {
      seed = "torpartial";
      valid_after = default_valid_after;
      n = 9;
      n_relays = 1000;
      bandwidth_bits_per_sec = 250e6;
      attacks = [];
      behaviors = None;
      divergence = None;
      fault_plan = None;
      distribution = None;
      horizon = 7200.;
      shards = 1;
    }

  (* Canonical serialization for job keying.  Floats are printed with
     %h (hex, lossless) so equal specs always serialize identically
     and nothing depends on printf rounding. *)
  let canonical t =
    let buf = Buffer.create 256 in
    let f x = Buffer.add_string buf (Printf.sprintf "%h;" x) in
    let s x =
      Buffer.add_string buf (string_of_int (String.length x));
      Buffer.add_char buf ':';
      Buffer.add_string buf x;
      Buffer.add_char buf ';'
    in
    let i x = Buffer.add_string buf (Printf.sprintf "%d;" x) in
    s t.seed;
    f t.valid_after;
    i t.n;
    i t.n_relays;
    f t.bandwidth_bits_per_sec;
    i (List.length t.attacks);
    List.iter
      (fun a ->
        i a.node;
        f a.start;
        f a.stop;
        f a.bits_per_sec)
      t.attacks;
    (match t.behaviors with
    | None -> Buffer.add_string buf "default;"
    | Some b ->
        Array.iter
          (fun v ->
            match v with
            | Honest -> Buffer.add_char buf 'h'
            | Silent -> Buffer.add_char buf 's'
            | Equivocating -> Buffer.add_char buf 'e'
            | Crashed { start; stop } ->
                Buffer.add_char buf 'c';
                f start;
                f stop)
          b;
        Buffer.add_char buf ';');
    (match t.divergence with
    | None -> Buffer.add_string buf "default;"
    | Some d ->
        f d.Dirdoc.Workload.missing_prob;
        f d.Dirdoc.Workload.bw_jitter;
        f d.Dirdoc.Workload.flag_flip_prob;
        f d.Dirdoc.Workload.unmeasured_prob);
    (match t.fault_plan with
    | None -> Buffer.add_string buf "default;"
    | Some plan -> s (Sim.Fault.canonical plan));
    (match t.distribution with
    | None -> Buffer.add_string buf "default;"
    | Some d -> s (Torclient.Distribution.canonical_config d));
    f t.horizon;
    i t.shards;
    Buffer.contents buf

  let digest t = Crypto.Digest32.hex (Crypto.Digest32.of_string (canonical t))

  let rng t = Sim.Rng.of_string_seed (digest t)
end

let of_spec ?votes (spec : Spec.t) =
  let { Spec.seed; valid_after; n; n_relays; bandwidth_bits_per_sec; attacks;
        behaviors; divergence; fault_plan; distribution; horizon; shards } = spec in
  if shards < 1 then invalid_arg "Runenv.of_spec: shards must be >= 1";
  let keyring = Crypto.Keyring.create ~seed ~n () in
  let rng = Sim.Rng.of_string_seed seed in
  let topology = Sim.Topology.realistic ~n ~rng:(Sim.Rng.split rng) in
  let votes =
    match votes with
    | Some v ->
        if Array.length v <> n then invalid_arg "Runenv.of_spec: votes length mismatch";
        v
    | None ->
        Dirdoc.Workload.votes ~rng ?divergence ~keyring ~n_authorities:n ~n_relays
          ~valid_after ()
  in
  let behaviors =
    match behaviors with
    | Some b ->
        if Array.length b <> n then
          invalid_arg "Runenv.of_spec: behaviors length mismatch";
        Array.iter
          (function
            | Crashed { start; stop } when stop < start ->
                invalid_arg "Runenv.of_spec: crash window stops before it starts"
            | _ -> ())
          b;
        b
    | None -> Array.make n Honest
  in
  Option.iter (fun plan -> Sim.Fault.validate ~n plan) fault_plan;
  List.iter
    (fun a ->
      if a.node < 0 || a.node >= n then
        invalid_arg "Runenv.of_spec: attack node out of range";
      if a.stop < a.start then invalid_arg "Runenv.of_spec: attack stops before it starts";
      if a.bits_per_sec < 0. then invalid_arg "Runenv.of_spec: negative residual bandwidth")
    attacks;
  Option.iter Torclient.Distribution.validate_config distribution;
  {
    n;
    keyring;
    topology;
    votes;
    valid_after;
    bandwidth_bits_per_sec;
    attacks;
    behaviors;
    fault_plan;
    distribution;
    horizon;
    shards;
  }

(* The shard count the engine will actually run: sharding needs at
   least two nodes and a positive finite cross-node lookahead (the
   engine would clamp to 1 anyway; computing it here lets callers and
   docs reason about it). *)
let effective_shards env =
  let lookahead = Sim.Topology.min_latency env.topology in
  if env.shards <= 1 || env.n < 2 then 1
  else if not (lookahead > 0.) || Sim.Simtime.is_infinite lookahead then 1
  else min env.shards env.n

type authority_result = {
  consensus : Dirdoc.Consensus.t option;
  signatures : int;
  decided_at : Sim.Simtime.t option;
  network_time : Sim.Simtime.t option;
}

type run_result = {
  protocol : string;
  per_authority : authority_result array;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
}

let majority ~n = (n / 2) + 1

(* Crash faults are benign: a crashed-and-recovered authority is held
   to the same agreement obligations as an always-up honest one. *)
let correct_behavior = function
  | Honest | Crashed _ -> true
  | Silent | Equivocating -> false

let honest_results env result =
  List.filter_map
    (fun i ->
      if correct_behavior env.behaviors.(i) then Some result.per_authority.(i)
      else None)
    (List.init env.n Fun.id)

let success env result =
  let need = majority ~n:env.n in
  let decided =
    List.filter_map
      (fun (r : authority_result) ->
        match r.consensus with
        | Some c when r.signatures >= need -> Some (Dirdoc.Consensus.digest c)
        | _ -> None)
      (honest_results env result)
  in
  match decided with
  | [] -> false
  | first :: _ ->
      List.length decided >= need
      && List.for_all (Crypto.Digest32.equal first) decided

let agreement_holds env result =
  let digests =
    List.filter_map
      (fun (r : authority_result) -> Option.map Dirdoc.Consensus.digest r.consensus)
      (honest_results env result)
  in
  match digests with
  | [] -> true
  | first :: rest -> List.for_all (Crypto.Digest32.equal first) rest

let fold_max_over f result =
  Array.fold_left
    (fun acc r ->
      match f r with
      | None -> acc
      | Some t -> Some (match acc with None -> t | Some a -> Float.max a t))
    None result.per_authority

let success_latency result = fold_max_over (fun r -> r.network_time) result
let decided_at_latest result = fold_max_over (fun r -> r.decided_at) result

type report = {
  protocol : string;
  result : run_result;
  success : bool;
  agreement : bool;
  success_latency : Sim.Simtime.t option;
  decided_at_latest : Sim.Simtime.t option;
  total_bytes : int;
  dropped : int;
  distribution : Torclient.Distribution.outcome option;
}

let report env ?distribution (result : run_result) =
  {
    protocol = result.protocol;
    result;
    success = success env result;
    agreement = agreement_holds env result;
    success_latency = success_latency result;
    decided_at_latest = decided_at_latest result;
    total_bytes = Sim.Stats.total_bytes_sent result.stats;
    dropped = Sim.Stats.dropped result.stats;
    distribution;
  }

let apply_attacks env net =
  List.iter
    (fun a ->
      Sim.Net.limit_node net ~node:a.node ~start:a.start ~stop:a.stop
        ~bits_per_sec:a.bits_per_sec)
    env.attacks;
  (* Install the fault injector.  Crash-window behaviors compile to
     [Fault.Crash] entries so the network suppresses the node's sends
     and deliveries during the window, whatever the protocol on top;
     the driver only has to time the node's own actions (see
     {!awake}).  The merged plan is a pure function of the spec, so
     the injector's RNG stream is too. *)
  let behavior_crashes =
    List.concat_map
      (fun i ->
        match env.behaviors.(i) with
        | Crashed { start; stop } ->
            [ { Sim.Fault.kind = Sim.Fault.Crash { node = i }; start; stop } ]
        | Honest | Silent | Equivocating -> [])
      (List.init env.n Fun.id)
  in
  let base = Option.value env.fault_plan ~default:Sim.Fault.empty in
  let merged = { base with Sim.Fault.faults = base.Sim.Fault.faults @ behavior_crashes } in
  if merged.Sim.Fault.faults <> [] then
    Sim.Net.set_fault net (Sim.Fault.instantiate merged)
