lib/client/circuit.mli: Dirdoc Tor_sim
