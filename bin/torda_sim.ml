(* torda-sim: command-line driver for the directory-protocol simulator.

     torda-sim run --protocol ours --relays 8000 --attack flood
     torda-sim cost --relays 8000
     torda-sim log --relays 8000 --node 8 *)

open Cmdliner
module R = Protocols.Runenv
module E = Torpartial.Experiments

(* --- shared arguments ------------------------------------------------------ *)

let protocol_conv =
  let parse s =
    match Exec.Job.protocol_of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (E.protocol_name p) in
  Arg.conv (parse, print)

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv E.Ours
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"Protocol to simulate: $(b,current), $(b,synchronous), or $(b,ours).")

let relays_arg =
  Arg.(
    value
    & opt int 8000
    & info [ "r"; "relays" ] ~docv:"N" ~doc:"Number of relays in the synthetic network.")

let bandwidth_arg =
  Arg.(
    value
    & opt float 250.
    & info [ "b"; "bandwidth" ] ~docv:"MBIT"
        ~doc:"Authority link bandwidth in Mbit/s (default 250, the live value).")

let seed_arg =
  Arg.(
    value
    & opt string "torda-sim"
    & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic simulation seed.")

type attack_kind = No_attack | Flood | Knockout

let attack_arg =
  let parse = function
    | "none" -> Ok No_attack
    | "flood" -> Ok Flood
    | "knockout" -> Ok Knockout
    | s -> Error (`Msg (Printf.sprintf "unknown attack %S" s))
  in
  let print ppf = function
    | No_attack -> Format.pp_print_string ppf "none"
    | Flood -> Format.pp_print_string ppf "flood"
    | Knockout -> Format.pp_print_string ppf "knockout"
  in
  Arg.(
    value
    & opt (conv (parse, print)) No_attack
    & info [ "a"; "attack" ] ~docv:"KIND"
        ~doc:
          "DDoS on 5 of 9 authorities for the first 300 s: $(b,none), $(b,flood) \
           (0.5 Mbit/s residual), or $(b,knockout) (fully offline).")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the simulated nodes over $(docv) OCaml domains under \
           conservative-lookahead synchronization.  Results are bit-identical \
           at every value; only wall-clock time changes.  Composes with \
           $(b,--jobs) sweep parallelism (each sweep worker runs its own \
           sharded engine), clamped against the host's core count.")

let make_env ?distribution ?(shards = 1) ~seed ~relays ~bandwidth ~attack () =
  let attacks =
    match attack with
    | No_attack -> []
    | Flood -> Attack.Ddos.bandwidth_attack ~n:9 ()
    | Knockout -> Attack.Ddos.knockout ~n:9 ()
  in
  R.of_spec
    {
      R.Spec.default with
      seed;
      n_relays = relays;
      bandwidth_bits_per_sec = bandwidth *. 1e6;
      attacks;
      distribution;
      shards;
    }

let print_distribution (o : Torclient.Distribution.outcome) =
  let time = function
    | Some t -> Printf.sprintf "%.1f s" t
    | None -> "(not reached)"
  in
  Printf.printf "clients:        %d on %d cache(s), %d cohort(s)\n"
    o.Torclient.Distribution.clients o.Torclient.Distribution.caches
    o.Torclient.Distribution.cohorts;
  Printf.printf "available at:   %.1f s\n" o.Torclient.Distribution.available_at;
  Printf.printf "90%% fresh:      %s\n"
    (time o.Torclient.Distribution.time_to_90pct_fresh);
  Printf.printf "full recovery:  %s\n"
    (time o.Torclient.Distribution.time_to_full_recovery);
  Printf.printf "bytes served:   %.1f MB (%.1f MB/cache mean, %.1f MB hottest)\n"
    (float_of_int o.Torclient.Distribution.bytes_served /. 1e6)
    (o.Torclient.Distribution.bytes_per_cache /. 1e6)
    (float_of_int o.Torclient.Distribution.bytes_per_cache_max /. 1e6);
  Printf.printf "fetches:        %d full, %d diff, %d failed attempt(s)\n"
    o.Torclient.Distribution.full_fetches o.Torclient.Distribution.diff_fetches
    o.Torclient.Distribution.failed_attempts

(* --- run ------------------------------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run — protocol-phase \
           spans (one track per authority, sim-time timestamps) plus periodic \
           NIC-backlog and event-queue-depth counter tracks.  Open it at \
           $(b,https://ui.perfetto.dev) or $(b,chrome://tracing).  Implies \
           telemetry.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the run's latency histograms (time-to-decision and per-label \
           delivery latency: count, p50, p99, max) and the per-shard engine \
           profile.  Implies telemetry.")

let print_metrics (o : R.obs) =
  print_endline "metrics:";
  List.iter
    (fun (name, h) ->
      if Obs.Metrics.count h = 0 then
        Printf.printf "  %-40s n=0\n" name
      else
        Printf.printf "  %-40s n=%-6d p50=%8.4fs p99=%8.4fs max=%8.4fs\n" name
          (Obs.Metrics.count h)
          (Obs.Metrics.percentile h 0.5)
          (Obs.Metrics.percentile h 0.99)
          (Obs.Metrics.max_value h))
    (Obs.Metrics.histograms o.R.metrics);
  List.iter
    (fun (s : Obs.Profiler.shard) ->
      Printf.printf "  shard %d: busy %.3f s, wait %.3f s, %d round(s), %d event(s)\n"
        s.Obs.Profiler.shard s.Obs.Profiler.busy_s s.Obs.Profiler.wait_s
        s.Obs.Profiler.rounds s.Obs.Profiler.events)
    o.R.profile

let write_trace path (o : R.obs) =
  let json =
    Obs.Trace_event.to_string
      ~node_name:(fun n -> Printf.sprintf "authority %d" n)
      ~spans:o.R.spans ~samples:o.R.samples ()
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "trace:     %s (%d span(s), %d sample(s))\n" path
    (List.length o.R.spans)
    (List.length o.R.samples)

let run_cmd =
  let action protocol relays bandwidth seed attack shards trace metrics =
    let env = make_env ~shards ~seed ~relays ~bandwidth ~attack () in
    let env =
      if trace <> None || metrics then { env with R.telemetry = true } else env
    in
    let report = E.run protocol env in
    Printf.printf "protocol:  %s\n" report.R.protocol;
    Printf.printf "relays:    %d\n" relays;
    Printf.printf "shards:    %d domain(s)\n" (R.effective_shards env);
    Printf.printf "bandwidth: %.1f Mbit/s\n" bandwidth;
    Printf.printf "success:   %b\n" report.R.success;
    (match report.R.success_latency with
    | Some t -> Printf.printf "latency:   %.1f s\n" t
    | None -> print_endline "latency:   (no consensus)");
    Printf.printf "traffic:   %.1f MB total on the wire\n"
      (float_of_int report.R.total_bytes /. 1e6);
    Printf.printf "dropped:   %d message(s)\n" report.R.dropped;
    List.iter
      (fun (label, count) -> Printf.printf "  %-14s %d\n" label count)
      (Tor_sim.Stats.dropped_labels report.R.result.R.stats);
    (match R.report_obs report with
    | None -> ()
    | Some o ->
        Option.iter (fun path -> write_trace path o) trace;
        if metrics then print_metrics o);
    if report.R.success then 0 else 1
  in
  let term =
    Term.(
      const action $ protocol_arg $ relays_arg $ bandwidth_arg $ seed_arg
      $ attack_arg $ shards_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one consensus instance of a directory protocol.")
    term

(* --- distribute ------------------------------------------------------------ *)

let distribute_cmd =
  let clients_arg =
    Arg.(
      value
      & opt int Torclient.Distribution.default_config.Torclient.Distribution.clients
      & info [ "clients" ] ~docv:"N"
          ~doc:"Client population served by the cache tier (default 1,000,000).")
  in
  let caches_arg =
    Arg.(
      value
      & opt int Torclient.Distribution.default_config.Torclient.Distribution.caches
      & info [ "caches" ] ~docv:"N" ~doc:"Directory-cache nodes (default 16).")
  in
  let halt_arg =
    Arg.(
      value
      & opt float 10800.
      & info [ "halt" ] ~docv:"SECONDS"
          ~doc:
            "How long the directory protocol had been down before this run's \
             consensus appeared (default 10800 = the paper's 3-hour outage; 0 \
             models steady state).")
  in
  let no_diffs_arg =
    Arg.(
      value & flag
      & info [ "no-diffs" ]
          ~doc:"Serve full documents instead of consensus diffs.")
  in
  let action protocol relays bandwidth seed attack clients caches halt no_diffs =
    let distribution =
      {
        Torclient.Distribution.default_config with
        Torclient.Distribution.clients;
        caches;
        halt;
        diffs = not no_diffs;
      }
    in
    match make_env ~distribution ~seed ~relays ~bandwidth ~attack () with
    | exception Invalid_argument e ->
        Printf.eprintf "distribute: %s\n" e;
        2
    | env -> (
        let report = E.run protocol env in
        Printf.printf "protocol:       %s\n" report.R.protocol;
        Printf.printf "relays:         %d\n" relays;
        Printf.printf "consensus:      %s\n"
          (if report.R.success then "produced" else "FAILED");
        (match report.R.distribution with
        | Some o ->
            print_distribution o;
            if report.R.success && o.Torclient.Distribution.time_to_full_recovery <> None
            then 0
            else 1
        | None ->
            print_endline "distribution:   (no signed consensus reached the caches)";
            1))
  in
  let term =
    Term.(
      const action $ protocol_arg $ relays_arg $ bandwidth_arg $ seed_arg $ attack_arg
      $ clients_arg $ caches_arg $ halt_arg $ no_diffs_arg)
  in
  Cmd.v
    (Cmd.info "distribute"
       ~doc:
         "Simulate one consensus instance plus the downstream distribution \
          tier: directory caches serving a (cohort-modelled) client \
          population, with staggered fetch schedules, exponential-backoff \
          retries, and consensus-diff serving.  Defaults reproduce the \
          paper's million-client flash crowd after a 3-hour halt.  Exit \
          status 0 when the consensus was produced and every client \
          recovered within the horizon.")
    term

(* --- log ------------------------------------------------------------------- *)

let log_cmd =
  let node_arg =
    Arg.(
      value
      & opt int 8
      & info [ "node" ] ~docv:"ID" ~doc:"Authority whose log to print (default 8).")
  in
  let action protocol relays bandwidth seed attack node =
    let env = make_env ~seed ~relays ~bandwidth ~attack () in
    let report = E.run protocol env in
    (* Stream the merged log one record at a time instead of
       materializing the full merged list and a joined string. *)
    Tor_sim.Trace.iter ~node report.R.result.R.trace (fun r ->
        print_endline (Tor_sim.Trace.render r));
    0
  in
  let term =
    Term.(
      const action $ protocol_arg $ relays_arg $ bandwidth_arg $ seed_arg $ attack_arg
      $ node_arg)
  in
  Cmd.v
    (Cmd.info "log" ~doc:"Print one authority's Tor-style log for a simulated run.")
    term

(* --- cost ------------------------------------------------------------------- *)

let cost_cmd =
  let required_arg =
    Arg.(
      value
      & opt float 10.
      & info [ "required" ] ~docv:"MBIT"
          ~doc:"Bandwidth the protocol needs per authority (Figure 7).")
  in
  let action relays required =
    let plan = Attack.Planner.make ~n_relays:relays ~required_mbit_per_sec:required () in
    Format.printf "%a@." Attack.Planner.pp plan;
    0
  in
  let term = Term.(const action $ relays_arg $ required_arg) in
  Cmd.v (Cmd.info "cost" ~doc:"Price the DDoS attack for a given network size.") term

(* --- sweep ----------------------------------------------------------------- *)

let sweep_cmd =
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains executing the sweep: $(b,1) runs sequentially, \
             $(b,0) uses one domain per core.  Results are identical for \
             every setting.")
  in
  let protocols_arg =
    Arg.(
      value
      & opt (list protocol_conv) [ E.Current; E.Synchronous; E.Ours ]
      & info [ "protocols" ] ~docv:"LIST"
          ~doc:"Comma-separated protocols to sweep (default: all three).")
  in
  let bandwidths_arg =
    Arg.(
      value
      & opt (list float) E.default_bandwidths
      & info [ "bandwidths" ] ~docv:"LIST"
          ~doc:"Comma-separated authority bandwidths in Mbit/s.")
  in
  let relays_arg =
    Arg.(
      value
      & opt (list int) E.default_relay_counts
      & info [ "relay-counts" ] ~docv:"LIST"
          ~doc:"Comma-separated relay counts.")
  in
  let sweep_seed_arg =
    Arg.(
      value
      & opt string E.default_seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Simulation seed (default $(b,torpartial), the experiments' seed, \
             whose shared vote populations are cached).")
  in
  let action jobs protocols bandwidths relay_counts seed =
    if jobs < 0 then begin
      prerr_endline "sweep: --jobs must be >= 0";
      2
    end
    else begin
      let jobs = if jobs = 0 then Exec.Pool.default_jobs () else jobs in
      let base = { R.Spec.default with R.Spec.seed } in
      let sweep =
        Exec.Sweep.make ~protocols ~bandwidths_mbit:bandwidths ~relay_counts ~base ()
      in
      let cells = Exec.Sweep.cells sweep in
      let started = Unix.gettimeofday () in
      let outcomes =
        E.run_jobs ~jobs (List.map (fun c -> c.Exec.Sweep.job) cells)
      in
      let elapsed = Unix.gettimeofday () -. started in
      Printf.printf "%-12s %10s %8s %10s\n" "protocol" "mbit/s" "relays" "latency";
      List.iter2
        (fun (c : Exec.Sweep.cell) (o : Exec.Job.outcome) ->
          Printf.printf "%-12s %10.1f %8d %10s\n"
            (E.protocol_name c.Exec.Sweep.protocol)
            c.Exec.Sweep.bandwidth_mbit c.Exec.Sweep.n_relays
            (match (o.Exec.Job.success, o.Exec.Job.success_latency) with
            | true, Some t -> Printf.sprintf "%.1f s" t
            | true, None | false, _ -> "fail"))
        cells outcomes;
      Printf.eprintf "sweep: %d cells on %d domain(s) in %.1f s\n%!"
        (List.length cells) jobs elapsed;
      0
    end
  in
  let term =
    Term.(
      const action $ jobs_arg $ protocols_arg $ bandwidths_arg $ relays_arg
      $ sweep_seed_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a protocol x bandwidth x relay-count grid (Figure 10 style) on a \
          parallel domain pool.  Cell order and values are independent of \
          $(b,--jobs); timing goes to stderr so stdout is byte-comparable.")
    term

(* --- chaos ----------------------------------------------------------------- *)

let chaos_cmd =
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains: $(b,1) runs sequentially, $(b,0) uses one domain \
             per core.  Verdicts are identical for every setting.")
  in
  let plans_arg =
    Arg.(
      value
      & opt int Exec.Chaos.default_config.Exec.Chaos.plans
      & info [ "plans" ] ~docv:"N" ~doc:"Number of chaos cases to sample and run.")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt string Exec.Chaos.default_config.Exec.Chaos.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Seed the whole campaign derives from; same seed, same verdicts.")
  in
  let chaos_relays_arg =
    Arg.(
      value
      & opt int Exec.Chaos.default_config.Exec.Chaos.n_relays
      & info [ "r"; "relays" ] ~docv:"N"
          ~doc:"Relays in the synthetic network (default 1000: chaos stresses \
                faults, not payload size).")
  in
  let defense_arg =
    let parse s =
      match Defense.Plan.preset s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown defense %S" s))
    in
    let print ppf p = Defense.Plan.pp ppf p in
    Arg.(
      value
      & opt (conv (parse, print)) Defense.Plan.none
      & info [ "defense" ] ~docv:"KIND"
          ~doc:
            "Defense toolbox applied to every case: $(b,none), $(b,admission) \
             (per-source token buckets at the authority NIC), $(b,rotation) \
             (MPTC-style epoch rotation of the active authority subset), or \
             $(b,both).")
  in
  let action jobs plans seed relays defense =
    if jobs < 0 then begin
      prerr_endline "chaos: --jobs must be >= 0";
      2
    end
    else if plans < 0 then begin
      prerr_endline "chaos: --plans must be >= 0";
      2
    end
    else begin
      let jobs = if jobs = 0 then Exec.Pool.default_jobs () else jobs in
      let config =
        {
          Exec.Chaos.default_config with
          Exec.Chaos.seed;
          plans;
          n_relays = relays;
          defense =
            (if Defense.Plan.is_empty defense then None else Some defense);
        }
      in
      let started = Unix.gettimeofday () in
      let report = Exec.Chaos.check ~config ~run_protocol:E.run ~jobs () in
      let elapsed = Unix.gettimeofday () -. started in
      List.iter
        (fun v -> Format.printf "@[<v>%a@]@." Exec.Chaos.pp_verdict v)
        report.Exec.Chaos.verdicts;
      Printf.printf "chaos: %d plan(s), %d safety violation(s), %d liveness violation(s)\n"
        plans report.Exec.Chaos.safety_violations report.Exec.Chaos.liveness_violations;
      (* Tiny --plans runs can finish inside the clock's resolution;
         reporting a rate from a near-zero denominator is noise, so the
         throughput clause only appears when the run was measurable. *)
      let rate =
        if elapsed >= 0.001 then
          Printf.sprintf " (%.2f plans/s)" (float_of_int plans /. elapsed)
        else ""
      in
      Printf.eprintf "chaos: %d plan(s) on %d domain(s) in %.1f s%s\n%!"
        plans jobs elapsed rate;
      if report.Exec.Chaos.safety_violations > 0 then 1 else 0
    end
  in
  let term =
    Term.(
      const action $ jobs_arg $ plans_arg $ chaos_seed_arg $ chaos_relays_arg
      $ defense_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sample seeded fault plans (loss, partitions, jitter, duplication, \
          crashes), run all three protocols through each, and check the \
          partial-synchrony protocol's safety and liveness invariants.  A \
          failing case is shrunk to a minimal repro and printed with its spec \
          digest; exit status 1 on any safety violation.")
    term

(* --- scenario ------------------------------------------------------------- *)

let scenario_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Scenario file to run (see $(b,--example)).")
  in
  let example_arg =
    Arg.(
      value & flag
      & info [ "example" ] ~doc:"Print an example scenario file and exit.")
  in
  let action file example =
    if example then begin
      print_string Torpartial.Scenario.default_text;
      0
    end
    else
      match file with
      | None ->
          prerr_endline "scenario: FILE required (or --example)";
          2
      | Some path -> (
          let ic = open_in path in
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          close_in ic;
          match Torpartial.Scenario.parse text with
          | Error e ->
              Printf.eprintf "scenario: %s\n" e;
              2
          | Ok scenario ->
              let report = Torpartial.Scenario.run scenario in
              Printf.printf "protocol: %s\n" report.R.protocol;
              Printf.printf "success:  %b\n" report.R.success;
              (match report.R.success_latency with
              | Some t -> Printf.printf "latency:  %.1f s\n" t
              | None -> print_endline "latency:  (no consensus)");
              Option.iter print_distribution report.R.distribution;
              if report.R.success then 0 else 1)
  in
  let term = Term.(const action $ file_arg $ example_arg) in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a simulation described by a scenario file.")
    term

let () =
  let doc = "Tor directory protocol simulator (EUROSYS '26 reproduction)" in
  let info = Cmd.info "torda-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; distribute_cmd; log_cmd; cost_cmd; sweep_cmd; chaos_cmd; scenario_cmd ]))
