(** Consensus-signature bookkeeping shared by every protocol.

    All three directory protocols end the same way: each authority
    signs the consensus document it computed and collects matching
    signatures from its peers; the document is valid once a majority
    signed the same digest.  This module holds that per-authority
    state. *)

type t

val create : keyring:Crypto.Keyring.t -> node:int -> need:int -> t
(** [need] is the signature count that makes the document valid
    (majority of all authorities). *)

val set_consensus : t -> now:Tor_sim.Simtime.t -> Dirdoc.Consensus.t -> Crypto.Signature.t
(** Record the locally computed document, self-sign it, and return the
    signature for broadcasting.  Raises [Invalid_argument] if a
    different document was already set. *)

val consensus : t -> Dirdoc.Consensus.t option

val store :
  t -> now:Tor_sim.Simtime.t -> digest:Crypto.Digest32.t -> Crypto.Signature.t -> unit
(** Accept a peer signature iff it verifies against our document's
    signing payload and matches our digest; duplicates are ignored. *)

val my_signature : t -> Crypto.Signature.t option
val count : t -> int

val decided_at : t -> Tor_sim.Simtime.t option
(** When the signature count first reached [need] (with a document
    held). *)
