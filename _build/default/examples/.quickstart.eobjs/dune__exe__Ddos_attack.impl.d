examples/ddos_attack.ml: Attack Printf Protocols Tor_sim Torpartial
