(* Tests for the baseline protocols and the HotStuff agreement engine:
   happy paths, the Figure 1 attack, equivocation (in)security, silent
   authorities, and HotStuff's agreement/liveness under faults. *)

module R = Protocols.Runenv
module HS = Protocols.Hotstuff
module Sim = Tor_sim

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let small_env ?(attacks = []) ?behaviors ?(n_relays = 200) () =
  R.of_spec { R.Spec.default with attacks; behaviors; n_relays }

let attack5 ?(residual = 0.5e6) () = Attack.Ddos.bandwidth_attack ~n:9 ~residual_bits_per_sec:residual ()

let behaviors_with pairs =
  let b = Array.make 9 R.Honest in
  List.iter (fun (i, v) -> b.(i) <- v) pairs;
  b

(* --- Siground --------------------------------------------------------------- *)

let sample_consensus () =
  Dirdoc.Consensus.create ~valid_after:0. ~n_votes:9 ~entries:[]

let test_siground () =
  let keyring = Crypto.Keyring.create ~n:9 () in
  let sg = Protocols.Siground.create ~keyring ~node:0 ~need:3 in
  checkb "no consensus yet" true (Protocols.Siground.consensus sg = None);
  let c = sample_consensus () in
  let own = Protocols.Siground.set_consensus sg ~now:1. c in
  checkb "own signature verifies" true
    (Crypto.Signature.verify keyring own (Dirdoc.Consensus.signing_payload c));
  checki "own counted" 1 (Protocols.Siground.count sg);
  let digest = Dirdoc.Consensus.digest c in
  let peer_sig i = Crypto.Signature.sign keyring ~signer:i (Dirdoc.Consensus.signing_payload c) in
  Protocols.Siground.store sg ~now:2. ~digest (peer_sig 1);
  checkb "not yet decided" true (Protocols.Siground.decided_at sg = None);
  (* duplicates and forgeries ignored *)
  Protocols.Siground.store sg ~now:2. ~digest (peer_sig 1);
  Protocols.Siground.store sg ~now:2. ~digest (Crypto.Signature.forge ~signer:2 "x");
  checki "still 2" 2 (Protocols.Siground.count sg);
  Protocols.Siground.store sg ~now:5. ~digest (peer_sig 3);
  (match Protocols.Siground.decided_at sg with
  | Some t -> Alcotest.(check (float 0.)) "decided at third sig" 5. t
  | None -> Alcotest.fail "should have decided");
  Alcotest.check_raises "conflicting consensus"
    (Invalid_argument "Siground.set_consensus: conflicting documents") (fun () ->
      let other = Dirdoc.Consensus.create ~valid_after:9. ~n_votes:9 ~entries:[] in
      ignore (Protocols.Siground.set_consensus sg ~now:6. other))

(* --- Current protocol --------------------------------------------------------- *)

let test_current_happy () =
  let env = small_env () in
  let result = Protocols.Current_v3.run env in
  checkb "success" true (R.success env result);
  checkb "agreement" true (R.agreement_holds env result);
  Array.iter
    (fun (a : R.authority_result) -> checki "all nine signatures" 9 a.signatures)
    result.per_authority;
  match R.success_latency result with
  | Some t -> checkb "fast on healthy network" true (t < 30.)
  | None -> Alcotest.fail "expected latency"

let test_current_fig1_attack () =
  let env = R.of_spec { R.Spec.default with n_relays = 8000; attacks = attack5 () } in
  let result = Protocols.Current_v3.run env in
  checkb "attack breaks the protocol" false (R.success env result);
  let log = Sim.Trace.dump ~node:8 result.trace in
  let contains needle =
    let nl = String.length needle and hl = String.length log in
    let rec go i = i + nl <= hl && (String.sub log i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "missing-votes notice" true (contains "We're missing votes from 5 authorities");
  checkb "fetch failures" true (contains "Giving up downloading votes");
  checkb "not enough votes" true
    (contains "We don't have enough votes to generate a consensus: 4 of 5")

let test_current_tolerates_four_silent () =
  let behaviors = behaviors_with [ (0, R.Silent); (1, R.Silent); (2, R.Silent); (3, R.Silent) ] in
  let env = small_env ~behaviors () in
  let result = Protocols.Current_v3.run env in
  checkb "5 of 9 suffice" true (R.success env result)

let test_current_fails_five_silent () =
  let behaviors =
    behaviors_with
      [ (0, R.Silent); (1, R.Silent); (2, R.Silent); (3, R.Silent); (4, R.Silent) ]
  in
  let env = small_env ~behaviors () in
  let result = Protocols.Current_v3.run env in
  checkb "4 of 9 fail" false (R.success env result)

let test_current_equivocation_insecure () =
  (* The Luo et al. attack: the current protocol lets an equivocating
     authority split honest authorities onto different documents. *)
  let env = small_env ~behaviors:(behaviors_with [ (0, R.Equivocating) ]) () in
  let result = Protocols.Current_v3.run env in
  checkb "agreement broken" false (R.agreement_holds env result)

(* --- Synchronous protocol ------------------------------------------------------ *)

let test_sync_happy () =
  let env = small_env () in
  let result = Protocols.Sync_ic.run env in
  checkb "success" true (R.success env result);
  checkb "agreement" true (R.agreement_holds env result)

let test_sync_equivocation_secure () =
  let env = small_env ~behaviors:(behaviors_with [ (0, R.Equivocating) ]) () in
  let result = Protocols.Sync_ic.run env in
  checkb "agreement survives equivocation" true (R.agreement_holds env result);
  checkb "still succeeds" true (R.success env result);
  (* Honest authorities detect and exclude the equivocator. *)
  let log = Sim.Trace.dump result.trace in
  let contains needle =
    let nl = String.length needle and hl = String.length log in
    let rec go i = i + nl <= hl && (String.sub log i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "equivocation logged" true (contains "Detected equivocation by authority 0")

let test_sync_attack_fails () =
  let env = R.of_spec { R.Spec.default with n_relays = 8000; attacks = attack5 () } in
  let result = Protocols.Sync_ic.run env in
  checkb "attack breaks sync protocol too" false (R.success env result)

let test_sync_more_traffic_than_current () =
  let env = small_env () in
  let sync = Protocols.Sync_ic.run env in
  let current = Protocols.Current_v3.run env in
  checkb "echo amplification (Table 1)" true
    (Sim.Stats.total_bytes_sent sync.stats
    > 3 * Sim.Stats.total_bytes_sent current.stats)

(* --- HotStuff --------------------------------------------------------------- *)

(* A direct harness over the simulator with string values. *)
type hs_world = {
  engine : Sim.Engine.t;
  decided : (string * float) option array;
  views : int array;
}

let run_hotstuff ?(n = 9) ?(silent = []) ?(attacks = []) ?(validate = fun _ -> true)
    ?(horizon = 3600.) () =
  let keyring = Crypto.Keyring.create ~n () in
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~n ~latency:0.03 in
  let net = Sim.Net.create ~engine ~topology ~bits_per_sec:250e6 () in
  List.iter
    (fun (a : R.attack) ->
      Sim.Net.limit_node net ~node:a.node ~start:a.start ~stop:a.stop
        ~bits_per_sec:a.bits_per_sec)
    attacks;
  let world = { engine; decided = Array.make n None; views = Array.make n 0 } in
  let value_size (s : string) = String.length s in
  let nodes = Array.make n None in
  for id = 0 to n - 1 do
    let cb =
      {
        HS.now = (fun () -> Sim.Engine.now engine);
        schedule = (fun d f -> Sim.Engine.schedule_in engine ~after:d f);
        cancel = (fun h -> Sim.Engine.cancel engine h);
        send =
          (fun ~dst m ->
            Sim.Net.send net ~src:id ~dst ~size:(HS.msg_size ~value_size m) m);
        validate;
        value_digest = (fun s -> Crypto.Digest32.of_string s);
        proposal = (fun () -> Some (Printf.sprintf "value-from-%d" id));
        decide =
          (fun ~view v ->
            world.decided.(id) <- Some (v, Sim.Engine.now engine);
            world.views.(id) <- view);
        on_view = (fun ~view:_ -> ());
        log = (fun _ -> ());
      }
    in
    nodes.(id) <- Some (HS.create ~keyring ~n ~id cb)
  done;
  Sim.Net.set_handler net (fun ~dst ~src m ->
      match nodes.(dst) with
      | Some node when not (List.mem dst silent) -> HS.handle node ~src m
      | _ -> ());
  Array.iteri
    (fun id node ->
      match node with
      | Some node when not (List.mem id silent) ->
          ignore (Sim.Engine.schedule engine ~at:0. (fun () -> HS.start node))
      | _ -> ())
    nodes;
  Sim.Engine.run ~until:horizon engine;
  world

let decided_values world =
  Array.to_list world.decided |> List.filter_map (Option.map fst)

let test_hotstuff_happy () =
  let w = run_hotstuff () in
  checki "all decide" 9 (List.length (decided_values w));
  checki "one value" 1 (List.length (List.sort_uniq compare (decided_values w)));
  Array.iter
    (fun d ->
      match d with
      | Some (_, t) -> checkb "fast decision" true (t < 1.)
      | None -> Alcotest.fail "missing decision")
    w.decided

let test_hotstuff_leader_failure () =
  (* View 0's leader (node 0) is silent: the pacemaker must rotate. *)
  let w = run_hotstuff ~silent:[ 0 ] () in
  checki "8 live nodes decide" 8 (List.length (decided_values w));
  checki "agreement" 1 (List.length (List.sort_uniq compare (decided_values w)));
  checkb "decided beyond view 0" true (Array.exists (fun v -> v > 0) w.views)

let test_hotstuff_f_silent () =
  let w = run_hotstuff ~silent:[ 0; 4 ] () in
  checki "7 live decide" 7 (List.length (decided_values w));
  checki "agreement" 1 (List.length (List.sort_uniq compare (decided_values w)))

let test_hotstuff_too_many_silent () =
  (* With 3 = f+1 silent nodes of 9 there is no quorum: nobody decides. *)
  let w = run_hotstuff ~silent:[ 0; 1; 2 ] ~horizon:120. () in
  checki "no quorum, no decision" 0 (List.length (decided_values w))

let test_hotstuff_gst_recovery () =
  (* 5 of 9 unreachable for 300 s (GST): decisions land just after. *)
  let attacks = Attack.Ddos.knockout ~n:9 () in
  let w = run_hotstuff ~attacks () in
  checki "all decide after GST" 9 (List.length (decided_values w));
  Array.iter
    (fun d ->
      match d with
      | Some (_, t) -> checkb "decided shortly after GST" true (t >= 300. && t < 330.)
      | None -> Alcotest.fail "missing decision")
    w.decided

let test_hotstuff_external_validity () =
  (* If no value validates, nothing can ever be decided. *)
  let w = run_hotstuff ~validate:(fun _ -> false) ~horizon:60. () in
  checki "nothing decided" 0 (List.length (decided_values w))

let test_hotstuff_quorum () =
  checki "n=9" 7 (HS.quorum ~n:9);
  checki "n=4" 3 (HS.quorum ~n:4);
  checki "n=13" 9 (HS.quorum ~n:13);
  checki "leader rotation" 2 (HS.leader ~n:9 ~view:11)

let qcheck_hotstuff_agreement_under_faults =
  QCheck.Test.make ~name:"hotstuff agreement under random silent sets" ~count:15
    QCheck.(pair (int_bound 2) (int_bound 10000))
    (fun (n_silent, seed) ->
      let rng = Tor_sim.Rng.create (Int64.of_int seed) in
      let silent =
        List.sort_uniq Int.compare (List.init n_silent (fun _ -> Tor_sim.Rng.int rng 9))
      in
      let w = run_hotstuff ~silent () in
      let values = decided_values w in
      List.length values = 9 - List.length silent
      && List.length (List.sort_uniq compare values) <= 1)


(* --- Dolev-Strong broadcast --------------------------------------------------- *)

module DS = Protocols.Dolev_strong

let ds_digest (s : string) = Crypto.Digest32.of_string s

(* Drive a full synchronous execution by hand: deliver every pending
   relay to every node each round. *)
let run_dolev_strong ~n ~f ~sender ~deliver_to ?(byzantine_second = None) value =
  let keyring = Crypto.Keyring.create ~seed:"ds" ~n () in
  let nodes =
    Array.init n (fun id -> DS.create ~keyring ~n ~f ~id ~sender ~digest:ds_digest)
  in
  let initial = DS.initial_broadcast nodes.(sender) value in
  let pending = ref [] in
  (* Round 1: the sender's broadcast reaches [deliver_to]. *)
  List.iter
    (fun id ->
      if id <> sender then
        match DS.receive nodes.(id) ~round:1 initial with
        | Some fwd -> pending := (id, fwd) :: !pending
        | None -> ())
    deliver_to;
  (match byzantine_second with
  | Some (other_value, victims) ->
      let second = DS.initial_broadcast nodes.(sender) other_value in
      List.iter
        (fun id ->
          match DS.receive nodes.(id) ~round:1 second with
          | Some fwd -> pending := (id, fwd) :: !pending
          | None -> ())
        victims
  | None -> ());
  (* Remaining rounds: flood every forwarded relay to everyone. *)
  for round = 2 to DS.rounds ~f do
    let batch = !pending in
    pending := [];
    List.iter
      (fun (from, relay) ->
        for id = 0 to n - 1 do
          if id <> from then
            match DS.receive nodes.(id) ~round relay with
            | Some fwd -> pending := (id, fwd) :: !pending
            | None -> ()
        done)
      batch
  done;
  Array.map DS.output nodes

let test_ds_honest_sender () =
  let outputs = run_dolev_strong ~n:7 ~f:3 ~sender:0 ~deliver_to:[ 1; 2; 3; 4; 5; 6 ] "v" in
  Array.iter
    (fun o -> checkb "everyone outputs v" true (o = DS.Value "v"))
    outputs

let test_ds_partial_round1_delivery () =
  (* The sender reaches only node 1 in round 1; echoes must carry the
     value to everyone else. *)
  let outputs = run_dolev_strong ~n:7 ~f:3 ~sender:0 ~deliver_to:[ 1 ] "v" in
  Array.iter (fun o -> checkb "echo propagates" true (o = DS.Value "v")) outputs

let test_ds_equivocating_sender () =
  (* The sender signs two values for disjoint victim sets: every
     correct node must converge on the same output (here Bottom). *)
  let outputs =
    run_dolev_strong ~n:7 ~f:3 ~sender:0 ~deliver_to:[ 1; 2; 3 ]
      ~byzantine_second:(Some ("w", [ 4; 5; 6 ]))
      "v"
  in
  let correct = Array.to_list outputs |> List.filteri (fun i _ -> i <> 0) in
  (match correct with
  | first :: rest -> List.iter (fun o -> checkb "agreement" true (o = first)) rest
  | [] -> Alcotest.fail "no outputs");
  checkb "equivocation yields bottom" true (List.hd correct = DS.Bottom)

let test_ds_silent_sender () =
  let keyring = Crypto.Keyring.create ~seed:"ds" ~n:4 () in
  let node = DS.create ~keyring ~n:4 ~f:1 ~id:1 ~sender:0 ~digest:ds_digest in
  checkb "silent sender -> bottom" true (DS.output node = DS.Bottom)

let test_ds_chain_rules () =
  let keyring = Crypto.Keyring.create ~seed:"ds" ~n:4 () in
  let sender = DS.create ~keyring ~n:4 ~f:1 ~id:0 ~sender:0 ~digest:ds_digest in
  let receiver = DS.create ~keyring ~n:4 ~f:1 ~id:1 ~sender:0 ~digest:ds_digest in
  let relay = DS.initial_broadcast sender "v" in
  (* A 1-signature chain is not acceptable in round 2. *)
  checkb "short chain rejected in round 2" true (DS.receive receiver ~round:2 relay = None);
  checkb "nothing extracted" true (DS.extracted receiver = []);
  (* Valid in round 1, and the receiver forwards with its signature. *)
  (match DS.receive receiver ~round:1 relay with
  | Some fwd -> checki "chain grew" 2 (List.length fwd.DS.chain)
  | None -> Alcotest.fail "round-1 relay should extract");
  (* Duplicate delivery extracts nothing new. *)
  checkb "duplicate ignored" true (DS.receive receiver ~round:1 relay = None)

(* --- Naive retry (paper 2.2 strawman) ------------------------------------------ *)

let test_naive_retry_violates_agreement () =
  let env =
    R.of_spec
      {
        R.Spec.default with
        seed = "naive-test";
        n_relays = 500;
        attacks = Protocols.Naive_retry.split_attack ();
      }
  in
  let res = Protocols.Naive_retry.run env in
  checkb "agreement violated" false res.Protocols.Naive_retry.agreement;
  checki "two majority-signed documents" 2
    (List.length res.Protocols.Naive_retry.majority_signed_documents);
  checkb "every authority adopted something" true
    (Array.for_all Option.is_some res.Protocols.Naive_retry.outputs)

let test_naive_retry_healthy_is_fine () =
  let env = R.of_spec { R.Spec.default with seed = "naive-test"; n_relays = 500 } in
  let res = Protocols.Naive_retry.run env in
  checkb "agreement without attack" true res.Protocols.Naive_retry.agreement;
  checki "one iteration suffices" 1 res.Protocols.Naive_retry.iterations_run

let test_ours_safe_under_split_attack () =
  (* The same split scenario that breaks naive retry: the paper's
     protocol must keep agreement. *)
  let env =
    R.of_spec
      {
        R.Spec.default with
        seed = "naive-test";
        n_relays = 500;
        attacks = Protocols.Naive_retry.split_attack ();
      }
  in
  let result = Torpartial.Protocol.run env in
  checkb "ours agrees" true (R.agreement_holds env result);
  checkb "ours succeeds" true (R.success env result)


(* --- Tendermint ---------------------------------------------------------------- *)

module TM = Protocols.Tendermint

let run_tendermint ?(n = 9) ?(silent = []) ?(attacks = []) ?(validate = fun _ -> true)
    ?(horizon = 3600.) () =
  let keyring = Crypto.Keyring.create ~n () in
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~n ~latency:0.03 in
  let net = Sim.Net.create ~engine ~topology ~bits_per_sec:250e6 () in
  List.iter
    (fun (a : R.attack) ->
      Sim.Net.limit_node net ~node:a.node ~start:a.start ~stop:a.stop
        ~bits_per_sec:a.bits_per_sec)
    attacks;
  let decided = Array.make n None in
  let value_size (s : string) = String.length s in
  let nodes = Array.make n None in
  for id = 0 to n - 1 do
    let cb =
      {
        TM.now = (fun () -> Sim.Engine.now engine);
        schedule = (fun d f -> Sim.Engine.schedule_in engine ~after:d f);
        cancel = (fun h -> Sim.Engine.cancel engine h);
        send =
          (fun ~dst m ->
            Sim.Net.send net ~src:id ~dst ~size:(TM.msg_size ~value_size m) m);
        validate;
        value_digest = (fun s -> Crypto.Digest32.of_string s);
        proposal = (fun () -> Some (Printf.sprintf "value-from-%d" id));
        decide = (fun ~view:_ v -> decided.(id) <- Some (v, Sim.Engine.now engine));
        on_view = (fun ~view:_ -> ());
        log = (fun _ -> ());
      }
    in
    nodes.(id) <- Some (TM.create ~keyring ~n ~id cb)
  done;
  Sim.Net.set_handler net (fun ~dst ~src m ->
      match nodes.(dst) with
      | Some node when not (List.mem dst silent) -> TM.handle node ~src m
      | _ -> ());
  Array.iteri
    (fun id node ->
      match node with
      | Some node when not (List.mem id silent) ->
          ignore (Sim.Engine.schedule engine ~at:0. (fun () -> TM.start node))
      | _ -> ())
    nodes;
  Sim.Engine.run ~until:horizon engine;
  decided

let tm_values decided = Array.to_list decided |> List.filter_map (Option.map fst)

let test_tendermint_happy () =
  let d = run_tendermint () in
  checki "all decide" 9 (List.length (tm_values d));
  checki "one value" 1 (List.length (List.sort_uniq compare (tm_values d)))

let test_tendermint_leader_failure () =
  let d = run_tendermint ~silent:[ 0 ] () in
  checki "8 decide" 8 (List.length (tm_values d));
  checki "agreement" 1 (List.length (List.sort_uniq compare (tm_values d)))

let test_tendermint_f_silent () =
  let d = run_tendermint ~silent:[ 2; 6 ] () in
  checki "7 decide" 7 (List.length (tm_values d))

let test_tendermint_no_quorum () =
  let d = run_tendermint ~silent:[ 0; 1; 2 ] ~horizon:120. () in
  checki "no decision below quorum" 0 (List.length (tm_values d))

let test_tendermint_gst_recovery () =
  let attacks = Attack.Ddos.knockout ~n:9 () in
  let d = run_tendermint ~attacks () in
  checki "all decide after GST" 9 (List.length (tm_values d));
  Array.iter
    (fun entry ->
      match entry with
      | Some (_, t) -> checkb "shortly after GST" true (t >= 300. && t < 330.)
      | None -> Alcotest.fail "missing decision")
    d

let test_tendermint_external_validity () =
  let d = run_tendermint ~validate:(fun _ -> false) ~horizon:60. () in
  checki "nothing invalid decided" 0 (List.length (tm_values d))

let test_full_protocol_over_tendermint () =
  let env = R.of_spec { R.Spec.default with n_relays = 300 } in
  let result = Torpartial.Protocol.Over_tendermint.run env in
  checkb "success" true (R.success env result);
  checkb "agreement" true (R.agreement_holds env result);
  (* Same consensus content as the HotStuff instantiation. *)
  let hs = Torpartial.Protocol.Over_hotstuff.run env in
  (match
     ( (result.R.per_authority.(0)).R.consensus,
       (hs.R.per_authority.(0)).R.consensus )
   with
  | Some a, Some b -> checkb "engines agree on the document" true (Dirdoc.Consensus.equal a b)
  | _ -> Alcotest.fail "both engines should decide");
  (* Knockout recovery through the full stack. *)
  let attacks = Attack.Ddos.knockout ~n:9 () in
  let env2 = R.of_spec { R.Spec.default with n_relays = 300; attacks } in
  let r2 = Torpartial.Protocol.Over_tendermint.run env2 in
  checkb "knockout recovery" true (R.success env2 r2)


(* --- PBFT ---------------------------------------------------------------- *)

module PB = Protocols.Pbft

let run_pbft ?(n = 9) ?(silent = []) ?(attacks = []) ?(horizon = 3600.) () =
  let keyring = Crypto.Keyring.create ~n () in
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~n ~latency:0.03 in
  let net = Sim.Net.create ~engine ~topology ~bits_per_sec:250e6 () in
  List.iter
    (fun (a : R.attack) ->
      Sim.Net.limit_node net ~node:a.node ~start:a.start ~stop:a.stop
        ~bits_per_sec:a.bits_per_sec)
    attacks;
  let decided = Array.make n None in
  let value_size (s : string) = String.length s in
  let nodes = Array.make n None in
  for id = 0 to n - 1 do
    let cb =
      {
        PB.now = (fun () -> Sim.Engine.now engine);
        schedule = (fun d f -> Sim.Engine.schedule_in engine ~after:d f);
        cancel = (fun h -> Sim.Engine.cancel engine h);
        send =
          (fun ~dst m ->
            Sim.Net.send net ~src:id ~dst ~size:(PB.msg_size ~value_size m) m);
        validate = (fun _ -> true);
        value_digest = (fun s -> Crypto.Digest32.of_string s);
        proposal = (fun () -> Some (Printf.sprintf "value-from-%d" id));
        decide = (fun ~view:_ v -> decided.(id) <- Some v);
        on_view = (fun ~view:_ -> ());
        log = (fun _ -> ());
      }
    in
    nodes.(id) <- Some (PB.create ~keyring ~n ~id cb)
  done;
  Sim.Net.set_handler net (fun ~dst ~src m ->
      match nodes.(dst) with
      | Some node when not (List.mem dst silent) -> PB.handle node ~src m
      | _ -> ());
  Array.iteri
    (fun id node ->
      match node with
      | Some node when not (List.mem id silent) ->
          ignore (Sim.Engine.schedule engine ~at:0. (fun () -> PB.start node))
      | _ -> ())
    nodes;
  Sim.Engine.run ~until:horizon engine;
  Array.to_list decided |> List.filter_map Fun.id

let test_pbft_happy () =
  let vals = run_pbft () in
  checki "all decide" 9 (List.length vals);
  checki "one value" 1 (List.length (List.sort_uniq compare vals))

let test_pbft_primary_failure () =
  let vals = run_pbft ~silent:[ 0 ] () in
  checki "8 decide" 8 (List.length vals);
  checki "agreement" 1 (List.length (List.sort_uniq compare vals))

let test_pbft_no_quorum () =
  checki "f+1 silent blocks" 0 (List.length (run_pbft ~silent:[ 0; 1; 2 ] ~horizon:120. ()))

let test_pbft_gst_recovery () =
  let vals = run_pbft ~attacks:(Attack.Ddos.knockout ~n:9 ()) () in
  checki "all decide after GST" 9 (List.length vals)

let test_full_protocol_over_pbft () =
  let env = R.of_spec { R.Spec.default with n_relays = 300 } in
  let result = Torpartial.Protocol.Over_pbft.run env in
  checkb "success" true (R.success env result);
  checkb "agreement" true (R.agreement_holds env result)


let qcheck_tendermint_agreement_under_faults =
  QCheck.Test.make ~name:"tendermint agreement under random silent sets" ~count:10
    QCheck.(pair (int_bound 2) (int_bound 10000))
    (fun (n_silent, seed) ->
      let rng = Tor_sim.Rng.create (Int64.of_int seed) in
      let silent =
        List.sort_uniq Int.compare (List.init n_silent (fun _ -> Tor_sim.Rng.int rng 9))
      in
      let d = run_tendermint ~silent () in
      let values = tm_values d in
      List.length values = 9 - List.length silent
      && List.length (List.sort_uniq compare values) <= 1)

let suite =
  [
    ("siground", `Quick, test_siground);
    ("current: happy path", `Quick, test_current_happy);
    ("current: Figure 1 attack", `Slow, test_current_fig1_attack);
    ("current: tolerates 4 silent", `Quick, test_current_tolerates_four_silent);
    ("current: fails with 5 silent", `Quick, test_current_fails_five_silent);
    ("current: equivocation breaks agreement", `Quick, test_current_equivocation_insecure);
    ("sync: happy path", `Quick, test_sync_happy);
    ("sync: equivocation tolerated", `Quick, test_sync_equivocation_secure);
    ("sync: attack still breaks it", `Slow, test_sync_attack_fails);
    ("sync: echo amplification", `Quick, test_sync_more_traffic_than_current);
    ("hotstuff: happy path", `Quick, test_hotstuff_happy);
    ("hotstuff: leader failure", `Quick, test_hotstuff_leader_failure);
    ("hotstuff: f silent", `Quick, test_hotstuff_f_silent);
    ("hotstuff: f+1 silent blocks", `Quick, test_hotstuff_too_many_silent);
    ("hotstuff: GST recovery", `Quick, test_hotstuff_gst_recovery);
    ("hotstuff: external validity", `Quick, test_hotstuff_external_validity);
    ("hotstuff: quorum arithmetic", `Quick, test_hotstuff_quorum);
    QCheck_alcotest.to_alcotest qcheck_hotstuff_agreement_under_faults;
    ("dolev-strong: honest sender", `Quick, test_ds_honest_sender);
    ("dolev-strong: echo propagation", `Quick, test_ds_partial_round1_delivery);
    ("dolev-strong: equivocating sender", `Quick, test_ds_equivocating_sender);
    ("dolev-strong: silent sender", `Quick, test_ds_silent_sender);
    ("dolev-strong: chain rules", `Quick, test_ds_chain_rules);
    ("naive retry violates agreement", `Quick, test_naive_retry_violates_agreement);
    ("naive retry fine when healthy", `Quick, test_naive_retry_healthy_is_fine);
    ("ours safe under the split attack", `Quick, test_ours_safe_under_split_attack);
    ("tendermint: happy path", `Quick, test_tendermint_happy);
    ("tendermint: leader failure", `Quick, test_tendermint_leader_failure);
    ("tendermint: f silent", `Quick, test_tendermint_f_silent);
    ("tendermint: f+1 silent blocks", `Quick, test_tendermint_no_quorum);
    ("tendermint: GST recovery", `Quick, test_tendermint_gst_recovery);
    ("tendermint: external validity", `Quick, test_tendermint_external_validity);
    ("full protocol over tendermint", `Quick, test_full_protocol_over_tendermint);
    ("pbft: happy path", `Quick, test_pbft_happy);
    ("pbft: primary failure", `Quick, test_pbft_primary_failure);
    ("pbft: f+1 silent blocks", `Quick, test_pbft_no_quorum);
    ("pbft: GST recovery", `Quick, test_pbft_gst_recovery);
    ("full protocol over pbft", `Quick, test_full_protocol_over_pbft);
    QCheck_alcotest.to_alcotest qcheck_tendermint_agreement_under_faults;
  ]
