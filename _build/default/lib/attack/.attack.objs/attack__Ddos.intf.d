lib/attack/ddos.mli: Protocols Tor_sim
