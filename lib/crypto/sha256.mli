(** Pure-OCaml SHA-256 (FIPS 180-4).

    This is the digest primitive underneath every commitment in the
    reproduction: vote digests, Merkle nodes, HMAC, and the simulated
    signature scheme.  The implementation processes 64-byte blocks with
    the standard compression function and is validated against the NIST
    short-message vectors in the test suite.

    The message schedule and compression run on untagged native [int]
    words (masked to 32 bits), so hashing allocates nothing beyond the
    context itself; [Int32] appears only when the final digest is
    serialized. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx
(** [init ()] is a fresh context for an empty message. *)

val reset : ctx -> unit
(** [reset ctx] returns the context to the empty-message state, so one
    allocation can serve many digests (e.g. both HMAC passes). *)

val feed_bytes : ctx -> bytes -> pos:int -> len:int -> unit
(** [feed_bytes ctx b ~pos ~len] absorbs [len] bytes of [b] starting at
    [pos].  Raises [Invalid_argument] if the range is out of bounds. *)

val feed_string : ctx -> string -> unit
(** [feed_string ctx s] absorbs all of [s]. *)

val finalize : ctx -> string
(** [finalize ctx] pads, finishes, and returns the 32-byte raw digest.
    The context must not be fed again until it is {!reset}. *)

val digest_string : string -> string
(** [digest_string s] is the 32-byte raw SHA-256 digest of [s]. *)

val digest_bytes : bytes -> string
(** [digest_bytes b] is the 32-byte raw SHA-256 digest of [b]. *)

val hex_of_raw : string -> string
(** [hex_of_raw d] renders a raw digest as lowercase hex. *)

val digest_hex : string -> string
(** [digest_hex s] is [hex_of_raw (digest_string s)]. *)
