lib/attack/monitor.ml: Char Format Hashtbl List String Tor_sim
