lib/dirdoc/exit_policy.mli: Format
