lib/core/experiments.mli: Protocols Tor_sim
