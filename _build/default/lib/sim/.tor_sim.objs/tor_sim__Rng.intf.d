lib/sim/rng.mli:
