type level = Notice | Info | Warn

type record = { time : Simtime.t; node : int option; level : level; text : string }

(* One list per engine shard (lane), each newest-first, so domains
   never contend on a shared cons cell.  [records] merges lanes with a
   stable sort on (time, node): a node only ever logs from its own
   shard, so records sharing a (time, node) key sit in one lane and
   stability preserves their emission order — the merged view is
   identical whatever the shard count, including 1. *)
type t = { lanes : record list array }

let create ?(lanes = 1) () = { lanes = Array.make (max 1 lanes) [] }

let log t ~time ?node level text =
  let d = Domain_ctx.current () in
  let d = if d < Array.length t.lanes then d else 0 in
  t.lanes.(d) <- { time; node; level; text } :: t.lanes.(d)

let logf t ~time ?node level fmt =
  Format.kasprintf (fun text -> log t ~time ?node level text) fmt

let node_key r = match r.node with None -> -1 | Some id -> id

let records t =
  (* [rev_append lane acc] un-reverses the newest-first lane, so [all]
     is lane 0 oldest-first, then lane 1, ... *)
  let all = Array.fold_right (fun lane acc -> List.rev_append lane acc) t.lanes [] in
  List.stable_sort
    (fun a b ->
      match Float.compare a.time b.time with
      | 0 -> Int.compare (node_key a) (node_key b)
      | c -> c)
    all

let for_node t node =
  List.filter (fun r -> r.node = Some node) (records t)

let level_string = function Notice -> "notice" | Info -> "info" | Warn -> "warn"

let render r =
  Format.asprintf "%a [%s] %s" Simtime.pp_tor_log r.time (level_string r.level) r.text

(* Streaming merge over the lanes, yielding exactly the order of
   [records] without materializing the merged list.  A lane is sorted
   by time (each shard's clock is monotone) but not by node within one
   instant, so a plain head-comparison k-way merge would not reproduce
   the stable (time, node) sort.  Instead: take the smallest head time
   across lanes, collect every lane's contiguous run at that instant
   (in lane order — exactly their order in the concatenated input),
   stable-sort that one group by node, emit.  Memory is bounded by the
   largest single-instant group, not the trace. *)
let iter ?node t f =
  let lanes = Array.map (fun l -> Array.of_list (List.rev l)) t.lanes in
  let k = Array.length lanes in
  let pos = Array.make k 0 in
  let wanted r = match node with None -> true | Some id -> r.node = Some id in
  let rec next () =
    let tmin = ref Float.infinity and any = ref false in
    for l = 0 to k - 1 do
      if pos.(l) < Array.length lanes.(l) then begin
        any := true;
        let at = lanes.(l).(pos.(l)).time in
        if at < !tmin then tmin := at
      end
    done;
    if !any then begin
      let group = ref [] in
      for l = 0 to k - 1 do
        let lane = lanes.(l) in
        let len = Array.length lane in
        while pos.(l) < len && Float.equal lane.(pos.(l)).time !tmin do
          group := lane.(pos.(l)) :: !group;
          pos.(l) <- pos.(l) + 1
        done
      done;
      List.rev !group
      |> List.stable_sort (fun a b -> Int.compare (node_key a) (node_key b))
      |> List.iter (fun r -> if wanted r then f r);
      next ()
    end
  in
  next ()

let dump ?node t =
  let buf = Buffer.create 256 in
  iter ?node t (fun r ->
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (render r));
  Buffer.contents buf

let clear t = Array.fill t.lanes 0 (Array.length t.lanes) []
