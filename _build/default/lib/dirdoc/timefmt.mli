(** Minimal UTC calendar formatting for dir-spec timestamps
    ("YYYY-MM-DD HH:MM:SS"), with no dependency on the C library's
    timezone database so simulations stay deterministic. *)

val to_string : float -> string
(** [to_string epoch] renders POSIX seconds as UTC.  Fractional
    seconds are truncated. *)

val of_string : string -> (float, string) result
(** Parse ["YYYY-MM-DD HH:MM:SS"] back to POSIX seconds. *)

val days_from_civil : year:int -> month:int -> day:int -> int
(** Days since 1970-01-01 (proleptic Gregorian); negative before the
    epoch.  Exposed for the calendar tests. *)

val civil_from_days : int -> int * int * int
(** Inverse of {!days_from_civil}: [(year, month, day)]. *)
