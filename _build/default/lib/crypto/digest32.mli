(** Typed 32-byte digests.

    A thin abstraction over raw SHA-256 output so that protocol code
    cannot confuse digests with arbitrary strings, and so that the wire
    size of a digest is accounted for in one place. *)

type t
(** A 32-byte digest. Structural equality and ordering follow the raw
    bytes, so [t] can key [Map]s and [Hashtbl]s. *)

val of_string : string -> t
(** [of_string s] digests [s] with SHA-256. *)

val of_raw : string -> t
(** [of_raw d] wraps an existing 32-byte raw digest.
    Raises [Invalid_argument] if [d] is not exactly 32 bytes. *)

val raw : t -> string
(** [raw t] is the underlying 32 bytes. *)

val hex : t -> string
(** [hex t] is the digest as 64 lowercase hex characters. *)

val short_hex : t -> string
(** [short_hex t] is the first 10 hex characters, for log lines
    (mirrors Tor's abbreviated fingerprints). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val wire_size : int
(** Bytes a digest occupies on the simulated wire (32). *)

val zero : t
(** The all-zero digest; used as a placeholder commitment. *)

val pair : t -> t -> t
(** [pair a b] is the digest of the concatenation [raw a ^ raw b];
    the Merkle interior-node combiner. *)
