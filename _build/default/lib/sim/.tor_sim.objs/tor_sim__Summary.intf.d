lib/sim/summary.mli:
