(* Tests for the attack module: scenario builders and the exact cost
   arithmetic of Section 4.3. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)

let test_majority_targets () =
  Alcotest.(check (list int)) "5 of 9" [ 0; 1; 2; 3; 4 ] (Attack.Ddos.majority_targets ~n:9);
  Alcotest.(check (list int)) "4 of 7" [ 0; 1; 2; 3 ] (Attack.Ddos.majority_targets ~n:7)

let test_bandwidth_attack_defaults () =
  let attacks = Attack.Ddos.bandwidth_attack ~n:9 () in
  checki "five windows" 5 (List.length attacks);
  List.iter
    (fun (a : Protocols.Runenv.attack) ->
      checkf 0. "starts at protocol start" 0. a.start;
      checkf 0. "covers the vote window" 300. a.stop;
      checkf 0. "Jansen residual" 0.5e6 a.bits_per_sec)
    attacks

let test_knockout () =
  let attacks = Attack.Ddos.knockout ~n:9 ~targets:[ 2; 5 ] () in
  checki "two windows" 2 (List.length attacks);
  List.iter
    (fun (a : Protocols.Runenv.attack) -> checkf 0. "zero residual" 0. a.bits_per_sec)
    attacks

let test_ddos_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Ddos: empty target list") (fun () ->
      ignore (Attack.Ddos.bandwidth_attack ~n:9 ~targets:[] ()));
  Alcotest.check_raises "out of range" (Invalid_argument "Ddos: target out of range")
    (fun () -> ignore (Attack.Ddos.knockout ~n:9 ~targets:[ 9 ] ()));
  Alcotest.check_raises "bad window" (Invalid_argument "Ddos: stop before start")
    (fun () -> ignore (Attack.Ddos.knockout ~n:9 ~targets:[ 0 ] ~start:10. ~stop:5. ()))

let test_flood_cost_linearity () =
  let one = Attack.Cost.flood_usd ~mbit_per_sec:1. ~targets:1 ~seconds:3600. in
  checkf 1e-12 "unit price" Attack.Cost.usd_per_mbit_per_hour one;
  checkf 1e-12 "scales with rate" (2. *. one)
    (Attack.Cost.flood_usd ~mbit_per_sec:2. ~targets:1 ~seconds:3600.);
  checkf 1e-12 "scales with targets" (5. *. one)
    (Attack.Cost.flood_usd ~mbit_per_sec:1. ~targets:5 ~seconds:3600.);
  Alcotest.check_raises "negative" (Invalid_argument "Cost.flood_usd: negative input")
    (fun () -> ignore (Attack.Cost.flood_usd ~mbit_per_sec:(-1.) ~targets:1 ~seconds:1.))

let test_paper_numbers () =
  (* The paper's headline figures, exactly. *)
  let instance = Attack.Cost.break_one_run () in
  checkf 1e-9 "240 Mbit/s flood" 240. instance.Attack.Cost.flood_mbit_per_sec;
  checkf 1e-6 "$0.074 per run" 0.074 instance.Attack.Cost.usd;
  checkf 1e-6 "$53.28 per month" 53.28 (Attack.Cost.monthly_usd instance);
  checkb "directory attack is far cheaper than bridges/scanners" true
    (Attack.Cost.monthly_usd instance < Attack.Cost.jansen_scanners_monthly_usd
    && Attack.Cost.monthly_usd instance < Attack.Cost.jansen_bridges_monthly_usd)

let test_planner () =
  let plan = Attack.Planner.make ~n_relays:8000 ~required_mbit_per_sec:10. () in
  checkf 1e-9 "flood is link minus requirement" 240. plan.Attack.Planner.flood_mbit_per_sec;
  checkf 1e-6 "monthly" 53.28 plan.Attack.Planner.usd_per_month;
  checkf 0. "3 hours to outage" 3. Attack.Planner.hours_to_network_down;
  let rendered = Format.asprintf "%a" Attack.Planner.pp plan in
  checkb "pp mentions monthly cost" true
    (let needle = "$53.28/month" in
     let nl = String.length needle and hl = String.length rendered in
     let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
     go 0);
  Alcotest.check_raises "requirement exceeds link"
    (Invalid_argument "Cost.break_one_run: required exceeds link") (fun () ->
      ignore (Attack.Planner.make ~n_relays:1 ~required_mbit_per_sec:500. ()))


let test_monitor_verdicts () =
  (* Attacked run: the monitor must raise the alarm. *)
  let attacked =
    Protocols.Runenv.of_spec
      {
        Protocols.Runenv.Spec.default with
        seed = "monitor-test";
        n_relays = 4000;
        attacks = Attack.Ddos.bandwidth_attack ~n:9 ();
      }
  in
  let report =
    Attack.Monitor.analyze (Protocols.Current_v3.run attacked).Protocols.Runenv.trace
  in
  (match report.Attack.Monitor.verdict with
  | Attack.Monitor.Attack_suspected { authorities_missing_votes; failed_authorities; _ } ->
      checkb "missing votes detected" true (authorities_missing_votes >= 5);
      checkb "failures detected" true (failed_authorities >= 5)
  | Attack.Monitor.Healthy | Attack.Monitor.Degraded _ ->
      Alcotest.fail "expected Attack_suspected");
  checkb "failure count recorded" true (report.Attack.Monitor.consensus_failures > 0);
  (* Healthy run: silence. *)
  let healthy =
    Protocols.Runenv.of_spec
      { Protocols.Runenv.Spec.default with seed = "monitor-test"; n_relays = 500 }
  in
  let report =
    Attack.Monitor.analyze (Protocols.Current_v3.run healthy).Protocols.Runenv.trace
  in
  checkb "healthy verdict" true (report.Attack.Monitor.verdict = Attack.Monitor.Healthy)

let test_monitor_empty_trace () =
  let report = Attack.Monitor.analyze (Tor_sim.Trace.create ()) in
  checkb "empty trace healthy" true (report.Attack.Monitor.verdict = Attack.Monitor.Healthy)

let suite =
  [
    ("majority targets", `Quick, test_majority_targets);
    ("bandwidth attack defaults", `Quick, test_bandwidth_attack_defaults);
    ("knockout windows", `Quick, test_knockout);
    ("scenario validation", `Quick, test_ddos_validation);
    ("flood cost linearity", `Quick, test_flood_cost_linearity);
    ("paper's exact cost figures", `Quick, test_paper_numbers);
    ("planner", `Quick, test_planner);
    ("monitor verdicts", `Slow, test_monitor_verdicts);
    ("monitor empty trace", `Quick, test_monitor_empty_trace);
  ]
