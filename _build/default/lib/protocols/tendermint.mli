(** Single-shot Tendermint-style agreement under partial synchrony —
    the second instantiation of the paper's pluggable agreement
    sub-protocol (§5.2.2 names PBFT, Tendermint, and HotStuff as
    interchangeable choices).

    Per round (view) with a rotating proposer: PROPOSE, then all-to-all
    PREVOTE, then all-to-all PRECOMMIT.  A quorum (2f+1) of prevotes
    for a value is a {e polka}: nodes lock on it and precommit; a
    quorum of precommits decides.  Nil votes and per-phase timeouts
    drive round changes; a proposer carrying a polka from an earlier
    round re-proposes that value with the polka as evidence, which is
    what preserves safety across rounds.  Compared to HotStuff the
    good case is one phase shorter but votes are broadcast all-to-all,
    trading O(n) leader links for O(n²) messages — visible in the
    agreement-traffic ablation.

    The interface is {!Agreement.S}: the core protocol functor runs
    over this engine unchanged. *)

include Agreement.S

val quorum : n:int -> int
(** [n - (n-1)/3], same threshold as HotStuff. *)
