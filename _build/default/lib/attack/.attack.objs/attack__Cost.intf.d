lib/attack/cost.mli:
