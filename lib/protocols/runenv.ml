module Sim = Tor_sim

type attack = {
  node : int;
  start : Sim.Simtime.t;
  stop : Sim.Simtime.t;
  bits_per_sec : float;
}

type behavior =
  | Honest
  | Silent
  | Equivocating
  | Crashed of { start : Sim.Simtime.t; stop : Sim.Simtime.t }

(* A bag of reusable simulator instances, one slot per driver name.
   The slot payload is an extensible variant because each driver's
   network is monomorphic in its own message type; the driver that
   stashed a slot is the only one that can match it back out. *)
module Arena = struct
  type slot = ..
  type t = { mutable slots : (string * slot) list }

  let create () = { slots = [] }
  let find t driver = List.assoc_opt driver t.slots

  let set t driver slot =
    t.slots <- (driver, slot) :: List.remove_assoc driver t.slots
end

type t = {
  n : int;
  keyring : Crypto.Keyring.t;
  topology : Sim.Topology.t;
  votes : Dirdoc.Vote.t array;
  valid_after : float;
  bandwidth_bits_per_sec : float;
  attacks : attack list;
  behaviors : behavior array;
  fault_plan : Sim.Fault.plan option;
  defense : Defense.Plan.t option;
  distribution : Torclient.Distribution.config option;
  horizon : Sim.Simtime.t;
  shards : int;
  telemetry : bool;
      (* record spans/histograms/profile; NOT part of Spec (see mli) *)
  arena : Arena.t option;
      (* reusable simulator instances; NOT part of Spec (see mli) *)
  rotation : Defense.Rotation.t array;
      (* per-node rotation caches derived from [defense]; [||] = off.
         Node i's cache is only consulted from i's shard (handlers and
         scheduled actions run on the owner's shard), so the memoized
         epoch is single-writer. *)
}

(* MPTC-style rotation: a rotated-out authority sits the epoch out —
   drivers treat it like a node that is not serving, exactly as they
   treat a crash window. *)
let rotated_out t id ~now =
  Array.length t.rotation > 0
  && Defense.Rotation.quiet t.rotation.(id) ~node:id ~now

let awake t id ~now =
  (match t.behaviors.(id) with
  | Honest | Equivocating -> true
  | Silent -> false
  | Crashed { start; stop } -> not (now >= start && now < stop))
  && not (rotated_out t id ~now)

let participates = function
  | Honest | Equivocating | Crashed _ -> true
  | Silent -> false

let default_valid_after =
  match Dirdoc.Timefmt.of_string "2026-01-01 01:00:00" with
  | Ok t -> t
  | Error _ -> assert false

module Spec = struct
  type runenv_attack = attack

  type t = {
    seed : string;
    valid_after : float;
    n : int;
    n_relays : int;
    bandwidth_bits_per_sec : float;
    attacks : runenv_attack list;
    behaviors : behavior array option;
    divergence : Dirdoc.Workload.divergence option;
    fault_plan : Sim.Fault.plan option;
    defense : Defense.Plan.t option;
    distribution : Torclient.Distribution.config option;
    horizon : Sim.Simtime.t;
    shards : int;
  }

  let default =
    {
      seed = "torpartial";
      valid_after = default_valid_after;
      n = 9;
      n_relays = 1000;
      bandwidth_bits_per_sec = 250e6;
      attacks = [];
      behaviors = None;
      divergence = None;
      fault_plan = None;
      defense = None;
      distribution = None;
      horizon = 7200.;
      shards = 1;
    }

  (* Canonical serialization for job keying.  Floats are printed with
     %h (hex, lossless) so equal specs always serialize identically
     and nothing depends on printf rounding.  The field encoders are
     split out so {!prefix}/{!canonical_with} can reassemble the same
     byte sequence from precomputed invariant chunks plus freshly
     encoded campaign-variable fields — [canonical] and
     [canonical_with] MUST stay byte-identical (a test pins it). *)
  let add_f buf x = Buffer.add_string buf (Printf.sprintf "%h;" x)

  let add_s buf x =
    Buffer.add_string buf (string_of_int (String.length x));
    Buffer.add_char buf ':';
    Buffer.add_string buf x;
    Buffer.add_char buf ';'

  let add_i buf x = Buffer.add_string buf (Printf.sprintf "%d;" x)

  let add_attacks buf attacks =
    add_i buf (List.length attacks);
    List.iter
      (fun a ->
        add_i buf a.node;
        add_f buf a.start;
        add_f buf a.stop;
        add_f buf a.bits_per_sec)
      attacks

  let add_behaviors buf behaviors =
    match behaviors with
    | None -> Buffer.add_string buf "default;"
    | Some b ->
        Array.iter
          (fun v ->
            match v with
            | Honest -> Buffer.add_char buf 'h'
            | Silent -> Buffer.add_char buf 's'
            | Equivocating -> Buffer.add_char buf 'e'
            | Crashed { start; stop } ->
                Buffer.add_char buf 'c';
                add_f buf start;
                add_f buf stop)
          b;
        Buffer.add_char buf ';'

  let add_fault_plan buf fault_plan =
    match fault_plan with
    | None -> Buffer.add_string buf "default;"
    | Some plan -> add_s buf (Sim.Fault.canonical plan)

  let add_head buf t =
    add_s buf t.seed;
    add_f buf t.valid_after;
    add_i buf t.n;
    add_i buf t.n_relays;
    add_f buf t.bandwidth_bits_per_sec

  let add_divergence buf t =
    match t.divergence with
    | None -> Buffer.add_string buf "default;"
    | Some d ->
        add_f buf d.Dirdoc.Workload.missing_prob;
        add_f buf d.Dirdoc.Workload.bw_jitter;
        add_f buf d.Dirdoc.Workload.flag_flip_prob;
        add_f buf d.Dirdoc.Workload.unmeasured_prob

  let add_tail buf t =
    (match t.distribution with
    | None -> Buffer.add_string buf "default;"
    | Some d -> add_s buf (Torclient.Distribution.canonical_config d));
    add_f buf t.horizon;
    add_i buf t.shards;
    (* The defense sub-record joined the spec in the defense-toolbox
       change; it is encoded unconditionally — [None] included — so
       every digest moved once, by design, and a defense-carrying spec
       can never collide with a defense-less one. *)
    match t.defense with
    | None -> Buffer.add_string buf "default;"
    | Some p -> add_s buf (Defense.Plan.canonical p)

  let canonical t =
    let buf = Buffer.create 256 in
    add_head buf t;
    add_attacks buf t.attacks;
    add_behaviors buf t.behaviors;
    add_divergence buf t;
    add_fault_plan buf t.fault_plan;
    add_tail buf t;
    Buffer.contents buf

  let digest t = Crypto.Digest32.hex (Crypto.Digest32.of_string (canonical t))

  let rng t = Sim.Rng.of_string_seed (digest t)

  (* The invariant chunks of {!canonical}, precomputed once per
     campaign.  The three campaign-variable fields (attacks, behaviors,
     fault_plan) interleave between them in field order: head ·
     attacks · behaviors · mid(divergence) · fault_plan · tail. *)
  type prefix = { head : string; mid : string; tail : string }

  let prefix t =
    let render f =
      let buf = Buffer.create 64 in
      f buf t;
      Buffer.contents buf
    in
    { head = render add_head; mid = render add_divergence; tail = render add_tail }

  let canonical_with p ~attacks ~behaviors ~fault_plan =
    let buf = Buffer.create 256 in
    Buffer.add_string buf p.head;
    add_attacks buf attacks;
    add_behaviors buf behaviors;
    Buffer.add_string buf p.mid;
    add_fault_plan buf fault_plan;
    Buffer.add_string buf p.tail;
    Buffer.contents buf

  let digest_with p ~attacks ~behaviors ~fault_plan =
    Crypto.Digest32.hex
      (Crypto.Digest32.of_string (canonical_with p ~attacks ~behaviors ~fault_plan))
end

(* Validation of the campaign-variable fields, shared between
   [of_spec] and [vary] so a plan streamed through an arena is held to
   exactly the checks a cold [of_spec] would apply. *)
let checked_behaviors ~who ~n behaviors =
  match behaviors with
  | Some b ->
      if Array.length b <> n then
        invalid_arg (who ^ ": behaviors length mismatch");
      Array.iter
        (function
          | Crashed { start; stop } when stop < start ->
              invalid_arg (who ^ ": crash window stops before it starts")
          | _ -> ())
        b;
      b
  | None -> Array.make n Honest

let check_variation ~who ~n ~attacks ~fault_plan =
  Option.iter (fun plan -> Sim.Fault.validate ~n plan) fault_plan;
  List.iter
    (fun a ->
      if a.node < 0 || a.node >= n then
        invalid_arg (who ^ ": attack node out of range");
      if a.stop < a.start then invalid_arg (who ^ ": attack stops before it starts");
      if a.bits_per_sec < 0. then invalid_arg (who ^ ": negative residual bandwidth"))
    attacks

let rotation_caches ~n defense =
  match defense with
  | Some { Defense.Plan.rotation = Some c; _ } ->
      Array.init n (fun _ -> Defense.Rotation.instantiate c ~n)
  | _ -> [||]

let of_spec ?votes (spec : Spec.t) =
  let { Spec.seed; valid_after; n; n_relays; bandwidth_bits_per_sec; attacks;
        behaviors; divergence; fault_plan; defense; distribution; horizon;
        shards } = spec in
  if shards < 1 then invalid_arg "Runenv.of_spec: shards must be >= 1";
  let keyring = Crypto.Keyring.create ~seed ~n () in
  let rng = Sim.Rng.of_string_seed seed in
  let topology = Sim.Topology.realistic ~n ~rng:(Sim.Rng.split rng) in
  let votes =
    match votes with
    | Some v ->
        if Array.length v <> n then invalid_arg "Runenv.of_spec: votes length mismatch";
        v
    | None ->
        Dirdoc.Workload.votes ~rng ?divergence ~keyring ~n_authorities:n ~n_relays
          ~valid_after ()
  in
  let behaviors = checked_behaviors ~who:"Runenv.of_spec" ~n behaviors in
  check_variation ~who:"Runenv.of_spec" ~n ~attacks ~fault_plan;
  Option.iter (Defense.Plan.validate ~n) defense;
  Option.iter Torclient.Distribution.validate_config distribution;
  {
    n;
    keyring;
    topology;
    votes;
    valid_after;
    bandwidth_bits_per_sec;
    attacks;
    behaviors;
    fault_plan;
    defense;
    distribution;
    horizon;
    shards;
    telemetry = false;
    arena = None;
    rotation = rotation_caches ~n defense;
  }

let vary env ~attacks ~behaviors ~fault_plan =
  let behaviors = checked_behaviors ~who:"Runenv.vary" ~n:env.n behaviors in
  check_variation ~who:"Runenv.vary" ~n:env.n ~attacks ~fault_plan;
  { env with attacks; behaviors; fault_plan }

(* The shard count the engine will actually run: sharding needs at
   least two nodes and a positive finite cross-node lookahead (the
   engine would clamp to 1 anyway; computing it here lets callers and
   docs reason about it). *)
let effective_shards env =
  let lookahead = Sim.Topology.min_latency env.topology in
  if env.shards <= 1 || env.n < 2 then 1
  else if not (lookahead > 0.) || Sim.Simtime.is_infinite lookahead then 1
  else min env.shards env.n

(* Engine+network acquisition shared by the protocol drivers: build a
   fresh simulator, or — when the environment carries an arena — reuse
   the one stashed under the driver's name, reset on acquisition.
   Resetting on the way in (not the way out) means an arena left dirty
   by an exception self-heals on the next use.  A slot is only reused
   when everything baked into engine/net construction matches:
   dimension, the identical topology (campaign runs share one base
   environment, so physical equality is the campaign invariant), base
   bandwidth and effective shard count; anything else rebuilds and
   replaces the slot. *)
module Simulator (M : sig
  type msg
end) =
struct
  type state = {
    engine : Sim.Engine.t;
    net : M.msg Sim.Net.t;
    s_n : int;
    s_topology : Sim.Topology.t;
    s_bits : float;
    s_shards : int;
  }

  type Arena.slot += Slot of state

  let build env =
    let shards = effective_shards env in
    let engine =
      Sim.Engine.create ~shards ~nodes:env.n
        ~lookahead:(Sim.Topology.min_latency env.topology) ()
    in
    let net =
      Sim.Net.create ~engine ~topology:env.topology
        ~bits_per_sec:env.bandwidth_bits_per_sec ()
    in
    { engine; net; s_n = env.n; s_topology = env.topology;
      s_bits = env.bandwidth_bits_per_sec; s_shards = shards }

  let obtain ~driver env =
    match env.arena with
    | None ->
        let s = build env in
        (s.engine, s.net)
    | Some arena -> (
        match Arena.find arena driver with
        | Some (Slot s)
          when s.s_n = env.n
               && s.s_topology == env.topology
               && s.s_bits = env.bandwidth_bits_per_sec
               && s.s_shards = effective_shards env ->
            Sim.Engine.reset s.engine;
            Sim.Net.reset s.net;
            (s.engine, s.net)
        | _ ->
            let s = build env in
            Arena.set arena driver (Slot s);
            (s.engine, s.net))
end

type authority_result = {
  consensus : Dirdoc.Consensus.t option;
  signatures : int;
  decided_at : Sim.Simtime.t option;
  network_time : Sim.Simtime.t option;
}

(* Telemetry bundle of one run; [None] unless [env.telemetry]. *)
type obs = {
  metrics : Obs.Metrics.t;
      (* "time-to-decision" + "delivery-latency/<label>" histograms *)
  spans : Obs.Events.span list;
  samples : Obs.Events.sample list;
  profile : Obs.Profiler.shard list; (* wall-clock busy/wait per shard *)
}

type run_result = {
  protocol : string;
  per_authority : authority_result array;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  obs : obs option;
}

(* Driver-facing telemetry context.  Every emission helper takes the
   [ctx option] itself and is a no-op on [None], so an instrumented
   driver pays one option test per phase transition when telemetry is
   off — nothing per message or per event. *)
module Telemetry = struct
  type ctx = {
    tl_events : Obs.Events.t;
    tl_engine : Sim.Engine.t;
    (* Open (phase, start) pairs per node, for begin/end instrumented
       drivers.  A node's handlers all run on its own shard, so each
       slot is only touched from one domain. *)
    tl_opens : (string * Sim.Simtime.t) list array;
  }

  let probe_interval = 5.

  let start (env : t) ~engine ~net ?stop () =
    if not env.telemetry then None
    else begin
      let stop = Option.value stop ~default:env.horizon in
      Sim.Engine.enable_profiler engine;
      Sim.Net.enable_obs net;
      let events =
        Obs.Events.create ~lanes:(Sim.Engine.shard_count engine) ()
      in
      Sim.Net.install_probes net ~events ~interval:probe_interval ~stop;
      Some { tl_events = events; tl_engine = engine; tl_opens = Array.make env.n [] }
    end

  let lane c = Sim.Engine.current_shard c.tl_engine

  let span ?(complete = true) ctx ~node ~phase ~start ~stop =
    match ctx with
    | None -> ()
    | Some c ->
        Obs.Events.span c.tl_events ~lane:(lane c) ~node ~phase ~start ~stop
          ~complete

  let phase_begin ctx ~node phase =
    match ctx with
    | None -> ()
    | Some c ->
        c.tl_opens.(node) <-
          (phase, Sim.Engine.now c.tl_engine) :: c.tl_opens.(node)

  let phase_end ctx ~node phase =
    match ctx with
    | None -> ()
    | Some c -> (
        match List.assoc_opt phase c.tl_opens.(node) with
        | None -> () (* already closed (or never opened): idempotent *)
        | Some start ->
            c.tl_opens.(node) <- List.remove_assoc phase c.tl_opens.(node);
            Obs.Events.span c.tl_events ~lane:(lane c) ~node ~phase ~start
              ~stop:(Sim.Engine.now c.tl_engine) ~complete:true)

  (* After [Engine.run]: close dangling phases as incomplete (the
     stall diagnosis the chaos harness reads), fold the decision times
     into a histogram next to the net's delivery latencies, and attach
     the engine profile. *)
  let finish ctx ~engine ~net ~per_authority =
    match ctx with
    | None -> None
    | Some c ->
        let now = Sim.Engine.now engine in
        Array.iteri
          (fun node opens ->
            List.iter
              (fun (phase, start) ->
                Obs.Events.span c.tl_events ~lane:0 ~node ~phase ~start
                  ~stop:now ~complete:false)
              (List.rev opens))
          c.tl_opens;
        let metrics = Sim.Net.obs_metrics net in
        let h = Obs.Metrics.histogram metrics "time-to-decision" in
        Array.iter
          (fun (a : authority_result) ->
            match a.decided_at with
            | Some d -> Obs.Metrics.observe h d
            | None -> ())
          per_authority;
        Some
          {
            metrics;
            spans = Obs.Events.spans c.tl_events;
            samples = Obs.Events.samples c.tl_events;
            profile =
              (match Sim.Engine.profile engine with
              | Some p -> p
              | None -> []);
          }
end

let majority ~n = (n / 2) + 1

(* Crash faults are benign: a crashed-and-recovered authority is held
   to the same agreement obligations as an always-up honest one. *)
let correct_behavior = function
  | Honest | Crashed _ -> true
  | Silent | Equivocating -> false

let honest_results env result =
  List.filter_map
    (fun i ->
      if correct_behavior env.behaviors.(i) then Some result.per_authority.(i)
      else None)
    (List.init env.n Fun.id)

let success env result =
  let need = majority ~n:env.n in
  let decided =
    List.filter_map
      (fun (r : authority_result) ->
        match r.consensus with
        | Some c when r.signatures >= need -> Some (Dirdoc.Consensus.digest c)
        | _ -> None)
      (honest_results env result)
  in
  match decided with
  | [] -> false
  | first :: _ ->
      List.length decided >= need
      && List.for_all (Crypto.Digest32.equal first) decided

let agreement_holds env result =
  let digests =
    List.filter_map
      (fun (r : authority_result) -> Option.map Dirdoc.Consensus.digest r.consensus)
      (honest_results env result)
  in
  match digests with
  | [] -> true
  | first :: rest -> List.for_all (Crypto.Digest32.equal first) rest

let fold_max_over f result =
  Array.fold_left
    (fun acc r ->
      match f r with
      | None -> acc
      | Some t -> Some (match acc with None -> t | Some a -> Float.max a t))
    None result.per_authority

let success_latency result = fold_max_over (fun r -> r.network_time) result
let decided_at_latest result = fold_max_over (fun r -> r.decided_at) result

type report = {
  protocol : string;
  result : run_result;
  success : bool;
  agreement : bool;
  success_latency : Sim.Simtime.t option;
  decided_at_latest : Sim.Simtime.t option;
  total_bytes : int;
  dropped : int;
  rejected : int;
  distribution : Torclient.Distribution.outcome option;
}

let report env ?distribution (result : run_result) =
  {
    protocol = result.protocol;
    result;
    success = success env result;
    agreement = agreement_holds env result;
    success_latency = success_latency result;
    decided_at_latest = decided_at_latest result;
    total_bytes = Sim.Stats.total_bytes_sent result.stats;
    dropped = Sim.Stats.dropped result.stats;
    rejected = Sim.Stats.rejected result.stats;
    distribution;
  }

let report_obs r = r.result.obs

let time_to_decision r =
  Option.bind r.result.obs (fun o ->
      Obs.Metrics.find_histogram o.metrics "time-to-decision")

let delivery_latency r label =
  Option.bind r.result.obs (fun o ->
      Obs.Metrics.find_histogram o.metrics ("delivery-latency/" ^ label))

(* Which phase a failing run is stuck in: among correct authorities
   that never decided, take each one's latest-begun incomplete span and
   return the most common phase (count ties break to the
   alphabetically-first name, so the answer is deterministic). *)
let stalled_phase env r =
  match r.result.obs with
  | None -> None
  | Some o ->
      let latest = Hashtbl.create 8 in
      List.iter
        (fun (s : Obs.Events.span) ->
          if
            (not s.Obs.Events.complete)
            && s.node >= 0 && s.node < env.n
            && correct_behavior env.behaviors.(s.node)
            && r.result.per_authority.(s.node).decided_at = None
          then
            let better =
              match Hashtbl.find_opt latest s.node with
              | None -> true
              | Some (st, ph) ->
                  s.start > st
                  || (s.start = st && String.compare s.phase ph > 0)
            in
            if better then Hashtbl.replace latest s.node (s.start, s.phase))
        o.spans;
      let counts = Hashtbl.create 8 in
      Hashtbl.iter
        (fun _ (_, ph) ->
          Hashtbl.replace counts ph
            (1 + Option.value (Hashtbl.find_opt counts ph) ~default:0))
        latest;
      Hashtbl.fold
        (fun ph c best ->
          match best with
          | Some (bc, bp) when c < bc || (c = bc && String.compare bp ph <= 0)
            ->
              best
          | _ -> Some (c, ph))
        counts None
      |> Option.map snd

let apply_attacks env net =
  List.iter
    (fun a ->
      Sim.Net.limit_node net ~node:a.node ~start:a.start ~stop:a.stop
        ~bits_per_sec:a.bits_per_sec)
    env.attacks;
  (* Install the fault injector.  Crash-window behaviors compile to
     [Fault.Crash] entries so the network suppresses the node's sends
     and deliveries during the window, whatever the protocol on top;
     the driver only has to time the node's own actions (see
     {!awake}).  The merged plan is a pure function of the spec, so
     the injector's RNG stream is too. *)
  let behavior_crashes =
    List.concat_map
      (fun i ->
        match env.behaviors.(i) with
        | Crashed { start; stop } ->
            [ { Sim.Fault.kind = Sim.Fault.Crash { node = i }; start; stop } ]
        | Honest | Silent | Equivocating -> [])
      (List.init env.n Fun.id)
  in
  let base = Option.value env.fault_plan ~default:Sim.Fault.empty in
  let merged = { base with Sim.Fault.faults = base.Sim.Fault.faults @ behavior_crashes } in
  if merged.Sim.Fault.faults <> [] then
    Sim.Net.set_fault net (Sim.Fault.instantiate merged);
  (* Install the defenses through the same seam.  Like the fault
     injector, the installation is per run — an arena [Net.reset]
     detaches defenses, so a reused simulator picks up exactly the
     plan of the spec it is serving. *)
  match env.defense with
  | Some p when not (Defense.Plan.is_empty p) -> Sim.Net.set_defense net p
  | Some _ | None -> ()
