lib/attack/cost.ml:
