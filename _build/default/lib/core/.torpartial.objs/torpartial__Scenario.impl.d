lib/core/scenario.ml: Array Attack Experiments List Option Printf Protocols Result String
