type t = { n : int; delays : Simtime.t array array }

let n t = t.n

let latency t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Topology.latency: node out of range";
  t.delays.(src).(dst)

let uniform ~n ~latency =
  if n <= 0 then invalid_arg "Topology.uniform: n must be positive";
  if latency < 0. then invalid_arg "Topology.uniform: negative latency";
  let delays =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 0. else latency))
  in
  { n; delays }

let realistic ~n ~rng =
  if n <= 0 then invalid_arg "Topology.realistic: n must be positive";
  let delays = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let sample = Rng.gaussian rng ~mean:0.045 ~stddev:0.025 in
      let clamped = Float.max 0.005 (Float.min 0.150 sample) in
      delays.(i).(j) <- clamped;
      delays.(j).(i) <- clamped
    done
  done;
  { n; delays }

let min_latency t =
  (* Minimum off-diagonal delay: the safe conservative lookahead for
     the sharded engine (no message crosses nodes faster than this).
     A single-node topology has no links, so the bound is [never]. *)
  let best = ref Simtime.never in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if i <> j && t.delays.(i).(j) < !best then best := t.delays.(i).(j)
    done
  done;
  !best

let of_matrix m =
  let n = Array.length m in
  if n = 0 then invalid_arg "Topology.of_matrix: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Topology.of_matrix: not square";
      Array.iter (fun d -> if d < 0. then invalid_arg "Topology.of_matrix: negative delay") row)
    m;
  let delays =
    Array.init n (fun i ->
        Array.init n (fun j -> if i = j then 0. else Float.max m.(i).(j) m.(j).(i)))
  in
  { n; delays }
