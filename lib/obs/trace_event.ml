(* Hand-rolled like the bench JSON emitter: the format is flat and
   fixed, and the repo takes no JSON dependency.  OCaml's [%S] escaping
   is JSON-compatible for the ASCII identifiers used as phase and track
   names. *)

let us t = t *. 1e6

let emit ?(node_name = fun n -> Printf.sprintf "node %d" n) ~spans ~samples
    buf =
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n  ";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\",\n \"traceEvents\": [\n  ";
  event {|{"ph": "M", "name": "process_name", "pid": 0, "args": {"name": "torda-sim"}}|};
  (* One named thread per node that appears in either stream. *)
  let nodes = Hashtbl.create 64 in
  let see node = if not (Hashtbl.mem nodes node) then Hashtbl.add nodes node () in
  List.iter (fun (s : Events.span) -> see s.node) spans;
  List.iter (fun (s : Events.sample) -> see s.node) samples;
  Hashtbl.fold (fun node () acc -> node :: acc) nodes []
  |> List.sort Int.compare
  |> List.iter (fun node ->
         event
           {|{"ph": "M", "name": "thread_name", "pid": 0, "tid": %d, "args": {"name": %S}}|}
           node (node_name node));
  List.iter
    (fun (s : Events.span) ->
      event
        {|{"ph": "X", "name": %S, "cat": "phase", "pid": 0, "tid": %d, "ts": %.3f, "dur": %.3f, "args": {"complete": %b}}|}
        s.phase s.node (us s.start)
        (us (Float.max 0. (s.stop -. s.start)))
        s.complete)
    spans;
  List.iter
    (fun (s : Events.sample) ->
      event
        {|{"ph": "C", "name": %S, "pid": 0, "tid": %d, "ts": %.3f, "args": {"value": %.6f}}|}
        (Printf.sprintf "%s (node %d)" s.track s.node)
        s.node (us s.time) s.value)
    samples;
  Buffer.add_string buf "\n]}\n"

let to_string ?node_name ~spans ~samples () =
  let buf = Buffer.create 4096 in
  emit ?node_name ~spans ~samples buf;
  Buffer.contents buf
