(** Declarative sweep specs: a grid of protocols x bandwidths x relay
    counts over a base {!Protocols.Runenv.Spec.t}, compiled to a flat
    job list for the {!Pool}.  The Figure 10 evaluation grid is
    [make ~bandwidths_mbit:[50.; 20.; 10.; 1.; 0.5]
      ~relay_counts:[1000; ...; 10000] ()]. *)

type t = {
  protocols : Job.protocol list;
  bandwidths_mbit : float list;
  relay_counts : int list;
  base : Protocols.Runenv.Spec.t;
      (** seed, attacks, behaviors, horizon, ... shared by every cell *)
}

val make :
  ?protocols:Job.protocol list ->
  ?bandwidths_mbit:float list ->
  ?relay_counts:int list ->
  ?base:Protocols.Runenv.Spec.t ->
  unit ->
  t
(** Defaults: all three protocols, 250 Mbit/s, 1000 relays,
    [Spec.default] base. *)

(** One grid point, with the axis values that produced its job (so
    consumers need not recover them from the spec). *)
type cell = {
  protocol : Job.protocol;
  bandwidth_mbit : float;
  n_relays : int;
  job : Job.t;
}

val cells : t -> cell list
(** Protocol-major, then bandwidth, then relay count — the iteration
    order of the sequential code it replaces, so outputs line up. *)

val jobs : t -> Job.t list
(** [cells] without the axis labels. *)

val size : t -> int
(** Number of cells in the grid. *)
