module Signature = Crypto.Signature
module Digest32 = Crypto.Digest32

type entry = {
  digest : Digest32.t option;
  sender_sig : Signature.t option;
  proposer_sig : Signature.t;
}

type proposal = { proposer : int; entries : entry array }

type entry_proof =
  | Present of Signature.t * Signature.t list
  | Equivocation of (Digest32.t * Signature.t) * (Digest32.t * Signature.t)
  | Absent of Signature.t list

type value = {
  vector : Digest32.t option array;
  proofs : entry_proof array;
}

let doc_payload ~sender digest =
  match digest with
  | Some d -> Printf.sprintf "doc|%d|%s" sender (Digest32.raw d)
  | None -> Printf.sprintf "doc|%d|bot" sender

let sign_document keyring ~sender digest =
  Signature.sign keyring ~signer:sender (doc_payload ~sender (Some digest))

let make_proposal keyring ~proposer ~digests =
  let entries =
    Array.mapi
      (fun j slot ->
        match slot with
        | Some (digest, sender_sig) ->
            {
              digest = Some digest;
              sender_sig = Some sender_sig;
              proposer_sig =
                Signature.sign keyring ~signer:proposer (doc_payload ~sender:j (Some digest));
            }
        | None ->
            {
              digest = None;
              sender_sig = None;
              proposer_sig =
                Signature.sign keyring ~signer:proposer (doc_payload ~sender:j None);
            })
      digests
  in
  { proposer; entries }

let entry_valid keyring ~j ~proposer e =
  let payload = doc_payload ~sender:j e.digest in
  e.proposer_sig.Signature.signer = proposer
  && Signature.verify keyring e.proposer_sig payload
  &&
  match (e.digest, e.sender_sig) with
  | Some _, Some s -> s.Signature.signer = j && Signature.verify keyring s payload
  | None, None -> true
  | Some _, None | None, Some _ -> false

let proposal_valid keyring ~n ~f p =
  Array.length p.entries = n
  && p.proposer >= 0 && p.proposer < n
  && (let non_bot =
        Array.fold_left
          (fun acc e -> match e.digest with Some _ -> acc + 1 | None -> acc)
          0 p.entries
      in
      non_bot >= n - f)
  &&
  let ok = ref true in
  Array.iteri
    (fun j e -> if not (entry_valid keyring ~j ~proposer:p.proposer e) then ok := false)
    p.entries;
  !ok

module Collector = struct
  type t = {
    keyring : Crypto.Keyring.t;
    n : int;
    f : int;
    proposals : (int, proposal) Hashtbl.t; (* proposer -> latest proposal *)
  }

  let create keyring ~n ~f = { keyring; n; f; proposals = Hashtbl.create 16 }

  let add t p =
    if proposal_valid t.keyring ~n:t.n ~f:t.f p then
      Hashtbl.replace t.proposals p.proposer p

  let count t = Hashtbl.length t.proposals

  (* Resolve entry [j] across the held proposals, per the rules of
     Section 5.2.1: equivocation first (two sender-signed digests
     conflict), then (f+1) agreement on a digest, then (f+1) ⊥. *)
  let resolve t j =
    let by_digest : (string, Signature.t * Signature.t list) Hashtbl.t =
      Hashtbl.create 8
    in
    let bot_sigs = ref [] in
    Hashtbl.iter
      (fun _ p ->
        let e = p.entries.(j) in
        match (e.digest, e.sender_sig) with
        | Some d, Some sender_sig ->
            let key = Digest32.raw d in
            let _, proposers =
              Option.value (Hashtbl.find_opt by_digest key) ~default:(sender_sig, [])
            in
            Hashtbl.replace by_digest key (sender_sig, e.proposer_sig :: proposers)
        | None, _ -> bot_sigs := e.proposer_sig :: !bot_sigs
        | Some _, None -> ())
      t.proposals;
    let digests =
      Hashtbl.fold (fun key (sender_sig, ps) acc -> (key, sender_sig, ps) :: acc) by_digest []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    in
    match digests with
    | (d1, s1, _) :: (d2, s2, _) :: _ ->
        (* Rule b: the sender signed two different digests. *)
        Some (None, Equivocation ((Digest32.of_raw d1, s1), (Digest32.of_raw d2, s2)))
    | [ (d, sender_sig, proposers) ] when List.length proposers >= t.f + 1 ->
        let sigs = List.filteri (fun i _ -> i <= t.f) proposers in
        Some (Some (Digest32.of_raw d), Present (sender_sig, sigs))
    | _ when List.length !bot_sigs >= t.f + 1 ->
        let sigs = List.filteri (fun i _ -> i <= t.f) !bot_sigs in
        Some (None, Absent sigs)
    | _ -> None

  let build t =
    if count t < t.n - t.f then None
    else begin
      let vector = Array.make t.n None in
      let proofs = Array.make t.n None in
      for j = 0 to t.n - 1 do
        match resolve t j with
        | Some (digest, proof) ->
            vector.(j) <- digest;
            proofs.(j) <- Some proof
        | None -> ()
      done;
      let resolved = Array.for_all Option.is_some proofs in
      let non_bot =
        Array.fold_left
          (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
          0 vector
      in
      if resolved && non_bot >= t.n - t.f then
        Some { vector; proofs = Array.map Option.get proofs }
      else None
    end
end

let distinct_signers sigs =
  let signers = List.map (fun s -> s.Signature.signer) sigs in
  List.length (List.sort_uniq Int.compare signers) = List.length sigs

let proof_valid keyring ~f ~j ~digest proof =
  match (digest, proof) with
  | Some d, Present (sender_sig, proposer_sigs) ->
      let payload = doc_payload ~sender:j (Some d) in
      sender_sig.Signature.signer = j
      && Signature.verify keyring sender_sig payload
      && List.length proposer_sigs >= f + 1
      && distinct_signers proposer_sigs
      && List.for_all (fun s -> Signature.verify keyring s payload) proposer_sigs
  | None, Equivocation ((d1, s1), (d2, s2)) ->
      (not (Digest32.equal d1 d2))
      && s1.Signature.signer = j && s2.Signature.signer = j
      && Signature.verify keyring s1 (doc_payload ~sender:j (Some d1))
      && Signature.verify keyring s2 (doc_payload ~sender:j (Some d2))
  | None, Absent sigs ->
      let payload = doc_payload ~sender:j None in
      List.length sigs >= f + 1
      && distinct_signers sigs
      && List.for_all (fun s -> Signature.verify keyring s payload) sigs
  | Some _, (Equivocation _ | Absent _) | None, Present _ -> false

let validate keyring ~n ~f value =
  Array.length value.vector = n
  && Array.length value.proofs = n
  && (let non_bot =
        Array.fold_left
          (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
          0 value.vector
      in
      non_bot >= n - f)
  &&
  let ok = ref true in
  Array.iteri
    (fun j digest ->
      if not (proof_valid keyring ~f ~j ~digest value.proofs.(j)) then ok := false)
    value.vector;
  !ok

let value_digest value =
  let ctx = Crypto.Sha256.init () in
  Array.iteri
    (fun j d ->
      Crypto.Sha256.feed_string ctx
        (match d with
        | Some d -> Printf.sprintf "%d:%s" j (Digest32.raw d)
        | None -> Printf.sprintf "%d:bot" j))
    value.vector;
  Digest32.of_raw (Crypto.Sha256.finalize ctx)

let value_wire_size value =
  let entry_size = function
    | Present (_, sigs) ->
        Digest32.wire_size + ((1 + List.length sigs) * Signature.wire_size)
    | Equivocation _ -> (2 * Digest32.wire_size) + (2 * Signature.wire_size)
    | Absent sigs -> List.length sigs * Signature.wire_size
  in
  Array.fold_left
    (fun acc proof -> acc + Digest32.wire_size + entry_size proof)
    64 value.proofs
