(** Discrete-event simulation engine.

    The engine owns the clock and a queue of scheduled thunks.
    Protocols never read wall-clock time; everything observable happens
    inside a scheduled event, which makes runs deterministic. *)

type t

type handle
(** A scheduled event that can still be cancelled. *)

val create : unit -> t

val now : t -> Simtime.t
(** Current simulated time. *)

val schedule : t -> at:Simtime.t -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] at absolute time [at].  Raises
    [Invalid_argument] if [at] is in the past. *)

val schedule_in : t -> after:Simtime.t -> (unit -> unit) -> handle
(** [schedule_in t ~after f] runs [f] after a relative delay. *)

val cancel : handle -> unit
(** Cancel a pending event; cancelling a fired or already-cancelled
    event is a no-op. *)

val run : ?until:Simtime.t -> t -> unit
(** Execute events in time order until the queue drains or the next
    event lies strictly beyond [until].  The clock ends at the last
    executed event (or at [until] when given and reached). *)

val pending : t -> int
(** Number of events still queued (including cancelled husks). *)
