(** Luo et al.'s synchronous directory protocol (S&P 2024; Figure 5 of
    this paper).

    Interactive consistency via Dolev-Strong-style authenticated
    echo broadcast under the same 4x150 s lock-step schedule as the
    deployed protocol: during the first two rounds every authority
    broadcasts its vote with a signature chain, and echoes each vote it
    accepts (once) with its own signature appended.  Equivocation by a
    sender — two validly signed conflicting votes — is detected and the
    sender's vote excluded, which is what repairs the attack of Luo et
    al.; the echoing is also what raises communication to
    O(n^3 d + n^4 kappa) (Table 1) and makes this protocol fail at lower
    relay counts than the deployed one (Figure 10).

    The bounded-synchrony assumption (Delta = 150 s) is inherited
    unchanged, so the DDoS attack of Section 4 breaks this protocol
    too. *)

val name : string

val run : Runenv.t -> Runenv.run_result
