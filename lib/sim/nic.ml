(* Breakpoints live in a pair of parallel arrays sorted by time (the
   append-in-order invariant makes them sorted for free) instead of the
   previous reversed cons-list, which every rate lookup walked end to
   end.  The active segment for a time [t] is the HIGHEST index with
   [times.(i) <= t] — among duplicate times the latest-appended entry
   wins, exactly the newest-first semantics of the old list.

   [cursor] caches the active segment of the last committed
   reservation.  Reservation start times are monotone ([start = max now
   busy_until] and [busy_until] never decreases), so the reserve path
   only ever scans the array forward from the cursor: a whole attack
   window's worth of [limit_window] breakpoints is crossed once,
   amortized O(1) per reserve.  Non-committing lookups ([rate_at],
   [transfer_time] at planner-chosen times) may look anywhere, so they
   fall back to binary search and leave the cursor alone.  Appends keep
   the cursor valid: new breakpoints land strictly at or after every
   existing one. *)

type t = {
  base_rate : float; (* bytes per second before the first breakpoint *)
  mutable times : float array;
  mutable rates : float array; (* bytes per second *)
  mutable n_bp : int;
  mutable cursor : int; (* active segment of the last reserve; -1 = base *)
  mutable busy_until : Simtime.t;
}

let bytes_rate bits = bits /. 8.

let create ~bits_per_sec () =
  if bits_per_sec < 0. then invalid_arg "Nic.create: negative rate";
  {
    base_rate = bytes_rate bits_per_sec;
    times = [||];
    rates = [||];
    n_bp = 0;
    cursor = -1;
    busy_until = Simtime.zero;
  }

let last_breakpoint_time t = if t.n_bp = 0 then Simtime.zero else t.times.(t.n_bp - 1)

let set_rate t ~from ~bits_per_sec =
  if bits_per_sec < 0. then invalid_arg "Nic.set_rate: negative rate";
  if from < last_breakpoint_time t then
    invalid_arg "Nic.set_rate: breakpoints must be appended in time order";
  if t.n_bp = Array.length t.times then begin
    let fresh = max 8 (2 * t.n_bp) in
    let times = Array.make fresh 0. and rates = Array.make fresh 0. in
    Array.blit t.times 0 times 0 t.n_bp;
    Array.blit t.rates 0 rates 0 t.n_bp;
    t.times <- times;
    t.rates <- rates
  end;
  t.times.(t.n_bp) <- from;
  t.rates.(t.n_bp) <- bytes_rate bits_per_sec;
  t.n_bp <- t.n_bp + 1

(* Highest index with [times.(i) <= time], or -1: binary search, no
   cursor movement. *)
let seg_search t time =
  let lo = ref (-1) and hi = ref (t.n_bp - 1) in
  (* invariant: times.(lo) <= time < times.(hi + 1) conceptually *)
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.times.(mid) <= time then lo := mid else hi := mid - 1
  done;
  !lo

(* Active segment starting the scan at [hint] when [time] is not
   behind it. *)
let seg_from t ~hint time =
  if t.n_bp = 0 then -1
  else begin
    let i = ref (if hint >= 0 && hint < t.n_bp && t.times.(hint) <= time then hint else seg_search t time) in
    while !i + 1 < t.n_bp && t.times.(!i + 1) <= time do incr i done;
    !i
  end

let seg_rate t i = if i < 0 then t.base_rate else t.rates.(i)

let byte_rate_at t time = seg_rate t (seg_from t ~hint:(-1) time)
let rate_at t time = byte_rate_at t time *. 8.

let limit_window t ~start ~stop ~bits_per_sec =
  if stop < start then invalid_arg "Nic.limit_window: stop before start";
  let restored = byte_rate_at t stop *. 8. in
  set_rate t ~from:start ~bits_per_sec;
  set_rate t ~from:stop ~bits_per_sec:restored

(* Walk the piecewise-constant schedule consuming [bytes] starting at
   [start]; returns the completion time and the segment it lands in.
   The arithmetic (capacity per segment, the final division) matches
   the old list walk operation for operation, so completion times are
   bit-identical. *)
let finish_in_segments t ~seg ~start ~bytes =
  let i = ref seg in
  let time = ref start in
  let remaining = ref (float_of_int bytes) in
  let result = ref Simtime.never in
  let running = ref (!remaining > 0.) in
  if not !running then result := !time;
  while !running do
    let rate = seg_rate t !i in
    if !i + 1 >= t.n_bp then begin
      result := (if rate <= 0. then Simtime.never else !time +. (!remaining /. rate));
      running := false
    end
    else begin
      let change = t.times.(!i + 1) in
      if rate <= 0. then begin
        time := change;
        incr i;
        while !i + 1 < t.n_bp && t.times.(!i + 1) <= !time do incr i done
      end
      else begin
        let capacity = rate *. (change -. !time) in
        if !remaining <= capacity then begin
          result := !time +. (!remaining /. rate);
          running := false
        end
        else begin
          remaining := !remaining -. capacity;
          time := change;
          incr i;
          while !i + 1 < t.n_bp && t.times.(!i + 1) <= !time do incr i done
        end
      end
    end
  done;
  (!result, !i)

let transfer_time t ~now ~bytes =
  if bytes < 0 then invalid_arg "Nic.transfer_time: negative size";
  let start = Float.max now t.busy_until in
  if Simtime.is_infinite start then Simtime.never
  else
    let seg = seg_from t ~hint:(-1) start in
    fst (finish_in_segments t ~seg ~start ~bytes)

let reserve t ~now ~bytes =
  if bytes < 0 then invalid_arg "Nic.transfer_time: negative size";
  let start = Float.max now t.busy_until in
  if Simtime.is_infinite start then begin
    t.busy_until <- Simtime.never;
    Simtime.never
  end
  else begin
    let seg = seg_from t ~hint:t.cursor start in
    let finish, seg' = finish_in_segments t ~seg ~start ~bytes in
    t.cursor <- seg';
    t.busy_until <- finish;
    finish
  end

let busy_until t = t.busy_until

(* Back to the state [create] left: no breakpoints, idle FIFO.  The
   breakpoint arrays keep their capacity so re-applying an attack
   schedule after a reset allocates nothing. *)
let reset t =
  t.n_bp <- 0;
  t.cursor <- -1;
  t.busy_until <- Simtime.zero
