lib/dirdoc/aggregate.mli: Consensus Relay Vote
