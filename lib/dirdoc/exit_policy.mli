(** Exit-policy summaries (dir-spec "p" lines).

    A summary is ["accept"] or ["reject"] plus a sorted list of
    disjoint port ranges, e.g. ["accept 80,443,8000-8100"].  Figure 2
    breaks aggregation ties by picking the lexicographically larger
    rendered summary, so rendering is canonical (ranges normalized,
    merged, and sorted). *)

type policy = Accept | Reject

type t

val make : policy -> (int * int) list -> t
(** [make p ranges] normalizes [ranges] (each [lo, hi] with
    [1 <= lo <= hi <= 65535]): sorts, merges overlaps and adjacency.
    Raises [Invalid_argument] on an out-of-range port or an empty
    list. *)

val accept_all : t
val reject_all : t

val policy : t -> policy
val ranges : t -> (int * int) list

val allows_port : t -> int -> bool
(** Whether the summary permits exiting to a port. *)

val to_string : t -> string

val feed : Crypto.Sink.t -> t -> unit
(** [feed sink t] writes exactly [to_string t] into [sink] without
    allocating the intermediate string. *)

val of_string : string -> (t, string) result

val compare : t -> t -> int
(** Lexicographic on the canonical rendering — the Figure 2 tie-break
    order. *)

val equal : t -> t -> bool
val max : t -> t -> t
val pp : Format.formatter -> t -> unit
