type level = Notice | Info | Warn

type record = { time : Simtime.t; node : int option; level : level; text : string }

(* One list per engine shard (lane), each newest-first, so domains
   never contend on a shared cons cell.  [records] merges lanes with a
   stable sort on (time, node): a node only ever logs from its own
   shard, so records sharing a (time, node) key sit in one lane and
   stability preserves their emission order — the merged view is
   identical whatever the shard count, including 1. *)
type t = { lanes : record list array }

let create ?(lanes = 1) () = { lanes = Array.make (max 1 lanes) [] }

let log t ~time ?node level text =
  let d = Domain_ctx.current () in
  let d = if d < Array.length t.lanes then d else 0 in
  t.lanes.(d) <- { time; node; level; text } :: t.lanes.(d)

let logf t ~time ?node level fmt =
  Format.kasprintf (fun text -> log t ~time ?node level text) fmt

let node_key r = match r.node with None -> -1 | Some id -> id

let records t =
  (* [rev_append lane acc] un-reverses the newest-first lane, so [all]
     is lane 0 oldest-first, then lane 1, ... *)
  let all = Array.fold_right (fun lane acc -> List.rev_append lane acc) t.lanes [] in
  List.stable_sort
    (fun a b ->
      match Float.compare a.time b.time with
      | 0 -> Int.compare (node_key a) (node_key b)
      | c -> c)
    all

let for_node t node =
  List.filter (fun r -> r.node = Some node) (records t)

let level_string = function Notice -> "notice" | Info -> "info" | Warn -> "warn"

let render r =
  Format.asprintf "%a [%s] %s" Simtime.pp_tor_log r.time (level_string r.level) r.text

let dump ?node t =
  let rs = match node with None -> records t | Some id -> for_node t id in
  String.concat "\n" (List.map render rs)

let clear t = Array.fill t.lanes 0 (Array.length t.lanes) []
