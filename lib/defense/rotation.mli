(** Moving-participants rotation of the active authority subset.

    Moving Participants Turtle Consensus (Nikolaou & van Renesse,
    PAPERS.md) defends consensus against targeted DoS by rotating
    which nodes run the protocol: an attacker who provisioned a flood
    against a fixed set finds its targets rotated out and its budget
    wasted.  This module models the schedule: every [epoch] seconds a
    seeded pseudorandom subset of [out] authorities goes quiet — their
    sends are suppressed and traffic addressed to them is turned away
    (accounted as defense rejects, not fault drops) — while the
    remaining authorities carry the protocol.

    The schedule is a pure function of [(config, n, epoch-number)]:
    nodes are ranked by a seeded digest and the [out] smallest ranks
    form the epoch's quiet set.  No RNG stream, no mutable global
    state, so the schedule is identical on every shard and at every
    shard count; protocol drivers honor it through the
    {!Runenv.awake} guard, the network through {!Net.set_defense}. *)

type config = {
  seed : string;  (** salts the per-epoch subset draw *)
  out : int;  (** authorities rotated out per epoch *)
  epoch : float;  (** seconds per rotation epoch *)
}

val default : config
(** One authority out per 100 s epoch: relocates an attacker's aim
    faster than a v3 voting round (150 s) without ever keeping one
    authority quiet for a whole fetch round — a rotated-out authority
    is back in time to answer the round's remaining retries, so the
    9-authority directory keeps its 5-signature quorum.  The setting
    where rotation strictly reduces v3 breaks on the 200-plan chaos
    campaign (41 -> 40, stable for epochs in [90, 130]). *)

val validate : n:int -> config -> unit
(** Raises [Invalid_argument] unless [epoch > 0] and
    [0 <= out < n]. *)

val canonical : config -> string
(** Canonical serialization (length-prefixed seed, [%h] floats),
    feeding {!Plan.canonical}. *)

val pp : Format.formatter -> config -> unit

val epoch_of : config -> now:float -> int
(** The rotation epoch containing [now] (epoch [e] spans
    [e * epoch <= now < (e+1) * epoch]). *)

val out_nodes : config -> n:int -> epoch:int -> int list
(** The epoch's quiet subset, ascending node ids; [out] distinct
    nodes drawn uniformly per epoch. *)

val quiet_at : config -> n:int -> node:int -> now:float -> bool
(** Pure membership test: is [node] rotated out at [now]?  Allocates;
    use an instantiated {!t} on hot paths. *)

(** {1 Runtime} *)

type t
(** Memoized membership for one node's hot-path checks.  An instance
    caches the current epoch's subset; it must only be consulted from
    the shard that owns its node (single-writer cache). *)

val instantiate : config -> n:int -> t
(** Validates the config and allocates the cache. *)

val config : t -> config

val quiet : t -> node:int -> now:float -> bool
(** Memoized {!quiet_at}; allocation-free once the epoch's subset is
    cached. *)
