lib/protocols/sync_ic.mli: Runenv
