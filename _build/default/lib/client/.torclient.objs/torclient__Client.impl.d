lib/client/client.ml: Circuit Crypto Dirdoc Directory Option Result
