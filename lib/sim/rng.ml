(* SplitMix64 (Steele, Lea & Flood 2014): tiny state, passes BigCrush,
   and supports cheap stream splitting. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let seed_of_string s =
  let raw = Crypto.Sha256.digest_string s in
  let byte i = Int64.of_int (Char.code raw.[i]) in
  let seed = ref 0L in
  for i = 0 to 7 do
    seed := Int64.logor (Int64.shift_left !seed 8) (byte i)
  done;
  !seed

let of_string_seed s = create (seed_of_string s)

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix64 = mix

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992. *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let range t ~min ~max =
  if max < min then invalid_arg "Rng.range: max < min";
  min + int t (max - min + 1)

let gaussian t ~mean ~stddev =
  let u1 = Float.max 1e-12 (float t 1.) in
  let u2 = float t 1. in
  mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let split t = create (next_int64 t)
