module Signature = Crypto.Signature

type t = {
  node : int;
  keyring : Crypto.Keyring.t;
  need : int;
  mutable consensus : Dirdoc.Consensus.t option;
  sigs : (int, Signature.t) Hashtbl.t;
  mutable own : Signature.t option;
  mutable decided_at : Tor_sim.Simtime.t option;
}

let create ~keyring ~node ~need =
  {
    node;
    keyring;
    need;
    consensus = None;
    sigs = Hashtbl.create 8;
    own = None;
    decided_at = None;
  }

let consensus t = t.consensus
let my_signature t = t.own
let count t = Hashtbl.length t.sigs
let decided_at t = t.decided_at

let check_decided t ~now =
  if t.decided_at = None && t.consensus <> None && count t >= t.need then
    t.decided_at <- Some now

let set_consensus t ~now c =
  (match t.consensus with
  | Some existing when not (Dirdoc.Consensus.equal existing c) ->
      invalid_arg "Siground.set_consensus: conflicting documents"
  | _ -> ());
  t.consensus <- Some c;
  let signature =
    Signature.sign t.keyring ~signer:t.node (Dirdoc.Consensus.signing_payload c)
  in
  t.own <- Some signature;
  Hashtbl.replace t.sigs t.node signature;
  check_decided t ~now;
  signature

let store t ~now ~digest signature =
  match t.consensus with
  | Some c
    when Crypto.Digest32.equal digest (Dirdoc.Consensus.digest c)
         && Signature.verify t.keyring signature (Dirdoc.Consensus.signing_payload c)
         && not (Hashtbl.mem t.sigs signature.Signature.signer) ->
      Hashtbl.replace t.sigs signature.Signature.signer signature;
      check_decided t ~now
  | _ -> ()
