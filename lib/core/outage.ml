module Runenv = Protocols.Runenv
module Directory = Torclient.Directory

type attack_policy = No_attack | Hourly_flood

type hour = {
  index : int;
  consensus_produced : bool;
  client_usable : bool;
  client_status : Directory.freshness option;
}

type timeline = {
  protocol : Experiments.protocol;
  policy : attack_policy;
  hours : hour list;
  dark_hours : int;
  attacker_usd : float;
}

(* Signers whose computed document matches the majority digest and who
   hold enough signatures: the authorities a client could download the
   signed consensus from. *)
let signed_consensus_of_run keyring ~n (result : Runenv.run_result) =
  let documents =
    Array.to_list result.Runenv.per_authority
    |> List.filter_map (fun (a : Runenv.authority_result) ->
           match a.Runenv.consensus with
           | Some c when a.Runenv.signatures >= Runenv.majority ~n -> Some c
           | _ -> None)
  in
  match documents with
  | [] -> None
  | consensus :: _ ->
      let signers =
        List.init n Fun.id
        |> List.filter (fun i ->
               match result.Runenv.per_authority.(i).Runenv.consensus with
               | Some c -> Dirdoc.Consensus.equal c consensus
               | None -> false)
      in
      Some (Directory.make keyring consensus ~signers)

let run ?(hours = 12) ?(n_relays = 2000) ~protocol ~policy () =
  let n = 9 in
  let base = Runenv.default_valid_after in
  let keyring = Crypto.Keyring.create ~seed:"outage" ~n () in
  let client = Torclient.Client.create ~keyring ~n_authorities:n in
  let attacked_hours = ref 0 in
  let hour_rows =
    List.init hours (fun index ->
        (* Hour 0 bootstraps before the attacker shows up. *)
        let attacked = policy = Hourly_flood && index >= 1 in
        if attacked then incr attacked_hours;
        let attacks = if attacked then Attack.Ddos.bandwidth_attack ~n () else [] in
        let valid_after = base +. (3600. *. float_of_int index) in
        let env =
          Runenv.of_spec
            {
              Runenv.Spec.default with
              seed = Printf.sprintf "outage-h%d" index;
              valid_after;
              n_relays;
              attacks;
              horizon = 3000.;
            }
        in
        (* The runs use the shared outage keyring so one client can
           verify every hour's signatures. *)
        let env = { env with Runenv.keyring } in
        let report = Experiments.run protocol env in
        let produced = report.Runenv.success in
        (if produced then
           match signed_consensus_of_run keyring ~n report.Runenv.result with
           | Some sc ->
               (* The client fetches shortly after the run concludes. *)
               let fetch_time = valid_after +. 1200. in
               ignore (Torclient.Client.offer client ~now:fetch_time sc)
           | None -> ());
        let end_of_hour = valid_after +. 3599. in
        {
          index;
          consensus_produced = produced;
          client_usable = Torclient.Client.can_build_circuits client ~now:end_of_hour;
          client_status = Torclient.Client.status client ~now:end_of_hour;
        })
  in
  let dark_hours =
    List.length (List.filter (fun h -> not h.client_usable) hour_rows)
  in
  let instance = Attack.Cost.break_one_run () in
  {
    protocol;
    policy;
    hours = hour_rows;
    dark_hours;
    attacker_usd = float_of_int !attacked_hours *. instance.Attack.Cost.usd;
  }

let first_dark_hour timeline =
  List.find_map
    (fun h -> if not h.client_usable then Some h.index else None)
    timeline.hours
