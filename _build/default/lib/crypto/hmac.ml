let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest_string key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let xor_pad key byte =
  let out = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  Bytes.unsafe_to_string out

let mac ~key msg =
  let key = normalize_key key in
  let inner =
    let ctx = Sha256.init () in
    Sha256.feed_string ctx (xor_pad key 0x36);
    Sha256.feed_string ctx msg;
    Sha256.finalize ctx
  in
  let ctx = Sha256.init () in
  Sha256.feed_string ctx (xor_pad key 0x5c);
  Sha256.feed_string ctx inner;
  Sha256.finalize ctx

let mac_hex ~key msg = Sha256.hex_of_raw (mac ~key msg)

let equal a b =
  String.length a = String.length b
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code b.[i])) a;
  !diff = 0
