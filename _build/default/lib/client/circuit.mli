(** Three-hop circuit construction over a consensus document.

    This is why consensus freshness matters (the paper's §1): a client
    picks a guard, a middle, and an exit — bandwidth-weighted, with
    position constraints and basic relay-diversity rules — from the
    relay list the consensus certifies.  Three relays under one
    operator deanonymize the user, so the selection must draw from a
    large, current population. *)

type t = {
  guard : Dirdoc.Consensus.entry;
  middle : Dirdoc.Consensus.entry;
  exit : Dirdoc.Consensus.entry;
}

type error =
  | No_guard
  | No_middle
  | No_exit   (** no relay's policy allows the destination port *)

val error_to_string : error -> string

val eligible_guards : Dirdoc.Consensus.t -> Dirdoc.Consensus.entry list
(** Running + Valid + Guard + Stable. *)

val eligible_exits : port:int -> Dirdoc.Consensus.t -> Dirdoc.Consensus.entry list
(** Running + Valid + Exit, not BadExit, and the exit-policy summary
    allows [port]. *)

val eligible_middles : Dirdoc.Consensus.t -> Dirdoc.Consensus.entry list
(** Running + Valid. *)

val build :
  rng:Tor_sim.Rng.t -> port:int -> Dirdoc.Consensus.t -> (t, error) result
(** Pick exit, then guard, then middle, each bandwidth-weighted and
    distinct from the hops already chosen.  Positions are filled in
    Tor's order (exit first, since exits are scarcest). *)

val bandwidth_weighted :
  rng:Tor_sim.Rng.t -> Dirdoc.Consensus.entry list -> Dirdoc.Consensus.entry option
(** Select one entry with probability proportional to its consensus
    bandwidth ([None] on an empty list; uniform if all bandwidths are
    zero). *)
