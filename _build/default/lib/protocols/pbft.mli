(** Single-shot PBFT-style agreement — the third instantiation of the
    paper's pluggable agreement sub-protocol (§5.2.2 names PBFT,
    Tendermint, and HotStuff).

    Classic three-phase structure per view with a rotating primary:
    PRE-PREPARE from the primary, then all-to-all PREPARE, then
    all-to-all COMMIT; [2f+1] matching prepares form a prepared
    certificate (the lock), [2f+1] commits decide.  On timeout,
    replicas broadcast VIEW-CHANGE carrying their prepared
    certificate; a quorum advances the view and obliges the new
    primary to re-propose the highest certified value — PBFT's
    safety-across-views argument in single-shot form.

    Good case: 3 message rounds plus the proposal, all-to-all in both
    vote phases — the quadratic communication that HotStuff's
    leader-relayed votes were designed to remove (visible in the
    agreement-traffic ablation).

    The interface is {!Agreement.S}; the core protocol functor runs
    unchanged over this engine. *)

include Agreement.S

val quorum : n:int -> int
(** [n - (n-1)/3]. *)
