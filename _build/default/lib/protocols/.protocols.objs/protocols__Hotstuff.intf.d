lib/protocols/hotstuff.mli: Crypto Tor_sim
