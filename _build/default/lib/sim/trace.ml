type level = Notice | Info | Warn

type record = { time : Simtime.t; node : int option; level : level; text : string }

type t = { mutable records : record list (* newest first *) }

let create () = { records = [] }

let log t ~time ?node level text = t.records <- { time; node; level; text } :: t.records

let logf t ~time ?node level fmt =
  Format.kasprintf (fun text -> log t ~time ?node level text) fmt

let records t = List.rev t.records

let for_node t node =
  List.filter (fun r -> r.node = Some node) (records t)

let level_string = function Notice -> "notice" | Info -> "info" | Warn -> "warn"

let render r =
  Format.asprintf "%a [%s] %s" Simtime.pp_tor_log r.time (level_string r.level) r.text

let dump ?node t =
  let rs = match node with None -> records t | Some id -> for_node t id in
  String.concat "\n" (List.map render rs)

let clear t = t.records <- []
