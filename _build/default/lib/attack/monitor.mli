(** Consensus-health monitoring — the "emergency fix" deployed after
    Luo et al.'s disclosure (paper Table 1: "Attacks Monitored").

    The live consensus-health monitor watches the authorities' logs
    and the published vote set; it cannot {e prevent} the DDoS attack,
    but it detects a run that is failing while it is still in
    progress.  This module implements the detection side over a
    simulation {!Tor_sim.Trace}: it scans for missing-vote notices,
    directory-connection failures, and not-enough-votes warnings, and
    classifies the run. *)

type verdict =
  | Healthy
  | Degraded of { fetch_failures : int }
      (** some fetches failed, but consensus was still computed *)
  | Attack_suspected of {
      authorities_missing_votes : int;  (** max missing-votes count seen *)
      fetch_failures : int;
      failed_authorities : int;  (** authorities that could not compute *)
    }

type report = {
  verdict : verdict;
  missing_notices : int;
  fetch_failures : int;
  consensus_failures : int;
}

val analyze : Tor_sim.Trace.t -> report
(** Scan a run's trace.  [Attack_suspected] when any authority
    reported missing votes {e and} failed to compute a consensus;
    [Degraded] when fetches failed but every authority recovered. *)

val pp_verdict : Format.formatter -> verdict -> unit
