examples/quickstart.mli:
