module Sim = Tor_sim
module Signature = Crypto.Signature
module Digest32 = Crypto.Digest32
module Runenv = Protocols.Runenv
module Siground = Protocols.Siground
module Wire = Protocols.Wire

let name = "ours"

type params = {
  doc_timeout : Sim.Simtime.t;
  view_timeout : Sim.Simtime.t;
  fetch_retry : Sim.Simtime.t;
}

let default_params = { doc_timeout = 150.; view_timeout = 5.; fetch_retry = 10. }

type detailed = {
  result : Runenv.run_result;
  vectors : Digest32.t Icps.vector array;
  decided_views : int option array;
}

module Make (A : Protocols.Agreement.S) = struct
  let name = "ours+" ^ A.name

type msg =
  | Document of { doc : Dirdoc.Vote.t; signature : Signature.t }
  | Proposal of Dissemination.proposal
  | Agreement of Dissemination.value A.msg
  | Fetch of { wanted : int list }
  | Fetch_reply of { doc : Dirdoc.Vote.t; signature : Signature.t }
  | Cons_sig of { digest : Digest32.t; signature : Signature.t }
  | Cons_sig_request

module Simulator = Runenv.Simulator (struct
  type nonrec msg = msg
end)

let msg_size = function
  | Document { doc; _ } | Fetch_reply { doc; _ } ->
      Wire.vote_push_bytes ~n_relays:(Dirdoc.Vote.n_relays doc) + Signature.wire_size
  | Proposal p ->
      Wire.control_bytes
      + Array.fold_left
          (fun acc (e : Dissemination.entry) ->
            acc + Digest32.wire_size + Signature.wire_size
            + match e.sender_sig with Some _ -> Signature.wire_size | None -> 0)
          0 p.entries
  | Agreement m -> A.msg_size ~value_size:Dissemination.value_wire_size m
  | Fetch _ | Cons_sig_request -> Wire.request_bytes
  | Cons_sig _ -> Wire.signature_bytes + Wire.control_bytes

type node = {
  id : int;
  (* dissemination *)
  docs : Dirdoc.Vote.t option array;           (* first valid document per sender *)
  doc_sigs : Signature.t option array;         (* the sender's digest signature *)
  mutable doc_deadline_passed : bool;
  mutable proposal_sent_view : int;            (* last view we sent a PROPOSAL for *)
  collector : Dissemination.Collector.t;       (* leader-side accumulation *)
  (* agreement *)
  mutable hotstuff : Dissemination.value A.t option;
  mutable decided_vector : Dissemination.value option;
  mutable decided_view : int option;
  (* aggregation *)
  mutable fetch_timer : Sim.Engine.handle option;
  sig_round : Siground.t;
}

let run_detailed ?(params = default_params) (env : Runenv.t) =
  let n = env.n in
  let f = Icps.fault_bound ~n in
  let need = Runenv.majority ~n in
  let engine, net = Simulator.obtain ~driver:name env in
  let trace = Sim.Trace.create ~lanes:(Sim.Engine.shard_count engine) () in
  Runenv.apply_attacks env net;
  let now () = Sim.Engine.now engine in
  let log ?node level fmt = Sim.Trace.logf trace ~time:(now ()) ?node level fmt in
  (* Message labels, interned once so per-send accounting is an array
     add (DESIGN.md §7) — on every shard, via [Net.intern]. *)
  let lbl_document = Sim.Net.intern net "document" in
  let lbl_proposal = Sim.Net.intern net "proposal" in
  let lbl_agreement = Sim.Net.intern net "agreement" in
  let lbl_fetch = Sim.Net.intern net "fetch" in
  let lbl_fetch_reply = Sim.Net.intern net "fetch-reply" in
  let lbl_cons_sig = Sim.Net.intern net "cons-sig" in
  let lbl_sig_request = Sim.Net.intern net "sig-request" in
  (* Event-driven protocol, event-driven spans: phases open and close
     at the actual transitions (first proposal sent, agreement decided,
     consensus signed, signature majority reached), not on a fixed
     round grid.  Every helper is a no-op when telemetry is off. *)
  let tel = Runenv.Telemetry.start env ~engine ~net () in
  (* Authorities that hold identical vote sets share one aggregation;
     the memo is run-local, one per shard so domains never share a
     hash table (aggregation is pure — the memo only dedups work). *)
  let agg_memos =
    Array.init (Sim.Engine.shard_count engine) (fun _ ->
        Dirdoc.Aggregate.Memo.create ())
  in
  let nodes =
    Array.init n (fun id ->
        {
          id;
          docs = Array.make n None;
          doc_sigs = Array.make n None;
          doc_deadline_passed = false;
          proposal_sent_view = -1;
          collector = Dissemination.Collector.create env.keyring ~n ~f;
          hotstuff = None;
          decided_vector = None;
          decided_view = None;
          fetch_timer = None;
          sig_round = Siground.create ~keyring:env.keyring ~node:id ~need;
        })
  in
  let send ~src ~dst ~label m = Sim.Net.send net ~src ~dst ~size:(msg_size m) ~label m in
  let broadcast ~src ~label m = Sim.Net.broadcast net ~src ~size:(msg_size m) ~label m in
  (* --- dissemination ---------------------------------------------------- *)
  let docs_held node =
    Array.fold_left (fun acc d -> match d with Some _ -> acc + 1 | None -> acc) 0 node.docs
  in
  let dissemination_ready node =
    let held = docs_held node in
    held = n || (node.doc_deadline_passed && held >= n - f)
  in
  let send_proposal_if_ready node ~view =
    if dissemination_ready node && node.proposal_sent_view < view then begin
      node.proposal_sent_view <- view;
      (* First proposal = enough documents collected; idempotent on the
         re-proposals of later views. *)
      Runenv.Telemetry.phase_end tel ~node:node.id "dissemination";
      let digests =
        Array.init n (fun j ->
            match (node.docs.(j), node.doc_sigs.(j)) with
            | Some doc, Some s -> Some (Dirdoc.Vote.digest doc, s)
            | _ -> None)
      in
      let proposal =
        Dissemination.make_proposal env.keyring ~proposer:node.id ~digests
      in
      let leader = A.leader ~n ~view in
      send ~src:node.id ~dst:leader ~label:lbl_proposal (Proposal proposal)
    end
  in
  (* --- aggregation ------------------------------------------------------ *)
  (* One lost Cons_sig broadcast must not strand a node below the
     signature majority forever (the chaos harness's shrunk repro:
     partition one link during aggregation, liveness gone).  Until the
     node has decided, periodically ask every peer for its signature;
     peers that have signed answer with a Cons_sig. *)
  let rec ensure_signatures node =
    if Siground.consensus node.sig_round <> None
       && Siground.decided_at node.sig_round = None
    then begin
      broadcast ~src:node.id ~label:lbl_sig_request Cons_sig_request;
      ignore
        (Sim.Engine.schedule_in engine ~after:params.fetch_retry (fun () ->
             ensure_signatures node))
    end
  in
  let try_finish node =
    match node.decided_vector with
    | None -> ()
    | Some value ->
        let missing =
          List.filter
            (fun j ->
              match (value.Dissemination.vector.(j), node.docs.(j)) with
              | Some d, Some doc -> not (Digest32.equal d (Dirdoc.Vote.digest doc))
              | Some _, None -> true
              | None, _ -> false)
            (List.init n Fun.id)
        in
        if missing = [] then begin
          (match node.fetch_timer with
          | Some h ->
              Sim.Engine.cancel engine h;
              node.fetch_timer <- None
          | None -> ());
          if Siground.consensus node.sig_round = None then begin
            let votes =
              List.filter_map
                (fun j ->
                  match value.Dissemination.vector.(j) with
                  | Some _ -> node.docs.(j)
                  | None -> None)
                (List.init n Fun.id)
            in
            let c =
              Dirdoc.Aggregate.consensus_memo
                ~memo:agg_memos.(Sim.Engine.current_shard engine)
                ~valid_after:env.valid_after ~votes
            in
            let signature = Siground.set_consensus node.sig_round ~now:(now ()) c in
            Runenv.Telemetry.phase_end tel ~node:node.id "aggregation";
            Runenv.Telemetry.phase_begin tel ~node:node.id "signature-exchange";
            if Siground.decided_at node.sig_round <> None then
              (* Own signature already suffices (tiny n). *)
              Runenv.Telemetry.phase_end tel ~node:node.id "signature-exchange";
            log ~node:node.id Sim.Trace.Notice
              "Aggregated %d votes into a consensus document; broadcasting signature."
              (List.length votes);
            broadcast ~src:node.id ~label:lbl_cons_sig
              (Cons_sig { digest = Dirdoc.Consensus.digest c; signature });
            ignore
              (Sim.Engine.schedule_in engine ~after:params.fetch_retry (fun () ->
                   ensure_signatures node))
          end
        end
  in
  let rec start_fetching node =
    match node.decided_vector with
    | None -> ()
    | Some value ->
        let missing =
          List.filter
            (fun j ->
              match (value.Dissemination.vector.(j), node.docs.(j)) with
              | Some _, None -> true
              | Some d, Some doc -> not (Digest32.equal d (Dirdoc.Vote.digest doc))
              | None, _ -> false)
            (List.init n Fun.id)
        in
        if missing <> [] then begin
          broadcast ~src:node.id ~label:lbl_fetch (Fetch { wanted = missing });
          node.fetch_timer <-
            Some
              (Sim.Engine.schedule_in engine ~after:params.fetch_retry (fun () ->
                   start_fetching node))
        end
        else try_finish node
  in
  (* --- document intake --------------------------------------------------- *)
  let accept_document node ~origin doc signature =
    if origin >= 0 && origin < n && node.docs.(origin) = None then begin
      let digest = Dirdoc.Vote.digest doc in
      let payload = Dissemination.doc_payload ~sender:origin (Some digest) in
      if signature.Signature.signer = origin
         && Signature.verify env.keyring signature payload
      then begin
        node.docs.(origin) <- Some doc;
        node.doc_sigs.(origin) <- Some signature;
        (match node.hotstuff with
        | Some hs ->
            send_proposal_if_ready node ~view:(A.current_view hs);
            (* A leader whose own vector was blocked may become ready. *)
            A.notify_ready hs
        | None -> ());
        try_finish node
      end
    end
  in
  (* --- hotstuff wiring --------------------------------------------------- *)
  let make_hotstuff node =
    let cb =
      {
        A.now;
        schedule = (fun after fn -> Sim.Engine.schedule_in engine ~after fn);
        cancel = (fun h -> Sim.Engine.cancel engine h);
        send =
          (fun ~dst m ->
            if dst = node.id then
              (* Local delivery without bandwidth cost. *)
              ignore
                (Sim.Engine.schedule engine ~at:(now ()) (fun () ->
                     match node.hotstuff with
                     | Some hs -> A.handle hs ~src:node.id m
                     | None -> ()))
            else send ~src:node.id ~dst ~label:lbl_agreement (Agreement m));
        validate = (fun v -> Dissemination.validate env.keyring ~n ~f v);
        value_digest = Dissemination.value_digest;
        proposal = (fun () -> Dissemination.Collector.build node.collector);
        decide =
          (fun ~view value ->
            if node.decided_vector = None then begin
              Runenv.Telemetry.phase_end tel ~node:node.id "agreement";
              Runenv.Telemetry.phase_begin tel ~node:node.id "aggregation"
            end;
            node.decided_vector <- Some value;
            node.decided_view <- Some view;
            log ~node:node.id Sim.Trace.Notice
              "Agreement reached in view %d on a vector with %d documents." view
              (Icps.non_bot value.Dissemination.vector);
            start_fetching node);
        on_view = (fun ~view -> send_proposal_if_ready node ~view);
        log =
          (fun text -> log ~node:node.id Sim.Trace.Info "hotstuff: %s" text);
      }
    in
    A.create ~keyring:env.keyring ~n ~id:node.id ~view_timeout:params.view_timeout cb
  in
  Array.iter (fun node -> node.hotstuff <- Some (make_hotstuff node)) nodes;
  (* --- network dispatch --------------------------------------------------- *)
  Sim.Net.set_handler net (fun ~dst ~src msg ->
      let node = nodes.(dst) in
      if Runenv.awake env dst ~now:(now ()) then
        match msg with
        | Document { doc; signature } ->
            accept_document node ~origin:doc.Dirdoc.Vote.authority doc signature
        | Fetch_reply { doc; signature } ->
            accept_document node ~origin:doc.Dirdoc.Vote.authority doc signature
        | Proposal p -> (
            Dissemination.Collector.add node.collector p;
            match node.hotstuff with
            | Some hs -> A.notify_ready hs
            | None -> ())
        | Agreement m -> (
            match node.hotstuff with
            | Some hs -> A.handle hs ~src m
            | None -> ())
        | Fetch { wanted } ->
            List.iter
              (fun j ->
                match (node.docs.(j), node.doc_sigs.(j)) with
                | Some doc, Some signature ->
                    send ~src:dst ~dst:src ~label:lbl_fetch_reply
                      (Fetch_reply { doc; signature })
                | _ -> ())
              wanted
        | Cons_sig { digest; signature } ->
            Siground.store node.sig_round ~now:(now ()) ~digest signature;
            if Siground.decided_at node.sig_round <> None then
              Runenv.Telemetry.phase_end tel ~node:dst "signature-exchange"
        | Cons_sig_request -> (
            match
              (Siground.consensus node.sig_round, Siground.my_signature node.sig_round)
            with
            | Some c, Some signature ->
                send ~src:dst ~dst:src ~label:lbl_cons_sig
                  (Cons_sig { digest = Dirdoc.Consensus.digest c; signature })
            | _ -> ()));
  (* --- start ------------------------------------------------------------- *)
  let start_node node =
    let id = node.id in
    Runenv.Telemetry.phase_begin tel ~node:id "dissemination";
    Runenv.Telemetry.phase_begin tel ~node:id "agreement";
    (match env.behaviors.(id) with
    | Runenv.Silent -> assert false (* never started; see below *)
    | Runenv.Honest | Runenv.Crashed _ ->
        let doc = env.votes.(id) in
        let signature =
          Dissemination.sign_document env.keyring ~sender:id
            (Dirdoc.Vote.digest doc)
        in
        node.docs.(id) <- Some doc;
        node.doc_sigs.(id) <- Some signature;
        broadcast ~src:id ~label:lbl_document (Document { doc; signature })
    | Runenv.Equivocating ->
        (* Conflicting documents to even/odd peers. *)
        let doc = env.votes.(id) in
        let relays = Array.to_list doc.Dirdoc.Vote.relays in
        let trimmed = match relays with [] -> [] | _ :: rest -> rest in
        let variant =
          Dirdoc.Vote.create ~authority:id
            ~authority_fingerprint:doc.Dirdoc.Vote.authority_fingerprint
            ~nickname:doc.Dirdoc.Vote.nickname
            ~published:doc.Dirdoc.Vote.published
            ~valid_after:doc.Dirdoc.Vote.valid_after ~relays:trimmed
        in
        node.docs.(id) <- Some doc;
        node.doc_sigs.(id) <-
          Some
            (Dissemination.sign_document env.keyring ~sender:id
               (Dirdoc.Vote.digest doc));
        for dst = 0 to n - 1 do
          if dst <> id then begin
            let d = if dst land 1 = 0 then doc else variant in
            let signature =
              Dissemination.sign_document env.keyring ~sender:id
                (Dirdoc.Vote.digest d)
            in
            send ~src:id ~dst ~label:lbl_document (Document { doc = d; signature })
          end
        done);
    ignore
      (Sim.Engine.schedule_in engine ~after:params.doc_timeout (fun () ->
           node.doc_deadline_passed <- true;
           match node.hotstuff with
           | Some hs ->
               send_proposal_if_ready node ~view:(A.current_view hs);
               A.notify_ready hs
           | None -> ()));
    match node.hotstuff with
    | Some hs -> A.start hs
    | None -> ()
  in
  Array.iter
    (fun node ->
      let id = node.id in
      ignore
        (Sim.Engine.schedule engine ~owner:id ~at:0. (fun () ->
             match env.behaviors.(id) with
             | Runenv.Silent -> ()
             | Runenv.Crashed { start; stop } when start <= 0. ->
                 (* Down from the first instant: the whole startup —
                    document broadcast, document deadline, agreement
                    engine — waits for recovery. *)
                 ignore
                   (Sim.Engine.schedule engine ~at:stop (fun () -> start_node node))
             | Runenv.Honest | Runenv.Equivocating | Runenv.Crashed _ ->
                 start_node node)))
    nodes;
  Sim.Engine.run ~until:env.horizon engine;
  let per_authority =
    Array.map
      (fun node ->
        let decided_at = Siground.decided_at node.sig_round in
        {
          Runenv.consensus = Siground.consensus node.sig_round;
          signatures = Siground.count node.sig_round;
          decided_at;
          (* No lock-step rounds: latency is simply time-to-decision. *)
          network_time = decided_at;
        })
      nodes
  in
  let obs = Runenv.Telemetry.finish tel ~engine ~net ~per_authority in
  let result =
    { Runenv.protocol = name; per_authority; stats = Sim.Net.stats net; trace; obs }
  in
  {
    result;
    vectors =
      Array.map
        (fun node ->
          match node.decided_vector with
          | Some v -> Array.copy v.Dissemination.vector
          | None -> [||])
        nodes;
    decided_views = Array.map (fun node -> node.decided_view) nodes;
  }

let run ?params env = (run_detailed ?params env).result
end

module Over_hotstuff = Make (Protocols.Hotstuff)
module Over_tendermint = Make (Protocols.Tendermint)
module Over_pbft = Make (Protocols.Pbft)

let run_detailed ?params env =
  let d = Over_hotstuff.run_detailed ?params env in
  (* The paper's protocol instance keeps the plain name. *)
  { d with result = { d.result with Runenv.protocol = name } }

let run ?params env = (run_detailed ?params env).result
