type kind =
  | Drop of { src : int; dst : int; prob : float }
  | Partition of { a : int; b : int }
  | Delay of { src : int; dst : int; max_extra : float }
  | Duplicate of { src : int; dst : int; prob : float }
  | Crash of { node : int }

type fault = { kind : kind; start : float; stop : float }

type plan = { seed : string; faults : fault list }

let any = -1

let empty = { seed = ""; faults = [] }

let fault_nodes f =
  let ends = function e when e = any -> [] | e -> [ e ] in
  match f.kind with
  | Drop { src; dst; _ } | Delay { src; dst; _ } | Duplicate { src; dst; _ } ->
      ends src @ ends dst
  | Partition { a; b } -> ends a @ ends b
  | Crash { node } -> ends node

let crash_nodes plan =
  List.filter_map
    (fun f -> match f.kind with Crash { node } -> Some node | _ -> None)
    plan.faults
  |> List.sort_uniq Int.compare

let clears_at plan =
  List.fold_left (fun acc f -> Float.max acc f.stop) 0. plan.faults

let validate ~n plan =
  let node e name =
    if e <> any && (e < 0 || e >= n) then
      invalid_arg (Printf.sprintf "Fault.validate: %s endpoint %d out of range" name e)
  in
  let prob p name =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Fault.validate: %s probability %g outside [0, 1]" name p)
  in
  List.iter
    (fun f ->
      if f.stop < f.start then
        invalid_arg "Fault.validate: fault window stops before it starts";
      match f.kind with
      | Drop { src; dst; prob = p } ->
          node src "drop"; node dst "drop"; prob p "drop"
      | Partition { a; b } -> node a "partition"; node b "partition"
      | Delay { src; dst; max_extra } ->
          node src "delay"; node dst "delay";
          if max_extra < 0. then invalid_arg "Fault.validate: negative delay"
      | Duplicate { src; dst; prob = p } ->
          node src "duplicate"; node dst "duplicate"; prob p "duplicate"
      | Crash { node = e } -> node e "crash")
    plan.faults

(* Same conventions as [Runenv.Spec.canonical]: lossless %h floats,
   length-prefixed strings, one tag character per fault kind. *)
let canonical plan =
  let buf = Buffer.create 128 in
  let f x = Buffer.add_string buf (Printf.sprintf "%h;" x) in
  let i x = Buffer.add_string buf (Printf.sprintf "%d;" x) in
  Buffer.add_string buf (string_of_int (String.length plan.seed));
  Buffer.add_char buf ':';
  Buffer.add_string buf plan.seed;
  Buffer.add_char buf ';';
  i (List.length plan.faults);
  List.iter
    (fun flt ->
      (match flt.kind with
      | Drop { src; dst; prob } -> Buffer.add_char buf 'l'; i src; i dst; f prob
      | Partition { a; b } -> Buffer.add_char buf 'p'; i a; i b
      | Delay { src; dst; max_extra } ->
          Buffer.add_char buf 'j'; i src; i dst; f max_extra
      | Duplicate { src; dst; prob } ->
          Buffer.add_char buf 'd'; i src; i dst; f prob
      | Crash { node } -> Buffer.add_char buf 'c'; i node);
      f flt.start;
      f flt.stop)
    plan.faults;
  Buffer.contents buf

let digest plan = Crypto.Digest32.hex (Crypto.Digest32.of_string (canonical plan))

let pp_endpoint ppf e =
  if e = any then Format.pp_print_char ppf '*' else Format.pp_print_int ppf e

let pp_fault ppf flt =
  let w ppf () = Format.fprintf ppf "%g..%g" flt.start flt.stop in
  match flt.kind with
  | Drop { src; dst; prob } ->
      Format.fprintf ppf "drop[%a>%a,%a,p=%.2f]" pp_endpoint src pp_endpoint dst w () prob
  | Partition { a; b } ->
      Format.fprintf ppf "partition[%a<>%a,%a]" pp_endpoint a pp_endpoint b w ()
  | Delay { src; dst; max_extra } ->
      Format.fprintf ppf "delay[%a>%a,%a,+%gs]" pp_endpoint src pp_endpoint dst w ()
        max_extra
  | Duplicate { src; dst; prob } ->
      Format.fprintf ppf "dup[%a>%a,%a,p=%.2f]" pp_endpoint src pp_endpoint dst w () prob
  | Crash { node } -> Format.fprintf ppf "crash[%d,%a]" node w ()

let pp ppf plan =
  if plan.faults = [] then Format.pp_print_string ppf "(no faults)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
      pp_fault ppf plan.faults

(* --- runtime injector ---------------------------------------------------- *)

(* Randomness is keyed per message, not drawn from one global stream:
   message number [k] on link (src, dst) gets its own SplitMix64 stream
   seeded by chaining the mixer over (plan seed, src, dst, k).  The
   draws a message sees then depend only on its position in ITS link's
   send sequence — which is the sender's program order — never on how
   sends on different links interleave globally.  That is what lets the
   sharded engine replay a plan bit-identically at any shard count:
   per-node event order is sharding-invariant, global order is not. *)
type t = {
  plan : plan;
  base : int64; (* plan-keyed seed for per-message streams *)
  has_prob : bool; (* any fault kind that consumes draws? *)
  mutable n : int; (* bound node count; 0 until [bind] *)
  mutable counters : int array; (* n*n per-(src,dst) message counters *)
  mutable fallback : int; (* message counter when unbound *)
}

let instantiate plan =
  let has_prob =
    List.exists
      (fun f ->
        match f.kind with
        | Drop _ | Delay _ | Duplicate _ -> true
        | Partition _ | Crash _ -> false)
      plan.faults
  in
  {
    plan;
    base = Rng.seed_of_string ("fault:" ^ digest plan);
    has_prob;
    n = 0;
    counters = [||];
    fallback = 0;
  }

let bind t ~n =
  if n <= 0 then invalid_arg "Fault.bind: n must be positive";
  t.n <- n;
  t.counters <- Array.make (n * n) 0;
  t.fallback <- 0

let plan t = t.plan

type decision = { drop : bool; extra_delay : float; duplicate : bool }

let pass = { drop = false; extra_delay = 0.; duplicate = false }

let matches pat v = pat = any || pat = v

let active flt ~now = now >= flt.start && now < flt.stop

let message_stream t ~src ~dst =
  let k =
    if t.n > 0 then begin
      let i = (src * t.n) + dst in
      let c = t.counters.(i) in
      t.counters.(i) <- c + 1;
      c
    end
    else begin
      (* Unbound injector (plain [decide] callers outside a [Net]):
         fall back to a global message counter, deterministic in call
         order. *)
      let c = t.fallback in
      t.fallback <- c + 1;
      c
    end
  in
  let s = Rng.mix64 (Int64.add t.base (Int64.of_int (src + 1))) in
  let s = Rng.mix64 (Int64.add s (Int64.of_int (dst + 1))) in
  Rng.create (Rng.mix64 (Int64.add s (Int64.of_int k)))

(* Every matching probabilistic fault consumes its draw, even when the
   message is already doomed: the draw sequence within a message then
   depends only on the plan, never on which earlier fault fired first.
   The per-link counter advances on every call whether or not a fault
   is currently active, so a message's stream depends only on its link
   sequence number. *)
let decide t ~now ~src ~dst =
  let rng = if t.has_prob then Some (message_stream t ~src ~dst) else None in
  let draw bound =
    match rng with Some r -> Rng.float r bound | None -> assert false
  in
  let drop = ref false and extra = ref 0. and dup = ref false in
  List.iter
    (fun flt ->
      if active flt ~now then
        match flt.kind with
        | Drop { src = s; dst = d; prob } ->
            if matches s src && matches d dst && draw 1. < prob then drop := true
        | Partition { a; b } ->
            if (a = src && b = dst) || (a = dst && b = src) then drop := true
        | Delay { src = s; dst = d; max_extra } ->
            if matches s src && matches d dst then extra := !extra +. draw max_extra
        | Duplicate { src = s; dst = d; prob } ->
            if matches s src && matches d dst && draw 1. < prob then dup := true
        | Crash _ -> ())
    t.plan.faults;
  if (not !drop) && !extra = 0. && not !dup then pass
  else { drop = !drop; extra_delay = !extra; duplicate = !dup }

let crashed t ~node ~now =
  List.exists
    (fun flt ->
      match flt.kind with
      | Crash { node = e } -> e = node && active flt ~now
      | _ -> false)
    t.plan.faults
