examples/attack_economics.mli:
