lib/attack/monitor.mli: Format Tor_sim
