(** Attack planning: turn a measured bandwidth requirement into a
    stressor budget and a sustained-outage cost.

    Ties the Figure 7 sweep to the Section 4.3 cost table: given the
    minimum bandwidth the directory protocol needs at the current relay
    count, the attacker floods each target with the rest of its link
    and repeats the attack every hour.  Tor clients reject consensus
    documents older than 3 h, so a sustained attack takes the whole
    network down after three failed runs. *)

type plan = {
  n_relays : int;
  required_mbit_per_sec : float;  (** protocol's need per authority *)
  flood_mbit_per_sec : float;     (** attack traffic per target *)
  instance : Cost.instance;
  usd_per_month : float;
}

val make :
  ?link_mbit_per_sec:float ->
  ?targets:int ->
  ?seconds:float ->
  n_relays:int ->
  required_mbit_per_sec:float ->
  unit ->
  plan
(** Raises [Invalid_argument] if the requirement exceeds the link
    (the protocol could not run at all — no attack needed). *)

val hours_to_network_down : float
(** 3.0 — consensus documents expire 3 h after generation; consecutive
    failures beyond this halt the network. *)

val pp : Format.formatter -> plan -> unit
