(* Domain-local shard index.  The sharded engine runs shard [d] on
   domain [d]; modules that need to know "which shard am I executing
   on" (Engine's clock, Trace's lanes, Net's pools) read it from
   domain-local storage instead of threading a parameter through every
   callback.  The main domain — and every domain that never joins a
   sharded run, e.g. [Exec.Pool] workers — reads the default [0], which
   is always correct for single-shard engines. *)

let key = Domain.DLS.new_key (fun () -> ref 0)
let current () = !(Domain.DLS.get key)
let set d = Domain.DLS.get key := d
