lib/dirdoc/consensus.ml: Array Buffer Crypto Exit_policy Flags List Option Printf Result String Timefmt Version
