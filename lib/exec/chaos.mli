(** Seeded chaos harness: sampled fault plans, invariant checks,
    counterexample shrinking.

    From one string seed the harness derives [plans] random chaos
    cases — a {!Tor_sim.Fault.plan} (loss windows, partitions, jitter,
    duplication, crashes) plus a behavior assignment (silent,
    equivocating, and crash-recovering authorities) — runs all three
    protocols through each case on the domain {!Pool}, and checks two
    invariants of the paper's partial-synchrony protocol:

    {ul
    {- {e safety}: {!Protocols.Runenv.agreement_holds} must hold
       whenever the number of faulty nodes (silent, equivocating, or
       crash-faulted) is at most ⌊(n−1)/3⌋;}
    {- {e liveness}: when every fault window clears before the
       horizon and at most ⌊(n−1)/3⌋ nodes are permanently faulty,
       a majority must decide within [liveness_bound] seconds of the
       last fault clearing.}}

    Sampling is keyed off [(seed, case index)] alone and the runs
    replay deterministically, so verdicts are identical for every
    [~jobs] value.  When an invariant fails, the case is greedily
    shrunk — faults dropped one at a time, misbehaviors reverted to
    honest one at a time, while the failure still reproduces — and
    reported as the minimal spec plus its digest: a one-line repro. *)

type config = {
  seed : string;
  plans : int;                     (** chaos cases to sample *)
  n : int;                         (** authorities *)
  n_relays : int;
  bandwidth_bits_per_sec : float;
  horizon : float;
  liveness_bound : float;
      (** decide within this many seconds of the last fault clearing *)
  defense : Defense.Plan.t option;
      (** defense toolbox applied to every case ([None] = undefended);
          flows into {!base_spec} so it participates in every case's
          spec digest *)
}

val default_config : config
(** seed ["chaos"], 20 plans, 9 authorities, 1000 relays, 250 Mbit/s,
    7200 s horizon, 900 s liveness bound, no defense. *)

val fault_bound : n:int -> int
(** ⌊(n−1)/3⌋ — the BFT tolerance the invariants are scoped to. *)

val base_spec : config -> Protocols.Runenv.Spec.t
(** The run spec every chaos case of this configuration is a variation
    of: the config's population/bandwidth/horizon with no behaviors
    and no fault plan — the campaign base the harness (and the bench)
    hand to {!Campaign.map}. *)

val sample_spec : config -> index:int -> Protocols.Runenv.Spec.t
(** The [index]-th chaos case of a configuration: a run spec whose
    [behaviors] and [fault_plan] come from the case's own RNG stream.
    Pure: depends only on [(config, index)]. *)

(** Outcome of one protocol on one chaos case. *)
type protocol_report = {
  protocol : Job.protocol;
  success : bool;                  (** {!Protocols.Runenv.success} *)
  agreement : bool;                (** {!Protocols.Runenv.agreement_holds} *)
  decided_at_latest : float option;
  dropped : int;                   (** messages lost to faults/expiry *)
  rejected : int;
      (** messages turned away by a defense (admission over-budget,
          rotated-out endpoint); accounted separately from [dropped] *)
}

type verdict = {
  index : int;
  spec_digest : string;            (** {!Protocols.Runenv.Spec.digest} *)
  plan : Tor_sim.Fault.plan;
  behaviors : Protocols.Runenv.behavior array option;
  node_faults : int;               (** distinct faulty/equivocating nodes *)
  permanent_faults : int;          (** silent + equivocating nodes *)
  faults_clear_at : float;
  reports : protocol_report list;  (** current, synchronous, ours *)
  safety_applicable : bool;
  safety_ok : bool;                (** [true] when not applicable *)
  liveness_applicable : bool;
  liveness_ok : bool;              (** [true] when not applicable *)
  stalled_phase : string option;
      (** liveness failures only: the phase the stuck authorities were
          inside, from a telemetry replay of the same case
          ({!Protocols.Runenv.stalled_phase}); ["decided-late"] when
          every correct authority decided but past the bound *)
  shrunk : Protocols.Runenv.Spec.t option;
      (** minimal failing spec, present iff an invariant failed *)
}

type report = {
  config : config;
  verdicts : verdict list;         (** one per case, in index order *)
  safety_violations : int;
  liveness_violations : int;
}

val check :
  ?config:config ->
  run_protocol:(Job.protocol -> Protocols.Runenv.t -> Protocols.Runenv.report) ->
  jobs:int ->
  unit ->
  report
(** Run the harness.  [run_protocol] is the execution path (the CLI
    passes [Torpartial.Experiments.run]; injected because [exec] sits
    below the protocol drivers in the library graph).  Verdicts are
    independent of [jobs]. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** One line per case; failing cases gain indented shrunk-repro
    lines. *)
