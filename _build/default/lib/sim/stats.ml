type t = {
  bytes_sent : int array;
  bytes_received : int array;
  messages_sent : int array;
  mutable dropped : int;
  by_label : (string, int) Hashtbl.t;
}

let create ~n =
  {
    bytes_sent = Array.make n 0;
    bytes_received = Array.make n 0;
    messages_sent = Array.make n 0;
    dropped = 0;
    by_label = Hashtbl.create 16;
  }

let n t = Array.length t.bytes_sent

let record_sent t ~node ~bytes ?label () =
  t.bytes_sent.(node) <- t.bytes_sent.(node) + bytes;
  t.messages_sent.(node) <- t.messages_sent.(node) + 1;
  match label with
  | None -> ()
  | Some l ->
      let current = Option.value (Hashtbl.find_opt t.by_label l) ~default:0 in
      Hashtbl.replace t.by_label l (current + bytes)

let record_received t ~node ~bytes =
  t.bytes_received.(node) <- t.bytes_received.(node) + bytes

let record_dropped t = t.dropped <- t.dropped + 1

let bytes_sent t node = t.bytes_sent.(node)
let bytes_received t node = t.bytes_received.(node)
let messages_sent t node = t.messages_sent.(node)
let dropped t = t.dropped
let total_bytes_sent t = Array.fold_left ( + ) 0 t.bytes_sent
let label_bytes t l = Option.value (Hashtbl.find_opt t.by_label l) ~default:0

let labels t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_label []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Array.fill t.bytes_sent 0 (n t) 0;
  Array.fill t.bytes_received 0 (n t) 0;
  Array.fill t.messages_sent 0 (n t) 0;
  t.dropped <- 0;
  Hashtbl.reset t.by_label
