(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §4 for the experiment index), plus
   Bechamel micro-benchmarks of the core operations and a macro
   benchmark of one full protocol run.

     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- fig10             # one target
     dune exec bench/main.exe -- --jobs 4 fig10    # sweep on 4 domains
     dune exec bench/main.exe -- --json out.json micro macro
                                                   # machine-readable results
     dune exec bench/main.exe -- --quota 0.05 micro  # faster, noisier micro *)

module E = Torpartial.Experiments

(* Worker-domain count for the sweep targets (fig7/fig10/fig11).
   Outputs are identical for every setting; only wall time changes. *)
let jobs = ref 1

(* Where to write the JSON report; [None] means stdout only. *)
let json_path : string option ref = ref None

(* Bechamel time quota per micro test, in seconds. *)
let quota = ref 0.5

(* Provenance stamped into the JSON [meta] section.  Passed in from the
   outside ([--meta-commit]/[--meta-date]) so the bench binary itself
   stays free of subprocess spawns and wall-clock reads. *)
let meta_commit = ref "unknown"
let meta_date = ref "unknown"

(* One JSON value type for every report section, so integer sections
   (dropped-message counts) and float sections flow through the same
   emitter instead of each ref carrying its own formatting. *)
type jv = I of int | F of float | S of string

(* Results accumulated for the JSON report. *)
let micro_results : (string * float) list ref = ref []    (* ns/run *)
let macro_results : (string * float) list ref = ref []    (* wall s *)
let alloc_results : (string * float) list ref = ref []    (* MB allocated per run *)
let drop_results : (string * int) list ref = ref []       (* messages dropped *)
let obs_results : (string * jv) list ref = ref []         (* telemetry pass *)
let dist_wall : (string * float) list ref = ref []        (* wall s *)
let dist_metrics : (string * float) list ref = ref []     (* simulated metrics *)
let campaign_results : (string * float) list ref = ref [] (* plans/s + speedup *)
let defense_results : (string * int) list ref = ref []    (* plans broken *)
let target_times : (string * float) list ref = ref []     (* wall s *)

let header title =
  Printf.printf "\n================ %s ================\n%!" title

let pp_latency = function
  | Some t -> Printf.sprintf "%8.1f s" t
  | None -> "    fail  "

(* --- figures ------------------------------------------------------------ *)

let fig1 () =
  header "Figure 1: authority log while 5 authorities are under DDoS";
  print_endline (E.fig1 ());
  Printf.printf "\n(Compare with the paper's Figure 1: the authority misses votes from\n";
  Printf.printf "5 authorities, cannot fetch them, and fails with '4 of 5'.)\n"

let fig6 () =
  header "Figure 6: number of Tor relays over time (synthetic census)";
  let monthly, mean = E.fig6 () in
  List.iter (fun (month, count) -> Printf.printf "%s  %8.1f\n" month count) monthly;
  Printf.printf "mean over window: %.2f (paper: 7141.79)\n" mean

let fig7 () =
  header "Figure 7: bandwidth required by the current protocol under attack";
  Printf.printf "%8s  %22s  %s\n" "relays" "required (Mbit/s)" "DDoS residual (Mbit/s)";
  List.iter
    (fun (r, mbit) ->
      Printf.printf "%8d  %22.1f  %.1f\n" r mbit
        (Attack.Ddos.ddos_residual_bits_per_sec /. 1e6))
    (E.fig7 ~jobs:!jobs ());
  Printf.printf
    "(paper: linear in relay count, ~10 Mbit/s at 8,000 relays; the DDoS\n\
    \ residual of 0.5 Mbit/s is far below the requirement, so the attack wins)\n"

let fig10 () =
  header "Figure 10: latency of consensus generation";
  let cells = E.fig10 ~jobs:!jobs () in
  let bandwidths = E.default_bandwidths in
  let relay_counts = E.default_relay_counts in
  List.iter
    (fun bw ->
      Printf.printf "\n-- bandwidth %.1f Mbit/s --\n%8s" bw "relays";
      List.iter (fun p -> Printf.printf "  %12s" (E.protocol_name p))
        [ E.Current; E.Synchronous; E.Ours ];
      print_newline ();
      List.iter
        (fun r ->
          Printf.printf "%8d" r;
          List.iter
            (fun p ->
              let cell =
                List.find
                  (fun (c : E.fig10_cell) ->
                    c.protocol = p && c.bandwidth_mbit = bw && c.n_relays = r)
                  cells
              in
              Printf.printf "  %12s" (pp_latency cell.latency))
            [ E.Current; E.Synchronous; E.Ours ];
          print_newline ())
        relay_counts)
    bandwidths;
  Printf.printf
    "\n(paper: synchronous fails above 2,000 relays at 10 Mbit/s; current fails\n\
    \ between 9,000 and 10,000; both fail at 1 and 0.5 Mbit/s; ours always\n\
    \ completes, taking ~15 min at 0.5 Mbit/s with 8,000 relays)\n"

let fig11 () =
  header "Figure 11: recovery from a 5-minute knockout of 5 authorities";
  List.iter
    (fun (row : E.fig11_row) ->
      Printf.printf "%-12s %s" (E.protocol_name row.protocol) (pp_latency row.total_latency);
      (match row.total_latency with
      | Some t when t < E.baseline_fallback_seconds ->
          Printf.printf "  (%.1f s after the attack ends)" (t -. 300.)
      | Some _ -> Printf.printf "  (failed run + 30-minute fallback rerun)"
      | None -> ());
      print_newline ())
    (E.fig11 ~jobs:!jobs ());
  Printf.printf "(paper: ours ~10 s after the attack ends; baselines 2100 s)\n"

(* --- tables ------------------------------------------------------------- *)

let table1 () =
  header "Table 1: measured communication (bytes on the wire)";
  let rows = E.table1 () in
  Printf.printf "%-12s %4s %8s %14s  breakdown\n" "protocol" "n" "relays" "total";
  List.iter
    (fun (row : E.table1_row) ->
      Printf.printf "%-12s %4d %8d %14d  %s\n"
        (E.protocol_name row.protocol)
        row.n row.n_relays row.total_bytes
        (String.concat ", "
           (List.map (fun (l, b) -> Printf.sprintf "%s=%d" l b) row.bytes_by_label)))
    rows;
  Printf.printf "\nmeasured exponent of total bytes vs n (power-law fit at fixed d):\n";
  List.iter
    (fun (p, (fit : Tor_sim.Summary.fit)) ->
      Printf.printf "  %-12s n^%.2f  (R^2 = %.3f)\n" (E.protocol_name p) fit.slope
        fit.r_squared)
    (E.table1_fits rows);
  Printf.printf
    "\nasymptotics (paper Table 1):\n\
    \  current      O(n^2 d + n^2 k)   bounded synchrony, insecure\n\
    \  synchronous  O(n^3 d + n^4 k)   bounded synchrony, interactive consistency\n\
    \  ours         O(n^2 d + n^4 k)   partial synchrony, IC under partial synchrony\n\
     (d dominates at these sizes, so current/ours fit ~n^2 and synchronous ~n^3)\n"

let table2 () =
  header "Table 2: round complexity of the sub-protocols";
  let rows, measured = E.table2 () in
  let total = List.fold_left (fun acc (r : E.table2_row) -> acc + r.rounds) 0 rows in
  List.iter
    (fun (r : E.table2_row) -> Printf.printf "%-36s %d\n" r.sub_protocol r.rounds)
    rows;
  Printf.printf "%-36s %d\n" "total" total;
  Printf.printf
    "empirical: good-case decision time / one-way latency = %.1f rounds\n\
     (aggregation's fetch round is skipped in the good case, so the\n\
    \ measured figure sits slightly below the worst-case total)\n"
    measured

let cost () =
  header "Section 4.3: attack cost (Jansen et al. stressor pricing)";
  List.iter (fun (name, value) -> Printf.printf "%-34s %10.3f\n" name value) (E.cost_rows ());
  Printf.printf "(paper: $0.074 per broken run, $53.28 per month)\n"

(* --- extensions beyond the paper's figures --------------------------------- *)

let outage () =
  header "Outage timeline: 'five minutes of DDoS brings down Tor' end-to-end";
  let module O = Torpartial.Outage in
  let show (t : O.timeline) =
    Printf.printf "\n%s under %s:\n"
      (E.protocol_name t.O.protocol)
      (match t.O.policy with O.No_attack -> "no attack" | O.Hourly_flood -> "hourly 5-minute flood");
    List.iter
      (fun (h : O.hour) ->
        Printf.printf "  hour %2d: consensus %-9s client %s\n" h.O.index
          (if h.O.consensus_produced then "produced" else "FAILED")
          (match h.O.client_status with
          | Some Torclient.Directory.Fresh -> "fresh"
          | Some Torclient.Directory.Stale -> "stale"
          | Some Torclient.Directory.Expired -> "EXPIRED - network down"
          | None -> "bootstrapping"))
      t.O.hours;
    Printf.printf "  dark hours: %d/%d   attacker spend: $%.3f\n" t.O.dark_hours
      (List.length t.O.hours) t.O.attacker_usd;
    match O.first_dark_hour t with
    | Some h -> Printf.printf "  clients lose service at hour %d\n" h
    | None -> Printf.printf "  clients never lose service\n"
  in
  show (O.run ~hours:8 ~protocol:E.Current ~policy:O.Hourly_flood ());
  show (O.run ~hours:8 ~protocol:E.Ours ~policy:O.Hourly_flood ());
  Printf.printf
    "\n(paper: consensus documents expire 3 h after generation, so three failed\n\
    \ hourly runs take the whole network down; the mitigation keeps every hour\n\
    \ fresh at the same attacker spend)\n"

let ablation () =
  header "Ablations: design-choice sweeps and the naive-retry strawman";
  Printf.printf "\nHotStuff pacemaker timeout vs recovery after a 300 s knockout:\n";
  List.iter
    (fun (timeout, recovery) ->
      Printf.printf "  view_timeout %5.1f s -> recovery %s\n" timeout
        (match recovery with Some t -> Printf.sprintf "%.1f s" t | None -> "fail"))
    (E.recovery_vs_view_timeout ());
  Printf.printf "\nDissemination wait (doc_timeout) vs latency with 2 silent authorities:\n";
  List.iter
    (fun (timeout, latency) ->
      Printf.printf "  doc_timeout %5.1f s -> latency %s\n" timeout
        (match latency with Some t -> Printf.sprintf "%.1f s" t | None -> "fail"))
    (E.latency_vs_doc_timeout ());
  Printf.printf "\nNaive retry (paper 2.2 strawman) under a signature-round split attack:\n";
  let module NR = Protocols.Naive_retry in
  let env =
    Protocols.Runenv.of_spec
      { Protocols.Runenv.Spec.default with
        seed = "naive-bench";
        n_relays = 1000;
        attacks = NR.split_attack ();
      }
  in
  let res = NR.run env in
  Printf.printf "  agreement: %b  distinct majority-signed documents: %d\n"
    res.NR.agreement
    (List.length res.NR.majority_signed_documents);
  Array.iteri
    (fun i o ->
      match o with
      | Some (k, d) ->
          Printf.printf "  authority %d adopted iteration %d (digest %s)\n" i k
            (Crypto.Digest32.short_hex (Dirdoc.Consensus.digest d))
      | None -> Printf.printf "  authority %d adopted nothing\n" i)
    res.NR.outputs;
  Printf.printf
    "  (two documents with majority signatures for the same hour: the safety\n\
    \   violation that motivates a view-based agreement layer)\n";
  Printf.printf "\nAgreement-engine pluggability (paper 5.2.2): HotStuff vs Tendermint:\n";
  List.iter
    (fun (row : E.engine_row) ->
      Printf.printf "  %-10s %-9s latency %-10s agreement traffic %7.1f kB\n" row.engine
        row.scenario
        (match row.engine_latency with Some t -> Printf.sprintf "%.1f s" t | None -> "fail")
        (float_of_int row.agreement_bytes /. 1e3))
    (E.agreement_engines ());
  Printf.printf
    "  (same dissemination/aggregation; the all-to-all vote engines cost ~6x\n\
    \   the agreement bytes of HotStuff's leader-relayed votes)\n";
  Printf.printf "\nConsensus-diff savings over hourly relay churn (consdiff):\n";
  List.iter
    (fun (hour, saving) ->
      Printf.printf "  hour %d -> diff saves %.1f%% of the full download\n" hour
        (100. *. saving))
    (E.consdiff_savings ());
  Printf.printf "\nConsensus-health monitor (Table 1's deployed mitigation) on two runs:\n";
  let attacked =
    Protocols.Runenv.of_spec
      { Protocols.Runenv.Spec.default with
        seed = "monitor-bench";
        n_relays = 8000;
        attacks = Attack.Ddos.bandwidth_attack ~n:9 ();
      }
  in
  let healthy =
    Protocols.Runenv.of_spec
      { Protocols.Runenv.Spec.default with seed = "monitor-bench"; n_relays = 1000 }
  in
  let verdict env2 =
    (Attack.Monitor.analyze (Protocols.Current_v3.run env2).Protocols.Runenv.trace)
      .Attack.Monitor.verdict
  in
  Format.printf "  under attack: %a@." Attack.Monitor.pp_verdict (verdict attacked);
  Format.printf "  healthy:      %a@." Attack.Monitor.pp_verdict (verdict healthy)

(* --- micro-benchmarks ----------------------------------------------------- *)

let micro () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let keyring = Crypto.Keyring.create ~n:9 () in
  let rng = Tor_sim.Rng.of_string_seed "bench" in
  let votes =
    Dirdoc.Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:1000
      ~valid_after:0. ()
  in
  let vote_list = Array.to_list votes in
  let payload_1k = String.make 1024 'x' in
  let payload_64k = String.make 65536 'x' in
  let serialized = Dirdoc.Vote.serialize votes.(0) in
  let relays = Array.to_list votes.(0).Dirdoc.Vote.relays in
  (* Broadcast churn: 9 authorities all-to-all through the pooled
     event/flight machinery, with a rate window on every NIC so egress
     reservations cross breakpoints.  One persistent network; each run
     drains 72 broadcast deliveries through the trampoline. *)
  let churn_net =
    let engine = Tor_sim.Engine.create () in
    let topology = Tor_sim.Topology.uniform ~n:9 ~latency:0.01 in
    let net = Tor_sim.Net.create ~engine ~topology ~bits_per_sec:250e6 () in
    Tor_sim.Net.set_handler net (fun ~dst:_ ~src:_ () -> ());
    for node = 0 to 8 do
      Tor_sim.Net.limit_node net ~node ~start:1. ~stop:2. ~bits_per_sec:10e6
    done;
    net
  in
  let tests =
    Test.make_grouped ~name:"micro"
      [
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () ->
            Crypto.Sha256.digest_string payload_1k));
        Test.make ~name:"sha256-64KiB" (Staged.stage (fun () ->
            Crypto.Sha256.digest_string payload_64k));
        Test.make ~name:"vote-digest-1k-relays" (Staged.stage (fun () ->
            Dirdoc.Vote.create ~authority:0
              ~authority_fingerprint:(Crypto.Keyring.fingerprint keyring 0)
              ~nickname:"moria1" ~published:0. ~valid_after:3600. ~relays));
        Test.make ~name:"aggregate-9-votes-1k-relays" (Staged.stage (fun () ->
            Dirdoc.Aggregate.consensus ~valid_after:3600. ~votes:vote_list));
        Test.make ~name:"vote-parse-1k-relays" (Staged.stage (fun () ->
            Dirdoc.Vote.parse serialized));
        Test.make ~name:"signature-sign+verify" (Staged.stage (fun () ->
            let s = Crypto.Signature.sign keyring ~signer:0 payload_1k in
            assert (Crypto.Signature.verify keyring s payload_1k)));
        Test.make ~name:"net-broadcast-churn" (Staged.stage (fun () ->
            for src = 0 to 8 do
              Tor_sim.Net.broadcast churn_net ~src ~size:600 ()
            done;
            Tor_sim.Engine.run (Tor_sim.Net.engine churn_net)));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second !quota) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> estimates := (name, est) :: !estimates
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results;
  let estimates =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !estimates
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-40s %12.0f ns/run\n" name est)
    estimates;
  micro_results := estimates

(* --- macro benchmark ------------------------------------------------------- *)

(* Full end-to-end protocol runs, timed wall-clock and measured for
   allocation ([Gc.allocated_bytes] across the run, reported as MB).
   Exercises the whole hot path at once: event scheduling, NIC
   reservations, vote digests, HMAC signatures, and aggregation. *)
let macro_run name ~env ~protocol =
  (* Keys carry the engine shard count (e.g. [@4d]) so the regression
     gate always compares a configuration with itself: on a small CI
     host a flat scaling curve is expected, never a failure. *)
  let name = Printf.sprintf "%s@%dd" name (Protocols.Runenv.effective_shards env) in
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  let report = E.run protocol env in
  let alloc_mb = (Gc.allocated_bytes () -. a0) /. 1e6 in
  let wall = Unix.gettimeofday () -. t0 in
  let stats = report.Protocols.Runenv.result.Protocols.Runenv.stats in
  Printf.printf "%-28s %8.3f s wall  %8.1f MB alloc  (success: %b, latency: %s)\n"
    name wall alloc_mb report.Protocols.Runenv.success
    (match report.Protocols.Runenv.success_latency with
    | Some t -> Printf.sprintf "%.1f s simulated" t
    | None -> "n/a");
  (match Tor_sim.Stats.dropped_labels stats with
  | [] -> ()
  | by_label ->
      Printf.printf "%-28s dropped: %s\n" ""
        (String.concat ", "
           (List.map (fun (l, c) -> Printf.sprintf "%s=%d" l c) by_label)));
  macro_results := !macro_results @ [ (name, wall) ];
  alloc_results := !alloc_results @ [ (name, alloc_mb) ];
  drop_results := !drop_results @ [ (name, Tor_sim.Stats.dropped stats) ]

let macro () =
  header "Macro benchmarks: full protocol runs (wall clock + allocation)";
  macro_results := [];
  alloc_results := [];
  drop_results := [];
  obs_results := [];
  let spec seed n_relays = { Protocols.Runenv.Spec.default with seed; n_relays } in
  (* Figure 10's largest completing configuration. *)
  macro_run "e2e-ours-8k-relays" ~protocol:E.Ours
    ~env:(Protocols.Runenv.of_spec (spec "macro-bench" 8000));
  (* One step beyond: the relay count where the current protocol starts
     failing in the paper. *)
  macro_run "e2e-ours-10k-relays" ~protocol:E.Ours
    ~env:(Protocols.Runenv.of_spec (spec "macro-bench" 10_000));
  (* The paper's headline scenario: the current v3 protocol with five
     authorities knocked out by DDoS.  The flood stretches the NIC rate
     schedules and forces the retry storm — the worst case for the
     event core. *)
  macro_run "e2e-current-8k-ddos" ~protocol:E.Current
    ~env:
      (Protocols.Runenv.of_spec
         {
           (spec "macro-bench" 8000) with
           attacks = Attack.Ddos.bandwidth_attack ~n:9 ();
         });
  (* Multi-domain scaling curve: the same 32k-relay run over 1, 2, 4
     and 8 engine shards.  Results are bit-identical at every width
     (the tests pin it); the wall times show whatever speedup the host
     's cores allow — on a single-core runner the curve is flat and
     that is the honest number. *)
  List.iter
    (fun shards ->
      macro_run "e2e-ours-32k-relays" ~protocol:E.Ours
        ~env:
          (Protocols.Runenv.of_spec { (spec "macro-bench" 32_000) with shards }))
    [ 1; 2; 4; 8 ];
  (* Telemetry pass over the same scaling curve, deliberately separate
     from the timed runs above so the committed macro numbers stay
     telemetry-free (the 2x regression gate is the zero-cost-when-off
     proof).  This pass reports where each shard's wall time goes —
     busy executing events vs waiting at the round barrier — plus the
     delivery-latency percentiles from the sequential run. *)
  Printf.printf "\ntelemetry pass (untimed): per-shard busy vs barrier wait\n";
  List.iter
    (fun shards ->
      let env =
        Protocols.Runenv.of_spec { (spec "macro-bench" 32_000) with shards }
      in
      let env = { env with Protocols.Runenv.telemetry = true } in
      let name =
        Printf.sprintf "e2e-ours-32k-relays@%dd"
          (Protocols.Runenv.effective_shards env)
      in
      let report = E.run E.Ours env in
      match Protocols.Runenv.report_obs report with
      | None -> ()
      | Some o ->
          List.iter
            (fun (s : Obs.Profiler.shard) ->
              let total = s.Obs.Profiler.busy_s +. s.Obs.Profiler.wait_s in
              Printf.printf
                "%-28s shard %d: busy %7.3f s  wait %7.3f s  (%4.1f%% busy)  \
                 %d rounds  %d barriers\n"
                name s.Obs.Profiler.shard s.Obs.Profiler.busy_s
                s.Obs.Profiler.wait_s
                (if total > 0. then 100. *. s.Obs.Profiler.busy_s /. total
                 else 100.)
                s.Obs.Profiler.rounds s.Obs.Profiler.barriers;
              obs_results :=
                !obs_results
                @ [
                    ( Printf.sprintf "%s/shard%d-busy_s" name s.Obs.Profiler.shard,
                      F s.Obs.Profiler.busy_s );
                    ( Printf.sprintf "%s/shard%d-wait_s" name s.Obs.Profiler.shard,
                      F s.Obs.Profiler.wait_s );
                    ( Printf.sprintf "%s/shard%d-rounds" name s.Obs.Profiler.shard,
                      I s.Obs.Profiler.rounds );
                    ( Printf.sprintf "%s/shard%d-barriers" name
                        s.Obs.Profiler.shard,
                      I s.Obs.Profiler.barriers );
                  ])
            o.Protocols.Runenv.profile;
          if shards = 1 then begin
            let quantiles key = function
              | None -> ()
              | Some h when Obs.Metrics.count h = 0 -> ()
              | Some h ->
                  obs_results :=
                    !obs_results
                    @ [
                        (key ^ "-n", I (Obs.Metrics.count h));
                        (key ^ "-p50_s", F (Obs.Metrics.percentile h 0.5));
                        (key ^ "-p99_s", F (Obs.Metrics.percentile h 0.99));
                      ]
            in
            quantiles
              (name ^ "/time-to-decision")
              (Protocols.Runenv.time_to_decision report);
            List.iter
              (fun label ->
                quantiles
                  (name ^ "/delivery-" ^ label)
                  (Protocols.Runenv.delivery_latency report label))
              [ "proposal"; "agreement"; "document"; "cons-sig" ]
          end)
    [ 1; 2; 4; 8 ]

(* --- campaign macro bench --------------------------------------------------- *)

(* Amortized campaign evaluation: the same 200 chaos-sampled plans run
   cold (every plan rebuilds votes, topology and simulator from its
   spec — what a naive loop over [Experiments.run] costs) and warm
   (one {!Exec.Campaign} context: shared votes, one resettable arena,
   one spec-digest prefix).  The reports are checked identical before
   any number is reported — amortization that changed results would be
   a bug, not a speedup.  The warm plans/s lands in the JSON report
   under [campaign_plans_per_s] and is regression-gated (inverted:
   a halved throughput fails CI). *)
let campaign () =
  header "Campaign engine: 200 chaos plans, cold rebuild vs amortized arena";
  campaign_results := [];
  (* 4000 relays: large enough that per-plan reconstruction (dominated
     by vote generation, which scales with the relay count) is the
     honest bottleneck a cold campaign pays, while 200 warm plans stay
     well under a minute. *)
  let config =
    {
      Exec.Chaos.default_config with
      Exec.Chaos.seed = "campaign-bench";
      plans = 200;
      n_relays = 4000;
    }
  in
  let n_plans = config.Exec.Chaos.plans in
  let base = Exec.Chaos.base_spec config in
  let specs = List.init n_plans (fun index -> Exec.Chaos.sample_spec config ~index) in
  let summary (r : Protocols.Runenv.report) =
    ( r.Protocols.Runenv.success,
      r.Protocols.Runenv.agreement,
      r.Protocols.Runenv.decided_at_latest,
      r.Protocols.Runenv.dropped )
  in
  let t0 = Unix.gettimeofday () in
  let cold_reports =
    List.map (fun spec -> summary (E.run E.Ours (Protocols.Runenv.of_spec spec))) specs
  in
  let cold_s = Unix.gettimeofday () -. t0 in
  (* Warm timing includes the one-off sharing setup (vote generation,
     context construction): that is the cost a real campaign pays. *)
  let t0 = Unix.gettimeofday () in
  let warm_reports =
    Exec.Campaign.map ~base ~votes:(E.votes_for_spec base)
      (fun ctx spec ->
        summary (E.run E.Ours (Exec.Campaign.env_of ctx (Exec.Campaign.plan_of_spec spec))))
      specs
  in
  let warm_s = Unix.gettimeofday () -. t0 in
  if warm_reports <> cold_reports then
    failwith "campaign: warm reports differ from cold reports";
  let cold_rate = float_of_int n_plans /. cold_s in
  let warm_rate = float_of_int n_plans /. warm_s in
  let name = Printf.sprintf "campaign-chaos-%d" n_plans in
  Printf.printf
    "%-28s cold %7.2f s (%6.2f plans/s)\n%-28s warm %7.2f s (%6.2f plans/s)  %.2fx\n"
    name cold_s cold_rate name warm_s warm_rate (cold_s /. warm_s);
  campaign_results :=
    [
      (name ^ "/cold", cold_rate);
      (name, warm_rate);
      (name ^ "/speedup", cold_s /. warm_s);
    ]

(* --- defense head-to-head --------------------------------------------------- *)

(* The headline table the paper's Figure 11 doesn't have: the 200-plan
   chaos campaign rerun under each defense preset, counting the plans
   that break the deployed v3 protocol and the paper's partial-
   synchrony protocol.  "Break" is a failed run ([success = false]).
   The counts land in the JSON report under [defense_break_counts] and
   are exact-match gated in CI; the wall time joins [macro_wall_s]
   under the ordinary 2x gate.  A rerun of one defended column at a
   different worker count and shard width asserts the table is a pure
   function of the configuration. *)
let defense () =
  header "Defense toolbox: 200 chaos plans x {none, admission, rotation, both}";
  defense_results := [];
  let plans = 200 in
  let breaks ?(shards = 1) ~jobs preset =
    let config =
      {
        Exec.Chaos.default_config with
        Exec.Chaos.plans;
        defense = (if Defense.Plan.is_empty preset then None else Some preset);
      }
    in
    let base = { (Exec.Chaos.base_spec config) with Protocols.Runenv.Spec.shards } in
    let broken =
      Exec.Campaign.map ~jobs ~votes:(E.votes_for_spec base) ~base
        (fun ctx index ->
          let spec = Exec.Chaos.sample_spec config ~index in
          let env = Exec.Campaign.env_of ctx (Exec.Campaign.plan_of_spec spec) in
          ( (not (E.run E.Current env).Protocols.Runenv.success),
            not (E.run E.Ours env).Protocols.Runenv.success ))
        (List.init plans Fun.id)
    in
    let count f = List.length (List.filter f broken) in
    (count fst, count snd)
  in
  let name = Printf.sprintf "defense-chaos-%d" plans in
  let t0 = Unix.gettimeofday () in
  let table =
    List.map
      (fun (label, preset) -> (label, preset, breaks ~jobs:!jobs preset))
      [
        ("none", Defense.Plan.none);
        ("admission", Defense.Plan.admission_only);
        ("rotation", Defense.Plan.rotation_only);
        ("both", Defense.Plan.both);
      ]
  in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "%-12s %14s %14s\n" "defense" "v3 breaks" "ours breaks";
  List.iter
    (fun (label, _, (v3, ours)) ->
      Printf.printf "%-12s %10d/%d %10d/%d\n" label v3 plans ours plans)
    table;
  (* Determinism: the defended column rerun on a different worker count
     and shard width must reproduce the committed counts exactly. *)
  let rotation_counts =
    let _, _, counts = List.nth table 2 in
    counts
  in
  let replay = breaks ~jobs:(if !jobs = 1 then 2 else 1) ~shards:2 Defense.Plan.rotation_only in
  if replay <> rotation_counts then
    failwith "defense: break counts changed across --jobs/shard counts";
  Printf.printf "replay (jobs/shards varied): rotation column identical\n";
  Printf.printf "%-28s %8.3f s wall\n" name wall;
  defense_results :=
    List.concat_map
      (fun (label, _, (v3, ours)) ->
        [
          (Printf.sprintf "%s/%s/v3" name label, v3);
          (Printf.sprintf "%s/%s/ours" name label, ours);
        ])
      table;
  macro_results := !macro_results @ [ (name, wall) ]

(* --- distribution macro bench ---------------------------------------------- *)

(* The paper's worst case, end to end: agreement run, then a
   million-client flash crowd hitting the cache tier after a 3-hour
   halt — once serving consensus diffs, once full documents.  The wall
   time goes through the regression gate like the other macro numbers;
   the simulated metrics (recovery times, bytes per cache) are
   deterministic and land in their own JSON section. *)
let dist () =
  header "Distribution tier: 1M-client flash crowd after a 3-hour halt";
  dist_wall := [];
  dist_metrics := [];
  let flash name ~diffs =
    let distribution =
      Some { Torclient.Distribution.default_config with halt = 10800.; diffs }
    in
    let env =
      Protocols.Runenv.of_spec
        {
          Protocols.Runenv.Spec.default with
          seed = "dist-bench";
          n_relays = 2000;
          distribution;
        }
    in
    let t0 = Unix.gettimeofday () in
    let report = E.run E.Ours env in
    let wall = Unix.gettimeofday () -. t0 in
    dist_wall := !dist_wall @ [ (name, wall) ];
    match report.Protocols.Runenv.distribution with
    | None -> failwith (name ^ ": no distribution outcome")
    | Some o ->
        let t90 =
          Option.value o.Torclient.Distribution.time_to_90pct_fresh ~default:nan
        in
        let tfull =
          Option.value o.Torclient.Distribution.time_to_full_recovery ~default:nan
        in
        let mb_per_cache = o.Torclient.Distribution.bytes_per_cache /. 1e6 in
        Printf.printf
          "%-28s %8.3f s wall  t90 %7.1f s  full %7.1f s  %10.1f MB/cache\n" name
          wall t90 tfull mb_per_cache;
        dist_metrics :=
          !dist_metrics
          @ [
              (name ^ "-t90_s", t90);
              (name ^ "-tfull_s", tfull);
              (name ^ "-mb_per_cache", mb_per_cache);
            ]
  in
  flash "dist-flash-crowd-1M" ~diffs:true;
  flash "dist-flash-crowd-1M-full" ~diffs:false;
  Printf.printf
    "(1M clients as cache-attached cohorts; with consensus diffs the same\n\
    \ recovery costs a small fraction of the full-document bytes)\n"

(* --- JSON report ----------------------------------------------------------- *)

(* Hand-rolled emitter: the names are plain ASCII identifiers, so
   OCaml's [%S] escaping is valid JSON for them.  Every section goes
   through the same {!jv} renderer — integers as integers, floats at a
   fixed precision, strings escaped — instead of each section hand-
   formatting its own values. *)
let jv_to_string = function
  | I n -> string_of_int n
  | F x -> Printf.sprintf "%.6f" x
  | S s -> Printf.sprintf "%S" s

let emit_json path =
  let buf = Buffer.create 1024 in
  let section name entries ~last =
    Buffer.add_string buf (Printf.sprintf "  %S: {" name);
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\n    %S: %s" key (jv_to_string value)))
      entries;
    if entries <> [] then Buffer.add_string buf "\n  ";
    Buffer.add_string buf (if last then "}\n" else "},\n")
  in
  let floats l = List.map (fun (k, v) -> (k, F v)) l in
  let ints l = List.map (fun (k, v) -> (k, I v)) l in
  Buffer.add_string buf "{\n  \"schema\": \"torda-bench/2\",\n";
  section "meta"
    [
      ("commit", S !meta_commit);
      ("date", S !meta_date);
      ("ocaml", S Sys.ocaml_version);
      ("cores", I (Domain.recommended_domain_count ()));
    ]
    ~last:false;
  section "micro_ns_per_run" (floats !micro_results) ~last:false;
  section "macro_wall_s" (floats !macro_results) ~last:false;
  section "alloc_mb_per_run" (floats !alloc_results) ~last:false;
  section "macro_dropped_msgs" (ints !drop_results) ~last:false;
  section "obs_profile" !obs_results ~last:false;
  section "campaign_plans_per_s" (floats !campaign_results) ~last:false;
  section "defense_break_counts" (ints !defense_results) ~last:false;
  section "dist_wall_s" (floats !dist_wall) ~last:false;
  section "dist_metrics" (floats !dist_metrics) ~last:false;
  section "target_wall_s" (floats (List.rev !target_times)) ~last:true;
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* --- driver ---------------------------------------------------------------- *)

let targets =
  [
    ("fig1", fig1);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig10", fig10);
    ("fig11", fig11);
    ("table1", table1);
    ("table2", table2);
    ("cost", cost);
    ("outage", outage);
    ("ablation", ablation);
    ("micro", micro);
    ("macro", macro);
    ("campaign", campaign);
    ("defense", defense);
    ("dist", dist);
  ]

let rec parse_args = function
  | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
          jobs := n;
          parse_args rest
      | Some 0 ->
          jobs := Exec.Pool.default_jobs ();
          parse_args rest
      | Some _ | None ->
          Printf.eprintf "bad --jobs value %S (expected an integer >= 0)\n" n;
          exit 1)
  | "--jobs" :: [] ->
      prerr_endline "--jobs requires a value";
      exit 1
  | "--json" :: path :: rest ->
      json_path := Some path;
      parse_args rest
  | "--json" :: [] ->
      prerr_endline "--json requires a path";
      exit 1
  | "--meta-commit" :: v :: rest ->
      meta_commit := v;
      parse_args rest
  | "--meta-commit" :: [] ->
      prerr_endline "--meta-commit requires a value";
      exit 1
  | "--meta-date" :: v :: rest ->
      meta_date := v;
      parse_args rest
  | "--meta-date" :: [] ->
      prerr_endline "--meta-date requires a value";
      exit 1
  | "--quota" :: s :: rest -> (
      match float_of_string_opt s with
      | Some q when q > 0. ->
          quota := q;
          parse_args rest
      | Some _ | None ->
          Printf.eprintf "bad --quota value %S (expected seconds > 0)\n" s;
          exit 1)
  | "--quota" :: [] ->
      prerr_endline "--quota requires a value";
      exit 1
  | names -> names

let run_target name f =
  let t0 = Unix.gettimeofday () in
  f ();
  target_times := (name, Unix.gettimeofday () -. t0) :: !target_times

let () =
  (match parse_args (List.tl (Array.to_list Sys.argv)) with
  | [] -> List.iter (fun (name, f) -> run_target name f) targets
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> run_target name f
          | None ->
              Printf.eprintf "unknown target %S; known: %s\n" name
                (String.concat ", " (List.map fst targets));
              exit 1)
        names);
  Option.iter emit_json !json_path
