(** Binary-heap priority queue of timestamped events.

    Events at equal times pop in insertion order (the sequence number
    breaks ties), which keeps the simulation deterministic.

    The heap is laid out struct-of-arrays: the [(time, seq)] ordering
    key lives in an unboxed [float array] plus an [int array], so sift
    comparisons never dereference a boxed per-entry record; payloads
    ride in a parallel array untouched by comparisons.  Pushing
    allocates nothing once the arrays have grown to the high-water
    mark. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:Simtime.t -> 'a -> unit
(** [push q ~time e] enqueues [e] at [time].  Raises
    [Invalid_argument] on a non-finite or NaN time. *)

val pop : 'a t -> (Simtime.t * 'a) option
(** Remove and return the earliest event, insertion-ordered within
    equal times. *)

val pop_if_before : 'a t -> horizon:Simtime.t -> default:'a -> 'a
(** [pop_if_before q ~horizon ~default] pops and returns the earliest
    payload iff its time is at or before [horizon]; otherwise returns
    [default] and leaves the queue untouched.  A single operation
    replacing the peek-then-pop pattern, and — unlike {!pop} — free of
    allocation, so callers whose payloads carry their own timestamps
    (or that pick an out-of-band [default]) can drain the queue without
    producing garbage. *)

val peek_time : 'a t -> Simtime.t option
(** Time of the earliest event without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
