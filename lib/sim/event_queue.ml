type 'a entry = { time : Simtime.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q entry =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let fresh = Array.make (max 16 (capacity * 2)) entry in
    Array.blit q.heap 0 fresh 0 q.size;
    q.heap <- fresh
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && precedes q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && precedes q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q ~time payload =
  if Float.is_nan time || Simtime.is_infinite time then
    invalid_arg "Event_queue.push: time must be finite";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* Park the just-popped entry in the vacated slot: it is a valid
         entry that is already leaving the queue, so the slot never
         retains a live payload longer than the pop that freed it. *)
      q.heap.(q.size) <- top;
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
let size q = q.size
let is_empty q = q.size = 0
