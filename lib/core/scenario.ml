module Runenv = Protocols.Runenv

type t = { protocol : Experiments.protocol; env : Runenv.t }

type draft = {
  mutable protocol : Experiments.protocol;
  mutable relays : int;
  mutable bandwidth_mbit : float;
  mutable seed : string;
  mutable horizon : float;
  mutable behaviors : (int * Runenv.behavior) list;
  mutable attacks : Runenv.attack list;
  mutable distribution : Torclient.Distribution.config option;
  mutable defense : Defense.Plan.t option;
}

let fresh_draft () =
  {
    protocol = Experiments.Ours;
    relays = 1000;
    bandwidth_mbit = 250.;
    seed = "scenario";
    horizon = 7200.;
    behaviors = [];
    attacks = [];
    distribution = None;
    defense = None;
  }

(* Any distribution directive switches the tier on; later directives
   refine the same config. *)
let dist_config draft =
  Option.value draft.distribution ~default:Torclient.Distribution.default_config

let ( let* ) = Result.bind

let parse_protocol = function
  | "current" -> Ok Experiments.Current
  | "synchronous" | "sync" -> Ok Experiments.Synchronous
  | "ours" | "partial" -> Ok Experiments.Ours
  | s -> Error (Printf.sprintf "unknown protocol %S" s)

let int_arg s = Option.to_result ~none:(Printf.sprintf "bad integer %S" s) (int_of_string_opt s)
let float_arg s = Option.to_result ~none:(Printf.sprintf "bad number %S" s) (float_of_string_opt s)

(* Directives are space-split, so the crash window rides inside one
   word: [crashed:<start>:<stop>]. *)
(* Defense members ride inside one word, like crash windows:
   [admission:<rate>:<burst>:<backlog>] and [rotate:<out>:<epoch>]
   (optionally [rotate:<out>:<epoch>:<seed>]).  Bare preset names pick
   the committed defaults.  Later directives merge member-wise, so
   [defense admission:…] followed by [defense rotate:…] composes
   both. *)
let parse_defense draft s =
  let current =
    Option.value draft.defense ~default:Defense.Plan.none
  in
  match String.split_on_char ':' s with
  | [ preset ] when Defense.Plan.preset preset <> None ->
      Ok (Option.get (Defense.Plan.preset preset))
  | [ "admission"; rate; burst; backlog ] ->
      let* rate = float_arg rate in
      let* burst = int_arg burst in
      let* backlog = int_arg backlog in
      Ok
        {
          current with
          Defense.Plan.admission = Some { Defense.Admission.rate; burst; backlog };
        }
  | "rotate" :: out :: epoch :: seed ->
      let* out = int_arg out in
      let* epoch = float_arg epoch in
      let* seed =
        match seed with
        | [] -> Ok Defense.Rotation.default.Defense.Rotation.seed
        | [ seed ] -> Ok seed
        | _ -> Error (Printf.sprintf "unknown defense %S" s)
      in
      Ok
        {
          current with
          Defense.Plan.rotation = Some { Defense.Rotation.seed; out; epoch };
        }
  | _ -> Error (Printf.sprintf "unknown defense %S" s)

let parse_behavior s =
  match String.split_on_char ':' s with
  | [ "silent" ] -> Ok Runenv.Silent
  | [ "equivocating" ] -> Ok Runenv.Equivocating
  | [ "honest" ] -> Ok Runenv.Honest
  | [ "crashed"; start; stop ] ->
      let ( let* ) = Result.bind in
      let* start = float_arg start in
      let* stop = float_arg stop in
      if stop < start then Error (Printf.sprintf "crash window %S stops before it starts" s)
      else Ok (Runenv.Crashed { start; stop })
  | _ -> Error (Printf.sprintf "unknown behavior %S" s)

let apply_directive draft = function
  | [ "protocol"; p ] ->
      let* p = parse_protocol p in
      draft.protocol <- p;
      Ok ()
  | [ "relays"; n ] ->
      let* n = int_arg n in
      if n < 0 then Error "relays must be non-negative"
      else begin
        draft.relays <- n;
        Ok ()
      end
  | [ "bandwidth"; b ] ->
      let* b = float_arg b in
      draft.bandwidth_mbit <- b;
      Ok ()
  | [ "seed"; s ] ->
      draft.seed <- s;
      Ok ()
  | [ "horizon"; h ] ->
      let* h = float_arg h in
      draft.horizon <- h;
      Ok ()
  | [ "behavior"; node; b ] ->
      let* node = int_arg node in
      let* b = parse_behavior b in
      draft.behaviors <- (node, b) :: draft.behaviors;
      Ok ()
  | [ "attack"; node; start; stop; residual ] ->
      let* node = int_arg node in
      let* start = float_arg start in
      let* stop = float_arg stop in
      let* residual = float_arg residual in
      draft.attacks <-
        { Runenv.node; start; stop; bits_per_sec = residual *. 1e6 } :: draft.attacks;
      Ok ()
  | [ "flood-majority"; start; stop; residual ] ->
      let* start = float_arg start in
      let* stop = float_arg stop in
      let* residual = float_arg residual in
      draft.attacks <-
        Attack.Ddos.bandwidth_attack ~n:9 ~start ~stop
          ~residual_bits_per_sec:(residual *. 1e6) ()
        @ draft.attacks;
      Ok ()
  | [ "knockout-majority"; start; stop ] ->
      let* start = float_arg start in
      let* stop = float_arg stop in
      draft.attacks <- Attack.Ddos.knockout ~n:9 ~start ~stop () @ draft.attacks;
      Ok ()
  | [ "defense"; d ] ->
      let* plan = parse_defense draft d in
      draft.defense <- Some plan;
      Ok ()
  | [ "clients"; n ] ->
      let* n = int_arg n in
      if n <= 0 then Error "clients must be positive"
      else begin
        draft.distribution <-
          Some { (dist_config draft) with Torclient.Distribution.clients = n };
        Ok ()
      end
  | [ "caches"; n ] ->
      let* n = int_arg n in
      if n <= 0 then Error "caches must be positive"
      else begin
        draft.distribution <-
          Some { (dist_config draft) with Torclient.Distribution.caches = n };
        Ok ()
      end
  | [ "halt"; seconds ] ->
      let* halt = float_arg seconds in
      if halt < 0. then Error "halt must be non-negative"
      else begin
        draft.distribution <-
          Some { (dist_config draft) with Torclient.Distribution.halt };
        Ok ()
      end
  | [ "diffs"; flag ] ->
      let* diffs =
        match flag with
        | "on" -> Ok true
        | "off" -> Ok false
        | s -> Error (Printf.sprintf "diffs must be on or off, not %S" s)
      in
      draft.distribution <-
        Some { (dist_config draft) with Torclient.Distribution.diffs };
      Ok ()
  | words -> Error (Printf.sprintf "unknown directive %S" (String.concat " " words))

let parse text =
  let draft = fresh_draft () in
  let lines = String.split_on_char '\n' text in
  let rec go line_no = function
    | [] -> Ok ()
    | line :: rest -> (
        let content =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let words =
          String.split_on_char ' ' (String.trim content)
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> go (line_no + 1) rest
        | directive -> (
            match apply_directive draft directive with
            | Ok () -> go (line_no + 1) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" line_no e)))
  in
  let* () = go 1 lines in
  let behaviors = Array.make 9 Runenv.Honest in
  let* () =
    List.fold_left
      (fun acc (node, b) ->
        let* () = acc in
        if node < 0 || node >= 9 then Error (Printf.sprintf "behavior node %d out of range" node)
        else begin
          behaviors.(node) <- b;
          Ok ()
        end)
      (Ok ()) draft.behaviors
  in
  match
    Runenv.of_spec
      {
        Runenv.Spec.default with
        seed = draft.seed;
        n_relays = draft.relays;
        bandwidth_bits_per_sec = draft.bandwidth_mbit *. 1e6;
        attacks = draft.attacks;
        behaviors = Some behaviors;
        distribution = draft.distribution;
        horizon = draft.horizon;
        defense =
          (match draft.defense with
          | Some p when not (Defense.Plan.is_empty p) -> Some p
          | Some _ | None -> None);
      }
  with
  | env -> Ok { protocol = draft.protocol; env }
  | exception Invalid_argument e -> Error e

let run (t : t) = Experiments.run t.protocol t.env

let default_text =
  "# The paper's Figure 1 scenario: the deployed protocol, the live\n\
   # network's scale, and a stressor flood on five of the nine\n\
   # directory authorities during the vote exchange.\n\
   protocol current\n\
   relays 8000\n\
   bandwidth 250\n\
   seed figure-1\n\
   flood-majority 0 300 0.5\n"
