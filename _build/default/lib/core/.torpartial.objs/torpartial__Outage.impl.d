lib/core/outage.ml: Array Attack Crypto Dirdoc Experiments Fun List Printf Protocols Torclient
