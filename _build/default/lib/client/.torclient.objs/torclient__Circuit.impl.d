lib/client/circuit.ml: Array Dirdoc List Result String Tor_sim
