examples/ddos_attack.mli:
