module Flags = Dirdoc.Flags
module Consensus = Dirdoc.Consensus

type t = {
  guard : Consensus.entry;
  middle : Consensus.entry;
  exit : Consensus.entry;
}

type error = No_guard | No_middle | No_exit

let error_to_string = function
  | No_guard -> "no eligible guard relay"
  | No_middle -> "no eligible middle relay"
  | No_exit -> "no relay's exit policy allows the destination port"

let entries c = Array.to_list c.Consensus.entries

let runs_and_valid (e : Consensus.entry) =
  Flags.mem Flags.Running e.flags && Flags.mem Flags.Valid e.flags

let eligible_guards c =
  List.filter
    (fun (e : Consensus.entry) ->
      runs_and_valid e && Flags.mem Flags.Guard e.flags && Flags.mem Flags.Stable e.flags)
    (entries c)

let eligible_exits ~port c =
  List.filter
    (fun (e : Consensus.entry) ->
      runs_and_valid e
      && Flags.mem Flags.Exit e.flags
      && (not (Flags.mem Flags.BadExit e.flags))
      && Dirdoc.Exit_policy.allows_port e.exit_policy port)
    (entries c)

let eligible_middles c = List.filter runs_and_valid (entries c)

let bandwidth_weighted ~rng candidates =
  match candidates with
  | [] -> None
  | _ ->
      let total =
        List.fold_left (fun acc (e : Consensus.entry) -> acc + e.bandwidth) 0 candidates
      in
      if total <= 0 then Some (List.nth candidates (Tor_sim.Rng.int rng (List.length candidates)))
      else begin
        let target = Tor_sim.Rng.int rng total in
        let rec pick acc = function
          | [] -> None (* unreachable: total > 0 *)
          | (e : Consensus.entry) :: rest ->
              let acc = acc + e.bandwidth in
              if target < acc then Some e else pick acc rest
        in
        pick 0 candidates
      end

let distinct_from chosen (e : Consensus.entry) =
  List.for_all
    (fun (c : Consensus.entry) -> not (String.equal c.fingerprint e.fingerprint))
    chosen

let ( let* ) r f = Result.bind r f

let pick_position ~rng ~taken ~error candidates =
  match bandwidth_weighted ~rng (List.filter (distinct_from taken) candidates) with
  | Some e -> Ok e
  | None -> Error error

let build ~rng ~port c =
  (* Exit first (scarcest position), then guard, then middle. *)
  let* exit = pick_position ~rng ~taken:[] ~error:No_exit (eligible_exits ~port c) in
  let* guard = pick_position ~rng ~taken:[ exit ] ~error:No_guard (eligible_guards c) in
  let* middle =
    pick_position ~rng ~taken:[ exit; guard ] ~error:No_middle (eligible_middles c)
  in
  Ok { guard; middle; exit }
