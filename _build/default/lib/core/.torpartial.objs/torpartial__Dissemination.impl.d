lib/core/dissemination.ml: Array Crypto Hashtbl Int List Option Printf String
