(* Test driver: one alcotest run over every suite. *)

let () =
  Alcotest.run "torpartial"
    [
      ("crypto", Test_crypto.suite);
      ("sim", Test_sim.suite);
      ("dirdoc", Test_dirdoc.suite);
      ("protocols", Test_protocols.suite);
      ("core", Test_core.suite);
      ("exec", Test_exec.suite);
      ("defense", Test_defense.suite);
      ("shards", Test_shards.suite);
      ("obs", Test_obs.suite);
      ("client", Test_client.suite);
      ("attack", Test_attack.suite);
    ]
