(** Token-gated admission control at the authority NIC.

    Onion Pass (SNIPPETS.md #3) rate-limits directory requests with
    out-of-band anonymous tokens: a client spends a token per request,
    so a flood without tokens is turned away before it costs the
    authority bandwidth.  This module models the enforcement side of
    that scheme — the token grants themselves stay out of band — as a
    per-(receiver, sender) token bucket checked by {!Net} at message
    arrival, {e before} ingress bandwidth is reserved.

    Over-budget traffic is queued up to a bounded backlog (each queued
    message is granted at its token's refill instant, FIFO per pair)
    and rejected once the backlog is full.  Rejections are accounted
    separately from fault drops ({!Stats.record_reject}), so a chaos
    verdict can tell defense behavior from injected faults.

    The implementation is the virtual-scheduling form of the generic
    cell rate algorithm: one theoretical-arrival-time cursor per pair,
    pure float arithmetic, no randomness.  Verdicts depend only on the
    arrival order at the receiver — which the engine keeps
    sharding-invariant — so runs are bit-identical at any shard
    count. *)

type config = {
  rate : float;  (** token refill rate per (dst, src) pair, tokens/s *)
  burst : int;  (** bucket capacity: back-to-back messages admitted cold *)
  backlog : int;  (** queued (deferred) messages tolerated per pair *)
}

val default : config
(** Generous defaults (2 tokens/s, burst 32, backlog 64): benign
    directory traffic — one vote push plus fetch retries every 20 s —
    never trips them; duplication storms do. *)

val validate : config -> unit
(** Raises [Invalid_argument] unless [rate > 0], [burst >= 1] and
    [backlog >= 0]. *)

val canonical : config -> string
(** Canonical serialization ([%h] floats), feeding
    {!Plan.canonical}. *)

val pp : Format.formatter -> config -> unit

(** {1 Runtime} *)

type t
(** An instantiated bucket array.  One instance serves exactly one
    run; {!Net.set_defense} creates and binds it. *)

val instantiate : config -> t
(** Validates and wraps the config; {!bind} sizes the state. *)

val config : t -> config

val bind : t -> n:int -> unit
(** Size the per-pair cursors for an [n]-node network and reset them
    (all buckets start full).  Raises [Invalid_argument] if
    [n <= 0]. *)

type verdict =
  | Admit  (** within budget: proceed to the NIC *)
  | Defer of float
      (** over budget, backlog slot taken: re-present the message at
          the returned absolute time (its token's refill instant) *)
  | Reject  (** backlog full: turn the message away *)

val decide : t -> now:float -> dst:int -> src:int -> verdict
(** Verdict for one message from [src] arriving at [dst] at [now].
    [Admit] and [Defer] both consume one token of the pair's budget. *)

val drain : t -> dst:int -> src:int -> unit
(** Release the backlog slot of a deferred message; called exactly
    once when its grant fires.  Raises [Invalid_argument] if the
    pair's backlog is empty. *)

val queued : t -> dst:int -> src:int -> int
(** Deferred messages currently holding a slot for the pair. *)
