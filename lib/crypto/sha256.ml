(* SHA-256 per FIPS 180-4.

   All word arithmetic runs on untagged native [int] (OCaml ints are at
   least 63-bit on every supported platform) with explicit
   [land 0xFFFFFFFF] masking, so no intermediate word is ever boxed.
   [Int32] appears only at the API boundary: block loads go through
   [Bytes.get_int32_be] and the chaining state is serialized with
   [Bytes.set_int32_be] in [finalize].

   Masking discipline: additions only propagate carries upward and the
   bitwise mixes are applied to masked inputs, so garbage above bit 31
   is harmless until a value feeds a right-shift — one [land mask32] at
   each store of a state or schedule word keeps everything exact. *)

let mask32 = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
     0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
     0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
     0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
     0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
     0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
     0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
     0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array;             (* 8 chaining words, 32-bit values *)
  block : bytes;             (* 64-byte input buffer *)
  mutable fill : int;        (* valid bytes in [block] *)
  mutable total : int;       (* total message bytes absorbed *)
  w : int array;             (* 64-word message schedule, reused *)
}

let reset ctx =
  let h = ctx.h in
  h.(0) <- 0x6a09e667; h.(1) <- 0xbb67ae85; h.(2) <- 0x3c6ef372;
  h.(3) <- 0xa54ff53a; h.(4) <- 0x510e527f; h.(5) <- 0x9b05688c;
  h.(6) <- 0x1f83d9ab; h.(7) <- 0x5be0cd19;
  ctx.fill <- 0;
  ctx.total <- 0

let init () =
  let ctx =
    { h = Array.make 8 0; block = Bytes.create 64; fill = 0; total = 0;
      w = Array.make 64 0 }
  in
  reset ctx;
  ctx

(* Compress the 64-byte block at [b.(off)..].  Rotations are written
   out by hand (the classic compiler does not reliably inline through a
   helper); Ch and Maj use the 3/4-op forms
   [Ch = g ^ (e & (f ^ g))] and [Maj = a ^ ((a ^ b) & (a ^ c))]. *)
let compress ctx b off =
  let w = ctx.w in
  for t = 0 to 15 do
    Array.unsafe_set w t
      (Int32.to_int (Bytes.get_int32_be b (off + (t * 4))) land mask32)
  done;
  for t = 16 to 63 do
    let x = Array.unsafe_get w (t - 15) in
    let s0 =
      ((x lsr 7) lor (x lsl 25)) lxor ((x lsr 18) lor (x lsl 14)) lxor (x lsr 3)
    in
    let y = Array.unsafe_get w (t - 2) in
    let s1 =
      ((y lsr 17) lor (y lsl 15)) lxor ((y lsr 19) lor (y lsl 13)) lxor (y lsr 10)
    in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
       land mask32)
  done;
  let h = ctx.h in
  (* The working state lives in the arguments of a tail-recursive loop,
     so the eight words stay in registers.  Eight rounds are unrolled
     per step in the in-place formulation (each round rewrites exactly
     two words; the register roles rotate through the unrolled body and
     return to their starting positions after eight rounds). *)
  let rec rounds a b c d e f g hh t =
    if t = 64 then begin
      h.(0) <- (h.(0) + a) land mask32;
      h.(1) <- (h.(1) + b) land mask32;
      h.(2) <- (h.(2) + c) land mask32;
      h.(3) <- (h.(3) + d) land mask32;
      h.(4) <- (h.(4) + e) land mask32;
      h.(5) <- (h.(5) + f) land mask32;
      h.(6) <- (h.(6) + g) land mask32;
      h.(7) <- (h.(7) + hh) land mask32
    end
    else begin
      (* round t: A=a B=b C=c D=d E=e F=f G=g H=hh *)
      let t1 =
        hh
        + (((e lsr 6) lor (e lsl 26)) lxor ((e lsr 11) lor (e lsl 21))
           lxor ((e lsr 25) lor (e lsl 7)))
        + (g lxor (e land (f lxor g)))
        + Array.unsafe_get k t + Array.unsafe_get w t
      in
      let d = (d + t1) land mask32
      and hh =
        (t1
         + (((a lsr 2) lor (a lsl 30)) lxor ((a lsr 13) lor (a lsl 19))
            lxor ((a lsr 22) lor (a lsl 10)))
         + (a lxor ((a lxor b) land (a lxor c))))
        land mask32
      in
      (* round t+1: A=hh B=a C=b D=c E=d F=e G=f H=g *)
      let t1 =
        g
        + (((d lsr 6) lor (d lsl 26)) lxor ((d lsr 11) lor (d lsl 21))
           lxor ((d lsr 25) lor (d lsl 7)))
        + (f lxor (d land (e lxor f)))
        + Array.unsafe_get k (t + 1) + Array.unsafe_get w (t + 1)
      in
      let c = (c + t1) land mask32
      and g =
        (t1
         + (((hh lsr 2) lor (hh lsl 30)) lxor ((hh lsr 13) lor (hh lsl 19))
            lxor ((hh lsr 22) lor (hh lsl 10)))
         + (hh lxor ((hh lxor a) land (hh lxor b))))
        land mask32
      in
      (* round t+2: A=g B=hh C=a D=b E=c F=d G=e H=f *)
      let t1 =
        f
        + (((c lsr 6) lor (c lsl 26)) lxor ((c lsr 11) lor (c lsl 21))
           lxor ((c lsr 25) lor (c lsl 7)))
        + (e lxor (c land (d lxor e)))
        + Array.unsafe_get k (t + 2) + Array.unsafe_get w (t + 2)
      in
      let b = (b + t1) land mask32
      and f =
        (t1
         + (((g lsr 2) lor (g lsl 30)) lxor ((g lsr 13) lor (g lsl 19))
            lxor ((g lsr 22) lor (g lsl 10)))
         + (g lxor ((g lxor hh) land (g lxor a))))
        land mask32
      in
      (* round t+3: A=f B=g C=hh D=a E=b F=c G=d H=e *)
      let t1 =
        e
        + (((b lsr 6) lor (b lsl 26)) lxor ((b lsr 11) lor (b lsl 21))
           lxor ((b lsr 25) lor (b lsl 7)))
        + (d lxor (b land (c lxor d)))
        + Array.unsafe_get k (t + 3) + Array.unsafe_get w (t + 3)
      in
      let a = (a + t1) land mask32
      and e =
        (t1
         + (((f lsr 2) lor (f lsl 30)) lxor ((f lsr 13) lor (f lsl 19))
            lxor ((f lsr 22) lor (f lsl 10)))
         + (f lxor ((f lxor g) land (f lxor hh))))
        land mask32
      in
      (* round t+4: A=e B=f C=g D=hh E=a F=b G=c H=d *)
      let t1 =
        d
        + (((a lsr 6) lor (a lsl 26)) lxor ((a lsr 11) lor (a lsl 21))
           lxor ((a lsr 25) lor (a lsl 7)))
        + (c lxor (a land (b lxor c)))
        + Array.unsafe_get k (t + 4) + Array.unsafe_get w (t + 4)
      in
      let hh = (hh + t1) land mask32
      and d =
        (t1
         + (((e lsr 2) lor (e lsl 30)) lxor ((e lsr 13) lor (e lsl 19))
            lxor ((e lsr 22) lor (e lsl 10)))
         + (e lxor ((e lxor f) land (e lxor g))))
        land mask32
      in
      (* round t+5: A=d B=e C=f D=g E=hh F=a G=b H=c *)
      let t1 =
        c
        + (((hh lsr 6) lor (hh lsl 26)) lxor ((hh lsr 11) lor (hh lsl 21))
           lxor ((hh lsr 25) lor (hh lsl 7)))
        + (b lxor (hh land (a lxor b)))
        + Array.unsafe_get k (t + 5) + Array.unsafe_get w (t + 5)
      in
      let g = (g + t1) land mask32
      and c =
        (t1
         + (((d lsr 2) lor (d lsl 30)) lxor ((d lsr 13) lor (d lsl 19))
            lxor ((d lsr 22) lor (d lsl 10)))
         + (d lxor ((d lxor e) land (d lxor f))))
        land mask32
      in
      (* round t+6: A=c B=d C=e D=f E=g F=hh G=a H=b *)
      let t1 =
        b
        + (((g lsr 6) lor (g lsl 26)) lxor ((g lsr 11) lor (g lsl 21))
           lxor ((g lsr 25) lor (g lsl 7)))
        + (a lxor (g land (hh lxor a)))
        + Array.unsafe_get k (t + 6) + Array.unsafe_get w (t + 6)
      in
      let f = (f + t1) land mask32
      and b =
        (t1
         + (((c lsr 2) lor (c lsl 30)) lxor ((c lsr 13) lor (c lsl 19))
            lxor ((c lsr 22) lor (c lsl 10)))
         + (c lxor ((c lxor d) land (c lxor e))))
        land mask32
      in
      (* round t+7: A=b B=c C=d D=e E=f F=g G=hh H=a *)
      let t1 =
        a
        + (((f lsr 6) lor (f lsl 26)) lxor ((f lsr 11) lor (f lsl 21))
           lxor ((f lsr 25) lor (f lsl 7)))
        + (hh lxor (f land (g lxor hh)))
        + Array.unsafe_get k (t + 7) + Array.unsafe_get w (t + 7)
      in
      let e = (e + t1) land mask32
      and a =
        (t1
         + (((b lsr 2) lor (b lsl 30)) lxor ((b lsr 13) lor (b lsl 19))
            lxor ((b lsr 22) lor (b lsl 10)))
         + (b lxor ((b lxor c) land (b lxor d))))
        land mask32
      in
      rounds a b c d e f g hh (t + 8)
    end
  in
  rounds h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7) 0

let feed_bytes ctx src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Sha256.feed_bytes";
  ctx.total <- ctx.total + len;
  let remaining = ref len and offset = ref pos in
  (* Top up a partially filled block first. *)
  if ctx.fill > 0 then begin
    let chunk = min (64 - ctx.fill) !remaining in
    Bytes.blit src !offset ctx.block ctx.fill chunk;
    ctx.fill <- ctx.fill + chunk;
    offset := !offset + chunk;
    remaining := !remaining - chunk;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  (* Whole blocks compress straight from the source, no copy. *)
  while !remaining >= 64 do
    compress ctx src !offset;
    offset := !offset + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !offset ctx.block 0 !remaining;
    ctx.fill <- !remaining
  end

let feed_string ctx s =
  feed_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize ctx =
  let bit_length = ctx.total * 8 in
  (* Append 0x80, zero-pad to 56 mod 64, then the 64-bit big-endian length. *)
  Bytes.set ctx.block ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > 56 then begin
    Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\x00';
    compress ctx ctx.block 0;
    ctx.fill <- 0
  end;
  Bytes.fill ctx.block ctx.fill (56 - ctx.fill) '\x00';
  Bytes.set_int64_be ctx.block 56 (Int64.of_int bit_length);
  compress ctx ctx.block 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (i * 4) (Int32.of_int ctx.h.(i))
  done;
  Bytes.unsafe_to_string out

let digest_bytes b =
  let ctx = init () in
  feed_bytes ctx b ~pos:0 ~len:(Bytes.length b);
  finalize ctx

let digest_string s =
  let ctx = init () in
  feed_string ctx s;
  finalize ctx

let hex = "0123456789abcdef"

let hex_of_raw d =
  let n = String.length d in
  let out = Bytes.create (n * 2) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get d i) in
    Bytes.unsafe_set out (i * 2) (String.unsafe_get hex (c lsr 4));
    Bytes.unsafe_set out ((i * 2) + 1) (String.unsafe_get hex (c land 0xF))
  done;
  Bytes.unsafe_to_string out

let digest_hex s = hex_of_raw (digest_string s)
