(** Domain-safe memoization keyed by string digests.

    The sweep engine keys simulation results (and shared vote
    populations) by {!Protocols.Runenv.Spec.digest}, so a cell that
    appears twice in a sweep — e.g. a bandwidth the Figure 7 binary
    search probes again — is only ever simulated once, even when the
    two requests race on different domains: the second requester
    blocks until the first finishes and then reads its result. *)

type 'v t

val create : ?size:int -> ?capacity:int -> unit -> 'v t
(** [size] is the initial hash-table bucket hint.  [capacity] bounds
    the number of {e completed} entries retained: when an insertion
    pushes the count past [capacity], the oldest completed entries are
    evicted FIFO until the bound holds again.  An evicted key is simply
    recomputed on its next request.  In-flight computations never count
    against (and are never evicted by) the bound — evicting one would
    strand the domains waiting on it.  Default: unbounded, the right
    choice for sweep result memoization where every entry may be
    re-read; pass a bound for long campaign sessions where the key
    population grows without reuse.  Raises [Invalid_argument] when
    [capacity < 1]. *)

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v
(** [find_or_compute t ~key f] returns the cached value for [key],
    or runs [f ()] (at most once per key across all domains) and
    caches it.  If [f] raises, nothing is cached, the exception
    propagates to the caller that ran [f], and any waiting domain
    retries the computation itself. *)

val find_opt : 'v t -> string -> 'v option
(** Completed entry for [key], if any (never blocks). *)

val length : 'v t -> int
(** Number of completed entries. *)
