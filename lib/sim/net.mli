(** Point-to-point message network over NICs and a latency matrix.

    Delivery of a [size]-byte message from [src] to [dst]:
    FIFO egress serialization on [src]'s NIC, then propagation latency,
    then FIFO ingress serialization on [dst]'s NIC (reserved in arrival
    order).  Each node has a single NIC shared by both directions,
    modelling a DDoS-saturated access link whose residual capacity is
    one budget (the per-node bandwidth the paper's Shadow runs
    configure).  Channels are reliable: a message outlives a DDoS window
    and drains when bandwidth returns, modelling TCP retransmission —
    the partial-synchrony "eventual delivery" abstraction.  A message
    is dropped only if a NIC's rate is zero with no future breakpoint.

    The payload type ['m] is chosen by the protocol layered on top. *)

type 'm t

val create :
  engine:Engine.t ->
  topology:Topology.t ->
  bits_per_sec:float ->
  unit ->
  'm t
(** All NICs start at the given uniform rate; per-node adjustments go
    through {!nic}. *)

val n : 'm t -> int
val engine : 'm t -> Engine.t
val stats : 'm t -> Stats.t

val nic : 'm t -> int -> Nic.t
(** The node's shared NIC. *)

val set_handler : 'm t -> (dst:int -> src:int -> 'm -> unit) -> unit
(** Install the delivery callback.  Must be set before any delivery
    fires; the last installed handler wins. *)

val send :
  'm t ->
  src:int ->
  dst:int ->
  size:int ->
  ?label:Stats.label ->
  ?deadline:Simtime.t ->
  'm ->
  unit
(** Enqueue a message.  Self-sends deliver after a scheduling tick with
    no bandwidth cost.  [label] is an id interned with {!Stats.intern}
    on this network's {!stats}.  [deadline] models a transport-level
    connection timeout (Tor's directory client): if delivery would
    complete more than [deadline] seconds after the send, the message
    is dropped — the bytes are still charged to both NICs, as they were
    transmitted into the flood.  Raises [Invalid_argument] on bad node
    ids or a negative size. *)

val broadcast :
  'm t -> src:int -> size:int -> ?label:Stats.label -> ?deadline:Simtime.t -> 'm -> unit
(** [broadcast] sends to every node except [src] (ascending id order,
    one egress reservation each, as n-1 unicasts — Tor has no
    multicast).  The batch's egress reservations are one monotone sweep
    of the source NIC's rate schedule. *)

val limit_node :
  'm t -> node:int -> start:Simtime.t -> stop:Simtime.t -> bits_per_sec:float -> unit
(** Cap [node]'s NIC during a window; the DDoS primitive. *)
