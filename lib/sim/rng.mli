(** Deterministic SplitMix64 PRNG.

    Every source of randomness in the reproduction flows through an
    explicit [Rng.t] so that simulations are bit-reproducible from a
    seed, which the determinism tests rely on. *)

type t

val create : int64 -> t
(** [create seed] is a generator seeded with [seed]. *)

val of_string_seed : string -> t
(** [of_string_seed s] derives a seed by hashing [s]. *)

val seed_of_string : string -> int64
(** The raw 64-bit seed [of_string_seed] derives (the first 8 bytes of
    SHA-256 of [s]), for callers that key sub-streams off it. *)

val mix64 : int64 -> int64
(** SplitMix64's finalizer: a strong 64-bit bijective mixer.  Chaining
    [mix64 (base + of_int k)] derives well-separated stream seeds from
    a base seed and small integer keys — the fault injector keys its
    per-message streams this way. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises
    [Invalid_argument] if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val range : t -> min:int -> max:int -> int
(** [range t ~min ~max] is uniform in [\[min, max\]] inclusive. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice.  Raises [Invalid_argument] on an empty list. *)

val split : t -> t
(** [split t] is an independent child generator; both streams remain
    deterministic. *)
