(* Civil-date conversion after Howard Hinnant's algorithms: exact over
   the full proleptic Gregorian calendar, branch-light, and easy to
   property-test against a naive day-counting loop. *)

let days_from_civil ~year ~month ~day =
  let year = if month <= 2 then year - 1 else year in
  let era = (if year >= 0 then year else year - 399) / 400 in
  let yoe = year - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let year = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then year + 1 else year in
  (year, month, day)

let to_string epoch =
  let total = int_of_float (Float.floor epoch) in
  let days = if total >= 0 then total / 86400 else (total - 86399) / 86400 in
  let secs = total - (days * 86400) in
  let year, month, day = civil_from_days days in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" year month day (secs / 3600)
    (secs mod 3600 / 60) (secs mod 60)

let of_string s =
  let fail () = Error (Printf.sprintf "bad timestamp %S" s) in
  if String.length s <> 19 then fail ()
  else
    let num pos len = int_of_string_opt (String.sub s pos len) in
    match (num 0 4, num 5 2, num 8 2, num 11 2, num 14 2, num 17 2) with
    | Some year, Some month, Some day, Some h, Some m, Some sec
      when month >= 1 && month <= 12 && day >= 1 && day <= 31 && h < 24 && m < 60
           && sec < 60 ->
        let days = days_from_civil ~year ~month ~day in
        Ok (float_of_int ((days * 86400) + (h * 3600) + (m * 60) + sec))
    | _ -> fail ()
