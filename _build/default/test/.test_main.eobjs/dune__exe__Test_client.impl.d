test/test_client.ml: Alcotest Array Crypto Dirdoc List Printf Result String Tor_sim Torclient
