module Sim = Tor_sim
module Signature = Crypto.Signature
module Digest32 = Crypto.Digest32

let name = "tendermint"

type polka = { polka_round : int; polka_digest : Digest32.t; polka_sigs : Signature.t list }

type 'v msg =
  | Proposal of { round : int; value : 'v; valid_round : int; evidence : polka option }
  | Prevote of { round : int; digest : Digest32.t option; signature : Signature.t }
  | Precommit of { round : int; digest : Digest32.t option; signature : Signature.t }
  | Decided of { round : int; value : 'v; precommits : Signature.t list }

type 'v callbacks = {
  now : unit -> Sim.Simtime.t;
  schedule : Sim.Simtime.t -> (unit -> unit) -> Sim.Engine.handle;
  cancel : Sim.Engine.handle -> unit;
  send : dst:int -> 'v msg -> unit;
  validate : 'v -> bool;
  value_digest : 'v -> Digest32.t;
  proposal : unit -> 'v option;
  decide : view:int -> 'v -> unit;
  on_view : view:int -> unit;
  log : string -> unit;
}

type step = Propose_step | Prevote_step | Precommit_step

type 'v t = {
  keyring : Crypto.Keyring.t;
  n : int;
  id : int;
  f : int;
  quorum : int;
  view_timeout : Sim.Simtime.t;
  cb : 'v callbacks;
  mutable round : int;
  mutable step : step;
  mutable timer : Sim.Engine.handle option;
  mutable locked : (int * Digest32.t) option;
  mutable valid : (int * 'v) option;
  mutable decided : 'v option;
  mutable decided_broadcast : 'v msg option;
  mutable proposed_in : int;
  mutable prevoted_in : int;
  mutable precommitted_in : int;
  proposals : (int, 'v) Hashtbl.t;
  unlock_evidence : (int, int) Hashtbl.t;
      (* proposal round -> round of a verified polka justifying it *)
  prevotes : (int, (int, Digest32.t option) Hashtbl.t) Hashtbl.t;
  prevote_sigs : (int * string, Signature.t list ref) Hashtbl.t;
  precommits : (int, (int, Digest32.t option) Hashtbl.t) Hashtbl.t;
  precommit_sigs : (int * string, Signature.t list ref) Hashtbl.t;
  polkas : (int, polka) Hashtbl.t;
  future : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* round -> signers heard from *)
}

let quorum ~n = n - ((n - 1) / 3)
let leader ~n ~view = view mod n

let create ~keyring ~n ~id ?(view_timeout = 5.) cb =
  if n < 4 then invalid_arg "Tendermint.create: need n >= 4";
  {
    keyring;
    n;
    id;
    f = (n - 1) / 3;
    quorum = quorum ~n;
    view_timeout;
    cb;
    round = -1;
    step = Propose_step;
    timer = None;
    locked = None;
    valid = None;
    decided = None;
    decided_broadcast = None;
    proposed_in = -1;
    prevoted_in = -1;
    precommitted_in = -1;
    proposals = Hashtbl.create 16;
    unlock_evidence = Hashtbl.create 16;
    prevotes = Hashtbl.create 16;
    prevote_sigs = Hashtbl.create 16;
    precommits = Hashtbl.create 16;
    precommit_sigs = Hashtbl.create 16;
    polkas = Hashtbl.create 16;
    future = Hashtbl.create 16;
  }

let decided t = t.decided
let current_view t = t.round
let leader_of t round = round mod t.n

let digest_tag = function None -> "nil" | Some d -> Digest32.raw d

let vote_payload ~kind ~round digest =
  Printf.sprintf "tm|%s|%d|%s" kind round (digest_tag digest)

let distinct_signers sigs =
  let signers = List.map (fun s -> s.Signature.signer) sigs in
  List.length (List.sort_uniq Int.compare signers) = List.length sigs

let polka_valid t ~digest (p : polka) =
  Digest32.equal p.polka_digest digest
  && List.length p.polka_sigs >= t.quorum
  && distinct_signers p.polka_sigs
  &&
  let payload = vote_payload ~kind:"prevote" ~round:p.polka_round (Some digest) in
  List.for_all (fun s -> Signature.verify t.keyring s payload) p.polka_sigs

(* --- message sizes ------------------------------------------------------- *)

let polka_size = function
  | None -> 8
  | Some p -> Wire.digest_bytes + 16 + (List.length p.polka_sigs * Signature.wire_size)

let msg_size ~value_size = function
  | Proposal { value; evidence; _ } ->
      Wire.control_bytes + value_size value + polka_size evidence
  | Prevote _ | Precommit _ -> Wire.control_bytes + Wire.digest_bytes + Signature.wire_size
  | Decided { value; precommits; _ } ->
      Wire.control_bytes + value_size value
      + (List.length precommits * Signature.wire_size)

(* --- vote bookkeeping -------------------------------------------------------- *)

let broadcast t msg =
  for dst = 0 to t.n - 1 do
    t.cb.send ~dst msg
  done

let per_round table round =
  match Hashtbl.find_opt table round with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add table round h;
      h

let append_sig table key signature =
  match Hashtbl.find_opt table key with
  | Some cell -> cell := signature :: !cell
  | None -> Hashtbl.add table key (ref [ signature ])

(* The digest (or nil) that gathered a quorum among [votes] for
   [round], if any. *)
let quorum_digest t votes round =
  let counts : (string, int * Digest32.t option) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ d ->
      let key = digest_tag d in
      let count, _ = Option.value (Hashtbl.find_opt counts key) ~default:(0, d) in
      Hashtbl.replace counts key (count + 1, d))
    (per_round votes round);
  Hashtbl.fold
    (fun _ (count, d) acc ->
      if count >= t.quorum then Some d else acc)
    counts None

(* --- state machine ----------------------------------------------------------- *)

let rec arm_timer t =
  Option.iter t.cb.cancel t.timer;
  t.timer <- Some (t.cb.schedule t.view_timeout (fun () -> on_timeout t))

and on_timeout t =
  if t.decided = None then
    match t.step with
    | Propose_step ->
        (* No acceptable proposal in time: prevote nil. *)
        send_prevote t ~round:t.round None;
        t.step <- Prevote_step;
        arm_timer t
    | Prevote_step ->
        send_precommit t ~round:t.round None;
        t.step <- Precommit_step;
        arm_timer t
    | Precommit_step -> enter_round t (t.round + 1)

and send_prevote t ~round digest =
  if t.prevoted_in < round then begin
    t.prevoted_in <- round;
    let signature =
      Signature.sign t.keyring ~signer:t.id (vote_payload ~kind:"prevote" ~round digest)
    in
    broadcast t (Prevote { round; digest; signature })
  end

and send_precommit t ~round digest =
  if t.precommitted_in < round then begin
    t.precommitted_in <- round;
    (match digest with Some d -> t.locked <- Some (round, d) | None -> ());
    let signature =
      Signature.sign t.keyring ~signer:t.id (vote_payload ~kind:"precommit" ~round digest)
    in
    broadcast t (Precommit { round; digest; signature })
  end

and enter_round t round =
  if round > t.round && t.decided = None then begin
    t.round <- round;
    t.step <- Propose_step;
    arm_timer t;
    t.cb.log (Printf.sprintf "entering round %d (proposer %d)" round (leader_of t round));
    t.cb.on_view ~view:round;
    try_propose t;
    (* A proposal for this round may have arrived before we did. *)
    maybe_prevote t;
    check_tallies t round
  end

and try_propose t =
  if t.decided = None && leader_of t t.round = t.id && t.proposed_in < t.round then begin
    let candidate =
      match t.valid with
      | Some (valid_round, value) ->
          Some (value, valid_round, Hashtbl.find_opt t.polkas valid_round)
      | None -> Option.map (fun v -> (v, -1, None)) (t.cb.proposal ())
    in
    match candidate with
    | None -> () (* not ready; notify_ready retries *)
    | Some (value, valid_round, evidence) ->
        t.proposed_in <- t.round;
        Hashtbl.replace t.proposals t.round value;
        (match evidence with
        | Some p -> Hashtbl.replace t.unlock_evidence t.round p.polka_round
        | None -> ());
        broadcast t (Proposal { round = t.round; value; valid_round; evidence })
  end

and maybe_prevote t =
  if t.decided = None && t.step = Propose_step && t.prevoted_in < t.round then
    match Hashtbl.find_opt t.proposals t.round with
    | None -> ()
    | Some value ->
        let digest = t.cb.value_digest value in
        let lock_ok =
          match t.locked with
          | None -> true
          | Some (locked_round, locked_digest) -> (
              Digest32.equal locked_digest digest
              ||
              match Hashtbl.find_opt t.unlock_evidence t.round with
              | Some evidence_round -> evidence_round >= locked_round
              | None -> false)
        in
        let vote = if t.cb.validate value && lock_ok then Some digest else None in
        send_prevote t ~round:t.round vote;
        t.step <- Prevote_step;
        arm_timer t

and decide_once t ~round value precommit_sigs =
  if t.decided = None then begin
    t.decided <- Some value;
    Option.iter t.cb.cancel t.timer;
    t.timer <- None;
    let msg = Decided { round; value; precommits = precommit_sigs } in
    t.decided_broadcast <- Some msg;
    t.cb.log (Printf.sprintf "decided in round %d" round);
    broadcast t msg;
    t.cb.decide ~view:round value
  end

and check_tallies t round =
  if t.decided = None then begin
    (* Polka? *)
    (match quorum_digest t t.prevotes round with
    | Some (Some d) ->
        let sigs =
          match Hashtbl.find_opt t.prevote_sigs (round, Digest32.raw d) with
          | Some cell -> !cell
          | None -> []
        in
        if not (Hashtbl.mem t.polkas round) then
          Hashtbl.replace t.polkas round
            { polka_round = round; polka_digest = d; polka_sigs = sigs };
        (match Hashtbl.find_opt t.proposals round with
        | Some value when Digest32.equal (t.cb.value_digest value) d ->
            (match t.valid with
            | Some (vr, _) when vr >= round -> ()
            | _ -> t.valid <- Some (round, value))
        | _ -> ());
        if round = t.round && t.step <> Precommit_step then begin
          send_precommit t ~round (Some d);
          t.step <- Precommit_step;
          arm_timer t
        end
    | Some None ->
        if round = t.round && t.step = Prevote_step then begin
          send_precommit t ~round None;
          t.step <- Precommit_step;
          arm_timer t
        end
    | None -> ());
    (* Decision or round change? *)
    match quorum_digest t t.precommits round with
    | Some (Some d) -> (
        let value =
          match Hashtbl.find_opt t.proposals round with
          | Some v when Digest32.equal (t.cb.value_digest v) d -> Some v
          | _ -> (
              match t.valid with
              | Some (_, v) when Digest32.equal (t.cb.value_digest v) d -> Some v
              | _ -> None)
        in
        match value with
        | Some v ->
            let sigs =
              match Hashtbl.find_opt t.precommit_sigs (round, Digest32.raw d) with
              | Some cell -> !cell
              | None -> []
            in
            decide_once t ~round v sigs
        | None -> () (* value unknown; a Decided broadcast will carry it *))
    | Some None -> if round = t.round then enter_round t (round + 1)
    | None -> ()
  end

(* --- handlers ----------------------------------------------------------------- *)

let help_straggler t ~src =
  match t.decided_broadcast with
  | Some msg -> t.cb.send ~dst:src msg
  | None -> ()

let note_future t ~src ~round =
  if round > t.round then begin
    let signers = per_round t.future round in
    Hashtbl.replace signers src ();
    if Hashtbl.length signers > t.f then enter_round t round
  end

let on_proposal t ~src ~round ~value ~valid_round ~evidence =
  if t.decided <> None then help_straggler t ~src
  else if src = leader_of t round && round >= t.round
          && not (Hashtbl.mem t.proposals round)
  then begin
    let digest = t.cb.value_digest value in
    let evidence_ok =
      valid_round < 0
      || (match evidence with
         | Some p -> p.polka_round = valid_round && polka_valid t ~digest p
         | None -> false)
    in
    if evidence_ok then begin
      Hashtbl.replace t.proposals round value;
      if valid_round >= 0 then Hashtbl.replace t.unlock_evidence round valid_round;
      if round > t.round then enter_round t round else maybe_prevote t
    end
  end

let on_vote t ~src ~kind ~round ~digest ~signature =
  let payload = vote_payload ~kind ~round digest in
  if
    signature.Signature.signer = src
    && Signature.verify t.keyring signature payload
  then
    if t.decided <> None then help_straggler t ~src
    else begin
      let votes, sigs =
        match kind with
        | "prevote" -> (t.prevotes, t.prevote_sigs)
        | _ -> (t.precommits, t.precommit_sigs)
      in
      let per = per_round votes round in
      if not (Hashtbl.mem per src) then begin
        Hashtbl.replace per src digest;
        (match digest with
        | Some d -> append_sig sigs (round, Digest32.raw d) signature
        | None -> ());
        note_future t ~src ~round;
        check_tallies t round
      end
    end

let on_decided t ~round ~value ~precommits =
  if t.decided = None then begin
    let digest = t.cb.value_digest value in
    let payload = vote_payload ~kind:"precommit" ~round (Some digest) in
    if
      List.length precommits >= t.quorum
      && distinct_signers precommits
      && List.for_all (fun s -> Signature.verify t.keyring s payload) precommits
      && t.cb.validate value
    then decide_once t ~round value precommits
  end

let handle t ~src msg =
  match msg with
  | Proposal { round; value; valid_round; evidence } ->
      on_proposal t ~src ~round ~value ~valid_round ~evidence
  | Prevote { round; digest; signature } ->
      on_vote t ~src ~kind:"prevote" ~round ~digest ~signature
  | Precommit { round; digest; signature } ->
      on_vote t ~src ~kind:"precommit" ~round ~digest ~signature
  | Decided { round; value; precommits } -> on_decided t ~round ~value ~precommits

let start t = enter_round t 0
let notify_ready t = try_propose t
