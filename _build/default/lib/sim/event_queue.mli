(** Binary-heap priority queue of timestamped events.

    Events at equal times pop in insertion order (the sequence number
    breaks ties), which keeps the simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:Simtime.t -> 'a -> unit
(** [push q ~time e] enqueues [e] at [time].  Raises
    [Invalid_argument] on a non-finite or NaN time. *)

val pop : 'a t -> (Simtime.t * 'a) option
(** Remove and return the earliest event, insertion-ordered within
    equal times. *)

val peek_time : 'a t -> Simtime.t option
(** Time of the earliest event without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
