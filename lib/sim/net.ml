(* Every message in flight is a slot in a struct-of-arrays pool, and
   the whole egress→arrival→finish chain runs through ONE engine
   callback (the trampoline): each event is (callback, flight index),
   so a send allocates no closures.  A flight's [stage] tells the
   trampoline what the next step is; slots recycle through a free list
   and only grow at a new high-water mark of concurrently in-flight
   messages.  A recycled slot keeps its last payload until reuse — the
   payloads are the simulation's own documents, alive elsewhere, so
   nothing leaks beyond the run.

   Sharded engines get one pool and one [Stats] instance per shard, so
   the hot path never touches another domain's memory: a flight lives
   in the pool of the shard that executes its events — the
   destination's.  A send whose destination lives on another shard
   becomes a [mail] value in a per-(src shard, dst shard) mailbox,
   carrying its pre-computed arrival time and tie-break key; the
   destination shard drains its mailboxes at every round start (the
   engine's round hook) and schedules the arrival locally.  Mailbox
   accesses are data-race-free because rounds are barrier-stepped:
   senders push strictly between the barriers of round r, the receiver
   drains strictly before the first barrier of round r+1. *)

let stage_self = 0 (* deliver locally, no bandwidth cost *)
let stage_arrival = 1 (* reserve ingress on the receiver's NIC *)
let stage_finish = 2 (* ingress done: deliver *)
let stage_finish_expired = 3 (* ingress done but past the deadline: drop *)
let stage_admitted = 4 (* deferred by admission control, token granted *)

(* The stage field carries one flag bit above the 3-bit stage: a
   fault-injected duplicate delivers its payload twice at finish. *)
let flag_duplicate = 8
let stage_of bits = bits land 7

(* Per-shard flight pool plus that shard's private statistics. *)
type 'm pool = {
  p_stats : Stats.t;
  mutable fl_msg : 'm array;
  mutable fl_src : int array;
  mutable fl_dst : int array;
  mutable fl_size : int array;
  mutable fl_stage : int array;
  mutable fl_label : Stats.label array; (* interned label, for drop accounting *)
  mutable fl_sent_at : float array;
  mutable fl_deadline : float array; (* nan: no deadline *)
  mutable fl_next : int array; (* free-list links *)
  mutable fl_len : int;
  mutable fl_free : int;
}

(* A cross-shard message: everything the destination shard needs to
   schedule the next stage locally.  The send-side work (egress
   reservation, fault verdict, arrival computation, stats) has already
   happened on the source shard. *)
type 'm mail = {
  m_msg : 'm;
  m_src : int;
  m_dst : int;
  m_size : int;
  m_stage : int; (* stage bits to install: self, or arrival (+dup) *)
  m_label : Stats.label;
  m_sent_at : float;
  m_deadline : float;
  m_arrival : float; (* absolute time of the next stage's event *)
  m_key : int; (* tie-break key allocated on the sending shard *)
}

type 'm t = {
  engine : Engine.t;
  topology : Topology.t;
  nics : Nic.t array; (* one shared NIC per node: egress and ingress *)
  pools : 'm pool array; (* one per engine shard *)
  outboxes : 'm mail Queue.t array; (* [src_shard * shards + dst_shard] *)
  mutable interned : string list; (* newest first; replayed into merges *)
  mutable fault : Fault.t option; (* installed injector, if any *)
  (* Installed defenses, if any.  The admission bucket array is shared:
     its (dst, _) rows are only touched by dst's arrival events, which
     run on dst's shard.  Rotation membership caches are per node for
     the same reason — node i's cache is read on i's shard only (as
     sender at send time, as receiver at delivery time). *)
  mutable admission : Defense.Admission.t option;
  mutable rotation : Defense.Rotation.t array; (* per node; [||] = off *)
  mutable handler : (dst:int -> src:int -> 'm -> unit) option;
  mutable trampoline : Engine.callback option;
  mutable obs_on : bool; (* record delivery latencies (one test per delivery) *)
  (* Delivery-latency histograms indexed [dst node][interned label id],
     sized only when telemetry is enabled.  Keyed per destination — not
     per shard — because a node's deliveries happen in the same sim
     order at every shard count, so even the order-sensitive float sums
     inside each histogram are bit-identical, and [obs_metrics] merges
     in fixed node order. *)
  mutable lat : Obs.Metrics.histogram array array;
}

let n t = Array.length t.nics
let engine t = t.engine
let shards t = Array.length t.pools

let stats t =
  (* Merged snapshot: intern in the shared order first so the ids are
     stable, then sum the shards.  Counters are order-insensitive sums,
     so the snapshot equals what a single live instance would hold.
     Always a copy — even at one shard — so a report outlives any
     {!reset} of the network that produced it. *)
  let m = Stats.create ~n:(n t) in
  List.iter (fun name -> ignore (Stats.intern m name)) (List.rev t.interned);
  Array.iter (fun p -> Stats.merge_into ~into:m p.p_stats) t.pools;
  m

let ensure_lat t =
  let nlabels = List.length t.interned in
  Array.iteri
    (fun node row ->
      let cur = Array.length row in
      if nlabels > cur then
        t.lat.(node) <-
          Array.init nlabels (fun i ->
              if i < cur then row.(i) else Obs.Metrics.histogram_create ()))
    t.lat

let intern t name =
  if not (List.mem name t.interned) then t.interned <- name :: t.interned;
  (* Every pool interns the same name sequence, so one name gets the
     same dense id on every shard and a label travels with a flight or
     mail across shards unchanged. *)
  let id = ref Stats.no_label in
  Array.iter (fun p -> id := Stats.intern p.p_stats name) t.pools;
  if t.obs_on then ensure_lat t;
  !id

let enable_obs t =
  t.obs_on <- true;
  if Array.length t.lat <> n t then
    t.lat <- Array.make (n t) [||];
  ensure_lat t

let obs_metrics t =
  let reg = Obs.Metrics.create () in
  (* Oldest-first replay gives label ids in interning order; merge each
     id's per-node histograms under the label's name, in node order —
     shard-count-invariant, like [stats]'s merged snapshot. *)
  List.iteri
    (fun id name ->
      let h = Obs.Metrics.histogram reg ("delivery-latency/" ^ name) in
      Array.iter
        (fun row ->
          if id < Array.length row then
            Obs.Metrics.merge_histogram ~into:h row.(id))
        t.lat)
    (List.rev t.interned);
  reg

(* Called at the instant a labelled message reaches its handler, on the
   destination's shard — the only writer of that node's histograms. *)
let observe_latency t ~dst ~label ~sent_at =
  if label <> Stats.no_label then begin
    let id = Stats.label_id label in
    let row = t.lat.(dst) in
    if id >= 0 && id < Array.length row then
      Obs.Metrics.observe row.(id) (Engine.now t.engine -. sent_at)
  end

let check_node t id name =
  if id < 0 || id >= n t then invalid_arg ("Net." ^ name ^ ": node out of range")

let nic t id =
  check_node t id "nic";
  t.nics.(id)

let set_handler t f = t.handler <- Some f

let set_fault t fault =
  Fault.bind fault ~n:(n t);
  t.fault <- Some fault

let fault t = t.fault

let set_defense t plan =
  Defense.Plan.validate ~n:(n t) plan;
  (match plan.Defense.Plan.admission with
  | None -> t.admission <- None
  | Some c ->
      let a = Defense.Admission.instantiate c in
      Defense.Admission.bind a ~n:(n t);
      t.admission <- Some a);
  t.rotation <-
    (match plan.Defense.Plan.rotation with
    | None -> [||]
    | Some c -> Array.init (n t) (fun _ -> Defense.Rotation.instantiate c ~n:(n t)))

(* Whether [node] is rotated out (quiet) right now. *)
let quiet_now t node =
  Array.length t.rotation > 0
  && Defense.Rotation.quiet t.rotation.(node) ~node ~now:(Engine.now t.engine)

let deliver t ~dst ~src msg =
  match t.handler with
  | None -> failwith "Net.deliver: no handler installed"
  | Some f -> f ~dst ~src msg

let alloc_flight p msg =
  if p.fl_free < 0 then begin
    (* grow the pool, seeding fresh slots with the message at hand *)
    let cap = Array.length p.fl_src in
    let fresh = max 16 (2 * cap) in
    let grow_int a = let b = Array.make fresh 0 in Array.blit a 0 b 0 p.fl_len; b in
    let grow_float a = let b = Array.make fresh nan in Array.blit a 0 b 0 p.fl_len; b in
    let msgs = Array.make fresh msg in
    Array.blit p.fl_msg 0 msgs 0 p.fl_len;
    p.fl_msg <- msgs;
    p.fl_src <- grow_int p.fl_src;
    p.fl_dst <- grow_int p.fl_dst;
    p.fl_size <- grow_int p.fl_size;
    p.fl_stage <- grow_int p.fl_stage;
    p.fl_label <-
      (let b = Array.make fresh Stats.no_label in
       Array.blit p.fl_label 0 b 0 p.fl_len;
       b);
    p.fl_sent_at <- grow_float p.fl_sent_at;
    p.fl_deadline <- grow_float p.fl_deadline;
    p.fl_next <- grow_int p.fl_next;
    for i = cap to fresh - 1 do
      p.fl_next.(i) <- (if i + 1 < fresh then i + 1 else -1)
    done;
    p.fl_free <- cap;
    p.fl_len <- fresh
  end;
  let fl = p.fl_free in
  p.fl_free <- p.fl_next.(fl);
  p.fl_msg.(fl) <- msg;
  fl

let release_flight p fl =
  p.fl_next.(fl) <- p.fl_free;
  p.fl_free <- fl

(* Whether [node] is inside an injected crash window right now. *)
let crashed_now t node =
  match t.fault with
  | None -> false
  | Some fa -> Fault.crashed fa ~node ~now:(Engine.now t.engine)

(* The pool of the shard this domain executes.  Flights are always
   touched from the shard that owns their events, so this is the pool
   the flight index is valid in. *)
let my_pool t = t.pools.(Engine.current_shard t.engine)

let trampoline t fl =
  let p = my_pool t in
  let bits = p.fl_stage.(fl) in
  let stage = stage_of bits in
  if stage = stage_self then begin
    let src = p.fl_src.(fl) and dst = p.fl_dst.(fl) and msg = p.fl_msg.(fl) in
    let label = p.fl_label.(fl) and sent_at = p.fl_sent_at.(fl) in
    release_flight p fl;
    if crashed_now t dst then Stats.record_drop p.p_stats ~node:dst ~label
    else if quiet_now t dst then Stats.record_reject p.p_stats ~node:dst ~label
    else begin
      if t.obs_on then observe_latency t ~dst ~label ~sent_at;
      deliver t ~dst ~src msg
    end
  end
  else if stage = stage_arrival || stage = stage_admitted then begin
    let dst = p.fl_dst.(fl) and size = p.fl_size.(fl) in
    let arrival = Engine.now t.engine in
    (* Admission control runs BEFORE the ingress reservation: a
       turned-away message never costs the receiver bandwidth.  A
       deferred message re-enters here under [stage_admitted] — its
       token is granted, it only releases its backlog slot and falls
       through to the NIC. *)
    let verdict =
      match t.admission with
      | None -> Defense.Admission.Admit
      | Some a ->
          if stage = stage_admitted then begin
            Defense.Admission.drain a ~dst ~src:p.fl_src.(fl);
            Defense.Admission.Admit
          end
          else Defense.Admission.decide a ~now:arrival ~dst ~src:p.fl_src.(fl)
    in
    match verdict with
    | Defense.Admission.Reject ->
        Stats.record_reject p.p_stats ~node:dst ~label:p.fl_label.(fl);
        release_flight p fl
    | Defense.Admission.Defer grant_at ->
        p.fl_stage.(fl) <- stage_admitted lor (bits land flag_duplicate);
        (match t.trampoline with
        | Some cb ->
            ignore (Engine.schedule_call t.engine ~owner:dst ~at:grant_at cb fl)
        | None -> assert false)
    | Defense.Admission.Admit -> (
        (* Reserve the receiver's NIC at arrival, so ingress
           reservations happen in arrival order, not send order. *)
        let finish = Nic.reserve t.nics.(dst) ~now:arrival ~bytes:size in
        if Simtime.is_infinite finish then begin
          Stats.record_drop p.p_stats ~node:dst ~label:p.fl_label.(fl);
          release_flight p fl
        end
        else begin
          let deadline = p.fl_deadline.(fl) in
          let expired =
            (not (Float.is_nan deadline)) && finish -. p.fl_sent_at.(fl) > deadline
          in
          p.fl_stage.(fl) <-
            (if expired then stage_finish_expired else stage_finish)
            lor (bits land flag_duplicate);
          match t.trampoline with
          | Some cb ->
              ignore (Engine.schedule_call t.engine ~owner:dst ~at:finish cb fl)
          | None -> assert false
        end)
  end
  else begin
    (* stage_finish / stage_finish_expired *)
    let dst = p.fl_dst.(fl) and label = p.fl_label.(fl) in
    Stats.record_received p.p_stats ~node:dst ~bytes:p.fl_size.(fl);
    if stage = stage_finish_expired then begin
      Stats.record_drop p.p_stats ~node:dst ~label;
      release_flight p fl
    end
    else if crashed_now t dst then begin
      (* The receiver is inside a crash window when ingress completes:
         the message reached a dead node. *)
      Stats.record_drop p.p_stats ~node:dst ~label;
      release_flight p fl
    end
    else if quiet_now t dst then begin
      (* The receiver rotated out while ingress was in progress: the
         bytes were spent (the attacker's budget is wasted on a quiet
         target) but nothing is served. *)
      Stats.record_reject p.p_stats ~node:dst ~label;
      release_flight p fl
    end
    else begin
      let src = p.fl_src.(fl) and msg = p.fl_msg.(fl) in
      let duplicate = bits land flag_duplicate <> 0 in
      if t.obs_on then observe_latency t ~dst ~label ~sent_at:p.fl_sent_at.(fl);
      release_flight p fl;
      deliver t ~dst ~src msg;
      if duplicate then deliver t ~dst ~src msg
    end
  end

let the_trampoline t =
  match t.trampoline with Some cb -> cb | None -> assert false

(* Drain every mailbox addressed to shard [d]: allocate the flight in
   [d]'s pool and schedule its next stage locally, under the tie-break
   key allocated on the sending shard.  Runs on [d]'s domain at round
   start (and once before single-threaded [run]s via the same hook).
   The arrival times of drained mail are never in [d]'s past — that is
   exactly the engine's lookahead invariant. *)
let drain t d =
  let s = shards t in
  let p = t.pools.(d) in
  for src_sh = 0 to s - 1 do
    let q = t.outboxes.((src_sh * s) + d) in
    while not (Queue.is_empty q) do
      let m = Queue.pop q in
      let fl = alloc_flight p m.m_msg in
      p.fl_src.(fl) <- m.m_src;
      p.fl_dst.(fl) <- m.m_dst;
      p.fl_size.(fl) <- m.m_size;
      p.fl_stage.(fl) <- m.m_stage;
      p.fl_label.(fl) <- m.m_label;
      p.fl_sent_at.(fl) <- m.m_sent_at;
      p.fl_deadline.(fl) <- m.m_deadline;
      ignore
        (Engine.schedule_call_keyed t.engine ~owner:m.m_dst ~at:m.m_arrival
           ~key:m.m_key (the_trampoline t) fl)
    done
  done

let fresh_pool ~n () =
  {
    p_stats = Stats.create ~n;
    fl_msg = [||];
    fl_src = [||];
    fl_dst = [||];
    fl_size = [||];
    fl_stage = [||];
    fl_label = [||];
    fl_sent_at = [||];
    fl_deadline = [||];
    fl_next = [||];
    fl_len = 0;
    fl_free = -1;
  }

let create ~engine ~topology ~bits_per_sec () =
  let n = Topology.n topology in
  let s = Engine.shard_count engine in
  let t =
    {
      engine;
      topology;
      nics = Array.init n (fun _ -> Nic.create ~bits_per_sec ());
      pools = Array.init s (fun _ -> fresh_pool ~n ());
      outboxes = Array.init (s * s) (fun _ -> Queue.create ());
      interned = [];
      fault = None;
      admission = None;
      rotation = [||];
      handler = None;
      trampoline = None;
      obs_on = false;
      lat = [||];
    }
  in
  t.trampoline <- Some (Engine.register_callback engine (fun fl -> trampoline t fl));
  if s > 1 then Engine.set_round_hook engine (fun d -> drain t d);
  t

(* Internal send with sentinel-encoded optionals: [label] is an
   interned id or [Stats.no_label], [deadline] is NaN for none.  The
   caller has validated the node ids.  Executes on the sending node's
   shard (or the main domain before the run starts). *)
let send_msg t ~src ~dst ~size ~label ~deadline msg =
  let now = Engine.now t.engine in
  let cur = Engine.current_shard t.engine in
  let p = t.pools.(cur) in
  let dst_shard = Engine.shard_of_node t.engine dst in
  let post ~stage ~at =
    if dst_shard = cur then begin
      let fl = alloc_flight p msg in
      p.fl_src.(fl) <- src;
      p.fl_dst.(fl) <- dst;
      p.fl_size.(fl) <- size;
      p.fl_stage.(fl) <- stage;
      p.fl_label.(fl) <- label;
      p.fl_sent_at.(fl) <- now;
      p.fl_deadline.(fl) <- deadline;
      ignore (Engine.schedule_call t.engine ~owner:dst ~at (the_trampoline t) fl)
    end
    else begin
      (* Another shard's node: allocate the tie-break key here, where
         it is sharding-invariant, and let the destination shard
         schedule the event when it drains its mailbox. *)
      Queue.push
        {
          m_msg = msg;
          m_src = src;
          m_dst = dst;
          m_size = size;
          m_stage = stage;
          m_label = label;
          m_sent_at = now;
          m_deadline = deadline;
          m_arrival = at;
          m_key = Engine.alloc_key t.engine;
        }
        t.outboxes.((cur * shards t) + dst_shard);
      (* Feedback bound for the engine's solo-shard fast path: nothing
         this mail can cause lands before [at + lookahead]. *)
      Engine.note_send t.engine ~arrival:at
    end
  in
  if (match t.fault with Some fa -> Fault.crashed fa ~node:src ~now | None -> false)
  then
    (* A down node transmits nothing: no bytes charged, the message
       simply never existed on the wire. *)
    Stats.record_drop p.p_stats ~node:dst ~label
  else if quiet_now t src then
    (* A rotated-out authority goes quiet: nothing transmitted, no
       bytes charged, accounted as a defense reject rather than a
       fault drop. *)
    Stats.record_reject p.p_stats ~node:dst ~label
  else if src = dst then
    (* Local delivery: no bandwidth cost, but still asynchronous so
       handlers never reenter the caller. *)
    post ~stage:stage_self ~at:now
  else begin
    Stats.record_send p.p_stats ~node:src ~bytes:size ~label;
    (* Link-fault verdict at send time: the injector's draws are keyed
       per (src, dst, message number), so the verdict depends only on
       the sender's program order — deterministic at any shard count. *)
    let decision =
      match t.fault with
      | None -> Fault.pass
      | Some fa -> Fault.decide fa ~now ~src ~dst
    in
    let egress_done = Nic.reserve t.nics.(src) ~now ~bytes:size in
    if Simtime.is_infinite egress_done then
      Stats.record_drop p.p_stats ~node:dst ~label
    else if decision.Fault.drop then
      (* Lost in the network after transmission: egress was charged,
         no arrival is scheduled. *)
      Stats.record_drop p.p_stats ~node:dst ~label
    else begin
      let arrival =
        Simtime.add egress_done (Topology.latency t.topology ~src ~dst)
        +. decision.Fault.extra_delay
      in
      let stage =
        stage_arrival lor if decision.Fault.duplicate then flag_duplicate else 0
      in
      post ~stage ~at:arrival
    end
  end

let send t ~src ~dst ~size ?label ?deadline msg =
  check_node t src "send";
  check_node t dst "send";
  if size < 0 then invalid_arg "Net.send: negative size";
  let label = match label with None -> Stats.no_label | Some l -> l in
  let deadline = match deadline with None -> nan | Some d -> d in
  send_msg t ~src ~dst ~size ~label ~deadline msg

let broadcast t ~src ~size ?label ?deadline msg =
  check_node t src "broadcast";
  if size < 0 then invalid_arg "Net.send: negative size";
  let label = match label with None -> Stats.no_label | Some l -> l in
  let deadline = match deadline with None -> nan | Some d -> d in
  (* One validated pass: n-1 unicasts in ascending id order whose
     egress reservations walk the source NIC's rate schedule once,
     monotonically (the NIC cursor makes the batch a single sweep). *)
  for dst = 0 to n t - 1 do
    if dst <> src then send_msg t ~src ~dst ~size ~label ~deadline msg
  done

let limit_node t ~node ~start ~stop ~bits_per_sec =
  check_node t node "limit_node";
  Nic.limit_window t.nics.(node) ~start ~stop ~bits_per_sec

(* Arena reset: statistics zeroed (interned labels survive, so a driver
   re-interning the same names gets the same dense ids), flight pools
   and mailboxes emptied, NIC schedules dropped, fault injector and
   handler detached, telemetry off with its histograms zeroed.  The
   trampoline callback and the engine round hook stay installed — they
   are per-network wiring, registered once in [create].  Everything
   keeps its high-water capacity. *)
let reset t =
  Array.iter
    (fun p ->
      Stats.reset p.p_stats;
      for i = 0 to p.fl_len - 1 do
        p.fl_next.(i) <- (if i + 1 < p.fl_len then i + 1 else -1)
      done;
      p.fl_free <- (if p.fl_len > 0 then 0 else -1))
    t.pools;
  Array.iter Queue.clear t.outboxes;
  Array.iter Nic.reset t.nics;
  t.fault <- None;
  t.admission <- None;
  t.rotation <- [||];
  t.handler <- None;
  t.obs_on <- false;
  Array.iter (fun row -> Array.iter Obs.Metrics.histogram_reset row) t.lat

(* Periodic telemetry probes, one recurring event per node.  Each probe
   samples the node's NIC backlog (drain time of everything already
   reserved); the first node of each shard additionally samples its
   shard's event-queue depth.  Probes run on their node's shard with
   ordinary sharding-invariant tie-break keys, read state that the
   node's own shard already owns, and change nothing — so enabling them
   perturbs no simulation outcome, at any shard count, and the
   nic-backlog stream itself is shard-count-invariant (queue depth is
   per-shard by construction and excluded from that guarantee). *)
let install_probes t ~events ~interval ~stop =
  if not (interval > 0.) then
    invalid_arg "Net.install_probes: interval must be positive";
  let engine = t.engine in
  let first_of_shard = Array.make (shards t) max_int in
  for node = 0 to n t - 1 do
    let s = Engine.shard_of_node engine node in
    if node < first_of_shard.(s) then first_of_shard.(s) <- node
  done;
  let rec probe node () =
    let now = Engine.now engine in
    let lane = Engine.current_shard engine in
    let backlog = Float.max 0. (Nic.busy_until t.nics.(node) -. now) in
    Obs.Events.sample events ~lane ~node ~track:"nic-backlog" ~time:now
      ~value:backlog;
    if first_of_shard.(lane) = node then
      Obs.Events.sample events ~lane ~node ~track:"queue-depth" ~time:now
        ~value:(float_of_int (Engine.queue_depth engine));
    let next = now +. interval in
    if next <= stop then
      ignore (Engine.schedule engine ~owner:node ~at:next (probe node))
  in
  for node = 0 to n t - 1 do
    ignore (Engine.schedule engine ~owner:node ~at:Simtime.zero (probe node))
  done
