lib/dirdoc/flags.mli: Format
