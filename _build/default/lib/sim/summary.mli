(** Summary statistics for experiment results.

    Used by the benches to report more than raw rows: percentile
    latencies, and log-log power-law fits that check the measured
    communication complexity against the paper's Table 1 exponents
    (e.g. the synchronous protocol's bytes should grow as ~n³). *)

val mean : float list -> float
(** Raises [Invalid_argument] on an empty list. *)

val stddev : float list -> float
(** Population standard deviation.  Raises on empty. *)

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p] in [\[0, 100\]].  Raises on an empty
    list or out-of-range [p]. *)

val median : float list -> float

type fit = {
  slope : float;      (** exponent of the fitted power law *)
  intercept : float;  (** log-space intercept *)
  r_squared : float;  (** goodness of fit *)
}

val linear_fit : (float * float) list -> fit
(** Ordinary least squares over [(x, y)] pairs.  Raises
    [Invalid_argument] with fewer than two points or zero variance
    in x. *)

val power_law_fit : (float * float) list -> fit
(** Fit [y = c·x^slope] by OLS in log-log space.  All coordinates must
    be positive. *)
