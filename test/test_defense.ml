(* Defense toolbox: token-bucket admission boundaries, the rotation
   schedule, plan canonicalization and digest participation, and the
   end-to-end invariants — defense-off runs identical to undefended
   runs, defended runs bit-identical across shard counts and across
   arena reuse. *)

open Tor_sim
module R = Protocols.Runenv
module E = Torpartial.Experiments

(* --- Admission: GCRA boundaries ------------------------------------------ *)

(* rate 1 msg/s, burst 4, backlog 2: period 1 s, tolerance 3 s. *)
let bucket ?(backlog = 2) () =
  let a =
    Defense.Admission.instantiate
      { Defense.Admission.rate = 1.; burst = 4; backlog }
  in
  Defense.Admission.bind a ~n:2;
  a

let verdict =
  let pp ppf = function
    | Defense.Admission.Admit -> Format.pp_print_string ppf "Admit"
    | Defense.Admission.Defer t -> Format.fprintf ppf "Defer %g" t
    | Defense.Admission.Reject -> Format.pp_print_string ppf "Reject"
  in
  Alcotest.testable pp ( = )

let test_admission_burst_at_capacity () =
  let a = bucket () in
  (* Exactly [burst] messages admitted back-to-back at t=0; the next
     two land in the backlog with grant times one period apart; the
     one after overflows. *)
  for i = 1 to 4 do
    Alcotest.check verdict
      (Printf.sprintf "burst message %d" i)
      Defense.Admission.Admit
      (Defense.Admission.decide a ~now:0. ~dst:1 ~src:0)
  done;
  Alcotest.check verdict "burst + 1 defers to t=1" (Defense.Admission.Defer 1.)
    (Defense.Admission.decide a ~now:0. ~dst:1 ~src:0);
  Alcotest.check verdict "burst + 2 defers to t=2" (Defense.Admission.Defer 2.)
    (Defense.Admission.decide a ~now:0. ~dst:1 ~src:0);
  Alcotest.check verdict "backlog full rejects" Defense.Admission.Reject
    (Defense.Admission.decide a ~now:0. ~dst:1 ~src:0);
  (* Other (dst, src) pairs have their own cursors. *)
  Alcotest.check verdict "independent pair unaffected" Defense.Admission.Admit
    (Defense.Admission.decide a ~now:0. ~dst:0 ~src:1)

let test_admission_refill_on_window_edge () =
  let a = bucket ~backlog:0 () in
  for _ = 1 to 4 do
    ignore (Defense.Admission.decide a ~now:0. ~dst:1 ~src:0)
  done;
  (* After a full burst at t=0 the next conforming instant is exactly
     one period later — just below it still rejects. *)
  Alcotest.check verdict "just below the edge" Defense.Admission.Reject
    (Defense.Admission.decide a ~now:0.999999 ~dst:1 ~src:0);
  Alcotest.check verdict "exactly on the edge" Defense.Admission.Admit
    (Defense.Admission.decide a ~now:1. ~dst:1 ~src:0)

let test_admission_backlog_drain () =
  let a = bucket () in
  for _ = 1 to 4 do
    ignore (Defense.Admission.decide a ~now:0. ~dst:1 ~src:0)
  done;
  ignore (Defense.Admission.decide a ~now:0. ~dst:1 ~src:0);
  ignore (Defense.Admission.decide a ~now:0. ~dst:1 ~src:0);
  Alcotest.(check int) "two queued" 2 (Defense.Admission.queued a ~dst:1 ~src:0);
  Defense.Admission.drain a ~dst:1 ~src:0;
  Defense.Admission.drain a ~dst:1 ~src:0;
  Alcotest.(check int) "drained" 0 (Defense.Admission.queued a ~dst:1 ~src:0);
  Alcotest.check_raises "over-drain is a bug"
    (Invalid_argument "Defense.Admission.drain: empty backlog") (fun () ->
      Defense.Admission.drain a ~dst:1 ~src:0)

let test_admission_validate () =
  List.iter
    (fun config ->
      match Defense.Admission.instantiate config with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      { Defense.Admission.rate = 0.; burst = 1; backlog = 0 };
      { Defense.Admission.rate = 1.; burst = 0; backlog = 0 };
      { Defense.Admission.rate = 1.; burst = 1; backlog = -1 };
    ]

(* --- Rotation: schedule properties --------------------------------------- *)

let rot_config = { Defense.Rotation.seed = "test"; out = 2; epoch = 100. }

let test_rotation_schedule () =
  List.iter
    (fun epoch ->
      let out = Defense.Rotation.out_nodes rot_config ~n:9 ~epoch in
      Alcotest.(check int)
        (Printf.sprintf "epoch %d: |out| = out" epoch)
        2 (List.length out);
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d: distinct, in range" epoch)
        true
        (List.for_all (fun i -> i >= 0 && i < 9) out
        && List.length (List.sort_uniq compare out) = 2);
      Alcotest.(check (list int))
        (Printf.sprintf "epoch %d: schedule is pure" epoch)
        out
        (Defense.Rotation.out_nodes rot_config ~n:9 ~epoch))
    [ 0; 1; 2; 17 ];
  (* Different epochs draw different subsets somewhere in the first
     few — a constant schedule would defend nothing. *)
  let subsets =
    List.map
      (fun e -> Defense.Rotation.out_nodes rot_config ~n:9 ~epoch:e)
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "subsets vary across epochs" true
    (List.length (List.sort_uniq compare subsets) > 1)

let test_rotation_epoch_edges () =
  Alcotest.(check int) "just below the edge" 0
    (Defense.Rotation.epoch_of rot_config ~now:99.999);
  Alcotest.(check int) "exactly on the edge" 1
    (Defense.Rotation.epoch_of rot_config ~now:100.);
  (* The memoized instance agrees with the pure predicate across the
     epochs it caches through. *)
  let t = Defense.Rotation.instantiate rot_config ~n:9 in
  List.iter
    (fun now ->
      for node = 0 to 8 do
        Alcotest.(check bool)
          (Printf.sprintf "quiet(%d, %g) memo == pure" node now)
          (Defense.Rotation.quiet_at rot_config ~n:9 ~node ~now)
          (Defense.Rotation.quiet t ~node ~now)
      done)
    [ 0.; 50.; 99.999; 100.; 250.; 1000. ]

let test_rotation_validate () =
  List.iter
    (fun config ->
      match Defense.Rotation.validate ~n:9 config with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "expected Invalid_argument")
    [
      { Defense.Rotation.seed = "x"; out = 9; epoch = 100. };
      { Defense.Rotation.seed = "x"; out = -1; epoch = 100. };
      { Defense.Rotation.seed = "x"; out = 1; epoch = 0. };
    ]

(* --- Plan: presets and digest participation ------------------------------ *)

let test_plan_presets () =
  Alcotest.(check bool) "none is empty" true
    (Defense.Plan.is_empty Defense.Plan.none);
  List.iter
    (fun (name, expected) ->
      match (Defense.Plan.preset name, expected) with
      | Some got, Some want ->
          Alcotest.(check bool) name true (got = want)
      | None, None -> ()
      | _ -> Alcotest.fail ("preset " ^ name))
    [
      ("none", Some Defense.Plan.none);
      ("admission", Some Defense.Plan.admission_only);
      ("rotation", Some Defense.Plan.rotation_only);
      ("both", Some Defense.Plan.both);
      ("bogus", None);
    ]

let spec_with defense = { R.Spec.default with R.Spec.defense }

let test_spec_digest_distinct () =
  (* The defense member participates in the spec digest: every preset
     (and the absent field) pins a distinct digest, so no defended
     result can be mistaken for an undefended one. *)
  let digests =
    List.map
      (fun d -> R.Spec.digest (spec_with d))
      [
        None;
        Some Defense.Plan.none;
        Some Defense.Plan.admission_only;
        Some Defense.Plan.rotation_only;
        Some Defense.Plan.both;
      ]
  in
  Alcotest.(check int) "all digests distinct" 5
    (List.length (List.sort_uniq compare digests))

let test_plan_canonical_roundtrip_stability () =
  (* Canonical strings are the digest preimage: distinct configs must
     not collide textually. *)
  let canon =
    List.map Defense.Plan.canonical
      [
        Defense.Plan.none;
        Defense.Plan.admission_only;
        Defense.Plan.rotation_only;
        Defense.Plan.both;
        {
          Defense.Plan.admission = Some { Defense.Admission.rate = 2.; burst = 31; backlog = 64 };
          rotation = None;
        };
        {
          Defense.Plan.admission = None;
          rotation = Some { Defense.Rotation.seed = "mptc"; out = 1; epoch = 101. };
        };
      ]
  in
  Alcotest.(check int) "canonical strings distinct" 6
    (List.length (List.sort_uniq compare canon))

(* --- Stats: reject accounting -------------------------------------------- *)

let test_stats_rejected_counters () =
  let s = Stats.create ~n:3 in
  let vote = Stats.intern s "vote" in
  Stats.record_reject s ~node:1 ~label:vote;
  Stats.record_reject s ~node:1 ~label:vote;
  Stats.record_reject s ~node:2 ~label:Stats.no_label;
  Alcotest.(check int) "rejected total" 3 (Stats.rejected s);
  Alcotest.(check int) "rejected at node 1" 2 (Stats.rejected_at s 1);
  Alcotest.(check int) "rejected by label" 2 (Stats.label_rejected s "vote");
  Alcotest.(check int) "dropped untouched" 0 (Stats.dropped s);
  (* merge_into folds rejects like drops. *)
  let dst = Stats.create ~n:3 in
  ignore (Stats.intern dst "vote");
  Stats.merge_into ~into:dst s;
  Alcotest.(check int) "merged total" 3 (Stats.rejected dst);
  Alcotest.(check int) "merged node" 2 (Stats.rejected_at dst 1);
  Alcotest.(check int) "merged label" 2 (Stats.label_rejected dst "vote");
  Stats.reset s;
  Alcotest.(check int) "reset total" 0 (Stats.rejected s);
  Alcotest.(check int) "reset node" 0 (Stats.rejected_at s 1);
  Alcotest.(check int) "reset label" 0 (Stats.label_rejected s "vote")

(* --- End-to-end invariants ------------------------------------------------ *)

let summary (r : R.report) =
  let auth (a : R.authority_result) =
    ( (match a.R.consensus with
      | Some c -> Crypto.Digest32.hex (Dirdoc.Consensus.digest c)
      | None -> "none"),
      a.R.signatures,
      a.R.decided_at,
      a.R.network_time )
  in
  let stats = r.R.result.R.stats in
  ( (r.R.protocol, r.R.success, r.R.agreement, r.R.success_latency),
    ( r.R.total_bytes,
      r.R.dropped,
      r.R.rejected,
      Stats.dropped_labels stats,
      Stats.rejected_labels stats ),
    Array.to_list (Array.map auth r.R.result.R.per_authority),
    List.map Trace.render (Trace.records r.R.result.R.trace) )

let base_spec = { R.Spec.default with R.Spec.n_relays = 400; horizon = 600. }

(* An admission config tight enough to actually defer and reject
   directory traffic in a 9-authority run, so the defended paths (the
   backlog, the granted-flight stage, the reject accounting) are the
   ones under test — the Onion Pass defaults never trip on benign
   load. *)
let tight_defense =
  {
    Defense.Plan.admission =
      Some { Defense.Admission.rate = 0.05; burst = 2; backlog = 4 };
    rotation = Some { Defense.Rotation.seed = "test"; out = 1; epoch = 100. };
  }

let test_defense_off_identical () =
  (* An explicit empty plan must not perturb the simulation: same
     bytes, same trace, same verdicts as the absent field. *)
  let off = summary (E.run E.Current (R.of_spec (spec_with None))) in
  let empty =
    summary (E.run E.Current (R.of_spec (spec_with (Some Defense.Plan.none))))
  in
  Alcotest.(check bool) "empty plan == no plan" true (off = empty)

let test_defended_run_rejects () =
  let spec = { base_spec with R.Spec.defense = Some tight_defense } in
  let r = E.run E.Current (R.of_spec spec) in
  Alcotest.(check bool) "defended run turns traffic away" true (r.R.rejected > 0);
  let undefended = E.run E.Current (R.of_spec base_spec) in
  Alcotest.(check int) "undefended run rejects nothing" 0 undefended.R.rejected

let test_defended_sharding_invariant () =
  let spec = { base_spec with R.Spec.defense = Some tight_defense } in
  List.iter
    (fun protocol ->
      let one = summary (E.run protocol (R.of_spec { spec with R.Spec.shards = 1 })) in
      List.iter
        (fun shards ->
          let got =
            summary (E.run protocol (R.of_spec { spec with R.Spec.shards }))
          in
          Alcotest.(check bool)
            (Printf.sprintf "defended: %d shards == 1 shard" shards)
            true (got = one))
        [ 2; 4 ])
    [ E.Current; E.Ours ]

let test_defended_arena_reuse () =
  (* Defenses survive Arena reset-on-acquire: a defended plan on a
     dirty, reused arena reproduces its fresh run bit for bit — and a
     subsequent undefended plan through the same context is not
     polluted by the defended one. *)
  let defended = { base_spec with R.Spec.defense = Some tight_defense } in
  let ctx = Exec.Campaign.create defended in
  let warmup =
    Exec.Campaign.plan_of_spec
      { defended with R.Spec.attacks = Attack.Ddos.knockout ~n:9 () }
  in
  ignore (E.run E.Current (Exec.Campaign.env_of ctx warmup) : R.report);
  let fresh = summary (E.run E.Current (R.of_spec defended)) in
  let reused =
    summary
      (E.run E.Current (Exec.Campaign.env_of ctx (Exec.Campaign.plan_of_spec defended)))
  in
  Alcotest.(check bool) "defended: reused arena == fresh" true (reused = fresh)

let suite =
  [
    ("admission: burst exactly at capacity", `Quick, test_admission_burst_at_capacity);
    ("admission: refill on the window edge", `Quick, test_admission_refill_on_window_edge);
    ("admission: backlog overflow and drain", `Quick, test_admission_backlog_drain);
    ("admission: config validation", `Quick, test_admission_validate);
    ("rotation: schedule properties", `Quick, test_rotation_schedule);
    ("rotation: epoch edges and memoization", `Quick, test_rotation_epoch_edges);
    ("rotation: config validation", `Quick, test_rotation_validate);
    ("plan: presets", `Quick, test_plan_presets);
    ("plan: spec digests distinct per defense", `Quick, test_spec_digest_distinct);
    ("plan: canonical strings distinct", `Quick, test_plan_canonical_roundtrip_stability);
    ("stats: rejected counters", `Quick, test_stats_rejected_counters);
    ("e2e: empty plan == no plan", `Quick, test_defense_off_identical);
    ("e2e: defended run rejects, undefended does not", `Quick, test_defended_run_rejects);
    ("e2e: defended run bit-identical across shards", `Quick, test_defended_sharding_invariant);
    ("e2e: defended arena reuse bit-identical", `Quick, test_defended_arena_reuse);
  ]
