(** Relay status flags (dir-spec §3.4.1).

    A vote asserts a set of flags per relay; consensus aggregation sets
    a flag iff a strict majority of voting authorities assert it (a tie
    leaves the flag unset — Figure 2 of the paper). *)

type flag =
  | Authority
  | BadExit
  | Exit
  | Fast
  | Guard
  | HSDir
  | MiddleOnly
  | NoEdConsensus
  | Running
  | Stable
  | StaleDesc
  | V2Dir
  | Valid

type t
(** An immutable set of flags. *)

val empty : t
val singleton : flag -> t
val of_list : flag list -> t
val to_list : t -> flag list
(** In dir-spec order (alphabetical). *)

val add : flag -> t -> t
val remove : flag -> t -> t
val mem : flag -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val cardinal : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val all : flag list
(** Every known flag, in dir-spec order. *)

val flag_to_string : flag -> string
val flag_of_string : string -> flag option

val to_string : t -> string
(** Space-separated dir-spec rendering, e.g. ["Fast Running Valid"]. *)

val feed : Crypto.Sink.t -> t -> unit
(** [feed sink t] writes exactly [to_string t] into [sink] without
    allocating the intermediate string. *)

val of_string : string -> (t, string) result
(** Parse a space-separated flag list; fails on unknown flags. *)

val pp : Format.formatter -> t -> unit
