examples/sustained_attack.mli:
