(* Quickstart: run one consensus instance of the partial-synchrony
   directory protocol among 9 authorities and inspect the result.

     dune exec examples/quickstart.exe *)

module R = Protocols.Runenv

let () =
  (* 1. Build a run environment: 9 authorities, realistic latencies,
     250 Mbit/s links, and a synthetic 2,000-relay network with
     realistic cross-authority vote divergence. *)
  let env =
    R.of_spec { R.Spec.default with seed = "quickstart"; n_relays = 2000 }
  in

  (* 2. Run the paper's protocol (dissemination -> HotStuff agreement
     -> aggregation). *)
  let result = Torpartial.Protocol.run env in

  (* 3. Inspect the outcome. *)
  Printf.printf "protocol: %s\n" result.R.protocol;
  Printf.printf "success:  %b\n" (R.success env result);
  (match R.success_latency result with
  | Some t -> Printf.printf "latency:  %.2f s\n" t
  | None -> print_endline "latency:  (no consensus)");

  (* Every authority computed the same document and holds a majority
     of signatures on it. *)
  Array.iteri
    (fun i (a : R.authority_result) ->
      match a.consensus with
      | Some c ->
          Printf.printf "authority %d (%s): %d relays, %d signatures, digest %s\n" i
            (Dirdoc.Workload.authority_nickname i)
            (Dirdoc.Consensus.n_entries c) a.signatures
            (Crypto.Digest32.short_hex (Dirdoc.Consensus.digest c))
      | None -> Printf.printf "authority %d: no consensus\n" i)
    result.R.per_authority;

  (* 4. The consensus document itself serializes to dir-spec-style
     text that Tor clients would download. *)
  match result.R.per_authority.(0).R.consensus with
  | Some c ->
      let text = Dirdoc.Consensus.serialize c in
      let preview = String.sub text 0 (min 400 (String.length text)) in
      Printf.printf "\n--- consensus document (first 400 bytes) ---\n%s...\n" preview
  | None -> ()
