lib/crypto/keyring.mli:
