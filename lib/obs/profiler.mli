(** Wall-clock engine profiler: per-shard busy vs barrier-wait time.

    The sharded engine steps in barrier-synchronized rounds; whether a
    scaling curve is flat because shards are compute-bound or because
    they spend the round blocked on the barrier is invisible from sim
    time.  This records, per shard, wall seconds spent dispatching
    events ([busy]) and wall seconds inside [Barrier.wait] ([wait]),
    plus round and event counts.

    Each shard's domain writes only its own indices, and domains join
    before {!report} reads, so plain arrays are safe. *)

type t

val create : shards:int -> t

val now : unit -> float
(** [Unix.gettimeofday], aliased so call sites don't depend on [Unix]
    directly. *)

val add_busy : t -> int -> float -> unit
val add_wait : t -> int -> float -> unit
val add_events : t -> int -> int -> unit
val incr_rounds : t -> int -> unit

val add_barriers : t -> int -> int -> unit
(** Count barrier crossings separately from rounds: a round that skips
    ahead (solo-shard fast path) still crosses its two barriers, so the
    two counters together say whether a flat scaling curve is
    barrier-bound or compute-bound. *)

type shard = {
  shard : int;
  busy_s : float;
  wait_s : float;
  rounds : int;
  barriers : int;
  events : int;
}

val report : t -> shard list
(** One entry per shard, in shard order. *)
