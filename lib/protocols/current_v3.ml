module Sim = Tor_sim
module Signature = Crypto.Signature

let name = "current"
let round_seconds = 150.
let fetch_timeout = 10.

type msg =
  | Vote_push of Dirdoc.Vote.t
  | Vote_request of { wanted : int list }
  | Vote_reply of Dirdoc.Vote.t
  | Sig_push of { digest : Crypto.Digest32.t; signature : Signature.t }
  | Sig_request

type node = {
  id : int;
  votes : Dirdoc.Vote.t option array; (* indexed by authority *)
  sig_round : Siground.t;
  mutable last_vote_at : Sim.Simtime.t;
  mutable replied : bool array; (* peer answered my fetch round *)
}

(* The simulated addresses Shadow assigns in the paper's Figure 1 log. *)
let address_of id = Printf.sprintf "100.0.0.%d:8080" (id + 1)

let msg_size = function
  | Vote_push v | Vote_reply v ->
      Wire.vote_push_bytes ~n_relays:(Dirdoc.Vote.n_relays v)
  | Vote_request _ -> Wire.request_bytes
  | Sig_push _ -> Wire.signature_bytes + Wire.control_bytes
  | Sig_request -> Wire.request_bytes

module Simulator = Runenv.Simulator (struct
  type nonrec msg = msg
end)

let run (env : Runenv.t) =
  let n = env.n in
  let need = Runenv.majority ~n in
  let engine, net = Simulator.obtain ~driver:name env in
  let trace = Sim.Trace.create ~lanes:(Sim.Engine.shard_count engine) () in
  Runenv.apply_attacks env net;
  let nodes =
    Array.init n (fun id ->
        {
          id;
          votes = Array.make n None;
          sig_round = Siground.create ~keyring:env.keyring ~node:id ~need;
          last_vote_at = 0.;
          replied = Array.make n false;
        })
  in
  let now () = Sim.Engine.now engine in
  let log ?node level fmt = Sim.Trace.logf trace ~time:(now ()) ?node level fmt in
  (* Message labels, interned once so per-send accounting is an array
     add (DESIGN.md Â§7). *)
  let lbl_vote = Sim.Net.intern net "vote" in
  let lbl_vote_request = Sim.Net.intern net "vote-request" in
  let lbl_vote_fetch = Sim.Net.intern net "vote-fetch" in
  let lbl_sig = Sim.Net.intern net "sig" in
  let lbl_sig_request = Sim.Net.intern net "sig-request" in
  let lbl_sig_fetch = Sim.Net.intern net "sig-fetch" in
  let until_cap = Float.min env.horizon (4. *. round_seconds) in
  let tel = Runenv.Telemetry.start env ~engine ~net ~stop:until_cap () in
  (* Hoisted so the hot send path does not rebuild the option. *)
  let dir_deadline = Some Wire.dir_connection_timeout in
  (* Authorities holding identical vote sets share one aggregation;
     run-local, so parallel sweep runs stay independent. *)
  let agg_memos =
    Array.init (Sim.Engine.shard_count engine) (fun _ ->
        Dirdoc.Aggregate.Memo.create ())
  in
  let send ~src ~dst ~label m =
    (* Vote-sized transfers ride Tor's directory connections and give
       up after the client timeout; control messages are too small to
       stall. *)
    let deadline =
      match m with
      | Vote_push _ | Vote_reply _ -> dir_deadline
      | Vote_request _ | Sig_push _ | Sig_request -> None
    in
    Sim.Net.send net ~src ~dst ~size:(msg_size m) ~label ?deadline m
  in
  let store_vote node (v : Dirdoc.Vote.t) =
    let src = v.Dirdoc.Vote.authority in
    if src >= 0 && src < n && node.votes.(src) = None && now () <= 2. *. round_seconds
    then begin
      node.votes.(src) <- Some v;
      node.last_vote_at <- now ()
    end
  in
  let store_sig node ~digest ~signature =
    if now () <= 4. *. round_seconds then
      Siground.store node.sig_round ~now:(now ()) ~digest signature
  in
  Sim.Net.set_handler net (fun ~dst ~src msg ->
      let node = nodes.(dst) in
      if Runenv.awake env dst ~now:(now ()) then
        match msg with
        | Vote_push v | Vote_reply v ->
            node.replied.(src) <- true;
            store_vote node v
        | Vote_request { wanted } ->
            List.iter
              (fun j ->
                match node.votes.(j) with
                | Some v -> send ~src:dst ~dst:src ~label:lbl_vote_fetch (Vote_reply v)
                | None -> ())
              wanted
        | Sig_push { digest; signature } -> store_sig node ~digest ~signature
        | Sig_request -> (
            match (Siground.consensus node.sig_round, Siground.my_signature node.sig_round) with
            | Some c, Some signature ->
                send ~src:dst ~dst:src ~label:lbl_sig_fetch
                  (Sig_push { digest = Dirdoc.Consensus.digest c; signature })
            | _ -> ()));
  (* Behaviour helpers -------------------------------------------------- *)
  let equivocating_variant id =
    (* A second, conflicting vote: same authority, one relay dropped. *)
    let v = env.votes.(id) in
    let relays = Array.to_list v.Dirdoc.Vote.relays in
    let trimmed = match relays with [] -> [] | _ :: rest -> rest in
    Dirdoc.Vote.create ~authority:id
      ~authority_fingerprint:v.Dirdoc.Vote.authority_fingerprint
      ~nickname:v.Dirdoc.Vote.nickname ~published:v.Dirdoc.Vote.published
      ~valid_after:v.Dirdoc.Vote.valid_after ~relays:trimmed
  in
  (* Round 1: push votes. ------------------------------------------------ *)
  let vote_now node =
    let id = node.id in
    node.votes.(id) <- Some env.votes.(id);
    node.last_vote_at <- now ();
    log ~node:id Sim.Trace.Notice "Time to vote.";
    for dst = 0 to n - 1 do
      if dst <> id then send ~src:id ~dst ~label:lbl_vote (Vote_push env.votes.(id))
    done
  in
  Array.iter
    (fun node ->
      let id = node.id in
      ignore
        (Sim.Engine.schedule engine ~owner:id ~at:0. (fun () ->
             match env.behaviors.(id) with
             | Runenv.Silent -> ()
             | Runenv.Honest -> vote_now node
             | Runenv.Crashed { start; stop } ->
                 if start > 0. then vote_now node
                 else
                   (* Down at vote time: push the vote on recovery.
                      Peers discard it if the voting window has closed
                      (store_vote's cutoff), exactly like a late real
                      authority. *)
                   ignore
                     (Sim.Engine.schedule engine ~at:stop (fun () -> vote_now node))
             | Runenv.Equivocating ->
                 node.votes.(id) <- Some env.votes.(id);
                 let variant = equivocating_variant id in
                 for dst = 0 to n - 1 do
                   if dst <> id then
                     let v = if dst land 1 = 0 then env.votes.(id) else variant in
                     send ~src:id ~dst ~label:lbl_vote (Vote_push v)
                 done)))
    nodes;
  (* Round 2: fetch missing votes (with one mid-round retry). ------------ *)
  let fetch_missing node ~retry =
    if not (Runenv.awake env node.id ~now:(now ())) then ()
    else begin
      let missing =
        List.filter (fun j -> node.votes.(j) = None) (List.init n Fun.id)
      in
      if missing <> [] then begin
        if not retry then begin
          log ~node:node.id Sim.Trace.Notice "Time to fetch any votes that we're missing.";
          let fingerprints =
            String.concat "\n "
              (List.map (Crypto.Keyring.fingerprint env.keyring) missing)
          in
          log ~node:node.id Sim.Trace.Notice
            "We're missing votes from %d authorities (%s). Asking every other authority for a copy."
            (List.length missing) fingerprints
        end;
        node.replied <- Array.make n false;
        for dst = 0 to n - 1 do
          if dst <> node.id then
            send ~src:node.id ~dst ~label:lbl_vote_request (Vote_request { wanted = missing })
        done;
        ignore
          (Sim.Engine.schedule_in engine ~after:fetch_timeout (fun () ->
               for dst = 0 to n - 1 do
                 if dst <> node.id && not node.replied.(dst) then
                   log ~node:node.id Sim.Trace.Info
                     "connection_dir_client_request_failed(): Giving up downloading votes from %s"
                     (address_of dst)
               done))
      end
    end
  in
  (* Tor re-requests missing votes throughout the fetch round; each
     retry goes to every peer and each holder answers with a full copy,
     which is the duplication that inflates traffic under attack. *)
  let retry_interval = 20. in
  Array.iter
    (fun node ->
      ignore
        (Sim.Engine.schedule engine ~owner:node.id ~at:round_seconds (fun () ->
             fetch_missing node ~retry:false));
      let retries = int_of_float ((round_seconds -. retry_interval) /. retry_interval) in
      for k = 1 to retries do
        ignore
          (Sim.Engine.schedule engine ~owner:node.id
             ~at:(round_seconds +. (float_of_int k *. retry_interval))
             (fun () -> fetch_missing node ~retry:true))
      done)
    nodes;
  (* Round 3: compute consensus and push signatures. --------------------- *)
  Array.iter
    (fun node ->
      ignore
        (Sim.Engine.schedule engine ~owner:node.id ~at:(2. *. round_seconds)
           (fun () ->
             if not (Runenv.awake env node.id ~now:(now ())) then ()
             else begin
               log ~node:node.id Sim.Trace.Notice "Time to compute a consensus.";
               let held = Array.to_list node.votes |> List.filter_map Fun.id in
               if List.length held < need then
                 log ~node:node.id Sim.Trace.Warn
                   "We don't have enough votes to generate a consensus: %d of %d"
                   (List.length held) need
               else begin
                 let c =
                   Dirdoc.Aggregate.consensus_memo
                     ~memo:agg_memos.(Sim.Engine.current_shard engine)
                     ~valid_after:env.valid_after ~votes:held
                 in
                 let signature = Siground.set_consensus node.sig_round ~now:(now ()) c in
                 for dst = 0 to n - 1 do
                   if dst <> node.id then
                     send ~src:node.id ~dst ~label:lbl_sig
                       (Sig_push { digest = Dirdoc.Consensus.digest c; signature })
                 done
               end
             end)))
    nodes;
  (* Round 4: fetch missing signatures. ----------------------------------- *)
  Array.iter
    (fun node ->
      ignore
        (Sim.Engine.schedule engine ~owner:node.id ~at:(3. *. round_seconds)
           (fun () ->
             if Runenv.awake env node.id ~now:(now ())
                && Siground.consensus node.sig_round <> None
                && Siground.count node.sig_round < need
             then
               for dst = 0 to n - 1 do
                 if dst <> node.id then
                   send ~src:node.id ~dst ~label:lbl_sig_request Sig_request
               done)))
    nodes;
  Sim.Engine.run ~until:until_cap engine;
  (* Phase spans: the protocol is lock-step, so the spans are the
     rounds themselves, emitted after the run from each node's final
     state.  A phase a node never reached (no consensus, so no
     signature collection) gets no span, which is what makes an
     incomplete span a stall diagnosis. *)
  let run_end = now () in
  Array.iter
    (fun node ->
      if Runenv.participates env.behaviors.(node.id) then begin
        let id = node.id in
        let held =
          Array.fold_left
            (fun acc v -> if v = None then acc else acc + 1)
            0 node.votes
        in
        let consensus = Siground.consensus node.sig_round in
        let decided = Siground.decided_at node.sig_round in
        Runenv.Telemetry.span tel ~node:id ~phase:"vote-dissemination"
          ~start:0. ~stop:round_seconds;
        Runenv.Telemetry.span tel ~node:id ~phase:"vote-collection"
          ~start:round_seconds ~stop:(2. *. round_seconds)
          ~complete:(held >= need);
        if held >= need then
          Runenv.Telemetry.span tel ~node:id ~phase:"aggregation"
            ~start:(2. *. round_seconds) ~stop:(3. *. round_seconds)
            ~complete:(consensus <> None);
        if consensus <> None then
          Runenv.Telemetry.span tel ~node:id ~phase:"signature-exchange"
            ~start:(2. *. round_seconds)
            ~stop:
              (match decided with
              | Some d -> Float.max d (2. *. round_seconds)
              | None -> run_end)
            ~complete:(decided <> None)
      end)
    nodes;
  let per_authority =
    Array.map
      (fun node ->
        let decided_at = Siground.decided_at node.sig_round in
        let network_time =
          match decided_at with
          | Some d ->
              (* Paper metric: per-round network time, i.e. vote-round
                 completion plus signature-round completion. *)
              Some (node.last_vote_at +. (d -. (2. *. round_seconds)))
          | None -> None
        in
        {
          Runenv.consensus = Siground.consensus node.sig_round;
          signatures = Siground.count node.sig_round;
          decided_at;
          network_time;
        })
      nodes
  in
  let obs = Runenv.Telemetry.finish tel ~engine ~net ~per_authority in
  { Runenv.protocol = name; per_authority; stats = Sim.Net.stats net; trace; obs }
