type span = {
  node : int;
  phase : string;
  start : float;
  stop : float;
  complete : bool;
}

type sample = { node : int; track : string; time : float; value : float }

type item = Span of span | Sample of sample

(* Newest-first per lane; only the lane's own domain pushes, so no
   synchronization is needed (domains join before the merge reads). *)
type t = { lanes : item list array }

let create ?(lanes = 1) () =
  if lanes < 1 then invalid_arg "Events.create: lanes must be positive";
  { lanes = Array.make lanes [] }

let push t lane item =
  if lane < 0 || lane >= Array.length t.lanes then
    invalid_arg "Events: lane out of range";
  t.lanes.(lane) <- item :: t.lanes.(lane)

let span t ~lane ~node ~phase ~start ~stop ~complete =
  push t lane (Span { node; phase; start; stop; complete })

let sample t ~lane ~node ~track ~time ~value =
  push t lane (Sample { node; track; time; value })

(* Full-field comparators: the sort result must not depend on which
   lane (or in what intra-lane order) an item was recorded, only on the
   item itself.  Duplicates are kept — they compare equal and the sort
   is a permutation either way. *)

let compare_span (a : span) (b : span) =
  match Float.compare a.start b.start with
  | 0 -> (
      match Int.compare a.node b.node with
      | 0 -> (
          match String.compare a.phase b.phase with
          | 0 -> (
              match Float.compare a.stop b.stop with
              | 0 -> Bool.compare a.complete b.complete
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let compare_sample (a : sample) (b : sample) =
  match Float.compare a.time b.time with
  | 0 -> (
      match Int.compare a.node b.node with
      | 0 -> (
          match String.compare a.track b.track with
          | 0 -> Float.compare a.value b.value
          | c -> c)
      | c -> c)
  | c -> c

let spans t =
  Array.fold_left
    (fun acc lane ->
      List.fold_left
        (fun acc item ->
          match item with Span s -> s :: acc | Sample _ -> acc)
        acc lane)
    [] t.lanes
  |> List.sort compare_span

let samples t =
  Array.fold_left
    (fun acc lane ->
      List.fold_left
        (fun acc item ->
          match item with Sample s -> s :: acc | Span _ -> acc)
        acc lane)
    [] t.lanes
  |> List.sort compare_sample
