type t = { secrets : string array; fingerprints : string array }

let create ?(seed = "torpartial-pki") ~n () =
  if n <= 0 then invalid_arg "Keyring.create: n must be positive";
  let derive id = Hmac.mac ~key:seed (Printf.sprintf "node-secret-%d" id) in
  let secrets = Array.init n derive in
  let fingerprints =
    Array.init n (fun id ->
        let hex = Sha256.digest_hex ("identity-" ^ secrets.(id)) in
        String.uppercase_ascii (String.sub hex 0 40))
  in
  { secrets; fingerprints }

let size t = Array.length t.secrets

let check t id name =
  if id < 0 || id >= size t then invalid_arg ("Keyring." ^ name ^ ": bad node id")

let secret t id =
  check t id "secret";
  t.secrets.(id)

let fingerprint t id =
  check t id "fingerprint";
  t.fingerprints.(id)

let mem t id = id >= 0 && id < size t
