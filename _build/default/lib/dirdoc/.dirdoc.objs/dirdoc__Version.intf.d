lib/dirdoc/version.mli: Format
