(** Relay status entries as they appear in a vote.

    One value of this type corresponds to one "r"/"s"/"v"/"pr"/"w"/"p"/
    "m" line group in a v3 status vote.  Identity is the 40-hex-char
    fingerprint. *)

type t = {
  fingerprint : string;  (** 40 uppercase hex chars *)
  nickname : string;
  address : string;      (** dotted quad *)
  or_port : int;
  dir_port : int;
  published : float;     (** POSIX seconds *)
  flags : Flags.t;
  version : Version.t;
  protocols : string;    (** dir-spec "pr" line payload *)
  bandwidth : int;       (** advertised, in kB/s *)
  measured : int option; (** bandwidth-authority measurement, kB/s *)
  exit_policy : Exit_policy.t;
  descriptor_digest : Crypto.Digest32.t;
}

val make :
  fingerprint:string ->
  nickname:string ->
  address:string ->
  or_port:int ->
  ?dir_port:int ->
  published:float ->
  flags:Flags.t ->
  version:Version.t ->
  ?protocols:string ->
  bandwidth:int ->
  ?measured:int ->
  exit_policy:Exit_policy.t ->
  unit ->
  t
(** Validates the fingerprint (40 hex chars), ports, and bandwidth;
    derives the descriptor digest from the other fields.  Raises
    [Invalid_argument] on malformed input. *)

val default_protocols : string
(** The "pr" payload advertised by a current relay. *)

val compare_fingerprint : t -> t -> int
(** Order by fingerprint — the canonical order of entries in votes and
    consensus documents. *)

val equal : t -> t -> bool
(** Full structural equality (all voted properties). *)

val entry_wire_bytes : int
(** Modelled serialized size of one relay entry (600 bytes, the scale
    of real dir-spec vote entries; DESIGN.md §4.1 explains how this
    interacts with the shared-NIC model and Tor's directory-connection
    timeout to reproduce the paper's failure crossovers). *)

val pp : Format.formatter -> t -> unit
