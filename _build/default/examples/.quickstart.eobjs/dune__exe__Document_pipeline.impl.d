examples/document_pipeline.ml: Array Crypto Dirdoc List Printf String Tor_sim
