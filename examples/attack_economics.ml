(* Attack economics (Section 4.3): measure the bandwidth the current
   protocol actually needs at several network sizes, then price the
   stressor-service attack that denies it.

     dune exec examples/attack_economics.exe *)

module R = Protocols.Runenv

(* Smallest attacked-authority bandwidth at which the current protocol
   still succeeds (the Figure 7 quantity), by binary search. *)
let required_mbit ~n_relays =
  let spec = { R.Spec.default with seed = "economics"; n_relays } in
  let votes = (R.of_spec spec).R.votes in
  let ok mbit =
    let attacks =
      Attack.Ddos.bandwidth_attack ~n:9 ~residual_bits_per_sec:(mbit *. 1e6) ()
    in
    let env = R.of_spec ~votes { spec with attacks } in
    R.success env (Protocols.Current_v3.run env)
  in
  let rec search lo hi =
    if hi -. lo < 0.2 then hi
    else
      let mid = (lo +. hi) /. 2. in
      if ok mid then search lo mid else search mid hi
  in
  search 0.1 50.

let () =
  Printf.printf "link capacity per authority: %.0f Mbit/s (2021 incident report)\n"
    (Attack.Ddos.authority_link_bits_per_sec /. 1e6);
  Printf.printf "stressor price: $%.5f per Mbit/s per target-hour (Jansen et al.)\n\n"
    Attack.Cost.usd_per_mbit_per_hour;
  List.iter
    (fun n_relays ->
      let required = required_mbit ~n_relays in
      let plan = Attack.Planner.make ~n_relays ~required_mbit_per_sec:required () in
      Format.printf "%a@." Attack.Planner.pp plan)
    [ 1000; 4000; 8000 ];
  Printf.printf
    "\nAfter %.0f hours without a fresh consensus the documents expire and the\n\
     whole Tor network stops building circuits.\n"
    Attack.Planner.hours_to_network_down;
  Printf.printf
    "For scale: Jansen et al. priced attacks on Tor bridges at $%.0f/month and\n\
     on the bandwidth scanners at $%.0f/month — the directory authorities are\n\
     three orders of magnitude cheaper to attack.\n"
    Attack.Cost.jansen_bridges_monthly_usd Attack.Cost.jansen_scanners_monthly_usd
