lib/protocols/pbft.mli: Agreement
