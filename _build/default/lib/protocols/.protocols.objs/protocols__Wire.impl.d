lib/protocols/wire.ml: Crypto Dirdoc
