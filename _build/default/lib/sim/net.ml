type 'm t = {
  engine : Engine.t;
  topology : Topology.t;
  nics : Nic.t array; (* one shared NIC per node: egress and ingress *)
  stats : Stats.t;
  mutable handler : (dst:int -> src:int -> 'm -> unit) option;
}

let create ~engine ~topology ~bits_per_sec () =
  let n = Topology.n topology in
  {
    engine;
    topology;
    nics = Array.init n (fun _ -> Nic.create ~bits_per_sec ());
    stats = Stats.create ~n;
    handler = None;
  }

let n t = Topology.n t.topology
let engine t = t.engine
let stats t = t.stats

let check_node t id name =
  if id < 0 || id >= n t then invalid_arg ("Net." ^ name ^ ": node out of range")

let nic t id =
  check_node t id "nic";
  t.nics.(id)

let set_handler t f = t.handler <- Some f

let deliver t ~dst ~src msg =
  match t.handler with
  | None -> failwith "Net.deliver: no handler installed"
  | Some f -> f ~dst ~src msg

let send t ~src ~dst ~size ?label ?deadline msg =
  check_node t src "send";
  check_node t dst "send";
  if size < 0 then invalid_arg "Net.send: negative size";
  let now = Engine.now t.engine in
  if src = dst then
    (* Local delivery: no bandwidth cost, but still asynchronous so
       handlers never reenter the caller. *)
    ignore (Engine.schedule t.engine ~at:now (fun () -> deliver t ~dst ~src msg))
  else begin
    Stats.record_sent t.stats ~node:src ~bytes:size ?label ();
    let egress_done = Nic.reserve t.nics.(src) ~now ~bytes:size in
    if Simtime.is_infinite egress_done then Stats.record_dropped t.stats
    else
      let arrival = Simtime.add egress_done (Topology.latency t.topology ~src ~dst) in
      (* Reserve the receiver's NIC when the message arrives, so ingress
         reservations happen in arrival order, not send order. *)
      ignore
        (Engine.schedule t.engine ~at:arrival (fun () ->
             let finish = Nic.reserve t.nics.(dst) ~now:arrival ~bytes:size in
             if Simtime.is_infinite finish then Stats.record_dropped t.stats
             else
               let expired =
                 match deadline with Some d -> finish -. now > d | None -> false
               in
               ignore
                 (Engine.schedule t.engine ~at:finish (fun () ->
                      Stats.record_received t.stats ~node:dst ~bytes:size;
                      if expired then Stats.record_dropped t.stats
                      else deliver t ~dst ~src msg))))
  end

let broadcast t ~src ~size ?label ?deadline msg =
  for dst = 0 to n t - 1 do
    if dst <> src then send t ~src ~dst ~size ?label ?deadline msg
  done

let limit_node t ~node ~start ~stop ~bits_per_sec =
  check_node t node "limit_node";
  Nic.limit_window t.nics.(node) ~start ~stop ~bits_per_sec
