(** Experiment harnesses for every table and figure in the paper's
    evaluation.  Each function runs the relevant simulations and
    returns plain data; `bench/main.exe` formats the rows, and the
    property tests reuse the same entry points.  DESIGN.md §4 maps
    each experiment to its paper counterpart. *)

type protocol = Exec.Job.protocol = Current | Synchronous | Ours
(** Re-export of {!Exec.Job.protocol}, so experiment code and the
    sweep engine share one protocol enum. *)

val protocol_name : protocol -> string

val run : protocol -> Protocols.Runenv.t -> Protocols.Runenv.report
(** The single execution path: the CLI, scenario files, the benches,
    the chaos harness, and the sweep pool all run simulations through
    here and consume the same structured {!Protocols.Runenv.report}.
    When the environment carries a
    {!Protocols.Runenv.Spec.t.distribution} config and the agreement
    run succeeds, the majority-signed document is handed to the
    {!Torclient.Distribution} tier and the report's [distribution]
    field carries the client-side metrics (with diff serving, the
    served delta is computed against a synthesized previous-hour
    document via {!Torclient.Consdiff}); after a failed run nothing
    reaches the caches, so the field is [None]. *)

val run_job : ?jobs:int -> Exec.Job.t -> Exec.Job.outcome
(** Execute one sweep job through {!run}, memoized on
    {!Exec.Job.key}: a job whose key was already executed (this call
    or any earlier one, on any domain) returns the cached outcome
    without simulating.  [jobs] (default 1) is the surrounding pool
    width; a spec requesting engine shards is clamped with
    {!Exec.Pool.clamp_shards} so the two parallelism layers never
    oversubscribe the host — the outcome is shard-count-invariant, so
    the memo key stays the requested spec. *)

val votes_for_spec : Protocols.Runenv.Spec.t -> Dirdoc.Vote.t array
(** The vote population [Runenv.of_spec] would generate for this spec,
    from a process-wide domain-safe cache keyed by exactly the
    vote-relevant spec fields (seed, n, n_relays, valid_after,
    divergence) — unrelated fields (attacks, bandwidth, horizon, ...)
    share the same entry.  Feed the result back through
    [Runenv.of_spec ~votes] (as {!run_job} does internally) or
    {!Exec.Campaign.map}'s [?votes] to skip vote generation, the
    dominant setup cost of large-population runs. *)

val run_jobs : ?jobs:int -> Exec.Job.t list -> Exec.Job.outcome list
(** [run_jobs ~jobs l] maps {!run_job} over [l] on an [jobs]-domain
    {!Exec.Pool} (default 1 = sequential), preserving order.  Results
    are byte-identical for every [jobs] value: each job rebuilds its
    environment from its own spec, and outcomes are reassembled in
    input order. *)

val default_seed : string
(** Seed used by every experiment ("torpartial"); change it to check
    seed-independence. *)

val default_relay_counts : int list
(** 1000-10000 in steps of 1000 — the x-axis of Figures 7 and 10. *)

val default_bandwidths : float list
(** 50, 20, 10, 1, 0.5 Mbit/s — the bandwidth settings of Figure 10. *)

(** {1 Figure 1 — authority log under attack} *)

val fig1 : ?n_relays:int -> unit -> string
(** Run the current protocol with 5 authorities flooded during the
    vote window and return an unattacked authority's Tor-style log —
    the Figure 1 reproduction. *)

(** {1 Figure 6 — relay census} *)

val fig6 : unit -> (string * float) list * float
(** Monthly relay-count series (Sep 2022 - Oct 2024) and its mean
    (recentred to the paper's 7141.79). *)

(** {1 Figure 7 — bandwidth requirement} *)

val fig7 :
  ?relay_counts:int list ->
  ?precision_mbit:float ->
  ?jobs:int ->
  unit ->
  (int * float) list
(** For each relay count, binary-search the minimum bandwidth
    (Mbit/s) the 5 attacked authorities need for the current protocol
    to still succeed.  Default counts: 1000-10000 in steps of 1000.
    [jobs] parallelizes across relay counts; each search's probes are
    cached by spec digest, so re-probed bandwidths cost nothing. *)

(** {1 Figure 10 — latency under bandwidth constraints} *)

type fig10_cell = {
  protocol : protocol;
  bandwidth_mbit : float;
  n_relays : int;
  latency : float option; (** None = failed to produce a consensus *)
}

val fig10 :
  ?bandwidths_mbit:float list ->
  ?relay_counts:int list ->
  ?jobs:int ->
  unit ->
  fig10_cell list
(** The full grid of Figure 10: all three protocols at every
    bandwidth x relay-count combination (defaults: 50, 20, 10, 1,
    0.5 Mbit/s x 1000-10000 — 150 independent cells).  The grid is
    compiled to an {!Exec.Sweep} job list and executed on [jobs]
    domains; cell order and values are identical for every [jobs]. *)

(** {1 Figure 11 — recovery from a 5-minute knockout} *)

type fig11_row = { protocol : protocol; total_latency : float option }

val fig11 : ?n_relays:int -> ?jobs:int -> unit -> fig11_row list
(** 5 authorities fully offline for the first 300 s, 250 Mbit/s
    otherwise.  For the lock-step baselines the run fails and the
    fallback applies: 2100 s (25 min wait for the next scheduled run
    plus the 10-minute protocol), the constant the paper reports. *)

val baseline_fallback_seconds : float
(** 2100 s. *)

(** {1 Table 1 — communication complexity} *)

type table1_row = {
  protocol : protocol;
  n : int;
  n_relays : int;
  total_bytes : int;    (** measured bytes on the simulated wire *)
  bytes_by_label : (string * int) list;
}

val table1 :
  ?n_values:int list -> ?relay_counts:int list -> unit -> table1_row list
(** Measured traffic for each protocol while sweeping [n] at fixed
    document size and the document size at fixed [n = 9]; the bench
    prints these next to the asymptotic formulas of Table 1. *)

(** {1 Table 2 — round complexity} *)

type table2_row = {
  sub_protocol : string;
  rounds : int;          (** structural rounds, as in Table 2 *)
}

val table2 : unit -> table2_row list * float
(** The structural round counts (dissemination 2, agreement 5,
    aggregation 2) plus an empirical check: the good-case decision
    time of our protocol on a uniform-latency network divided by the
    one-way latency — which should be close to the total round
    count. *)

(** {1 Section 4.3 — attack cost} *)

val cost_rows : unit -> (string * float) list
(** Named cost figures: one-run cost, monthly cost, and the Jansen et
    al. comparison points. *)

(** {1 Complexity fits (Table 1 verification)} *)

val table1_fits : table1_row list -> (protocol * Tor_sim.Summary.fit) list
(** Power-law fit of total bytes against [n] (at fixed document size)
    per protocol; the slope is the measured exponent to compare with
    Table 1's d-term (current/ours ≈ 2, synchronous ≈ 3). *)

(** {1 Ablations (design-choice sweeps from DESIGN.md §5)} *)

val recovery_vs_view_timeout :
  ?timeouts:float list -> ?n_relays:int -> unit -> (float * float option) list
(** Figure 11 scenario swept over the HotStuff pacemaker timeout:
    recovery latency after the attack ends, per timeout setting. *)

val latency_vs_doc_timeout :
  ?timeouts:float list -> ?n_relays:int -> unit -> (float * float option) list
(** Happy-path-with-2-silent-authorities latency swept over the
    dissemination wait Δ: with silent authorities, a node may not see
    all n documents and must wait Δ before proposing with n - f, so Δ
    bounds the latency directly. *)

type engine_row = {
  engine : string;         (** agreement engine name *)
  scenario : string;       (** "healthy" or "knockout" *)
  engine_latency : float option;
  agreement_bytes : int;   (** bytes attributed to agreement messages *)
}

val agreement_engines : ?n_relays:int -> unit -> engine_row list
(** The paper's §5.2.2 pluggability claim, measured: the same
    dissemination/aggregation sub-protocols over HotStuff (linear,
    leader-relayed votes), Tendermint, and PBFT (both all-to-all), in
    the healthy and 300 s-knockout scenarios. *)

val consdiff_savings : ?n_relays:int -> ?hours:int -> unit -> (int * float) list
(** Per consensus hour over a churning relay population: the fraction
    of client download saved by fetching a consensus diff instead of
    the full document (Tor's consdiff mechanism). *)
