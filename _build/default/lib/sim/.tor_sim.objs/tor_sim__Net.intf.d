lib/sim/net.mli: Engine Nic Simtime Stats Topology
