(** Inter-authority latency matrices.

    The paper derives realistic latencies among the 9 authorities with
    tornettools; we substitute a seeded generator whose distribution
    matches observed inter-authority RTT/2 (tens of milliseconds,
    long-tailed), plus a uniform builder for controlled tests. *)

type t
(** A symmetric latency function over [n] nodes. *)

val n : t -> int

val latency : t -> src:int -> dst:int -> Simtime.t
(** One-way propagation delay.  [latency ~src ~dst = latency ~dst ~src];
    self-latency is zero.  Raises [Invalid_argument] out of range. *)

val uniform : n:int -> latency:Simtime.t -> t
(** Every distinct pair has the same delay. *)

val realistic : n:int -> rng:Rng.t -> t
(** Seeded long-tailed latencies: Gaussian around 45 ms (σ = 25 ms)
    clamped to [\[5 ms, 150 ms\]], symmetric. *)

val min_latency : t -> Simtime.t
(** Global minimum off-diagonal latency — the conservative lookahead
    bound for the sharded engine: no message propagates between
    distinct nodes in less than this.  [Simtime.never] for a
    single-node topology (no links); [0.] for [uniform ~latency:0.],
    in which case sharding is unsafe and the engine falls back to one
    shard. *)

val of_matrix : Simtime.t array array -> t
(** Explicit matrix; must be square and non-negative, and is
    symmetrized by taking the max of the two directions. *)
