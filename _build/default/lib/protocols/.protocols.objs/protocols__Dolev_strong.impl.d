lib/protocols/dolev_strong.ml: Crypto Int List Printf
