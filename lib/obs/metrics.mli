(** Metrics registry: allocation-free counters/gauges and log-bucketed
    latency histograms.

    The simulator's hot paths (one call per delivered message) must not
    allocate when telemetry is on, and must cost one branch when it is
    off.  Counters and gauges are bare references; histograms bucket
    into a fixed [int array] (HDR-style: logarithmic buckets, here a
    fixed geometry shared by every histogram so any two can merge), with
    exact count/sum/min/max kept in a float array to avoid boxed-float
    stores.

    Registries merge by metric name ({!merge_into}), the same contract
    as [Stats.merge_into]: per-shard instances that partition the
    observations combine into exactly the histogram a single instance
    would have recorded, because a merge is a bucket-wise sum and
    min/max are order-insensitive. *)

type t
(** A named collection of metrics. *)

val create : unit -> t

(** {1 Counters and gauges} *)

type counter = int ref

val counter : t -> string -> counter
(** Find or register a counter under [name].  Registering twice returns
    the same reference. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge = float ref

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram
(** Log-bucketed distribution of non-negative values (seconds, in this
    codebase).  Fixed geometry: bucket 0 holds values below 1e-6;
    above that, 16 buckets per decade up to 1e8.  Values outside the
    range clamp to the edge buckets; exact min/max/sum are kept
    regardless, so [max_value] is never a bucket bound. *)

val histogram_create : unit -> histogram
(** A free-standing histogram (not in any registry); used for
    per-label side tables indexed by dense ids. *)

val histogram : t -> string -> histogram
(** Find or register a histogram under [name]. *)

val observe : histogram -> float -> unit
(** Record one value.  Allocation-free.  Negative values clamp to 0. *)

val count : histogram -> int
val sum : histogram -> float

val min_value : histogram -> float
(** [nan] when empty. *)

val max_value : histogram -> float
(** [nan] when empty. *)

val mean : histogram -> float
(** [nan] when empty. *)

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0,1]: an upper bound on the q-th
    quantile (the upper edge of the bucket holding it, clamped to the
    exact observed min/max).  [nan] when empty. *)

val histogram_reset : histogram -> unit
(** [histogram_reset h] zeroes every bucket and the exact aggregates,
    making [h] indistinguishable from a fresh {!histogram_create}
    without reallocating the bucket array.  Part of the simulator-arena
    reset path. *)

val merge_histogram : into:histogram -> histogram -> unit
(** Bucket-wise sum plus count/sum/min/max combination; [src] is not
    modified.  Merging is commutative and associative. *)

val render : histogram -> string
(** Canonical text form — count, sum/min/max printed with [%h], and
    every non-empty bucket — used by the determinism tests to compare
    histograms bit-for-bit across shard counts. *)

(** {1 Registry-level operations} *)

val merge_into : into:t -> t -> unit
(** Merge every metric of [src] into [into], matching by name and
    registering missing names: counters add, gauges keep the max,
    histograms merge with {!merge_histogram}. *)

val find_histogram : t -> string -> histogram option

val counters : t -> (string * int) list
(** Name-sorted. *)

val gauges : t -> (string * float) list
(** Name-sorted. *)

val histograms : t -> (string * histogram) list
(** Name-sorted. *)
