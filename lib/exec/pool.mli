(** Bounded-queue domain pool.

    [map ~jobs f items] applies [f] to every item across [jobs]
    OCaml 5 domains and returns the results in input order, so the
    output is independent of worker count and scheduling.  [jobs = 1]
    is a strict sequential fallback ([List.map] — no domains are
    spawned); at most [List.length items] domains are spawned however
    large [jobs] is.

    If any [f item] raises, the remaining items still run, and the
    exception of the {e lowest-index} failing item is re-raised (with
    its backtrace) after all workers have drained — deterministic
    error reporting under parallelism.

    [f] must be safe to call from multiple domains at once: jobs that
    only touch their own state (as every simulation job here does —
    each builds its environment from its own spec) qualify; shared
    caches must be domain-safe like {!Cache}. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Raises [Invalid_argument] when [jobs < 1]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] style
    "auto" settings should use. *)

val clamp_shards : jobs:int -> shards:int -> int
(** Cap a per-run {!Sim.Engine} shard count against the sweep-level
    [jobs] so the two parallelism layers compose: with [jobs] pool
    workers each running a [shards]-domain simulation, the process
    holds up to [jobs * shards] busy domains.  [clamp_shards] limits
    oversubscription to the host's recommended domain count —
    [jobs = 1] keeps [shards] untouched (a single interactive run may
    use the whole machine); [jobs > 1] clamps [shards] to
    [max 1 (recommended / jobs)].  Results are unaffected: simulation
    output is bit-identical at every shard count (DESIGN.md §10), so
    clamping only trades wall-clock shape.  Raises [Invalid_argument]
    when either argument is [< 1]. *)
