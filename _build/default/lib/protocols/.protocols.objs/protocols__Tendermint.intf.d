lib/protocols/tendermint.mli: Agreement
