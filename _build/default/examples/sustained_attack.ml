(* The title experiment, end to end: a stressor service floods five
   directory authorities for the first five minutes of every hour, and
   a Tor client watches its consensus documents age out.

     dune exec examples/sustained_attack.exe *)

module O = Torpartial.Outage
module E = Torpartial.Experiments

let describe (t : O.timeline) =
  Printf.printf "\n%s protocol, %s:\n"
    (String.capitalize_ascii (E.protocol_name t.O.protocol))
    (match t.O.policy with
    | O.No_attack -> "no attack"
    | O.Hourly_flood -> "5-minute flood at the top of every hour");
  List.iter
    (fun (h : O.hour) ->
      Printf.printf "  %02d:00  run %s  client: %s\n" (h.O.index + 1)
        (if h.O.consensus_produced then "ok    " else "FAILED")
        (match h.O.client_status with
        | Some Torclient.Directory.Fresh -> "building circuits (fresh consensus)"
        | Some Torclient.Directory.Stale -> "building circuits (stale consensus)"
        | Some Torclient.Directory.Expired -> "DARK - no valid consensus"
        | None -> "bootstrapping"))
    t.O.hours;
  Printf.printf "  attacker spent $%.3f; clients dark for %d of %d hours\n"
    t.O.attacker_usd t.O.dark_hours (List.length t.O.hours)

let () =
  print_endline "=== Five minutes of DDoS per hour, twelve hours ===";
  let current = O.run ~hours:12 ~protocol:E.Current ~policy:O.Hourly_flood () in
  describe current;
  (match O.first_dark_hour current with
  | Some h ->
      Printf.printf
        "\nThe last pre-attack consensus expired 3 hours after it was generated;\n\
         from hour %d on, every client refuses to build circuits: Tor is down.\n"
        h
  | None -> print_endline "\n(unexpected: the network stayed up)");
  let ours = O.run ~hours:12 ~protocol:E.Ours ~policy:O.Hourly_flood () in
  describe ours;
  print_endline
    "\nThe partial-synchrony protocol finishes each run a few seconds after the\n\
     flood subsides, so the same attacker budget buys no outage at all."
