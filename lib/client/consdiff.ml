type command =
  | Delete of { start : int; stop : int }
  | Replace of { start : int; stop : int; lines : string list }
  | Insert of { after : int; lines : string list }

type t = {
  base_digest : Crypto.Digest32.t;
  target_digest : Crypto.Digest32.t;
  commands : command list;
}

(* Directory documents are structured: a header, one block per relay
   introduced by an "r " line (blocks sorted by fingerprint), then a
   footer.  Diffing merges the two block sequences by key in one pass —
   O(n + m) — rather than running a generic LCS over 10^5 lines. *)

type block = { key : string; lines : string list; start : int (* 1-indexed *) }

let header_key = "\x00header"
let footer_key = "\x7ffooter"

(* Entry blocks are keyed by the fingerprint, the third token of both
   vote and consensus "r" lines. *)
let block_key line =
  match String.split_on_char ' ' line with
  | "r" :: _nickname :: fingerprint :: _ -> "r|" ^ fingerprint
  | _ -> "r|" ^ line

let is_r_line line = String.length line >= 2 && line.[0] = 'r' && line.[1] = ' '

let split_lines text = Array.of_list (String.split_on_char '\n' text)

let split_blocks lines =
  let n = Array.length lines in
  let boundaries = ref [ (0, header_key) ] in
  let in_footer = ref false in
  for i = 0 to n - 1 do
    if not !in_footer then
      if is_r_line lines.(i) then boundaries := (i, block_key lines.(i)) :: !boundaries
      else if lines.(i) = "directory-footer" then begin
        boundaries := (i, footer_key) :: !boundaries;
        in_footer := true
      end
  done;
  let rec build = function
    | [] -> []
    | (start_idx, key) :: rest ->
        let stop_idx = match rest with [] -> n | (next, _) :: _ -> next in
        if stop_idx > start_idx then
          {
            key;
            lines = Array.to_list (Array.sub lines start_idx (stop_idx - start_idx));
            start = start_idx + 1;
          }
          :: build rest
        else build rest
  in
  build (List.rev !boundaries)

let doc_digest text = Crypto.Digest32.of_string text

let diff ~base ~target =
  let base_digest = doc_digest base in
  let target_digest = doc_digest target in
  if Crypto.Digest32.equal base_digest target_digest then
    (* Fast path: identical documents need no line scan and serve as a
       ~100-byte "no change" marker on the wire. *)
    { base_digest; target_digest; commands = [] }
  else
  let base_lines = split_lines base in
  let n_base = Array.length base_lines in
  (* Merge both sorted block sequences, emitting edits in ascending
     base-line order. *)
  let rec merge bs ts acc =
    match (bs, ts) with
    | [], [] -> List.rev acc
    | b :: bs', [] ->
        merge bs' [] (Delete { start = b.start; stop = b.start + List.length b.lines - 1 } :: acc)
    | [], t :: ts' -> merge [] ts' (Insert { after = n_base; lines = t.lines } :: acc)
    | b :: bs', t :: ts' ->
        if String.equal b.key t.key then
          let stop = b.start + List.length b.lines - 1 in
          if b.lines = t.lines then merge bs' ts' acc
          else merge bs' ts' (Replace { start = b.start; stop; lines = t.lines } :: acc)
        else if String.compare b.key t.key < 0 then
          merge bs' ts
            (Delete { start = b.start; stop = b.start + List.length b.lines - 1 } :: acc)
        else merge bs ts' (Insert { after = b.start - 1; lines = t.lines } :: acc)
  in
  let commands =
    merge (split_blocks base_lines) (split_blocks (split_lines target)) []
  in
  { base_digest; target_digest; commands }

let patch ~base t =
  if not (Crypto.Digest32.equal (doc_digest base) t.base_digest) then
    Error "diff does not apply to this base document"
  else begin
    let base_lines = split_lines base in
    let n = Array.length base_lines in
    let out = Buffer.create (String.length base) in
    let first = ref true in
    let push line =
      if !first then first := false else Buffer.add_char out '\n';
      Buffer.add_string out line
    in
    let pos = ref 1 in
    let error = ref None in
    let copy_until k =
      if k < !pos then error := Some "diff commands out of order"
      else
        while !pos < k do
          push base_lines.(!pos - 1);
          incr pos
        done
    in
    let apply = function
      | Delete { start; stop } ->
          if start < 1 || stop > n || stop < start then error := Some "delete out of range"
          else begin
            copy_until start;
            pos := stop + 1
          end
      | Replace { start; stop; lines } ->
          if start < 1 || stop > n || stop < start then error := Some "replace out of range"
          else begin
            copy_until start;
            List.iter push lines;
            pos := stop + 1
          end
      | Insert { after; lines } ->
          if after < 0 || after > n then error := Some "insert out of range"
          else begin
            copy_until (after + 1);
            List.iter push lines
          end
    in
    List.iter (fun cmd -> if !error = None then apply cmd) t.commands;
    match !error with
    | Some e -> Error e
    | None ->
        copy_until (n + 1);
        let result = Buffer.contents out in
        if Crypto.Digest32.equal (doc_digest result) t.target_digest then Ok result
        else Error "patched document does not match the target digest"
  end

let wire_size t =
  let command_size = function
    | Delete _ -> 16
    | Replace { lines; _ } | Insert { lines; _ } ->
        List.fold_left (fun acc l -> acc + String.length l + 1) 16 lines
  in
  (2 * Crypto.Digest32.wire_size)
  + 32
  + List.fold_left (fun acc c -> acc + command_size c) 0 t.commands

let savings ~base ~target =
  let d = diff ~base ~target in
  Float.max 0. (1. -. (float_of_int (wire_size d) /. float_of_int (String.length target)))
