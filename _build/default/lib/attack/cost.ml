let usd_per_mbit_per_hour = 0.00074

let flood_usd ~mbit_per_sec ~targets ~seconds =
  if mbit_per_sec < 0. || targets < 0 || seconds < 0. then
    invalid_arg "Cost.flood_usd: negative input";
  usd_per_mbit_per_hour *. mbit_per_sec *. float_of_int targets *. (seconds /. 3600.)

type instance = {
  targets : int;
  flood_mbit_per_sec : float;
  seconds : float;
  usd : float;
}

let break_one_run ?(link_mbit_per_sec = 250.) ?(required_mbit_per_sec = 10.)
    ?(targets = 5) ?(seconds = 300.) () =
  let flood = link_mbit_per_sec -. required_mbit_per_sec in
  if flood < 0. then invalid_arg "Cost.break_one_run: required exceeds link";
  {
    targets;
    flood_mbit_per_sec = flood;
    seconds;
    usd = flood_usd ~mbit_per_sec:flood ~targets ~seconds;
  }

let monthly_usd instance = instance.usd *. 24. *. 30.

let jansen_bridges_monthly_usd = 17_000.
let jansen_scanners_monthly_usd = 2_800.
