(** Tor software versions ("0.4.8.12", optionally with a status tag
    like "-alpha").

    Consensus aggregation selects the largest version among the
    popular-vote winners (Figure 2), so ordering must match Tor's
    version-spec: numeric component-wise, with a tagged version
    ordering before its untagged release. *)

type t

val make : ?tag:string -> int -> int -> int -> int -> t
(** [make major minor micro patch].  Components must be
    non-negative. *)

val of_string : string -> (t, string) result
(** Parse ["0.4.8.12"] or ["0.4.9.1-alpha"]. *)

val to_string : t -> string

val feed : Crypto.Sink.t -> t -> unit
(** [feed sink v] writes exactly [to_string v] into [sink] without
    allocating the intermediate string. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val max : t -> t -> t
val pp : Format.formatter -> t -> unit
