type t = {
  authority : int;
  authority_fingerprint : string;
  nickname : string;
  published : float;
  valid_after : float;
  fresh_until : float;
  valid_until : float;
  relays : Relay.t array;
  digest : Crypto.Digest32.t;
}

let header_wire_bytes = 2048

(* Canonical compact encoding: every voted property of every relay, so
   any divergence between two authorities' views changes the digest.
   Each record is rendered into one reused [Sink] scratch and flushed
   into the streaming hash, so a 10k-relay vote allocates neither a
   megabyte string nor any per-relay [sprintf] intermediates.  The
   encoding is pinned byte-for-byte by the digest regression tests. *)
let compute_digest ~authority ~authority_fingerprint ~published ~valid_after relays =
  let ctx = Crypto.Sha256.init () in
  let sink = Crypto.Sink.create () in
  Crypto.Sink.feed_str sink "vote|";
  Crypto.Sink.feed_int sink authority;
  Crypto.Sink.feed_char sink '|';
  Crypto.Sink.feed_str sink authority_fingerprint;
  Crypto.Sink.feed_char sink '|';
  Crypto.Sink.feed_fixed sink published;
  Crypto.Sink.feed_char sink '|';
  Crypto.Sink.feed_fixed sink valid_after;
  Crypto.Sink.feed_char sink '|';
  Array.iter
    (fun (r : Relay.t) ->
      Crypto.Sink.feed_str sink r.fingerprint;
      Crypto.Sink.feed_str sink r.nickname;
      Crypto.Sink.feed_str sink (Crypto.Digest32.raw r.descriptor_digest);
      Crypto.Sink.feed_char sink '|';
      Flags.feed sink r.flags;
      Crypto.Sink.feed_char sink '|';
      Crypto.Sink.feed_int sink r.bandwidth;
      Crypto.Sink.feed_char sink '|';
      Crypto.Sink.feed_int sink (Option.value r.measured ~default:(-1));
      Crypto.Sink.feed_char sink '|';
      Version.feed sink r.version;
      Crypto.Sink.feed_char sink '|';
      Crypto.Sink.feed_str sink r.protocols;
      Crypto.Sink.feed_char sink '|';
      Exit_policy.feed sink r.exit_policy;
      Crypto.Sink.feed_char sink '\n';
      (* Flush in ~4 KiB batches: the hash then consumes mostly whole
         blocks straight from the sink buffer instead of realigning a
         partial block every relay. *)
      if Crypto.Sink.length sink >= 4096 then begin
        Crypto.Sink.feed_sha256 sink ctx;
        Crypto.Sink.clear sink
      end)
    relays;
  Crypto.Sink.feed_sha256 sink ctx;
  Crypto.Digest32.of_raw (Crypto.Sha256.finalize ctx)

let create ~authority ~authority_fingerprint ~nickname ~published ~valid_after ~relays =
  if authority < 0 then invalid_arg "Vote.create: negative authority id";
  let arr = Array.of_list relays in
  (* Callers routinely rebuild votes from an already-ordered population
     (sweep reruns, aggregation benches), so check before paying for a
     full sort. *)
  let sorted = ref true in
  for i = 1 to Array.length arr - 1 do
    if Relay.compare_fingerprint arr.(i - 1) arr.(i) > 0 then sorted := false
  done;
  if not !sorted then Array.sort Relay.compare_fingerprint arr;
  for i = 1 to Array.length arr - 1 do
    if String.equal arr.(i - 1).Relay.fingerprint arr.(i).Relay.fingerprint then
      invalid_arg "Vote.create: duplicate relay fingerprint"
  done;
  {
    authority;
    authority_fingerprint;
    nickname;
    published;
    valid_after;
    fresh_until = valid_after +. 3600.;
    valid_until = valid_after +. (3. *. 3600.);
    relays = arr;
    digest = compute_digest ~authority ~authority_fingerprint ~published ~valid_after arr;
  }

let n_relays t = Array.length t.relays

let find t ~fingerprint =
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare fingerprint t.relays.(mid).Relay.fingerprint in
      if c = 0 then Some t.relays.(mid)
      else if c < 0 then search lo mid
      else search (mid + 1) hi
  in
  search 0 (Array.length t.relays)

let wire_size_for ~n_relays = header_wire_bytes + (Relay.entry_wire_bytes * n_relays)
let wire_size t = wire_size_for ~n_relays:(n_relays t)
let digest t = t.digest
let equal a b = Crypto.Digest32.equal a.digest b.digest

let serialize t =
  let buf = Buffer.create (4096 + (Array.length t.relays * 512)) in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "network-status-version 3";
  line "vote-status vote";
  line "consensus-method 34";
  line "published %s" (Timefmt.to_string t.published);
  line "valid-after %s" (Timefmt.to_string t.valid_after);
  line "fresh-until %s" (Timefmt.to_string t.fresh_until);
  line "valid-until %s" (Timefmt.to_string t.valid_until);
  line "dir-source %s %d %s" t.nickname t.authority t.authority_fingerprint;
  Array.iter
    (fun (r : Relay.t) ->
      line "r %s %s %s %s %d %d" r.nickname r.fingerprint
        (Timefmt.to_string r.published) r.address r.or_port r.dir_port;
      line "s %s" (Flags.to_string r.flags);
      line "v Tor %s" (Version.to_string r.version);
      line "pr %s" r.protocols;
      (match r.measured with
      | None -> line "w Bandwidth=%d" r.bandwidth
      | Some m -> line "w Bandwidth=%d Measured=%d" r.bandwidth m);
      line "p %s" (Exit_policy.to_string r.exit_policy);
      line "m %s" (Crypto.Digest32.hex r.descriptor_digest))
    t.relays;
  line "directory-footer";
  Buffer.contents buf

(* --- parsing ------------------------------------------------------- *)

type parser_state = {
  mutable meta : (string * string) list;
  mutable relays_rev : Relay.t list;
  (* fields of the relay entry being assembled *)
  mutable r_line : string list option;
  mutable r_flags : Flags.t option;
  mutable r_version : Version.t option;
  mutable r_protocols : string option;
  mutable r_bandwidth : (int * int option) option;
  mutable r_policy : Exit_policy.t option;
}

let ( let* ) = Result.bind

let parse_timestamp meta key =
  match List.assoc_opt key meta with
  | None -> Error (Printf.sprintf "missing %s" key)
  | Some raw -> Timefmt.of_string raw

let flush_relay st =
  match st.r_line with
  | None -> Ok ()
  | Some [ nickname; fingerprint; date; time; address; or_port; dir_port ] -> (
      let* published = Timefmt.of_string (date ^ " " ^ time) in
      match
        ( st.r_flags,
          st.r_version,
          st.r_bandwidth,
          st.r_policy,
          int_of_string_opt or_port,
          int_of_string_opt dir_port )
      with
      | Some flags, Some version, Some (bandwidth, measured), Some policy, Some orp, Some dirp -> (
          match
            Relay.make ~fingerprint ~nickname ~address ~or_port:orp ~dir_port:dirp
              ~published ~flags ~version
              ?protocols:st.r_protocols ~bandwidth ?measured ~exit_policy:policy ()
          with
          | exception Invalid_argument e -> Error e
          | relay ->
          st.relays_rev <- relay :: st.relays_rev;
          st.r_line <- None;
          st.r_flags <- None;
          st.r_version <- None;
          st.r_protocols <- None;
          st.r_bandwidth <- None;
          st.r_policy <- None;
          Ok ())
      | _ -> Error (Printf.sprintf "incomplete relay entry for %s" fingerprint))
  | Some _ -> Error "malformed r line"

let parse_w_line rest =
  let parts = String.split_on_char ' ' rest in
  let lookup prefix =
    List.find_map
      (fun p ->
        if String.length p > String.length prefix && String.starts_with ~prefix p then
          int_of_string_opt (String.sub p (String.length prefix) (String.length p - String.length prefix))
        else None)
      parts
  in
  match lookup "Bandwidth=" with
  | None -> Error "w line missing Bandwidth="
  | Some bw -> Ok (bw, lookup "Measured=")

let parse text =
  let st =
    {
      meta = [];
      relays_rev = [];
      r_line = None;
      r_flags = None;
      r_version = None;
      r_protocols = None;
      r_bandwidth = None;
      r_policy = None;
    }
  in
  let lines = String.split_on_char '\n' text in
  let rec consume = function
    | [] -> Ok ()
    | "" :: rest -> consume rest
    | line :: rest ->
        let keyword, payload =
          match String.index_opt line ' ' with
          | None -> (line, "")
          | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
        in
        let* () =
          match keyword with
          | "r" ->
              let* () = flush_relay st in
              st.r_line <- Some (String.split_on_char ' ' payload);
              Ok ()
          | "s" ->
              let* flags = Flags.of_string payload in
              st.r_flags <- Some flags;
              Ok ()
          | "v" ->
              let version_text =
                match String.index_opt payload ' ' with
                | Some i -> String.sub payload (i + 1) (String.length payload - i - 1)
                | None -> payload
              in
              let* v = Version.of_string version_text in
              st.r_version <- Some v;
              Ok ()
          | "pr" ->
              st.r_protocols <- Some payload;
              Ok ()
          | "w" ->
              let* bw = parse_w_line payload in
              st.r_bandwidth <- Some bw;
              Ok ()
          | "p" ->
              let* policy = Exit_policy.of_string payload in
              st.r_policy <- Some policy;
              Ok ()
          | "m" | "network-status-version" | "vote-status" | "consensus-method" -> Ok ()
          | "directory-footer" -> flush_relay st
          | key ->
              st.meta <- (key, payload) :: st.meta;
              Ok ()
        in
        consume rest
  in
  let* () = consume lines in
  let* () = flush_relay st in
  let* published = parse_timestamp st.meta "published" in
  let* valid_after = parse_timestamp st.meta "valid-after" in
  match List.assoc_opt "dir-source" st.meta with
  | None -> Error "missing dir-source"
  | Some src -> (
      match String.split_on_char ' ' src with
      | [ nickname; authority; fingerprint ] -> (
          match int_of_string_opt authority with
          | None -> Error "bad authority id in dir-source"
          | Some authority -> (
              match
                create ~authority ~authority_fingerprint:fingerprint ~nickname
                  ~published ~valid_after ~relays:(List.rev st.relays_rev)
              with
              | v -> Ok v
              | exception Invalid_argument e -> Error e))
      | _ -> Error "malformed dir-source")
