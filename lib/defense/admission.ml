type config = { rate : float; burst : int; backlog : int }

let default = { rate = 2.; burst = 32; backlog = 64 }

let validate c =
  if not (c.rate > 0.) then
    invalid_arg "Defense.Admission.validate: rate must be positive";
  if c.burst < 1 then
    invalid_arg "Defense.Admission.validate: burst must be at least 1";
  if c.backlog < 0 then
    invalid_arg "Defense.Admission.validate: backlog must be non-negative"

(* Same conventions as [Fault.canonical]: lossless %h floats, one tag
   character, ';' separators. *)
let canonical c =
  Printf.sprintf "a%h;%d;%d;" c.rate c.burst c.backlog

let pp ppf c =
  Format.fprintf ppf "admission[rate=%g/s,burst=%d,backlog=%d]" c.rate c.burst
    c.backlog

(* Virtual scheduling (GCRA): one theoretical-arrival-time cursor per
   (dst, src) pair.  A message at [now] conforms when
   [now >= tat - tolerance] with [tolerance = (burst - 1) / rate]; a
   conforming message advances the cursor by one token period.  The
   arithmetic is pure float compare-and-add — no RNG, no global state —
   and each (dst, _) row is only ever touched by events on dst's shard,
   which execute in a sharding-invariant order.  That is what makes the
   admission verdict stream bit-identical at any shard count. *)
type t = {
  config : config;
  period : float; (* seconds per token, 1 / rate *)
  tolerance : float; (* burst allowance, (burst - 1) * period *)
  mutable n : int; (* bound node count; 0 until [bind] *)
  mutable tat : float array; (* n*n theoretical arrival times *)
  mutable queued : int array; (* n*n deferred messages holding a slot *)
}

let instantiate config =
  validate config;
  {
    config;
    period = 1. /. config.rate;
    tolerance = float_of_int (config.burst - 1) /. config.rate;
    n = 0;
    tat = [||];
    queued = [||];
  }

let config t = t.config

let bind t ~n =
  if n <= 0 then invalid_arg "Defense.Admission.bind: n must be positive";
  t.n <- n;
  t.tat <- Array.make (n * n) 0.;
  t.queued <- Array.make (n * n) 0

type verdict = Admit | Defer of float | Reject

let decide t ~now ~dst ~src =
  if t.n = 0 then invalid_arg "Defense.Admission.decide: not bound";
  let i = (dst * t.n) + src in
  let tat = t.tat.(i) in
  if now >= tat -. t.tolerance then begin
    (* Conforming: spend one token.  [max] keeps idle pairs from
       banking more than [burst] tokens of credit. *)
    t.tat.(i) <- Float.max tat now +. t.period;
    Admit
  end
  else if t.queued.(i) < t.config.backlog then begin
    (* Over budget but the bounded backlog has room: the message holds
       a slot and is granted exactly at its conform time.  Reserving
       the cursor here keeps the queue FIFO — later messages of the
       pair get strictly later grants. *)
    t.queued.(i) <- t.queued.(i) + 1;
    t.tat.(i) <- tat +. t.period;
    Defer (tat -. t.tolerance)
  end
  else Reject

let drain t ~dst ~src =
  let i = (dst * t.n) + src in
  if t.queued.(i) <= 0 then invalid_arg "Defense.Admission.drain: empty backlog";
  t.queued.(i) <- t.queued.(i) - 1

let queued t ~dst ~src = t.queued.((dst * t.n) + src)
