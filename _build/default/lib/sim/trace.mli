(** Tor-style simulation log.

    Protocols emit log records that the Figure 1 reproduction formats
    exactly like a directory authority's log ("[notice] We're missing
    votes from 5 authorities ..."). *)

type level = Notice | Info | Warn

type record = {
  time : Simtime.t;
  node : int option; (* None for network-level records *)
  level : level;
  text : string;
}

type t

val create : unit -> t

val log : t -> time:Simtime.t -> ?node:int -> level -> string -> unit

val logf :
  t -> time:Simtime.t -> ?node:int -> level -> ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** All records, oldest first. *)

val for_node : t -> int -> record list
(** Records emitted by one node, oldest first. *)

val render : record -> string
(** One Tor-style log line: ["Jan 01 01:24:30.011 \[notice\] ..."]. *)

val dump : ?node:int -> t -> string
(** All (or one node's) records rendered, newline-separated. *)

val clear : t -> unit
