(** The strawman of paper §2.2: "repeatedly run and fail iterations
    ... until a consensus document is successfully generated" — and the
    safety problem that rules it out.

    Each iteration is a full simulated run of the current protocol
    (30 minutes apart, Tor's fallback interval), with the relay lists
    refreshed between iterations as they would be in reality.  An
    authority adopts the document of the {e first} iteration in which
    it collected a majority of signatures.  If an attack makes the
    signature rounds asymmetric — some authorities complete iteration
    1, the rest only succeed in iteration 2 over different votes — two
    different documents both end up carrying majority signatures for
    the same consensus hour.  That is the equivocation hazard of Luo
    et al., which is why the paper insists on a view-based agreement
    layer instead of naive retry. *)

type result = {
  outputs : (int * Dirdoc.Consensus.t) option array;
      (** per authority: (iteration index, adopted document) *)
  iterations_run : int;
  agreement : bool;
      (** all adopting authorities hold the same document *)
  majority_signed_documents : Dirdoc.Consensus.t list;
      (** distinct documents that gathered majority signatures in some
          iteration — more than one is a safety violation *)
}

val rerun_interval_seconds : float
(** 1800 s — Tor's fallback interval after a failed run. *)

val run : ?iterations:int -> Runenv.t -> result
(** Run up to [iterations] (default 3) rounds of retry.  The
    environment's attack windows apply to iteration 0 only (the attack
    that caused the initial failure); votes are re-generated between
    iterations. *)

val split_attack : unit -> Runenv.attack list
(** The crafted scenario that splits the authorities: throttle
    authorities 5-8 during the two signature rounds ([300 s, 600 s))
    so they miss the signature exchange of iteration 0 while
    authorities 0-4 complete it. *)
