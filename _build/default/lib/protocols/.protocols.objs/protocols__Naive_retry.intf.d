lib/protocols/naive_retry.mli: Dirdoc Runenv
