test/test_sim.ml: Alcotest Array Engine Event_queue Float Format Fun Gen Int Int64 List Net Nic QCheck QCheck_alcotest Rng Simtime Stats String Summary Topology Tor_sim Trace
