lib/protocols/siground.mli: Crypto Dirdoc Tor_sim
