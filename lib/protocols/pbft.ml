module Sim = Tor_sim
module Signature = Crypto.Signature
module Digest32 = Crypto.Digest32

let name = "pbft"

(* A prepared certificate: 2f+1 prepare signatures on (view, digest),
   together with the value itself so a new primary can re-propose. *)
type 'v certificate = {
  cert_view : int;
  cert_digest : Digest32.t;
  cert_sigs : Signature.t list;
  cert_value : 'v;
}

type 'v msg =
  | Pre_prepare of { view : int; value : 'v }
  | Prepare of { view : int; digest : Digest32.t; signature : Signature.t }
  | Commit of { view : int; digest : Digest32.t; signature : Signature.t }
  | View_change of { view : int; certificate : 'v certificate option; signature : Signature.t }
  | Decision of { view : int; value : 'v; commits : Signature.t list }

type 'v callbacks = {
  now : unit -> Sim.Simtime.t;
  schedule : Sim.Simtime.t -> (unit -> unit) -> Sim.Engine.handle;
  cancel : Sim.Engine.handle -> unit;
  send : dst:int -> 'v msg -> unit;
  validate : 'v -> bool;
  value_digest : 'v -> Digest32.t;
  proposal : unit -> 'v option;
  decide : view:int -> 'v -> unit;
  on_view : view:int -> unit;
  log : string -> unit;
}

type 'v t = {
  keyring : Crypto.Keyring.t;
  n : int;
  id : int;
  f : int;
  quorum : int;
  view_timeout : Sim.Simtime.t;
  cb : 'v callbacks;
  mutable view : int;
  mutable timer : Sim.Engine.handle option;
  mutable proposed_in : int;
  mutable prepared_in : int;    (* last view we sent a PREPARE in *)
  mutable committed_in : int;   (* last view we sent a COMMIT in *)
  mutable certificate : 'v certificate option; (* our lock *)
  mutable decided : 'v option;
  mutable decision_msg : 'v msg option;
  pre_prepares : (int, 'v) Hashtbl.t;
  prepares : (int * string, (int, Signature.t) Hashtbl.t) Hashtbl.t;
  commits : (int * string, (int, Signature.t) Hashtbl.t) Hashtbl.t;
  view_changes : (int, (int, 'v certificate option) Hashtbl.t) Hashtbl.t;
}

let quorum ~n = n - ((n - 1) / 3)
let leader ~n ~view = view mod n

let create ~keyring ~n ~id ?(view_timeout = 5.) cb =
  if n < 4 then invalid_arg "Pbft.create: need n >= 4";
  {
    keyring;
    n;
    id;
    f = (n - 1) / 3;
    quorum = quorum ~n;
    view_timeout;
    cb;
    view = -1;
    timer = None;
    proposed_in = -1;
    prepared_in = -1;
    committed_in = -1;
    certificate = None;
    decided = None;
    decision_msg = None;
    pre_prepares = Hashtbl.create 16;
    prepares = Hashtbl.create 16;
    commits = Hashtbl.create 16;
    view_changes = Hashtbl.create 16;
  }

let decided t = t.decided
let current_view t = t.view
let primary_of t view = view mod t.n

let phase_payload ~kind ~view digest =
  Printf.sprintf "pbft|%s|%d|%s" kind view (Digest32.raw digest)

let view_change_payload ~view = Printf.sprintf "pbft|view-change|%d" view

let distinct_signers sigs =
  let signers = List.map (fun s -> s.Signature.signer) sigs in
  List.length (List.sort_uniq Int.compare signers) = List.length sigs

let certificate_valid t (c : 'v certificate) ~digest_of =
  Digest32.equal c.cert_digest (digest_of c.cert_value)
  && List.length c.cert_sigs >= t.quorum
  && distinct_signers c.cert_sigs
  &&
  let payload = phase_payload ~kind:"prepare" ~view:c.cert_view c.cert_digest in
  List.for_all (fun s -> Signature.verify t.keyring s payload) c.cert_sigs

(* --- message sizes ------------------------------------------------------- *)

let msg_size ~value_size = function
  | Pre_prepare { value; _ } -> Wire.control_bytes + value_size value
  | Prepare _ | Commit _ -> Wire.control_bytes + Wire.digest_bytes + Signature.wire_size
  | View_change { certificate; _ } ->
      Wire.control_bytes + Signature.wire_size
      + (match certificate with
        | None -> 8
        | Some c ->
            Wire.digest_bytes + value_size c.cert_value
            + (List.length c.cert_sigs * Signature.wire_size))
  | Decision { value; commits; _ } ->
      Wire.control_bytes + value_size value
      + (List.length commits * Signature.wire_size)

(* --- plumbing ----------------------------------------------------------------- *)

let broadcast t msg =
  for dst = 0 to t.n - 1 do
    t.cb.send ~dst msg
  done

let tally table key =
  match Hashtbl.find_opt table key with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add table key h;
      h

let sigs_of per = Hashtbl.fold (fun _ s acc -> s :: acc) per []

(* --- state machine --------------------------------------------------------------- *)

let rec arm_timer t =
  Option.iter t.cb.cancel t.timer;
  t.timer <- Some (t.cb.schedule t.view_timeout (fun () -> on_timeout t))

and on_timeout t =
  if t.decided = None then begin
    (* Ask for a view change; keep re-asking while stuck. *)
    let signature =
      Signature.sign t.keyring ~signer:t.id (view_change_payload ~view:(t.view + 1))
    in
    broadcast t
      (View_change { view = t.view + 1; certificate = t.certificate; signature });
    arm_timer t
  end

and enter_view t view =
  if view > t.view && t.decided = None then begin
    t.view <- view;
    arm_timer t;
    t.cb.log (Printf.sprintf "entering view %d (primary %d)" view (primary_of t view));
    t.cb.on_view ~view;
    try_propose t
  end

and try_propose t =
  if t.decided = None && primary_of t t.view = t.id && t.proposed_in < t.view then begin
    (* A primary holding (or having received) a prepared certificate
       must re-propose its value. *)
    let carried =
      Hashtbl.fold
        (fun _ per acc ->
          Hashtbl.fold
            (fun _ cert acc ->
              match (cert, acc) with
              | Some (c : 'v certificate), Some (best : 'v certificate) ->
                  if c.cert_view > best.cert_view then Some c else acc
              | Some c, None -> Some c
              | None, _ -> acc)
            per acc)
        t.view_changes
        (Option.map Fun.id t.certificate)
    in
    let value =
      match carried with
      | Some c -> Some c.cert_value
      | None -> t.cb.proposal ()
    in
    match value with
    | None -> ()
    | Some value ->
        t.proposed_in <- t.view;
        broadcast t (Pre_prepare { view = t.view; value })
  end

and on_pre_prepare t ~src ~view ~value =
  if t.decided <> None then help_straggler t ~src
  else if src = primary_of t view && view >= t.view
          && not (Hashtbl.mem t.pre_prepares view)
          && t.cb.validate value
  then begin
    let digest = t.cb.value_digest value in
    (* Lock rule: once prepared on a value, only accept the same value
       again (unless a certificate from a later view justified it —
       carried pre-prepares always re-propose the certified value). *)
    let lock_ok =
      match t.certificate with
      | None -> true
      | Some c -> Digest32.equal c.cert_digest digest || view > c.cert_view
    in
    if lock_ok then begin
      Hashtbl.replace t.pre_prepares view value;
      if view > t.view then enter_view t view;
      if t.prepared_in < view then begin
        t.prepared_in <- view;
        let signature =
          Signature.sign t.keyring ~signer:t.id
            (phase_payload ~kind:"prepare" ~view digest)
        in
        broadcast t (Prepare { view; digest; signature })
      end
    end
  end

and on_prepare t ~src ~view ~digest ~signature =
  let payload = phase_payload ~kind:"prepare" ~view digest in
  if
    signature.Signature.signer = src
    && Signature.verify t.keyring signature payload
  then
    if t.decided <> None then help_straggler t ~src
    else begin
      let per = tally t.prepares (view, Digest32.raw digest) in
      if not (Hashtbl.mem per src) then begin
        Hashtbl.replace per src signature;
        if Hashtbl.length per >= t.quorum && t.committed_in < view then begin
          match Hashtbl.find_opt t.pre_prepares view with
          | Some value when Digest32.equal (t.cb.value_digest value) digest ->
              t.committed_in <- view;
              t.certificate <-
                Some
                  {
                    cert_view = view;
                    cert_digest = digest;
                    cert_sigs = sigs_of per;
                    cert_value = value;
                  };
              let signature =
                Signature.sign t.keyring ~signer:t.id
                  (phase_payload ~kind:"commit" ~view digest)
              in
              broadcast t (Commit { view; digest; signature })
          | _ -> ()
        end
      end
    end

and on_commit t ~src ~view ~digest ~signature =
  let payload = phase_payload ~kind:"commit" ~view digest in
  if
    signature.Signature.signer = src
    && Signature.verify t.keyring signature payload
  then
    if t.decided <> None then help_straggler t ~src
    else begin
      let per = tally t.commits (view, Digest32.raw digest) in
      if not (Hashtbl.mem per src) then begin
        Hashtbl.replace per src signature;
        if Hashtbl.length per >= t.quorum then
          match Hashtbl.find_opt t.pre_prepares view with
          | Some value when Digest32.equal (t.cb.value_digest value) digest ->
              decide_once t ~view value (sigs_of per)
          | _ -> (
              match t.certificate with
              | Some c when Digest32.equal c.cert_digest digest ->
                  decide_once t ~view c.cert_value (sigs_of per)
              | _ -> () (* value unknown; a Decision broadcast will carry it *))
      end
    end

and on_view_change t ~src ~view ~certificate ~signature =
  if
    Signature.verify t.keyring signature (view_change_payload ~view)
    && signature.Signature.signer = src
  then
    if t.decided <> None then help_straggler t ~src
    else begin
      let cert_ok =
        match certificate with
        | None -> true
        | Some c -> certificate_valid t c ~digest_of:t.cb.value_digest
      in
      if cert_ok && view > t.view then begin
        let per = tally t.view_changes view in
        if not (Hashtbl.mem per src) then begin
          Hashtbl.replace per src certificate;
          (match certificate with
          | Some c -> (
              match t.certificate with
              | Some mine when mine.cert_view >= c.cert_view -> ()
              | _ -> t.certificate <- Some c)
          | None -> ());
          if Hashtbl.length per >= t.quorum then enter_view t view
        end
      end
    end

and decide_once t ~view value commits =
  if t.decided = None then begin
    t.decided <- Some value;
    Option.iter t.cb.cancel t.timer;
    t.timer <- None;
    let msg = Decision { view; value; commits } in
    t.decision_msg <- Some msg;
    t.cb.log (Printf.sprintf "decided in view %d" view);
    broadcast t msg;
    t.cb.decide ~view value
  end

and help_straggler t ~src =
  match t.decision_msg with Some msg -> t.cb.send ~dst:src msg | None -> ()

let on_decision t ~view ~value ~commits =
  if t.decided = None then begin
    let digest = t.cb.value_digest value in
    let payload = phase_payload ~kind:"commit" ~view digest in
    if
      List.length commits >= t.quorum
      && distinct_signers commits
      && List.for_all (fun s -> Signature.verify t.keyring s payload) commits
      && t.cb.validate value
    then decide_once t ~view value commits
  end

let handle t ~src msg =
  match msg with
  | Pre_prepare { view; value } -> on_pre_prepare t ~src ~view ~value
  | Prepare { view; digest; signature } -> on_prepare t ~src ~view ~digest ~signature
  | Commit { view; digest; signature } -> on_commit t ~src ~view ~digest ~signature
  | View_change { view; certificate; signature } ->
      on_view_change t ~src ~view ~certificate ~signature
  | Decision { view; value; commits } -> on_decision t ~view ~value ~commits

let start t = enter_view t 0
let notify_ready t = try_propose t
