type entry = {
  fingerprint : string;
  nickname : string;
  flags : Flags.t;
  version : Version.t;
  protocols : string;
  bandwidth : int;
  exit_policy : Exit_policy.t;
}

type t = {
  valid_after : float;
  fresh_until : float;
  valid_until : float;
  n_votes : int;
  entries : entry array;
  digest : Crypto.Digest32.t;
  signing_payload : string;
}

let header_wire_bytes = 1536
let entry_wire_bytes = 220

(* Same scheme as [Vote.compute_digest]: one reused [Sink] scratch per
   record, flushed into the streaming hash — no per-entry [sprintf].
   The encoding is pinned byte-for-byte by the digest regression
   tests. *)
let compute_digest ~valid_after ~n_votes entries =
  let ctx = Crypto.Sha256.init () in
  let sink = Crypto.Sink.create () in
  Crypto.Sink.feed_str sink "consensus|";
  Crypto.Sink.feed_fixed sink valid_after;
  Crypto.Sink.feed_char sink '|';
  Crypto.Sink.feed_int sink n_votes;
  Crypto.Sink.feed_char sink '|';
  Array.iter
    (fun e ->
      Crypto.Sink.feed_str sink e.fingerprint;
      Crypto.Sink.feed_str sink e.nickname;
      Crypto.Sink.feed_char sink '|';
      Flags.feed sink e.flags;
      Crypto.Sink.feed_char sink '|';
      Crypto.Sink.feed_int sink e.bandwidth;
      Crypto.Sink.feed_char sink '|';
      Version.feed sink e.version;
      Crypto.Sink.feed_char sink '|';
      Crypto.Sink.feed_str sink e.protocols;
      Crypto.Sink.feed_char sink '|';
      Exit_policy.feed sink e.exit_policy;
      Crypto.Sink.feed_char sink '\n';
      (* Same ~4 KiB batched flush as [Vote.compute_digest]. *)
      if Crypto.Sink.length sink >= 4096 then begin
        Crypto.Sink.feed_sha256 sink ctx;
        Crypto.Sink.clear sink
      end)
    entries;
  Crypto.Sink.feed_sha256 sink ctx;
  Crypto.Digest32.of_raw (Crypto.Sha256.finalize ctx)

let create ~valid_after ~n_votes ~entries =
  let arr = Array.of_list entries in
  (* Aggregation emits entries already in fingerprint order; skip the
     sort when the input confirms it. *)
  let sorted = ref true in
  for i = 1 to Array.length arr - 1 do
    if String.compare arr.(i - 1).fingerprint arr.(i).fingerprint > 0 then
      sorted := false
  done;
  if not !sorted then
    Array.sort (fun a b -> String.compare a.fingerprint b.fingerprint) arr;
  for i = 1 to Array.length arr - 1 do
    if String.equal arr.(i - 1).fingerprint arr.(i).fingerprint then
      invalid_arg "Consensus.create: duplicate relay fingerprint"
  done;
  let digest = compute_digest ~valid_after ~n_votes arr in
  {
    valid_after;
    fresh_until = valid_after +. 3600.;
    valid_until = valid_after +. (3. *. 3600.);
    n_votes;
    entries = arr;
    digest;
    signing_payload = "tor-consensus-signature\x00" ^ Crypto.Digest32.raw digest;
  }

let n_entries t = Array.length t.entries

let find t ~fingerprint =
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare fingerprint t.entries.(mid).fingerprint in
      if c = 0 then Some t.entries.(mid)
      else if c < 0 then search lo mid
      else search (mid + 1) hi
  in
  search 0 (Array.length t.entries)

let digest t = t.digest
let equal a b = Crypto.Digest32.equal a.digest b.digest
let is_fresh t ~now = now < t.fresh_until
let is_valid t ~now = now < t.valid_until
let wire_size t = header_wire_bytes + (entry_wire_bytes * n_entries t)

let serialize t =
  let buf = Buffer.create (2048 + (n_entries t * 256)) in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "network-status-version 3";
  line "vote-status consensus";
  line "consensus-method 34";
  line "valid-after %s" (Timefmt.to_string t.valid_after);
  line "fresh-until %s" (Timefmt.to_string t.fresh_until);
  line "valid-until %s" (Timefmt.to_string t.valid_until);
  line "vote-count %d" t.n_votes;
  line "voting-delay 300 300";
  Array.iter
    (fun e ->
      line "r %s %s" e.nickname e.fingerprint;
      line "s %s" (Flags.to_string e.flags);
      line "v Tor %s" (Version.to_string e.version);
      line "pr %s" e.protocols;
      line "w Bandwidth=%d" e.bandwidth;
      line "p %s" (Exit_policy.to_string e.exit_policy))
    t.entries;
  line "directory-footer";
  Buffer.contents buf

let signing_payload t = t.signing_payload

(* --- parsing ------------------------------------------------------------- *)

let ( let* ) = Result.bind

type parser_state = {
  mutable meta : (string * string) list;
  mutable entries_rev : entry list;
  mutable r_line : string list option;
  mutable r_flags : Flags.t option;
  mutable r_version : Version.t option;
  mutable r_protocols : string option;
  mutable r_bandwidth : int option;
  mutable r_policy : Exit_policy.t option;
}

let flush_entry st =
  match st.r_line with
  | None -> Ok ()
  | Some [ nickname; fingerprint ] -> (
      match (st.r_flags, st.r_version, st.r_bandwidth, st.r_policy) with
      | Some flags, Some version, Some bandwidth, Some exit_policy ->
          let protocols = Option.value st.r_protocols ~default:"" in
          st.entries_rev <-
            { fingerprint; nickname; flags; version; protocols; bandwidth; exit_policy }
            :: st.entries_rev;
          st.r_line <- None;
          st.r_flags <- None;
          st.r_version <- None;
          st.r_protocols <- None;
          st.r_bandwidth <- None;
          st.r_policy <- None;
          Ok ()
      | _ -> Error (Printf.sprintf "incomplete consensus entry for %s" fingerprint))
  | Some _ -> Error "malformed consensus r line"

let parse text =
  let st =
    {
      meta = [];
      entries_rev = [];
      r_line = None;
      r_flags = None;
      r_version = None;
      r_protocols = None;
      r_bandwidth = None;
      r_policy = None;
    }
  in
  let rec consume = function
    | [] -> Ok ()
    | "" :: rest -> consume rest
    | line :: rest ->
        let keyword, payload =
          match String.index_opt line ' ' with
          | None -> (line, "")
          | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
        in
        let* () =
          match keyword with
          | "r" ->
              let* () = flush_entry st in
              st.r_line <- Some (String.split_on_char ' ' payload);
              Ok ()
          | "s" ->
              let* flags = Flags.of_string payload in
              st.r_flags <- Some flags;
              Ok ()
          | "v" ->
              let version_text =
                match String.index_opt payload ' ' with
                | Some i -> String.sub payload (i + 1) (String.length payload - i - 1)
                | None -> payload
              in
              let* v = Version.of_string version_text in
              st.r_version <- Some v;
              Ok ()
          | "pr" ->
              st.r_protocols <- Some payload;
              Ok ()
          | "w" -> (
              match String.split_on_char '=' payload with
              | [ "Bandwidth"; bw ] -> (
                  match int_of_string_opt bw with
                  | Some bw ->
                      st.r_bandwidth <- Some bw;
                      Ok ()
                  | None -> Error (Printf.sprintf "bad bandwidth %S" payload))
              | _ -> Error (Printf.sprintf "bad w line %S" payload))
          | "p" ->
              let* policy = Exit_policy.of_string payload in
              st.r_policy <- Some policy;
              Ok ()
          | "directory-footer" -> flush_entry st
          | "network-status-version" | "vote-status" | "consensus-method"
          | "voting-delay" ->
              Ok ()
          | key ->
              st.meta <- (key, payload) :: st.meta;
              Ok ()
        in
        consume rest
  in
  let* () = consume (String.split_on_char '\n' text) in
  let* () = flush_entry st in
  let* valid_after =
    match List.assoc_opt "valid-after" st.meta with
    | None -> Error "missing valid-after"
    | Some raw -> Timefmt.of_string raw
  in
  let* n_votes =
    match List.assoc_opt "vote-count" st.meta with
    | None -> Error "missing vote-count"
    | Some raw ->
        Option.to_result ~none:(Printf.sprintf "bad vote-count %S" raw)
          (int_of_string_opt raw)
  in
  match create ~valid_after ~n_votes ~entries:(List.rev st.entries_rev) with
  | c -> Ok c
  | exception Invalid_argument e -> Error e
