(** A minimal Tor client's directory state machine.

    Holds the most recent verified consensus and answers the question
    the whole paper turns on: {e can this client still build circuits
    right now?}  A client goes dark once its newest verified document
    is more than three hours old — which is exactly what a sustained
    hourly DDoS on the directory protocol causes. *)

type t

val create : keyring:Crypto.Keyring.t -> n_authorities:int -> t

val offer : t -> now:float -> Directory.signed_consensus -> (unit, string) result
(** Present a downloaded document.  It is adopted iff it verifies
    ({!Directory.verify}), is not expired at [now], and is newer than
    what the client already holds; otherwise an explanatory error is
    returned and the state is unchanged. *)

val current : t -> Dirdoc.Consensus.t option
(** The newest adopted document. *)

val status : t -> now:float -> Directory.freshness option
(** Freshness of the held document ([None] if bootstrapping). *)

val can_build_circuits : t -> now:float -> bool
(** The client holds a usable (non-expired) consensus. *)

val build_circuit :
  t -> now:float -> rng:Tor_sim.Rng.t -> port:int -> (Circuit.t, string) result
(** Build a three-hop circuit to a destination port, failing if the
    consensus is expired or lacks eligible relays. *)
