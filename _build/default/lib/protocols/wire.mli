(** Wire-size constants shared by every protocol implementation.

    Protocol messages travel by reference inside the simulator; these
    constants turn each message into the byte count the NIC model
    charges for it. *)

val request_bytes : int
(** An HTTP-style GET for a vote or signature (headers + URL). *)

val control_bytes : int
(** Envelope overhead added to every protocol message (framing, TLS
    record, keywords). *)

val signature_bytes : int
(** One detached signature on the wire: κ = 64 plus identity and
    framing. *)

val digest_bytes : int
(** One digest on the wire. *)

val vote_push_bytes : n_relays:int -> int
(** A full vote document plus envelope. *)

val consensus_bytes : n_entries:int -> int
(** A consensus document plus envelope. *)

val dir_connection_timeout : float
(** Tor's directory-client connection timeout (60 s): a vote transfer
    that cannot complete within this window fails with
    [connection_dir_client_request_failed] and must be retried from
    scratch — the mechanism that turns a bandwidth cap into missing
    votes (Figure 1) and sets the Figure 7 bandwidth requirement.
    The paper's protocol deliberately has no such deadline
    ("allowing for an arbitrary timeout while sending the file"). *)
