type t = {
  mutable buf : bytes;
  mutable len : int;
}

let create ?(size = 256) () =
  let size = if size < 16 then 16 else size in
  { buf = Bytes.create size; len = 0 }

let clear t = t.len <- 0

let length t = t.len

(* Growth is split out of line so the feeders' fast path is a bare
   bounds check. *)
let grow t needed =
  let cap = ref (Bytes.length t.buf * 2) in
  while !cap < needed do cap := !cap * 2 done;
  let bigger = Bytes.create !cap in
  Bytes.blit t.buf 0 bigger 0 t.len;
  t.buf <- bigger

let ensure t extra =
  let needed = t.len + extra in
  if needed > Bytes.length t.buf then grow t needed

let feed_char t c =
  ensure t 1;
  Bytes.unsafe_set t.buf t.len c;
  t.len <- t.len + 1

let feed_str t s =
  let n = String.length s in
  ensure t n;
  Bytes.blit_string s 0 t.buf t.len n;
  t.len <- t.len + n

(* Digits are produced working in negative space so [min_int] (whose
   magnitude has no positive counterpart) needs no special case. *)
let rec feed_digits t m =
  if m <= -10 then feed_digits t (m / 10);
  feed_char t (Char.unsafe_chr (Char.code '0' - (m mod 10)))

let feed_int t n =
  if n < 0 then begin
    feed_char t '-';
    feed_digits t n
  end
  else feed_digits t (-n)

let feed_fixed t x =
  (* [%.0f] of an exactly-representable integral double is just its
     digits; every other case (fractional needs round-half-to-even,
     [-0.] prints "-0", nan/inf) defers to the libc formatter. *)
  if Float.is_integer x && Float.abs x < 1e15 && not (x = 0. && 1. /. x < 0.)
  then feed_int t (int_of_float x)
  else feed_str t (Printf.sprintf "%.0f" x)

let contents t = Bytes.sub_string t.buf 0 t.len

let digest t =
  let ctx = Sha256.init () in
  Sha256.feed_bytes ctx t.buf ~pos:0 ~len:t.len;
  Sha256.finalize ctx

let feed_sha256 t ctx = Sha256.feed_bytes ctx t.buf ~pos:0 ~len:t.len
