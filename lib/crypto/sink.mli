(** Allocation-lean byte sink for document serialization.

    The digest hot path (votes, consensuses) used to render every relay
    line through [Printf.sprintf], allocating a format closure and an
    intermediate string per field.  A [Sink.t] is a growable byte
    buffer with typed feeders that write digits and separators in
    place, so serializing a 10k-relay vote allocates one buffer instead
    of tens of thousands of short-lived strings.

    Sinks are not thread-safe; each domain (or each digest call) uses
    its own.  [clear] lets a caller reuse one sink across documents. *)

type t

val create : ?size:int -> unit -> t
(** [create ?size ()] is an empty sink with [size] bytes of initial
    capacity (default 256).  The buffer grows by doubling. *)

val clear : t -> unit
(** [clear t] empties the sink, keeping its capacity. *)

val length : t -> int
(** [length t] is the number of bytes fed so far. *)

val feed_char : t -> char -> unit
(** [feed_char t c] appends the single byte [c]. *)

val feed_str : t -> string -> unit
(** [feed_str t s] appends all of [s]. *)

val feed_int : t -> int -> unit
(** [feed_int t n] appends the decimal rendering of [n], byte-identical
    to [string_of_int n] (including [min_int]). *)

val feed_fixed : t -> float -> unit
(** [feed_fixed t x] appends [x] with no fractional digits,
    byte-identical to [Printf.sprintf "%.0f" x].  Integral values in
    the exactly-representable range take the in-place digit path;
    anything else (huge, fractional, [-0.], non-finite) falls back to
    [sprintf] for bit-exact fidelity. *)

val contents : t -> string
(** [contents t] is a fresh string of everything fed so far. *)

val digest : t -> string
(** [digest t] is the 32-byte raw SHA-256 of the sink's contents,
    streamed straight from the internal buffer with no copy. *)

val feed_sha256 : t -> Sha256.ctx -> unit
(** [feed_sha256 t ctx] absorbs the sink's contents into [ctx] without
    copying.  Together with [clear] this lets a caller hash a large
    document through one small per-record scratch: fill, flush,
    clear, repeat. *)
