lib/attack/planner.ml: Cost Format
