type verdict =
  | Healthy
  | Degraded of { fetch_failures : int }
  | Attack_suspected of {
      authorities_missing_votes : int;
      fetch_failures : int;
      failed_authorities : int;
    }

type report = {
  verdict : verdict;
  missing_notices : int;
  fetch_failures : int;
  consensus_failures : int;
}

let find_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let contains ~needle haystack = find_substring ~needle haystack <> None

(* "We're missing votes from K authorities (...)": extract K. *)
let missing_count text =
  let prefix = "We're missing votes from " in
  match find_substring ~needle:prefix text with
  | None -> 0
  | Some i ->
      let rec scan j acc =
        if j < String.length text && text.[j] >= '0' && text.[j] <= '9' then
          scan (j + 1) ((acc * 10) + (Char.code text.[j] - Char.code '0'))
        else acc
      in
      scan (i + String.length prefix) 0

let analyze trace =
  let records = Tor_sim.Trace.records trace in
  let missing_notices = ref 0 in
  let max_missing = ref 0 in
  let fetch_failures = ref 0 in
  let failed : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Tor_sim.Trace.record) ->
      if contains ~needle:"We're missing votes from" r.Tor_sim.Trace.text then begin
        incr missing_notices;
        max_missing := max !max_missing (missing_count r.Tor_sim.Trace.text)
      end;
      if contains ~needle:"Giving up downloading votes" r.Tor_sim.Trace.text then
        incr fetch_failures;
      if contains ~needle:"We don't have enough votes" r.Tor_sim.Trace.text then
        match r.Tor_sim.Trace.node with
        | Some node -> Hashtbl.replace failed node ()
        | None -> ())
    records;
  let consensus_failures = Hashtbl.length failed in
  let verdict =
    if consensus_failures > 0 then
      Attack_suspected
        {
          authorities_missing_votes = !max_missing;
          fetch_failures = !fetch_failures;
          failed_authorities = consensus_failures;
        }
    else if !fetch_failures > 0 then Degraded { fetch_failures = !fetch_failures }
    else Healthy
  in
  {
    verdict;
    missing_notices = !missing_notices;
    fetch_failures = !fetch_failures;
    consensus_failures;
  }

let pp_verdict ppf = function
  | Healthy -> Format.pp_print_string ppf "healthy"
  | Degraded { fetch_failures } ->
      Format.fprintf ppf "degraded (%d fetch failures)" fetch_failures
  | Attack_suspected { authorities_missing_votes; fetch_failures; failed_authorities } ->
      Format.fprintf ppf
        "ATTACK SUSPECTED: up to %d votes missing, %d fetch failures, %d authorities \
         failed to compute a consensus"
        authorities_missing_votes fetch_failures failed_authorities
