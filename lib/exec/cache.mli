(** Domain-safe memoization keyed by string digests.

    The sweep engine keys simulation results (and shared vote
    populations) by {!Protocols.Runenv.Spec.digest}, so a cell that
    appears twice in a sweep — e.g. a bandwidth the Figure 7 binary
    search probes again — is only ever simulated once, even when the
    two requests race on different domains: the second requester
    blocks until the first finishes and then reads its result. *)

type 'v t

val create : ?size:int -> unit -> 'v t

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v
(** [find_or_compute t ~key f] returns the cached value for [key],
    or runs [f ()] (at most once per key across all domains) and
    caches it.  If [f] raises, nothing is cached, the exception
    propagates to the caller that ran [f], and any waiting domain
    retries the computation itself. *)

val find_opt : 'v t -> string -> 'v option
(** Completed entry for [key], if any (never blocks). *)

val length : 'v t -> int
(** Number of completed entries. *)
