type t = {
  authority : int;
  authority_fingerprint : string;
  nickname : string;
  published : float;
  valid_after : float;
  fresh_until : float;
  valid_until : float;
  relays : Relay.t array;
  digest : Crypto.Digest32.t;
}

let header_wire_bytes = 2048

(* Canonical compact encoding: every voted property of every relay, so
   any divergence between two authorities' views changes the digest.
   Each record is rendered into one reused [Sink] scratch and flushed
   into the streaming hash, so a 10k-relay vote allocates neither a
   megabyte string nor any per-relay [sprintf] intermediates.  The
   encoding is pinned byte-for-byte by the digest regression tests. *)
let compute_digest ~authority ~authority_fingerprint ~published ~valid_after relays =
  let ctx = Crypto.Sha256.init () in
  let sink = Crypto.Sink.create () in
  Crypto.Sink.feed_str sink "vote|";
  Crypto.Sink.feed_int sink authority;
  Crypto.Sink.feed_char sink '|';
  Crypto.Sink.feed_str sink authority_fingerprint;
  Crypto.Sink.feed_char sink '|';
  Crypto.Sink.feed_fixed sink published;
  Crypto.Sink.feed_char sink '|';
  Crypto.Sink.feed_fixed sink valid_after;
  Crypto.Sink.feed_char sink '|';
  Array.iter
    (fun (r : Relay.t) ->
      Crypto.Sink.feed_str sink r.fingerprint;
      Crypto.Sink.feed_str sink r.nickname;
      Crypto.Sink.feed_str sink (Crypto.Digest32.raw r.descriptor_digest);
      Crypto.Sink.feed_char sink '|';
      Flags.feed sink r.flags;
      Crypto.Sink.feed_char sink '|';
      Crypto.Sink.feed_int sink r.bandwidth;
      Crypto.Sink.feed_char sink '|';
      Crypto.Sink.feed_int sink (Option.value r.measured ~default:(-1));
      Crypto.Sink.feed_char sink '|';
      Version.feed sink r.version;
      Crypto.Sink.feed_char sink '|';
      Crypto.Sink.feed_str sink r.protocols;
      Crypto.Sink.feed_char sink '|';
      Exit_policy.feed sink r.exit_policy;
      Crypto.Sink.feed_char sink '\n';
      (* Flush in ~4 KiB batches: the hash then consumes mostly whole
         blocks straight from the sink buffer instead of realigning a
         partial block every relay. *)
      if Crypto.Sink.length sink >= 4096 then begin
        Crypto.Sink.feed_sha256 sink ctx;
        Crypto.Sink.clear sink
      end)
    relays;
  Crypto.Sink.feed_sha256 sink ctx;
  Crypto.Digest32.of_raw (Crypto.Sha256.finalize ctx)

let create ~authority ~authority_fingerprint ~nickname ~published ~valid_after ~relays =
  if authority < 0 then invalid_arg "Vote.create: negative authority id";
  let arr = Array.of_list relays in
  (* Callers routinely rebuild votes from an already-ordered population
     (sweep reruns, aggregation benches), so check before paying for a
     full sort. *)
  let sorted = ref true in
  for i = 1 to Array.length arr - 1 do
    if Relay.compare_fingerprint arr.(i - 1) arr.(i) > 0 then sorted := false
  done;
  if not !sorted then Array.sort Relay.compare_fingerprint arr;
  for i = 1 to Array.length arr - 1 do
    if String.equal arr.(i - 1).Relay.fingerprint arr.(i).Relay.fingerprint then
      invalid_arg "Vote.create: duplicate relay fingerprint"
  done;
  {
    authority;
    authority_fingerprint;
    nickname;
    published;
    valid_after;
    fresh_until = valid_after +. 3600.;
    valid_until = valid_after +. (3. *. 3600.);
    relays = arr;
    digest = compute_digest ~authority ~authority_fingerprint ~published ~valid_after arr;
  }

let n_relays t = Array.length t.relays

let find t ~fingerprint =
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare fingerprint t.relays.(mid).Relay.fingerprint in
      if c = 0 then Some t.relays.(mid)
      else if c < 0 then search lo mid
      else search (mid + 1) hi
  in
  search 0 (Array.length t.relays)

let wire_size_for ~n_relays = header_wire_bytes + (Relay.entry_wire_bytes * n_relays)
let wire_size t = wire_size_for ~n_relays:(n_relays t)
let digest t = t.digest
let equal a b = Crypto.Digest32.equal a.digest b.digest

let serialize t =
  let buf = Buffer.create (4096 + (Array.length t.relays * 512)) in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "network-status-version 3";
  line "vote-status vote";
  line "consensus-method 34";
  line "published %s" (Timefmt.to_string t.published);
  line "valid-after %s" (Timefmt.to_string t.valid_after);
  line "fresh-until %s" (Timefmt.to_string t.fresh_until);
  line "valid-until %s" (Timefmt.to_string t.valid_until);
  line "dir-source %s %d %s" t.nickname t.authority t.authority_fingerprint;
  Array.iter
    (fun (r : Relay.t) ->
      line "r %s %s %s %s %d %d" r.nickname r.fingerprint
        (Timefmt.to_string r.published) r.address r.or_port r.dir_port;
      line "s %s" (Flags.to_string r.flags);
      line "v Tor %s" (Version.to_string r.version);
      line "pr %s" r.protocols;
      (match r.measured with
      | None -> line "w Bandwidth=%d" r.bandwidth
      | Some m -> line "w Bandwidth=%d Measured=%d" r.bandwidth m);
      line "p %s" (Exit_policy.to_string r.exit_policy);
      line "m %s" (Crypto.Digest32.hex r.descriptor_digest))
    t.relays;
  line "directory-footer";
  Buffer.contents buf

(* --- parsing ------------------------------------------------------- *)

(* The parser is an index-based scanner over the input: each line is a
   [start, stop) span, keywords are matched in place, and ports and
   bandwidth weights are decoded by a direct decimal scan.  The only
   substrings taken are the ones that survive into the result (names,
   addresses, protocol lists) or that sub-parsers genuinely require
   (flag/version/policy/timestamp text) — the old line/field
   tokenization via [String.split_on_char] allocated a list of strings
   for every line of a megabyte-sized document. *)

type parser_state = {
  mutable meta : (string * string) list;
  mutable relays_rev : Relay.t list;
  (* fields of the relay entry being assembled; [r_have] guards them *)
  mutable r_have : bool;
  mutable r_nickname : string;
  mutable r_fingerprint : string;
  mutable r_published : float;
  mutable r_address : string;
  mutable r_or_port : int; (* -1: missing/malformed *)
  mutable r_dir_port : int;
  mutable r_flags : Flags.t option;
  mutable r_version : Version.t option;
  mutable r_protocols : string option;
  mutable r_bandwidth : (int * int option) option;
  mutable r_policy : Exit_policy.t option;
  (* scratch for the r-line field boundaries, reused across lines *)
  field_starts : int array;
  field_stops : int array;
}

let ( let* ) = Result.bind

let parse_timestamp meta key =
  match List.assoc_opt key meta with
  | None -> Error (Printf.sprintf "missing %s" key)
  | Some raw -> Timefmt.of_string raw

(* Do the bytes [i, j) of [text] spell [s]? *)
let span_eq text i j s =
  let n = String.length s in
  j - i = n
  &&
  let rec go k = k = n || (String.unsafe_get text (i + k) = s.[k] && go (k + 1)) in
  go 0

(* Non-negative decimal over [i, j); [-1] on empty, non-digit, or
   overflow — the sentinel keeps the per-field result unboxed. *)
let parse_int_span text i j =
  if i >= j || j - i > 18 then -1
  else begin
    let v = ref 0 in
    let ok = ref true in
    for k = i to j - 1 do
      let c = Char.code (String.unsafe_get text k) - Char.code '0' in
      if c < 0 || c > 9 then ok := false else v := (!v * 10) + c
    done;
    if !ok then !v else -1
  end

let flush_relay st =
  if not st.r_have then Ok ()
  else
    match (st.r_flags, st.r_version, st.r_bandwidth, st.r_policy) with
    | Some flags, Some version, Some (bandwidth, measured), Some policy
      when st.r_or_port >= 0 && st.r_dir_port >= 0 -> (
        match
          Relay.make ~fingerprint:st.r_fingerprint ~nickname:st.r_nickname
            ~address:st.r_address ~or_port:st.r_or_port ~dir_port:st.r_dir_port
            ~published:st.r_published ~flags ~version ?protocols:st.r_protocols
            ~bandwidth ?measured ~exit_policy:policy ()
        with
        | exception Invalid_argument e -> Error e
        | relay ->
            st.relays_rev <- relay :: st.relays_rev;
            st.r_have <- false;
            st.r_flags <- None;
            st.r_version <- None;
            st.r_protocols <- None;
            st.r_bandwidth <- None;
            st.r_policy <- None;
            Ok ())
    | _ -> Error (Printf.sprintf "incomplete relay entry for %s" st.r_fingerprint)

(* "r nickname fingerprint date time address or_port dir_port": exactly
   seven space-separated fields.  The date and time fields are adjacent,
   so the timestamp is one substring of the original line. *)
let parse_r_line st text i j =
  (* Field boundaries: starts.(k) .. stops.(k), in the reused scratch. *)
  let starts = st.field_starts and stops = st.field_stops in
  let field = ref 0 in
  let start = ref i in
  let ok = ref true in
  for k = i to j - 1 do
    if String.unsafe_get text k = ' ' then begin
      if !field >= 6 then ok := false
      else begin
        starts.(!field) <- !start;
        stops.(!field) <- k;
        incr field;
        start := k + 1
      end
    end
  done;
  if (not !ok) || !field <> 6 then Error "malformed r line"
  else begin
    starts.(6) <- !start;
    stops.(6) <- j;
    let sub k = String.sub text starts.(k) (stops.(k) - starts.(k)) in
    (* date and time, rejoined as the span covering both fields *)
    let* published =
      Timefmt.of_string (String.sub text starts.(2) (stops.(3) - starts.(2)))
    in
    st.r_have <- true;
    st.r_nickname <- sub 0;
    st.r_fingerprint <- sub 1;
    st.r_published <- published;
    st.r_address <- sub 4;
    st.r_or_port <- parse_int_span text starts.(5) stops.(5);
    st.r_dir_port <- parse_int_span text starts.(6) stops.(6);
    Ok ()
  end

(* "w Bandwidth=<int> [Measured=<int>]": scan the space-separated
   tokens in place, first token carrying each prefix wins. *)
let parse_w_line text i j =
  let bandwidth = ref None and measured = ref None in
  let tok_start = ref i in
  let consider ts te =
    let try_prefix prefix cell =
      let pl = String.length prefix in
      if !cell = None && te - ts > pl && span_eq text ts (ts + pl) prefix then
        let v = parse_int_span text (ts + pl) te in
        if v >= 0 then cell := Some v
    in
    try_prefix "Bandwidth=" bandwidth;
    try_prefix "Measured=" measured
  in
  for k = i to j - 1 do
    if String.unsafe_get text k = ' ' then begin
      consider !tok_start k;
      tok_start := k + 1
    end
  done;
  consider !tok_start j;
  match !bandwidth with
  | None -> Error "w line missing Bandwidth="
  | Some bw -> Ok (bw, !measured)

let parse text =
  let len = String.length text in
  let st =
    {
      meta = [];
      relays_rev = [];
      r_have = false;
      r_nickname = "";
      r_fingerprint = "";
      r_published = 0.;
      r_address = "";
      r_or_port = -1;
      r_dir_port = -1;
      r_flags = None;
      r_version = None;
      r_protocols = None;
      r_bandwidth = None;
      r_policy = None;
      field_starts = Array.make 7 0;
      field_stops = Array.make 7 0;
    }
  in
  let rec consume ls =
    if ls >= len then Ok ()
    else begin
      let le =
        let rec find i = if i >= len || String.unsafe_get text i = '\n' then i else find (i + 1) in
        find ls
      in
      if le = ls then consume (le + 1)
      else begin
        (* keyword = [ls, ke); payload = [ps, le) *)
        let ke =
          let rec find i = if i >= le || text.[i] = ' ' then i else find (i + 1) in
          find ls
        in
        let ps = if ke < le then ke + 1 else le in
        let* () =
          if span_eq text ls ke "r" then
            let* () = flush_relay st in
            parse_r_line st text ps le
          else if span_eq text ls ke "s" then
            let* flags = Flags.of_string (String.sub text ps (le - ps)) in
            st.r_flags <- Some flags;
            Ok ()
          else if span_eq text ls ke "v" then begin
            (* skip the implementation name ("Tor") if present *)
            let vs =
              let rec find i = if i >= le || text.[i] = ' ' then i else find (i + 1) in
              let sp = find ps in
              if sp < le then sp + 1 else ps
            in
            let* v = Version.of_string (String.sub text vs (le - vs)) in
            st.r_version <- Some v;
            Ok ()
          end
          else if span_eq text ls ke "pr" then begin
            st.r_protocols <- Some (String.sub text ps (le - ps));
            Ok ()
          end
          else if span_eq text ls ke "w" then
            let* bw = parse_w_line text ps le in
            st.r_bandwidth <- Some bw;
            Ok ()
          else if span_eq text ls ke "p" then
            let* policy = Exit_policy.of_string (String.sub text ps (le - ps)) in
            st.r_policy <- Some policy;
            Ok ()
          else if
            span_eq text ls ke "m"
            || span_eq text ls ke "network-status-version"
            || span_eq text ls ke "vote-status"
            || span_eq text ls ke "consensus-method"
          then Ok ()
          else if span_eq text ls ke "directory-footer" then flush_relay st
          else begin
            st.meta <- (String.sub text ls (ke - ls), String.sub text ps (le - ps)) :: st.meta;
            Ok ()
          end
        in
        consume (le + 1)
      end
    end
  in
  let* () = consume 0 in
  let* () = flush_relay st in
  let* published = parse_timestamp st.meta "published" in
  let* valid_after = parse_timestamp st.meta "valid-after" in
  match List.assoc_opt "dir-source" st.meta with
  | None -> Error "missing dir-source"
  | Some src -> (
      match String.split_on_char ' ' src with
      | [ nickname; authority; fingerprint ] -> (
          match int_of_string_opt authority with
          | None -> Error "bad authority id in dir-source"
          | Some authority -> (
              match
                create ~authority ~authority_fingerprint:fingerprint ~nickname
                  ~published ~valid_after ~relays:(List.rev st.relays_rev)
              with
              | v -> Ok v
              | exception Invalid_argument e -> Error e))
      | _ -> Error "malformed dir-source")
