type handle = { mutable cancelled : bool; action : unit -> unit }

type t = { mutable clock : Simtime.t; queue : handle Event_queue.t }

let create () = { clock = Simtime.zero; queue = Event_queue.create () }

let now t = t.clock

let schedule t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule: time is in the past";
  let h = { cancelled = false; action } in
  Event_queue.push t.queue ~time:at h;
  h

let schedule_in t ~after action =
  if after < 0. then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(Simtime.add t.clock after) action

let cancel h = h.cancelled <- true

let run ?until t =
  let horizon = Option.value until ~default:Simtime.never in
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | None -> ()
    | Some time when time > horizon -> ()
    | Some _ ->
        (match Event_queue.pop t.queue with
        | None -> ()
        | Some (time, h) ->
            t.clock <- time;
            if not h.cancelled then h.action ());
        loop ()
  in
  loop ();
  match until with
  | Some u when t.clock < u && not (Simtime.is_infinite u) -> t.clock <- u
  | _ -> ()

let pending t = Event_queue.size t.queue
