examples/attack_economics.ml: Attack Format List Printf Protocols
