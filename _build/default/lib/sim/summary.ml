let require_nonempty name = function
  | [] -> invalid_arg ("Summary." ^ name ^ ": empty list")
  | values -> values

let mean values =
  let values = require_nonempty "mean" values in
  List.fold_left ( +. ) 0. values /. float_of_int (List.length values)

let stddev values =
  let values = require_nonempty "stddev" values in
  let m = mean values in
  let sq = List.fold_left (fun acc v -> acc +. ((v -. m) ** 2.)) 0. values in
  sqrt (sq /. float_of_int (List.length values))

let percentile values ~p =
  let values = require_nonempty "percentile" values in
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  let sorted = List.sort Float.compare values in
  let k = List.length sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int k)) in
  List.nth sorted (max 0 (min (k - 1) (rank - 1)))

let median values = percentile values ~p:50.

type fit = { slope : float; intercept : float; r_squared : float }

let linear_fit points =
  if List.length points < 2 then invalid_arg "Summary.linear_fit: need >= 2 points";
  let k = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
  let denom = (k *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Summary.linear_fit: zero x variance";
  let slope = ((k *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. k in
  let y_mean = sy /. k in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. y_mean) ** 2.)) 0. points in
  let ss_res =
    List.fold_left
      (fun a (x, y) -> a +. ((y -. (intercept +. (slope *. x))) ** 2.))
      0. points
  in
  let r_squared = if ss_tot < 1e-12 then 1. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r_squared }

let power_law_fit points =
  List.iter
    (fun (x, y) ->
      if x <= 0. || y <= 0. then
        invalid_arg "Summary.power_law_fit: coordinates must be positive")
    points;
  linear_fit (List.map (fun (x, y) -> (log x, log y)) points)
