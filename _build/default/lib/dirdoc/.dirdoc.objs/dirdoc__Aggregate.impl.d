lib/dirdoc/aggregate.ml: Array Consensus Exit_policy Flags Hashtbl Int List Relay String Version Vote
