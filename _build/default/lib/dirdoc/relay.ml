type t = {
  fingerprint : string;
  nickname : string;
  address : string;
  or_port : int;
  dir_port : int;
  published : float;
  flags : Flags.t;
  version : Version.t;
  protocols : string;
  bandwidth : int;
  measured : int option;
  exit_policy : Exit_policy.t;
  descriptor_digest : Crypto.Digest32.t;
}

let default_protocols =
  "Cons=1-2 Desc=1-2 DirCache=2 FlowCtrl=1-2 HSDir=2 HSIntro=4-5 HSRend=1-2 \
   Link=1-5 LinkAuth=1,3 Microdesc=1-2 Padding=2 Relay=1-4"

let is_hex c = (c >= '0' && c <= '9') || (c >= 'A' && c <= 'F')

let validate_fingerprint fp =
  String.length fp = 40 && String.for_all is_hex fp

let descriptor_digest_of ~fingerprint ~published ~bandwidth ~version =
  Crypto.Digest32.of_string
    (Printf.sprintf "desc|%s|%f|%d|%s" fingerprint published bandwidth
       (Version.to_string version))

let make ~fingerprint ~nickname ~address ~or_port ?(dir_port = 0) ~published ~flags
    ~version ?(protocols = default_protocols) ~bandwidth ?measured ~exit_policy () =
  if not (validate_fingerprint fingerprint) then
    invalid_arg "Relay.make: fingerprint must be 40 uppercase hex chars";
  if nickname = "" then invalid_arg "Relay.make: empty nickname";
  if or_port < 1 || or_port > 65535 then invalid_arg "Relay.make: bad or_port";
  if dir_port < 0 || dir_port > 65535 then invalid_arg "Relay.make: bad dir_port";
  if bandwidth < 0 then invalid_arg "Relay.make: negative bandwidth";
  (match measured with
  | Some m when m < 0 -> invalid_arg "Relay.make: negative measurement"
  | _ -> ());
  {
    fingerprint;
    nickname;
    address;
    or_port;
    dir_port;
    published;
    flags;
    version;
    protocols;
    bandwidth;
    measured;
    exit_policy;
    descriptor_digest = descriptor_digest_of ~fingerprint ~published ~bandwidth ~version;
  }

let compare_fingerprint a b = String.compare a.fingerprint b.fingerprint

let equal a b =
  String.equal a.fingerprint b.fingerprint
  && String.equal a.nickname b.nickname
  && String.equal a.address b.address
  && a.or_port = b.or_port && a.dir_port = b.dir_port
  && a.published = b.published
  && Flags.equal a.flags b.flags
  && Version.equal a.version b.version
  && String.equal a.protocols b.protocols
  && a.bandwidth = b.bandwidth
  && Option.equal Int.equal a.measured b.measured
  && Exit_policy.equal a.exit_policy b.exit_policy

let entry_wire_bytes = 600

let pp ppf r =
  Format.fprintf ppf "%s (%s) %a bw=%d" (String.sub r.fingerprint 0 8) r.nickname
    Flags.pp r.flags r.bandwidth
