let include_threshold ~n_votes = (n_votes / 2) + 1

let low_median values =
  if values = [] then invalid_arg "Aggregate.low_median: empty list";
  let sorted = List.sort Int.compare values in
  List.nth sorted ((List.length sorted - 1) / 2)

(* Popular vote over an arbitrary property: the most common value wins,
   with count ties broken toward the larger value (Figure 2).  Sorting
   ascending and preferring later runs on equal counts implements the
   tie-break directly. *)
let popular ~compare_value values =
  let sorted = List.sort compare_value values in
  let rec scan best best_count current count = function
    | [] -> if count >= best_count then current else best
    | v :: rest ->
        if compare_value v current = 0 then scan best best_count current (count + 1) rest
        else
          let best, best_count =
            if count >= best_count then (current, count) else (best, best_count)
          in
          scan best best_count v 1 rest
  in
  match sorted with
  | [] -> invalid_arg "Aggregate.popular: empty"
  | first :: rest -> scan first 0 first 1 rest

let aggregate_relay listings =
  if listings = [] then invalid_arg "Aggregate.aggregate_relay: empty listings";
  let fingerprint = (snd (List.hd listings)).Relay.fingerprint in
  List.iter
    (fun (_, (r : Relay.t)) ->
      if not (String.equal r.fingerprint fingerprint) then
        invalid_arg "Aggregate.aggregate_relay: mismatched fingerprints")
    listings;
  let n_listing = List.length listings in
  (* Nickname: the vote with the largest authority id decides. *)
  let nickname =
    let _, relay =
      List.fold_left
        (fun (best_id, best_r) (id, r) ->
          if id > best_id then (id, r) else (best_id, best_r))
        (List.hd listings) (List.tl listings)
    in
    relay.Relay.nickname
  in
  (* Flags: strict majority of listing votes; ties stay unset. *)
  let flags =
    List.fold_left
      (fun acc flag ->
        let yes =
          List.length (List.filter (fun (_, r) -> Flags.mem flag r.Relay.flags) listings)
        in
        if 2 * yes > n_listing then Flags.add flag acc else acc)
      Flags.empty Flags.all
  in
  let relays = List.map snd listings in
  let version =
    popular ~compare_value:Version.compare
      (List.map (fun (r : Relay.t) -> r.version) relays)
  in
  let protocols =
    popular ~compare_value:String.compare
      (List.map (fun (r : Relay.t) -> r.protocols) relays)
  in
  let exit_policy =
    popular ~compare_value:Exit_policy.compare
      (List.map (fun (r : Relay.t) -> r.exit_policy) relays)
  in
  let bandwidth =
    let measured = List.filter_map (fun (r : Relay.t) -> r.measured) relays in
    match measured with
    | [] -> low_median (List.map (fun (r : Relay.t) -> r.bandwidth) relays)
    | _ -> low_median measured
  in
  { Consensus.fingerprint; nickname; flags; version; protocols; bandwidth; exit_policy }

(* In-place insertion sort of [a.(0 .. k-1)] — the buckets being sorted
   hold at most one element per vote, where insertion sort beats any
   comparison-sort setup cost. *)
let sort_prefix ~compare a k =
  for i = 1 to k - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && compare a.(!j) v > 0 do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

(* [popular] over a sorted array prefix: same scan, same tie-break
   toward the later (larger) run. *)
let popular_prefix ~compare a k =
  let best = ref a.(0) and best_count = ref 0 in
  let current = ref a.(0) and count = ref 1 in
  for i = 1 to k - 1 do
    if compare a.(i) !current = 0 then incr count
    else begin
      if !count >= !best_count then begin
        best := !current;
        best_count := !count
      end;
      current := a.(i);
      count := 1
    end
  done;
  if !count >= !best_count then !current else !best

(* Aggregation used to bucket listings into a [Hashtbl] of ref-lists
   and rescan each bucket per flag/property with [List.filter] /
   [List.sort] / [List.nth].  [Vote.create] already sorts each vote's
   relays by fingerprint and rejects duplicates, so the votes can
   instead be merged like sorted runs: one cursor per vote, each merge
   step collects every listing of the smallest current fingerprint into
   fixed scratch arrays (at most one listing per vote) and aggregates
   them in place — no table, no ref-lists, no per-property rescans of
   a list. *)
let compute_consensus ~valid_after ~votes =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (v : Vote.t) ->
      if Hashtbl.mem seen v.Vote.authority then
        invalid_arg "Aggregate.consensus: duplicate authority vote";
      Hashtbl.replace seen v.Vote.authority ())
    votes;
  let votes = Array.of_list votes in
  let n_votes = Array.length votes in
  let threshold = include_threshold ~n_votes in
  (* Any relay works as scratch filler; if no vote lists any relay the
     merge below has nothing to do. *)
  let filler = ref None in
  Array.iter
    (fun (v : Vote.t) ->
      if !filler = None && Array.length v.Vote.relays > 0 then
        filler := Some v.Vote.relays.(0))
    votes;
  match !filler with
  | None -> Consensus.create ~valid_after ~n_votes ~entries:[]
  | Some f ->
      let cursor = Array.make n_votes 0 in
      (* Scratch for the current fingerprint's bucket, reused across the
         whole merge. *)
      let auths = Array.make n_votes 0 in
      let rels = Array.make n_votes f in
      let versions = Array.make n_votes f.Relay.version in
      let protos = Array.make n_votes f.Relay.protocols in
      let policies = Array.make n_votes f.Relay.exit_policy in
      let bws = Array.make n_votes 0 in
      let entries = ref [] in
      let running = ref true in
      while !running do
        (* Smallest fingerprint under any cursor is the next candidate. *)
        let min_fp = ref "" in
        let found = ref false in
        for i = 0 to n_votes - 1 do
          let relays = votes.(i).Vote.relays in
          if cursor.(i) < Array.length relays then begin
            let fp = relays.(cursor.(i)).Relay.fingerprint in
            if (not !found) || String.compare fp !min_fp < 0 then begin
              min_fp := fp;
              found := true
            end
          end
        done;
        if not !found then running := false
        else begin
          let k = ref 0 in
          for i = 0 to n_votes - 1 do
            let relays = votes.(i).Vote.relays in
            if
              cursor.(i) < Array.length relays
              && String.equal relays.(cursor.(i)).Relay.fingerprint !min_fp
            then begin
              auths.(!k) <- votes.(i).Vote.authority;
              rels.(!k) <- relays.(cursor.(i));
              incr k;
              cursor.(i) <- cursor.(i) + 1
            end
          done;
          let k = !k in
          if k >= threshold then begin
            (* Nickname: the listing vote with the largest authority id
               (ids are distinct, checked above). *)
            let best = ref 0 in
            for i = 1 to k - 1 do
              if auths.(i) > auths.(!best) then best := i
            done;
            let nickname = rels.(!best).Relay.nickname in
            (* Flags: strict majority of listing votes; ties unset. *)
            let flags = ref Flags.empty in
            List.iter
              (fun flag ->
                let yes = ref 0 in
                for i = 0 to k - 1 do
                  if Flags.mem flag rels.(i).Relay.flags then incr yes
                done;
                if 2 * !yes > k then flags := Flags.add flag !flags)
              Flags.all;
            for i = 0 to k - 1 do
              versions.(i) <- rels.(i).Relay.version;
              protos.(i) <- rels.(i).Relay.protocols;
              policies.(i) <- rels.(i).Relay.exit_policy
            done;
            sort_prefix ~compare:Version.compare versions k;
            sort_prefix ~compare:String.compare protos k;
            sort_prefix ~compare:Exit_policy.compare policies k;
            let version = popular_prefix ~compare:Version.compare versions k in
            let protocols = popular_prefix ~compare:String.compare protos k in
            let exit_policy =
              popular_prefix ~compare:Exit_policy.compare policies k
            in
            (* Bandwidth: in-place low-median of the measured values,
               falling back to advertised when none were measured. *)
            let m = ref 0 in
            for i = 0 to k - 1 do
              match rels.(i).Relay.measured with
              | Some v ->
                  bws.(!m) <- v;
                  incr m
              | None -> ()
            done;
            if !m = 0 then begin
              for i = 0 to k - 1 do
                bws.(i) <- rels.(i).Relay.bandwidth
              done;
              m := k
            end;
            sort_prefix ~compare:Int.compare bws !m;
            let bandwidth = bws.((!m - 1) / 2) in
            entries :=
              {
                Consensus.fingerprint = !min_fp;
                nickname;
                flags = !flags;
                version;
                protocols;
                bandwidth;
                exit_policy;
              }
              :: !entries
          end
        end
      done;
      (* The merge visits fingerprints in ascending order, so reversing
         the accumulator hands [Consensus.create] a sorted list and its
         sort check short-circuits. *)
      Consensus.create ~valid_after ~n_votes ~entries:(List.rev !entries)

(* Aggregation is a pure function of the vote SET and [valid_after]
   (the result is order-independent), so simulated authorities holding
   identical vote sets can share one computation.  The memo key is the
   sorted vote digests — content-addressed, so it cannot confuse
   distinct inputs — plus [valid_after].  A memo is scoped to one run
   (each run constructs its own), keeping parallel sweeps as
   deterministic as the unmemoized code. *)
module Memo = struct
  type t = (string, Consensus.t) Hashtbl.t

  let create () = Hashtbl.create 8
end

let memo_key ~valid_after ~votes =
  let digests =
    List.sort String.compare
      (List.map (fun (v : Vote.t) -> Crypto.Digest32.raw v.Vote.digest) votes)
  in
  Printf.sprintf "%h|%s" valid_after (String.concat "" digests)

let consensus ~valid_after ~votes = compute_consensus ~valid_after ~votes

let consensus_memo ~memo ~valid_after ~votes =
  let key = memo_key ~valid_after ~votes in
  match Hashtbl.find_opt memo key with
  | Some c -> c
  | None ->
      let c = compute_consensus ~valid_after ~votes in
      Hashtbl.replace memo key c;
      c
