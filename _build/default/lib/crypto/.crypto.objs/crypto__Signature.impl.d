lib/crypto/signature.ml: Format Hmac Keyring Sha256 String
