(** Simulated digital signatures over the {!Keyring} PKI.

    Semantics match a real scheme from the protocols' point of view:
    only the holder of node [i]'s secret can produce a signature that
    verifies for signer [i], and any tampering with the message or the
    claimed signer makes verification fail.  Wire size is modelled as
    κ = 64 bytes (Ed25519 signature size), the constant used in the
    paper's Table 1 complexity accounting. *)

type t = { signer : int; tag : string }
(** A signature: the claimed signer id and an HMAC tag over the
    message under the signer's secret. *)

val sign : Keyring.t -> signer:int -> string -> t
(** [sign ring ~signer msg] signs [msg] as node [signer]. *)

val verify : Keyring.t -> t -> string -> bool
(** [verify ring sg msg] checks that [sg] is a valid signature on
    [msg] by [sg.signer].  Returns [false] (never raises) for unknown
    signers or corrupted tags. *)

val forge : signer:int -> string -> t
(** [forge ~signer msg] builds a syntactically well-formed but invalid
    signature; used by Byzantine-behaviour tests. *)

val wire_size : int
(** Modelled size on the simulated wire: 64 bytes (κ in the paper). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
