(** Simulated time.

    Time is a float count of seconds since the start of the simulation.
    The directory protocol nominally starts on the hour, so formatting
    helpers render offsets from a fictional "Jan 01 01:00:00" epoch to
    mirror Tor's log timestamps (Figure 1). *)

type t = float

val zero : t
val seconds : float -> t
val minutes : float -> t
val ms : float -> t

val add : t -> t -> t
val ( +. ) : t -> t -> t

val is_infinite : t -> bool

val never : t
(** A time after every event ([infinity]); the result of a transfer
    that can never complete (zero-rate NIC with no future rate). *)

val pp : Format.formatter -> t -> unit
(** Renders as [mm:ss.mmm] elapsed simulation time. *)

val pp_tor_log : Format.formatter -> t -> unit
(** Renders as a Tor-style wall-clock timestamp
    ["Jan 01 01:24:30.011"], anchored at 01:00:00. *)
