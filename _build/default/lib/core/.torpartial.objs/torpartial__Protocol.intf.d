lib/core/protocol.mli: Crypto Icps Protocols Tor_sim
