(** Dolev-Strong authenticated broadcast (SIAM J. Comput. 1983) — the
    primitive behind Luo et al.'s synchronous directory protocol.

    A designated sender broadcasts a value; over [f + 1] lock-step
    rounds, nodes relay every newly accepted value with their signature
    appended.  A value is {e extracted} in round [r] only if its chain
    carries [r] distinct signatures starting with the sender's, which
    guarantees that anything a correct node extracts in the final round
    has already reached every other correct node.  At the end, a node
    outputs the single extracted value, or ⊥ if none or several were
    extracted (the sender equivocated or stayed silent).

    This module is a pure state machine over abstract rounds; the
    network layer decides the round length (150 s in Tor's setting).
    It is exercised directly by the unit tests and documents the
    round/extraction rules {!Sync_ic} compresses into Tor's four-round
    schedule. *)

type 'v outcome =
  | Value of 'v   (** all correct nodes output this value *)
  | Bottom        (** sender silent or caught equivocating *)

type 'v node

type 'v relay = { value : 'v; chain : Crypto.Signature.t list }
(** A value with its signature chain, as carried on the wire. *)

val create :
  keyring:Crypto.Keyring.t ->
  n:int ->
  f:int ->
  id:int ->
  sender:int ->
  digest:('v -> Crypto.Digest32.t) ->
  'v node
(** One participant.  Raises [Invalid_argument] unless
    [0 <= f < n] and ids are in range. *)

val rounds : f:int -> int
(** The protocol runs [f + 1] rounds, numbered [1 .. f+1]. *)

val initial_broadcast : 'v node -> 'v -> 'v relay
(** Called on the sender before round 1: sign the value, producing the
    relay message to send to everyone.  Raises [Invalid_argument] if
    this node is not the sender. *)

val receive : 'v node -> round:int -> 'v relay -> 'v relay option
(** Process a relay received during [round].  Returns [Some msg] if
    the value was newly extracted and must be forwarded to all nodes
    (with this node's signature appended) — forwarding happens in
    round [round + 1] and is suppressed automatically in the last
    round.  Invalid chains (wrong sender, too few signatures for the
    round, duplicate or bogus signers) are ignored. *)

val output : 'v node -> 'v outcome
(** The decision after round [f + 1]. *)

val extracted : 'v node -> 'v list
(** Values extracted so far (0, 1, or 2 — extraction stops caring
    after two, which already proves equivocation). *)
