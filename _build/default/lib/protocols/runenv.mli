(** Shared run environment and result types for protocol simulations.

    Every protocol implementation (current v3, Luo et al.'s
    synchronous fix, and the paper's partial-synchrony protocol)
    consumes a [Runenv.t] and produces a [run_result], so the benches
    can sweep bandwidths, relay counts, and attacks uniformly. *)

type attack = {
  node : int;
  start : Tor_sim.Simtime.t;
  stop : Tor_sim.Simtime.t;
  bits_per_sec : float; (** residual bandwidth during the window *)
}

type behavior =
  | Honest
  | Silent        (** sends nothing at all — a crashed authority *)
  | Equivocating  (** sends conflicting documents to different peers *)

type t = {
  n : int;
  keyring : Crypto.Keyring.t;
  topology : Tor_sim.Topology.t;
  votes : Dirdoc.Vote.t array;       (** input vote of each authority *)
  valid_after : float;
  bandwidth_bits_per_sec : float;    (** base NIC rate, all authorities *)
  attacks : attack list;
  behaviors : behavior array;
  horizon : Tor_sim.Simtime.t;       (** stop simulating at this time *)
}

val make :
  ?seed:string ->
  ?valid_after:float ->
  ?n:int ->
  ?n_relays:int ->
  ?bandwidth_bits_per_sec:float ->
  ?attacks:attack list ->
  ?behaviors:behavior array ->
  ?divergence:Dirdoc.Workload.divergence ->
  ?horizon:Tor_sim.Simtime.t ->
  ?votes:Dirdoc.Vote.t array ->
  unit ->
  t
(** Build an environment: 9 authorities at 250 Mbit/s with realistic
    latencies by default, votes generated from a seeded workload
    (pass [votes] to reuse a population across configurations), and
    the consensus hour anchored at [valid_after] (default
    {!default_valid_after}).  Raises [Invalid_argument] on
    inconsistent array lengths. *)

(** Outcome of one authority at the end of a run. *)
type authority_result = {
  consensus : Dirdoc.Consensus.t option;  (** document it computed *)
  signatures : int;          (** matching signatures it holds (incl. own) *)
  decided_at : Tor_sim.Simtime.t option;
      (** when it held the document plus a majority of signatures *)
  network_time : Tor_sim.Simtime.t option;
      (** the paper's latency metric: summed per-round network time *)
}

type run_result = {
  protocol : string;
  per_authority : authority_result array;
  stats : Tor_sim.Stats.t;
  trace : Tor_sim.Trace.t;
}

val majority : n:int -> int
(** [n / 2 + 1] — signatures needed for a valid consensus document. *)

val success : t -> run_result -> bool
(** A run succeeds when at least a majority of honest authorities
    produced the same consensus document carrying at least a majority
    of signatures. *)

val agreement_holds : t -> run_result -> bool
(** No two honest authorities decided different documents (vacuously
    true when fewer than two decided). *)

val success_latency : run_result -> Tor_sim.Simtime.t option
(** Largest [network_time] among deciding authorities — the series
    plotted in Figure 10. *)

val decided_at_latest : run_result -> Tor_sim.Simtime.t option
(** Largest [decided_at] among deciding authorities — the recovery
    time plotted in Figure 11. *)

val apply_attacks : t -> 'm Tor_sim.Net.t -> unit
(** Install every attack window on the network's NICs. *)

val default_valid_after : float
(** POSIX time of the simulated consensus hour (2026-01-01 01:00). *)
