(** Domain-local shard index for the multi-domain engine.

    During a sharded {!Engine.run}, domain [d] executes shard [d] and
    publishes its index here; {!Engine}, {!Net} and {!Trace} read it to
    route clock reads, stats updates and log records to domain-local
    state.  Outside a sharded run (the main domain, [Exec.Pool]
    workers, freshly spawned domains) the value is [0]. *)

val current : unit -> int
(** The shard index of the calling domain ([0] outside sharded runs). *)

val set : int -> unit
(** Publish the calling domain's shard index.  Called by the engine's
    shard workers at spawn; ordinary code never needs it. *)
