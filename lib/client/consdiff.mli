(** Consensus diffs (Tor's consdiff format, prop #140 / dir-spec).

    Clients that already hold last hour's consensus fetch only an
    ed-style line diff of the new one, cutting directory bandwidth by
    an order of magnitude — which matters here because directory
    bandwidth is exactly what the DDoS attack starves.  This module
    implements line-based diff computation (an LCS over document
    lines), the ed-script encoding, and patch application.

    [patch base (diff base target) = target] for any two documents. *)

type command =
  | Delete of { start : int; stop : int }
      (** delete lines [start..stop] of the base (1-indexed) *)
  | Replace of { start : int; stop : int; lines : string list }
      (** replace lines [start..stop] with [lines] *)
  | Insert of { after : int; lines : string list }
      (** insert [lines] after base line [after] (0 = at the top) *)

type t = {
  base_digest : Crypto.Digest32.t;    (** document the diff applies to *)
  target_digest : Crypto.Digest32.t;  (** expected result *)
  commands : command list;            (** in descending line order, as in ed *)
}

val diff : base:string -> target:string -> t
(** Compute a line diff between two serialized documents.  Identical
    documents (equal digests) take a fast path that skips the line
    scan entirely and return an empty command list. *)

val patch : base:string -> t -> (string, string) result
(** Apply a diff.  Fails with an explanation if the base digest does
    not match, a command references lines out of range, or the result
    does not hash to [target_digest]. *)

val wire_size : t -> int
(** Modelled transfer size: headers plus the encoded commands. *)

val savings : base:string -> target:string -> float
(** [1 - wire_size(diff)/|target|]: the fraction of download saved by
    fetching the diff instead of the full document. *)
