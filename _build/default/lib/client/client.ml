type t = {
  keyring : Crypto.Keyring.t;
  n_authorities : int;
  mutable held : Dirdoc.Consensus.t option;
}

let create ~keyring ~n_authorities = { keyring; n_authorities; held = None }

let offer t ~now (sc : Directory.signed_consensus) =
  match Directory.verify t.keyring ~n_authorities:t.n_authorities sc with
  | Error _ as e -> e
  | Ok () ->
      if not (Directory.usable ~now sc.Directory.consensus) then
        Error "consensus already expired"
      else begin
        match t.held with
        | Some held
          when held.Dirdoc.Consensus.valid_after
               >= sc.Directory.consensus.Dirdoc.Consensus.valid_after ->
            Error "older than the held consensus"
        | Some _ | None ->
            t.held <- Some sc.Directory.consensus;
            Ok ()
      end

let current t = t.held

let status t ~now = Option.map (fun c -> Directory.freshness ~now c) t.held

let can_build_circuits t ~now =
  match t.held with Some c -> Directory.usable ~now c | None -> false

let build_circuit t ~now ~rng ~port =
  match t.held with
  | None -> Error "no consensus document yet"
  | Some c ->
      if not (Directory.usable ~now c) then
        Error "consensus expired; refusing to build circuits"
      else
        Result.map_error Circuit.error_to_string (Circuit.build ~rng ~port c)
