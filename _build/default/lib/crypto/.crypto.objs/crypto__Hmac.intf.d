lib/crypto/hmac.mli:
