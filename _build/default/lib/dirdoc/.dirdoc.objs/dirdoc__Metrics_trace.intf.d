lib/dirdoc/metrics_trace.mli: Tor_sim
