(* Tests for the directory-document substrate: flags, versions, exit
   policies, timestamps, votes (incl. serialize/parse roundtrips), and
   every Figure 2 aggregation rule. *)

open Dirdoc

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- Flags --------------------------------------------------------------- *)

let test_flags_basic () =
  let f = Flags.of_list [ Flags.Fast; Flags.Running; Flags.Valid ] in
  checkb "mem" true (Flags.mem Flags.Fast f);
  checkb "not mem" false (Flags.mem Flags.Guard f);
  checki "cardinal" 3 (Flags.cardinal f);
  checks "to_string sorted" "Fast Running Valid" (Flags.to_string f);
  checkb "remove" false (Flags.mem Flags.Fast (Flags.remove Flags.Fast f));
  checki "all flags" 13 (List.length Flags.all)

let test_flags_parse () =
  (match Flags.of_string "Exit Fast Guard" with
  | Ok f ->
      checkb "parsed" true (Flags.mem Flags.Exit f && Flags.mem Flags.Guard f)
  | Error e -> Alcotest.fail e);
  (match Flags.of_string "Exit Bogus" with
  | Ok _ -> Alcotest.fail "accepted unknown flag"
  | Error _ -> ());
  match Flags.of_string "" with
  | Ok f -> checkb "empty" true (Flags.equal f Flags.empty)
  | Error e -> Alcotest.fail e

let qcheck_flags_roundtrip =
  let gen_flags =
    QCheck.map
      (fun bits -> List.filteri (fun i _ -> bits land (1 lsl i) <> 0) Flags.all)
      QCheck.(int_bound 8191)
  in
  QCheck.Test.make ~name:"flags string roundtrip" ~count:100 gen_flags (fun flags ->
      let set = Flags.of_list flags in
      match Flags.of_string (Flags.to_string set) with
      | Ok back -> Flags.equal set back
      | Error _ -> false)

(* --- Version ---------------------------------------------------------------- *)

let test_version_order () =
  let v a = match Version.of_string a with Ok v -> v | Error e -> Alcotest.fail e in
  checkb "patch" true (Version.compare (v "0.4.8.12") (v "0.4.8.11") > 0);
  checkb "minor" true (Version.compare (v "0.5.0.0") (v "0.4.9.9") > 0);
  checkb "alpha before release" true (Version.compare (v "0.4.8.12-alpha") (v "0.4.8.12") < 0);
  checkb "equal" true (Version.equal (v "0.4.8.12") (v "0.4.8.12"));
  checks "max" "0.4.9.1" (Version.to_string (Version.max (v "0.4.9.1") (v "0.4.8.12")));
  checks "roundtrip tag" "0.4.9.1-alpha" (Version.to_string (v "0.4.9.1-alpha"))

let test_version_invalid () =
  List.iter
    (fun s ->
      match Version.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ "1.2.3"; "a.b.c.d"; ""; "1.2.3.4.5" ]

(* --- Exit policy --------------------------------------------------------------- *)

let test_exit_policy_normalize () =
  let p = Exit_policy.make Exit_policy.Accept [ (443, 443); (80, 80); (81, 90); (85, 100) ] in
  checks "merged+sorted" "accept 80-100,443" (Exit_policy.to_string p);
  checkb "allows" true (Exit_policy.allows_port p 85);
  checkb "blocks" false (Exit_policy.allows_port p 22);
  checkb "reject semantics" false (Exit_policy.allows_port Exit_policy.reject_all 80)

let test_exit_policy_parse () =
  (match Exit_policy.of_string "accept 80,443,8000-8100" with
  | Ok p ->
      checkb "ranges" true (Exit_policy.allows_port p 8050);
      checks "canonical" "accept 80,443,8000-8100" (Exit_policy.to_string p)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Exit_policy.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ "allow 80"; "accept"; "accept 0-10"; "accept 80-99999"; "accept x" ]

let test_exit_policy_compare () =
  let a = Exit_policy.make Exit_policy.Accept [ (80, 80) ] in
  let r = Exit_policy.make Exit_policy.Reject [ (80, 80) ] in
  (* "reject ..." > "accept ..." lexicographically. *)
  checkb "lexicographic" true (Exit_policy.compare r a > 0);
  checkb "max" true (Exit_policy.equal (Exit_policy.max a r) r)

(* --- Timefmt ---------------------------------------------------------------- *)

let test_timefmt_known () =
  checks "epoch" "1970-01-01 00:00:00" (Timefmt.to_string 0.);
  checks "y2k26" "2026-01-01 01:00:00"
    (match Timefmt.of_string "2026-01-01 01:00:00" with
    | Ok t -> Timefmt.to_string t
    | Error e -> e);
  checki "leap day" (Timefmt.days_from_civil ~year:2024 ~month:3 ~day:1)
    (Timefmt.days_from_civil ~year:2024 ~month:2 ~day:29 + 1)

let qcheck_timefmt_roundtrip =
  QCheck.Test.make ~name:"timefmt roundtrip" ~count:200
    QCheck.(int_range 0 4102444800 (* year 2100 *))
    (fun secs ->
      let s = Timefmt.to_string (float_of_int secs) in
      match Timefmt.of_string s with
      | Ok back -> int_of_float back = secs
      | Error _ -> false)

let qcheck_civil_inverse =
  QCheck.Test.make ~name:"civil_from_days inverse" ~count:200
    QCheck.(int_range (-100000) 100000)
    (fun days ->
      let year, month, day = Timefmt.civil_from_days days in
      Timefmt.days_from_civil ~year ~month ~day = days)

(* --- Relay ---------------------------------------------------------------- *)

let sample_relay ?(fingerprint = String.make 40 'A') ?(bandwidth = 1000) ?measured
    ?(flags = Flags.of_list [ Flags.Running; Flags.Valid ])
    ?(version = Version.make 0 4 8 12) ?(exit_policy = Exit_policy.reject_all)
    ?(nickname = "relay") () =
  Relay.make ~fingerprint ~nickname ~address:"192.0.2.1" ~or_port:9001 ~published:0.
    ~flags ~version ~bandwidth ?measured ~exit_policy ()

let test_relay_validation () =
  Alcotest.check_raises "bad fingerprint"
    (Invalid_argument "Relay.make: fingerprint must be 40 uppercase hex chars")
    (fun () -> ignore (sample_relay ~fingerprint:"xyz" ()));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Relay.make: negative bandwidth") (fun () ->
      ignore (sample_relay ~bandwidth:(-1) ()))

(* --- Vote ---------------------------------------------------------------- *)

let fp i = Printf.sprintf "%040X" i

let sample_vote ?(authority = 0) ?(n_relays = 5) () =
  let relays = List.init n_relays (fun i -> sample_relay ~fingerprint:(fp i) ()) in
  Vote.create ~authority ~authority_fingerprint:(fp 1000) ~nickname:"moria1"
    ~published:1000. ~valid_after:4600. ~relays

let test_vote_create () =
  let v = sample_vote () in
  checki "n_relays" 5 (Vote.n_relays v);
  checkb "sorted" true
    (let rec sorted i =
       i >= Array.length v.Vote.relays - 1
       || Relay.compare_fingerprint v.Vote.relays.(i) v.Vote.relays.(i + 1) < 0 && sorted (i + 1)
     in
     sorted 0);
  checkb "find hit" true (Vote.find v ~fingerprint:(fp 3) <> None);
  checkb "find miss" true (Vote.find v ~fingerprint:(fp 99) = None);
  checki "wire size" (2048 + (5 * Relay.entry_wire_bytes)) (Vote.wire_size v);
  Alcotest.(check (float 0.)) "validity window" (4600. +. (3. *. 3600.)) v.Vote.valid_until

let test_vote_duplicate_raises () =
  let relays = [ sample_relay (); sample_relay () ] in
  Alcotest.check_raises "dup" (Invalid_argument "Vote.create: duplicate relay fingerprint")
    (fun () ->
      ignore
        (Vote.create ~authority:0 ~authority_fingerprint:(fp 1) ~nickname:"x"
           ~published:0. ~valid_after:0. ~relays))

let test_vote_digest_sensitivity () =
  let v1 = sample_vote () in
  let v2 = sample_vote () in
  checkb "deterministic digest" true (Vote.equal v1 v2);
  let v3 = sample_vote ~n_relays:4 () in
  checkb "relay change alters digest" false (Vote.equal v1 v3);
  let v4 = sample_vote ~authority:1 () in
  checkb "authority alters digest" false (Vote.equal v1 v4)

let test_vote_serialize_roundtrip () =
  let relays =
    [
      sample_relay ~fingerprint:(fp 1) ~bandwidth:500 ~measured:450
        ~flags:(Flags.of_list [ Flags.Exit; Flags.Fast; Flags.Running ])
        ~exit_policy:(Exit_policy.make Exit_policy.Accept [ (80, 80); (443, 443) ])
        ();
      sample_relay ~fingerprint:(fp 2) ~version:(Version.make ~tag:"alpha" 0 4 9 1) ();
    ]
  in
  let v =
    Vote.create ~authority:3 ~authority_fingerprint:(fp 1003) ~nickname:"gabelmoo"
      ~published:1767229200. ~valid_after:1767232800. ~relays
  in
  match Vote.parse (Vote.serialize v) with
  | Ok back ->
      checkb "content equal" true (Vote.equal v back);
      checki "authority" 3 back.Vote.authority;
      checks "nickname" "gabelmoo" back.Vote.nickname
  | Error e -> Alcotest.fail e

let test_vote_parse_garbage () =
  (match Vote.parse "not a vote" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Vote.parse "" with Ok _ -> Alcotest.fail "accepted empty" | Error _ -> ()

let qcheck_vote_roundtrip =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 0 20 in
        let* seed = int_range 0 10000 in
        return (n, seed))
  in
  QCheck.Test.make ~name:"vote serialize/parse roundtrip (random workloads)" ~count:20 gen
    (fun (n, seed) ->
      let rng = Tor_sim.Rng.create (Int64.of_int seed) in
      let relays = Workload.relays ~rng ~n ~published:1767229200. in
      let v =
        Vote.create ~authority:0 ~authority_fingerprint:(fp 1000) ~nickname:"moria1"
          ~published:1767229200. ~valid_after:1767232800. ~relays
      in
      match Vote.parse (Vote.serialize v) with
      | Ok back -> Vote.equal v back
      | Error _ -> false)

(* --- Aggregate: the Figure 2 rules --------------------------------------------- *)

let test_threshold () =
  checki "9 votes" 5 (Aggregate.include_threshold ~n_votes:9);
  checki "7 votes" 4 (Aggregate.include_threshold ~n_votes:7);
  checki "5 votes" 3 (Aggregate.include_threshold ~n_votes:5)

let test_low_median () =
  checki "odd" 3 (Aggregate.low_median [ 5; 1; 3 ]);
  checki "even takes lower" 2 (Aggregate.low_median [ 4; 2; 3; 1 ]);
  checki "single" 7 (Aggregate.low_median [ 7 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Aggregate.low_median: empty list")
    (fun () -> ignore (Aggregate.low_median []))

let vote_of ~authority relays =
  Vote.create ~authority ~authority_fingerprint:(fp (1000 + authority))
    ~nickname:(Workload.authority_nickname authority) ~published:0. ~valid_after:0.
    ~relays

let test_inclusion_majority () =
  (* Relay listed by 5 of 9 is included; by 4 of 9 is not. *)
  let listed = sample_relay ~fingerprint:(fp 1) () in
  let votes k =
    List.init 9 (fun a -> vote_of ~authority:a (if a < k then [ listed ] else []))
  in
  let c5 = Aggregate.consensus ~valid_after:0. ~votes:(votes 5) in
  let c4 = Aggregate.consensus ~valid_after:0. ~votes:(votes 4) in
  checki "5 listings include" 1 (Consensus.n_entries c5);
  checki "4 listings exclude" 0 (Consensus.n_entries c4)

let test_nickname_largest_authority () =
  let entry =
    Aggregate.aggregate_relay
      [
        (2, sample_relay ~nickname:"fromTwo" ());
        (7, sample_relay ~nickname:"fromSeven" ());
        (4, sample_relay ~nickname:"fromFour" ());
      ]
  in
  checks "largest authority names" "fromSeven" entry.Consensus.nickname

let test_flag_majority_and_tie () =
  let with_flags flags = sample_relay ~flags:(Flags.of_list flags) () in
  let entry =
    Aggregate.aggregate_relay
      [
        (0, with_flags [ Flags.Fast; Flags.Guard ]);
        (1, with_flags [ Flags.Fast; Flags.Guard ]);
        (2, with_flags [ Flags.Fast ]);
        (3, with_flags [ Flags.Guard ]);
      ]
  in
  (* Fast: 3/4 -> set.  Guard: 3/4 -> set. *)
  checkb "fast majority" true (Flags.mem Flags.Fast entry.Consensus.flags);
  let tie =
    Aggregate.aggregate_relay
      [ (0, with_flags [ Flags.Fast ]); (1, with_flags []) ]
  in
  (* 1 of 2 is a tie: flag stays unset (Figure 2). *)
  checkb "tie unset" false (Flags.mem Flags.Fast tie.Consensus.flags)

let test_version_popular_and_tie () =
  let with_version v = sample_relay ~version:v () in
  let old = Version.make 0 4 7 16 and new_ = Version.make 0 4 8 12 in
  let entry =
    Aggregate.aggregate_relay
      [ (0, with_version old); (1, with_version old); (2, with_version new_) ]
  in
  checks "popular wins" (Version.to_string old)
    (Version.to_string entry.Consensus.version);
  let tie =
    Aggregate.aggregate_relay [ (0, with_version old); (1, with_version new_) ]
  in
  checks "tie takes larger" (Version.to_string new_)
    (Version.to_string tie.Consensus.version)

let test_exit_policy_tie () =
  let a = Exit_policy.make Exit_policy.Accept [ (80, 80) ] in
  let r = Exit_policy.reject_all in
  let tie =
    Aggregate.aggregate_relay
      [ (0, sample_relay ~exit_policy:a ()); (1, sample_relay ~exit_policy:r ()) ]
  in
  (* "reject 1-65535" > "accept 80" lexicographically. *)
  checks "lexicographically larger wins" (Exit_policy.to_string r)
    (Exit_policy.to_string tie.Consensus.exit_policy)

let test_bandwidth_median () =
  let bw ~advertised ?measured () = sample_relay ~bandwidth:advertised ?measured () in
  let entry =
    Aggregate.aggregate_relay
      [
        (0, bw ~advertised:100 ~measured:10 ());
        (1, bw ~advertised:100 ~measured:30 ());
        (2, bw ~advertised:100 ~measured:20 ());
      ]
  in
  checki "median of measured" 20 entry.Consensus.bandwidth;
  let unmeasured =
    Aggregate.aggregate_relay
      [ (0, bw ~advertised:100 ()); (1, bw ~advertised:300 ()); (2, bw ~advertised:200 ()) ]
  in
  checki "falls back to advertised" 200 unmeasured.Consensus.bandwidth;
  let mixed =
    Aggregate.aggregate_relay
      [ (0, bw ~advertised:999 ~measured:50 ()); (1, bw ~advertised:999 ()) ]
  in
  checki "measured preferred when present" 50 mixed.Consensus.bandwidth

let test_aggregate_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Aggregate.aggregate_relay: empty listings")
    (fun () -> ignore (Aggregate.aggregate_relay []));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Aggregate.aggregate_relay: mismatched fingerprints") (fun () ->
      ignore
        (Aggregate.aggregate_relay
           [ (0, sample_relay ~fingerprint:(fp 1) ()); (1, sample_relay ~fingerprint:(fp 2) ()) ]));
  Alcotest.check_raises "duplicate authority"
    (Invalid_argument "Aggregate.consensus: duplicate authority vote") (fun () ->
      ignore
        (Aggregate.consensus ~valid_after:0.
           ~votes:[ vote_of ~authority:1 []; vote_of ~authority:1 [] ]))

let qcheck_consensus_order_independent =
  QCheck.Test.make ~name:"consensus independent of vote order" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Tor_sim.Rng.create (Int64.of_int seed) in
      let keyring = Crypto.Keyring.create ~n:9 () in
      let votes =
        Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:50 ~valid_after:0. ()
        |> Array.to_list
      in
      let shuffled =
        let arr = Array.of_list votes in
        Tor_sim.Rng.shuffle rng arr;
        Array.to_list arr
      in
      Consensus.equal
        (Aggregate.consensus ~valid_after:0. ~votes)
        (Aggregate.consensus ~valid_after:0. ~votes:shuffled))

(* --- Consensus document --------------------------------------------------------- *)

let test_consensus_validity_window () =
  let c = Consensus.create ~valid_after:1000. ~n_votes:9 ~entries:[] in
  checkb "fresh before 1h" true (Consensus.is_fresh c ~now:2000.);
  checkb "stale after 1h" false (Consensus.is_fresh c ~now:(1000. +. 3601.));
  checkb "valid before 3h" true (Consensus.is_valid c ~now:(1000. +. 10000.));
  checkb "invalid after 3h" false (Consensus.is_valid c ~now:(1000. +. 10801.))

let test_consensus_serialize () =
  let entries =
    [
      {
        Consensus.fingerprint = fp 1;
        nickname = "relay1";
        flags = Flags.of_list [ Flags.Running ];
        version = Version.make 0 4 8 12;
        protocols = Relay.default_protocols;
        bandwidth = 100;
        exit_policy = Exit_policy.reject_all;
      };
    ]
  in
  let c = Consensus.create ~valid_after:1767232800. ~n_votes:9 ~entries in
  let text = Consensus.serialize c in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "has status line" true (contains "vote-status consensus");
  checkb "has relay" true (contains "r relay1");
  checkb "find" true (Consensus.find c ~fingerprint:(fp 1) <> None)

(* --- Workload ---------------------------------------------------------------- *)

let test_workload_determinism () =
  let keyring = Crypto.Keyring.create ~n:9 () in
  let votes seed =
    Workload.votes ~rng:(Tor_sim.Rng.of_string_seed seed) ~keyring ~n_authorities:9
      ~n_relays:100 ~valid_after:3600. ()
  in
  let a = votes "s1" and b = votes "s1" and c = votes "s2" in
  checkb "same seed same votes" true (Vote.equal a.(0) b.(0));
  checkb "different seed differs" false (Vote.equal a.(0) c.(0))

let test_workload_divergence () =
  let keyring = Crypto.Keyring.create ~n:9 () in
  let rng = Tor_sim.Rng.of_string_seed "w" in
  let identical =
    Workload.votes ~rng ~divergence:Workload.no_divergence ~keyring ~n_authorities:9
      ~n_relays:50 ~valid_after:3600. ()
  in
  (* With no divergence every authority's relay list is identical
     (though vote digests still differ by authority identity). *)
  checki "same relay count" (Vote.n_relays identical.(0)) (Vote.n_relays identical.(8));
  let all_equal =
    Array.for_all
      (fun (v : Vote.t) ->
        Array.for_all2 Relay.equal v.Vote.relays identical.(0).Vote.relays)
      identical
  in
  checkb "no divergence -> identical views" true all_equal;
  let divergent =
    Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:200 ~valid_after:3600. ()
  in
  let some_differ =
    Array.exists
      (fun (v : Vote.t) ->
        Vote.n_relays v <> Vote.n_relays divergent.(0)
        || not (Array.for_all2 Relay.equal v.Vote.relays divergent.(0).Vote.relays))
      divergent
  in
  checkb "default divergence -> views differ" true some_differ

let test_workload_aggregatable () =
  (* Divergent views must still produce a consensus covering most of
     the ground truth: inclusion is majority-based. *)
  let keyring = Crypto.Keyring.create ~n:9 () in
  let rng = Tor_sim.Rng.of_string_seed "agg" in
  let votes =
    Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:300 ~valid_after:3600. ()
  in
  let c = Aggregate.consensus ~valid_after:3600. ~votes:(Array.to_list votes) in
  checkb "most relays survive aggregation" true (Consensus.n_entries c > 280)

let test_authority_nicknames () =
  checks "first" "moria1" (Workload.authority_nickname 0);
  checks "ninth" "faravahar" (Workload.authority_nickname 8);
  checks "synthetic" "auth9" (Workload.authority_nickname 9)

(* --- Metrics trace ---------------------------------------------------------------- *)

let test_metrics_trace () =
  let rng = Tor_sim.Rng.of_string_seed "metrics" in
  let series = Metrics_trace.series ~rng () in
  Alcotest.(check (float 1e-6)) "mean recentred" Metrics_trace.paper_mean
    (Metrics_trace.mean series);
  checkb "positive counts" true (Metrics_trace.minimum series > 0.);
  checkb "plausible ceiling" true (Metrics_trace.maximum series < 12_000.);
  let monthly = Metrics_trace.monthly series in
  checki "26 months Sep 2022 - Oct 2024" 26 (List.length monthly);
  checks "first month" "2022-09" (fst (List.hd monthly));
  checks "last month" "2024-10" (fst (List.nth monthly 25))


let test_workload_churn () =
  let rng = Tor_sim.Rng.of_string_seed "churn" in
  let relays = Workload.relays ~rng ~n:1000 ~published:0. in
  let next = Workload.evolve ~rng ~published:3600. relays in
  let count = List.length next in
  (* ~1.5% leave and ~1.5% join: the population stays near 1000. *)
  checkb "population roughly stable" true (count > 940 && count < 1060);
  let fingerprints relays =
    List.map (fun (r : Relay.t) -> r.Relay.fingerprint) relays
    |> List.sort_uniq String.compare
  in
  checki "no duplicate fingerprints" count (List.length (fingerprints next));
  let before = fingerprints relays and after = fingerprints next in
  let departed = List.filter (fun fp -> not (List.mem fp after)) before in
  let joined = List.filter (fun fp -> not (List.mem fp before)) after in
  checkb "some churn happened" true (departed <> [] && joined <> []);
  checkb "churn is small" true
    (List.length departed < 60 && List.length joined < 30);
  (* Republishing bumps the published timestamp on some survivors. *)
  let republished =
    List.filter (fun (r : Relay.t) -> r.Relay.published = 3600.) next
  in
  checkb "about 30% republished" true
    (List.length republished > 150 && List.length republished < 500)


let test_consensus_parse_roundtrip () =
  let keyring = Crypto.Keyring.create ~n:9 () in
  let rng = Tor_sim.Rng.of_string_seed "cparse" in
  let votes =
    Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:60 ~valid_after:3600. ()
  in
  let c = Aggregate.consensus ~valid_after:3600. ~votes:(Array.to_list votes) in
  match Consensus.parse (Consensus.serialize c) with
  | Ok back ->
      checkb "content equal" true (Consensus.equal c back);
      checki "same entries" (Consensus.n_entries c) (Consensus.n_entries back)
  | Error e -> Alcotest.fail e

let test_consensus_parse_garbage () =
  (match Consensus.parse "nonsense" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Consensus.parse "" with
  | Ok _ -> Alcotest.fail "accepted empty"
  | Error _ -> ()

(* Fuzz both parsers: random mutations of a valid document must either
   parse or return Error — never raise. *)
let qcheck_parser_fuzz =
  let base =
    let keyring = Crypto.Keyring.create ~n:9 () in
    let rng = Tor_sim.Rng.of_string_seed "fuzz" in
    let votes =
      Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:20 ~valid_after:3600. ()
    in
    Vote.serialize votes.(0)
  in
  QCheck.Test.make ~name:"parsers never raise on mutated input" ~count:100
    QCheck.(pair (int_bound (String.length base - 1)) (int_bound 255))
    (fun (pos, byte) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated pos (Char.chr byte);
      let text = Bytes.to_string mutated in
      (match Vote.parse text with Ok _ | Error _ -> true)
      && (match Consensus.parse text with Ok _ | Error _ -> true))

(* --- digest encoding regression --------------------------------------------- *)

(* The digest encodings were captured from the pre-Sink (sprintf-based)
   implementation; the hexes below pin them byte-for-byte.  Any change
   to the canonical vote/consensus encoding is a wire-format break and
   must fail here. *)
let pinned_relays () =
  let fp c = String.make 40 c in
  let policy_web = Exit_policy.make Exit_policy.Accept [ (80, 80); (443, 443) ] in
  let r1 =
    Relay.make ~fingerprint:(fp 'A') ~nickname:"alpha" ~address:"10.0.0.1"
      ~or_port:9001 ~dir_port:9030 ~published:1700000000.
      ~flags:(Flags.of_list [ Flags.Fast; Flags.Running; Flags.Valid ])
      ~version:(Version.make 0 4 8 12) ~bandwidth:1000 ~measured:1200
      ~exit_policy:Exit_policy.accept_all ()
  in
  let r2 =
    Relay.make ~fingerprint:(fp 'B') ~nickname:"bravo" ~address:"10.0.0.2"
      ~or_port:9001 ~published:1700000100.
      ~flags:(Flags.of_list [ Flags.Exit; Flags.Running ])
      ~version:(Version.make ~tag:"alpha" 0 4 8 11) ~bandwidth:2000
      ~exit_policy:Exit_policy.reject_all ()
  in
  let r3 =
    Relay.make ~fingerprint:(fp 'C') ~nickname:"charlie" ~address:"10.0.0.3"
      ~or_port:443 ~dir_port:80 ~published:1700000200.
      ~flags:(Flags.of_list [ Flags.Guard; Flags.Running; Flags.Stable; Flags.Valid ])
      ~version:(Version.make 0 4 9 0) ~bandwidth:500 ~measured:450
      ~exit_policy:policy_web ()
  in
  (fp 'D', [ r1; r2; r3 ])

let test_pinned_vote_digest () =
  let auth_fp, relays = pinned_relays () in
  let vote =
    Vote.create ~authority:3 ~authority_fingerprint:auth_fp ~nickname:"dannenberg"
      ~published:1700003600. ~valid_after:1700007200. ~relays
  in
  checks "pre-refactor vote digest"
    "9358aa9842a777ffe2ee7943e1614a7767ed852f71cfca1f92a517544ae56419"
    (Crypto.Digest32.hex (Vote.digest vote))

let test_pinned_consensus_digest () =
  let _, relays = pinned_relays () in
  let entry (r : Relay.t) : Consensus.entry =
    {
      fingerprint = r.fingerprint;
      nickname = r.nickname;
      flags = r.flags;
      version = r.version;
      protocols = r.protocols;
      bandwidth = r.bandwidth;
      exit_policy = r.exit_policy;
    }
  in
  let c =
    Consensus.create ~valid_after:1700007200. ~n_votes:9
      ~entries:(List.map entry relays)
  in
  checks "pre-refactor consensus digest"
    "b218e9f5d14fbdadfc6f31ab46f503d812d6c414a09d9796f3fa8c48062832a3"
    (Crypto.Digest32.hex (Consensus.digest c));
  checks "signing payload = tagged digest"
    ("tor-consensus-signature\x00" ^ Crypto.Digest32.raw (Consensus.digest c))
    (Consensus.signing_payload c)

(* --- aggregation equivalence ------------------------------------------------- *)

(* Reference implementation: the pre-refactor list path — bucket
   listings per fingerprint in a Hashtbl, filter by threshold, and run
   the still-exported [aggregate_relay] on each bucket.  The array
   merge inside [Aggregate.consensus] must produce the identical
   document on a realistically divergent 9-authority workload. *)
let test_aggregate_equivalence () =
  let keyring = Crypto.Keyring.create ~n:9 () in
  let rng = Tor_sim.Rng.of_string_seed "agg-equiv" in
  let votes =
    Array.to_list
      (Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:1000
         ~valid_after:3600. ())
  in
  let reference =
    let n_votes = List.length votes in
    let threshold = Aggregate.include_threshold ~n_votes in
    let table : (string, (int * Relay.t) list ref) Hashtbl.t =
      Hashtbl.create 4096
    in
    List.iter
      (fun (v : Vote.t) ->
        Array.iter
          (fun (r : Relay.t) ->
            match Hashtbl.find_opt table r.Relay.fingerprint with
            | Some cell -> cell := (v.Vote.authority, r) :: !cell
            | None ->
                Hashtbl.add table r.Relay.fingerprint
                  (ref [ (v.Vote.authority, r) ]))
          v.Vote.relays)
      votes;
    let entries =
      Hashtbl.fold
        (fun _ cell acc ->
          if List.length !cell >= threshold then
            Aggregate.aggregate_relay !cell :: acc
          else acc)
        table []
    in
    Consensus.create ~valid_after:3600. ~n_votes ~entries
  in
  let merged = Aggregate.consensus ~valid_after:3600. ~votes in
  checki "same entry count" (Consensus.n_entries reference)
    (Consensus.n_entries merged);
  checkb "identical digest (all entries byte-equal)" true
    (Consensus.equal reference merged)

let suite =
  [
    ("flags basics", `Quick, test_flags_basic);
    ("flags parsing", `Quick, test_flags_parse);
    QCheck_alcotest.to_alcotest qcheck_flags_roundtrip;
    ("version ordering", `Quick, test_version_order);
    ("version invalid", `Quick, test_version_invalid);
    ("exit policy normalize", `Quick, test_exit_policy_normalize);
    ("exit policy parse", `Quick, test_exit_policy_parse);
    ("exit policy compare", `Quick, test_exit_policy_compare);
    ("timefmt known values", `Quick, test_timefmt_known);
    QCheck_alcotest.to_alcotest qcheck_timefmt_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_civil_inverse;
    ("relay validation", `Quick, test_relay_validation);
    ("vote create", `Quick, test_vote_create);
    ("vote duplicate rejection", `Quick, test_vote_duplicate_raises);
    ("vote digest sensitivity", `Quick, test_vote_digest_sensitivity);
    ("vote serialize roundtrip", `Quick, test_vote_serialize_roundtrip);
    ("vote parse garbage", `Quick, test_vote_parse_garbage);
    QCheck_alcotest.to_alcotest qcheck_vote_roundtrip;
    ("inclusion threshold", `Quick, test_threshold);
    ("low median", `Quick, test_low_median);
    ("inclusion needs majority", `Quick, test_inclusion_majority);
    ("nickname from largest authority", `Quick, test_nickname_largest_authority);
    ("flag majority with tie unset", `Quick, test_flag_majority_and_tie);
    ("version popular vote and tie", `Quick, test_version_popular_and_tie);
    ("exit policy tie-break", `Quick, test_exit_policy_tie);
    ("bandwidth median rules", `Quick, test_bandwidth_median);
    ("aggregate errors", `Quick, test_aggregate_errors);
    ("pinned vote digest", `Quick, test_pinned_vote_digest);
    ("pinned consensus digest", `Quick, test_pinned_consensus_digest);
    ("aggregate merge equivalence", `Slow, test_aggregate_equivalence);
    QCheck_alcotest.to_alcotest qcheck_consensus_order_independent;
    ("consensus validity window", `Quick, test_consensus_validity_window);
    ("consensus serialize", `Quick, test_consensus_serialize);
    ("workload determinism", `Quick, test_workload_determinism);
    ("workload divergence", `Quick, test_workload_divergence);
    ("workload aggregatable", `Quick, test_workload_aggregatable);
    ("authority nicknames", `Quick, test_authority_nicknames);
    ("metrics trace", `Quick, test_metrics_trace);
    ("workload churn", `Quick, test_workload_churn);
    ("consensus parse roundtrip", `Quick, test_consensus_parse_roundtrip);
    ("consensus parse garbage", `Quick, test_consensus_parse_garbage);
    QCheck_alcotest.to_alcotest qcheck_parser_fuzz;
  ]
