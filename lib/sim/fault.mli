(** Deterministic fault injection for the message network.

    A {!plan} is a serializable description of network and node faults:
    probabilistic per-link loss windows, bidirectional link partitions,
    per-message extra-delay jitter, message duplication, and per-node
    crash/recover windows.  {!Net} interposes an instantiated plan on
    every send and delivery, so each protocol driver inherits the whole
    fault model without code of its own.

    All randomness is keyed off the plan's canonical serialization,
    per message: message [k] on link [(src, dst)] draws from its own
    stream seeded by [(plan, src, dst, k)].  A message's draws then
    depend only on its position in its link's send sequence — the
    sender's program order — so a (spec, plan) pair replays
    bit-identically across processes, worker counts, AND engine shard
    counts (the global interleaving of sends on different links is not
    sharding-invariant; per-link sequence numbers are).

    Window convention: a fault is active while [start <= now < stop]
    (half-open, like the NIC's {!Nic.limit_window}). *)

type kind =
  | Drop of { src : int; dst : int; prob : float }
      (** Lose each [src]→[dst] message with probability [prob] at
          send time ([any] is a wildcard endpoint).  The egress bytes
          are still charged — the packet died in the network, not in
          the sender's queue. *)
  | Partition of { a : int; b : int }
      (** Cut the [a]↔[b] link in both directions. *)
  | Delay of { src : int; dst : int; max_extra : float }
      (** Add uniform [\[0, max_extra)] seconds of extra propagation
          latency to each matching message. *)
  | Duplicate of { src : int; dst : int; prob : float }
      (** Deliver each matching message twice with probability [prob]
          (same arrival instant; models retransmission races). *)
  | Crash of { node : int }
      (** The node is down: its sends are suppressed and messages
          arriving at it are discarded. *)

type fault = { kind : kind; start : float; stop : float }

type plan = { seed : string; faults : fault list }
(** [seed] salts the plan's RNG stream so two plans with identical
    fault lists can still diverge. *)

val any : int
(** Wildcard endpoint ([-1]): matches every node id. *)

val empty : plan

val fault_nodes : fault -> int list
(** Node ids the fault names ([any] excluded). *)

val crash_nodes : plan -> int list
(** Sorted, de-duplicated ids of nodes with a [Crash] window. *)

val clears_at : plan -> float
(** Largest [stop] over the plan's faults ([0.] for {!empty}) — after
    this instant the network is fault-free. *)

val validate : n:int -> plan -> unit
(** Raises [Invalid_argument] on an endpoint outside [\[0, n)] (other
    than [any]), a window with [stop < start], or a probability
    outside [\[0, 1\]]. *)

val canonical : plan -> string
(** Canonical serialization (floats rendered losslessly with [%h]);
    structurally equal plans serialize identically.  Feeds
    {!Runenv.Spec.canonical} so fault plans participate in job
    digests. *)

val digest : plan -> string
(** SHA-256 of {!canonical}, 64 hex characters. *)

val pp_fault : Format.formatter -> fault -> unit
val pp : Format.formatter -> plan -> unit
(** One-line rendering, e.g.
    [drop[2>*,0..30,p=0.40] crash[1,10..60]] — the repro line chaos
    prints for a shrunk counterexample. *)

(** {1 Runtime injector} *)

type t
(** An instantiated plan: the fault list plus the plan-keyed RNG
    stream.  One injector serves exactly one run; instantiate a fresh
    one per simulation so streams never leak across runs. *)

val instantiate : plan -> t
val plan : t -> plan

val bind : t -> n:int -> unit
(** [bind t ~n] sizes the injector's per-link message counters for an
    [n]-node network and resets them; {!Net.set_fault} calls it.  An
    unbound injector still works (a single global message counter,
    deterministic in call order) but its draws are then NOT
    sharding-invariant.  Raises [Invalid_argument] if [n <= 0]. *)

type decision = {
  drop : bool;
  extra_delay : float;
  duplicate : bool;
}

val pass : decision
(** No interference: [{drop = false; extra_delay = 0.; duplicate = false}]. *)

val decide : t -> now:float -> src:int -> dst:int -> decision
(** Link-level verdict for one message sent at [now].  Consumes RNG
    for each matching probabilistic fault, in fault-list order. *)

val crashed : t -> node:int -> now:float -> bool
(** Whether [node] is inside one of its crash windows at [now]. *)
