(* Tests for the Tor client substrate: consensus verification,
   freshness rules, bandwidth-weighted circuit building, and the
   client state machine. *)

module Directory = Torclient.Directory
module Circuit = Torclient.Circuit
module Flags = Dirdoc.Flags

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let keyring = Crypto.Keyring.create ~seed:"client-tests" ~n:9 ()

let fp i = Printf.sprintf "%040X" i

let entry ?(flags = [ Flags.Running; Flags.Valid ]) ?(bandwidth = 1000)
    ?(exit_policy = Dirdoc.Exit_policy.reject_all) i =
  {
    Dirdoc.Consensus.fingerprint = fp i;
    nickname = Printf.sprintf "relay%d" i;
    flags = Flags.of_list flags;
    version = Dirdoc.Version.make 0 4 8 12;
    protocols = Dirdoc.Relay.default_protocols;
    bandwidth;
    exit_policy;
  }

let guard_flags = [ Flags.Running; Flags.Valid; Flags.Guard; Flags.Stable ]
let exit_flags = [ Flags.Running; Flags.Valid; Flags.Exit ]

let sample_consensus ?(valid_after = 0.) ?(entries = []) () =
  Dirdoc.Consensus.create ~valid_after ~n_votes:9 ~entries

let usable_population () =
  [
    entry ~flags:guard_flags ~bandwidth:5000 1;
    entry ~flags:guard_flags ~bandwidth:100 2;
    entry ~flags:exit_flags ~exit_policy:Dirdoc.Exit_policy.accept_all ~bandwidth:2000 3;
    entry
      ~flags:exit_flags
      ~exit_policy:(Dirdoc.Exit_policy.make Dirdoc.Exit_policy.Accept [ (443, 443) ])
      ~bandwidth:800 4;
    entry ~bandwidth:1500 5;
    entry ~bandwidth:300 6;
  ]

(* --- Directory.verify ---------------------------------------------------------- *)

let test_verify_majority () =
  let c = sample_consensus () in
  let ok = Directory.make keyring c ~signers:[ 0; 1; 2; 3; 4 ] in
  checkb "5 of 9 accepted" true (Directory.verify keyring ~n_authorities:9 ok = Ok ());
  let short = Directory.make keyring c ~signers:[ 0; 1; 2; 3 ] in
  checkb "4 of 9 rejected" true
    (Result.is_error (Directory.verify keyring ~n_authorities:9 short))

let test_verify_duplicates_and_forgeries () =
  let c = sample_consensus () in
  let payload = Dirdoc.Consensus.signing_payload c in
  let sig0 = Crypto.Signature.sign keyring ~signer:0 payload in
  let sc =
    {
      Directory.consensus = c;
      signatures =
        [ sig0; sig0; sig0; sig0; sig0 (* duplicates count once *) ];
    }
  in
  checkb "duplicate signers rejected" true
    (Result.is_error (Directory.verify keyring ~n_authorities:9 sc));
  let forged =
    {
      Directory.consensus = c;
      signatures = List.init 5 (fun i -> Crypto.Signature.forge ~signer:i payload);
    }
  in
  checkb "forged signatures rejected" true
    (Result.is_error (Directory.verify keyring ~n_authorities:9 forged))

let test_verify_wrong_document () =
  let a = sample_consensus () in
  let b = sample_consensus ~valid_after:3600. () in
  let sc_b = Directory.make keyring b ~signers:[ 0; 1; 2; 3; 4 ] in
  (* Signatures from b glued onto a must not verify. *)
  let mixed = { Directory.consensus = a; signatures = sc_b.Directory.signatures } in
  checkb "transplanted signatures rejected" true
    (Result.is_error (Directory.verify keyring ~n_authorities:9 mixed))

(* --- Freshness ---------------------------------------------------------------- *)

let test_freshness_windows () =
  let c = sample_consensus ~valid_after:1000. () in
  checkb "fresh" true (Directory.freshness ~now:2000. c = Directory.Fresh);
  checkb "stale" true (Directory.freshness ~now:(1000. +. 7200.) c = Directory.Stale);
  checkb "expired" true (Directory.freshness ~now:(1000. +. 10801.) c = Directory.Expired);
  checkb "usable stale" true (Directory.usable ~now:(1000. +. 7200.) c);
  checkb "unusable expired" false (Directory.usable ~now:(1000. +. 10801.) c)

(* --- Circuit ---------------------------------------------------------------- *)

let test_eligibility () =
  let c = sample_consensus ~entries:(usable_population ()) () in
  checki "guards" 2 (List.length (Circuit.eligible_guards c));
  checki "exits for 443" 2 (List.length (Circuit.eligible_exits ~port:443 c));
  checki "exits for 22" 1 (List.length (Circuit.eligible_exits ~port:22 c));
  checki "middles include everyone running" 6 (List.length (Circuit.eligible_middles c))

let test_badexit_excluded () =
  let bad =
    entry
      ~flags:(Flags.BadExit :: exit_flags)
      ~exit_policy:Dirdoc.Exit_policy.accept_all 9
  in
  let c = sample_consensus ~entries:[ bad ] () in
  checki "BadExit filtered" 0 (List.length (Circuit.eligible_exits ~port:80 c))

let test_build_distinct_hops () =
  let rng = Tor_sim.Rng.of_string_seed "circuits" in
  let c = sample_consensus ~entries:(usable_population ()) () in
  for _ = 1 to 50 do
    match Circuit.build ~rng ~port:443 c with
    | Ok { guard; middle; exit } ->
        checkb "guard is a guard" true (Flags.mem Flags.Guard guard.Dirdoc.Consensus.flags);
        checkb "exit allows port" true
          (Dirdoc.Exit_policy.allows_port exit.Dirdoc.Consensus.exit_policy 443);
        checkb "three distinct relays" true
          (guard.Dirdoc.Consensus.fingerprint <> middle.Dirdoc.Consensus.fingerprint
          && middle.Dirdoc.Consensus.fingerprint <> exit.Dirdoc.Consensus.fingerprint
          && guard.Dirdoc.Consensus.fingerprint <> exit.Dirdoc.Consensus.fingerprint)
    | Error e -> Alcotest.fail (Circuit.error_to_string e)
  done

let test_build_errors () =
  let rng = Tor_sim.Rng.of_string_seed "circuits" in
  let no_exit = sample_consensus ~entries:[ entry ~flags:guard_flags 1; entry 2 ] () in
  (match Circuit.build ~rng ~port:80 no_exit with
  | Error Circuit.No_exit -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected No_exit");
  let no_guard =
    sample_consensus
      ~entries:
        [ entry ~flags:exit_flags ~exit_policy:Dirdoc.Exit_policy.accept_all 1; entry 2 ]
      ()
  in
  match Circuit.build ~rng ~port:80 no_guard with
  | Error Circuit.No_guard -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected No_guard"

let test_bandwidth_weighting () =
  (* The 5000 kB/s guard should be picked far more often than the
     100 kB/s one. *)
  let rng = Tor_sim.Rng.of_string_seed "weighting" in
  let c = sample_consensus ~entries:(usable_population ()) () in
  let big = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    match Circuit.bandwidth_weighted ~rng (Circuit.eligible_guards c) with
    | Some g when g.Dirdoc.Consensus.fingerprint = fp 1 -> incr big
    | Some _ -> ()
    | None -> Alcotest.fail "expected a guard"
  done;
  let share = float_of_int !big /. float_of_int trials in
  (* Expected 5000/5100 = 0.98. *)
  checkb "weighted towards bandwidth" true (share > 0.9);
  checkb "empty list" true (Circuit.bandwidth_weighted ~rng [] = None)

(* --- Client state machine ------------------------------------------------------- *)

let test_client_lifecycle () =
  let client = Torclient.Client.create ~keyring ~n_authorities:9 in
  checkb "bootstrapping: no circuits" false (Torclient.Client.can_build_circuits client ~now:0.);
  let c1 = sample_consensus ~valid_after:0. ~entries:(usable_population ()) () in
  let sc1 = Directory.make keyring c1 ~signers:[ 0; 1; 2; 3; 4 ] in
  checkb "adopts verified document" true (Torclient.Client.offer client ~now:600. sc1 = Ok ());
  checkb "circuits available" true (Torclient.Client.can_build_circuits client ~now:600.);
  (* An older document is refused. *)
  let old = sample_consensus ~valid_after:(-3600.) () in
  let sc_old = Directory.make keyring old ~signers:[ 0; 1; 2; 3; 4 ] in
  checkb "older document refused" true
    (Result.is_error (Torclient.Client.offer client ~now:700. sc_old));
  (* Time passes: the held document expires and circuits stop. *)
  checkb "expired -> no circuits" false
    (Torclient.Client.can_build_circuits client ~now:11000.);
  (match Torclient.Client.build_circuit client ~now:11000.
           ~rng:(Tor_sim.Rng.of_string_seed "c") ~port:443 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must refuse circuits on an expired consensus");
  (* A fresh hour's document restores service. *)
  let c2 = sample_consensus ~valid_after:10800. ~entries:(usable_population ()) () in
  let sc2 = Directory.make keyring c2 ~signers:[ 2; 3; 4; 5; 6; 7 ] in
  checkb "new hour adopted" true (Torclient.Client.offer client ~now:11400. sc2 = Ok ());
  match Torclient.Client.build_circuit client ~now:11400.
          ~rng:(Tor_sim.Rng.of_string_seed "c") ~port:443 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_client_rejects_unverified () =
  let client = Torclient.Client.create ~keyring ~n_authorities:9 in
  let c = sample_consensus ~entries:(usable_population ()) () in
  let sc = Directory.make keyring c ~signers:[ 0; 1 ] in
  checkb "too few signatures refused" true
    (Result.is_error (Torclient.Client.offer client ~now:0. sc));
  checkb "still bootstrapping" false (Torclient.Client.can_build_circuits client ~now:0.)


(* --- Consensus diffs ---------------------------------------------------------- *)

let consensus_pair () =
  let rng = Tor_sim.Rng.of_string_seed "consdiff-tests" in
  let votes =
    Dirdoc.Workload.votes ~rng ~keyring ~n_authorities:9 ~n_relays:300 ~valid_after:0. ()
  in
  let base = Dirdoc.Aggregate.consensus ~valid_after:0. ~votes:(Array.to_list votes) in
  (* Next hour: ~2% of relays churn out. *)
  let votes2 =
    Array.map
      (fun (v : Dirdoc.Vote.t) ->
        let relays =
          Array.to_list v.Dirdoc.Vote.relays |> List.filteri (fun i _ -> i mod 50 <> 0)
        in
        Dirdoc.Vote.create ~authority:v.Dirdoc.Vote.authority
          ~authority_fingerprint:v.Dirdoc.Vote.authority_fingerprint
          ~nickname:v.Dirdoc.Vote.nickname ~published:v.Dirdoc.Vote.published
          ~valid_after:3600. ~relays)
      votes
  in
  let target = Dirdoc.Aggregate.consensus ~valid_after:3600. ~votes:(Array.to_list votes2) in
  (Dirdoc.Consensus.serialize base, Dirdoc.Consensus.serialize target)

let test_consdiff_roundtrip () =
  let base, target = consensus_pair () in
  let d = Torclient.Consdiff.diff ~base ~target in
  (match Torclient.Consdiff.patch ~base d with
  | Ok patched -> checkb "patch(diff) = target" true (String.equal patched target)
  | Error e -> Alcotest.fail e);
  checkb "diff is much smaller than the document" true
    (Torclient.Consdiff.wire_size d * 4 < String.length target);
  checkb "savings reported" true (Torclient.Consdiff.savings ~base ~target > 0.5)

let test_consdiff_identity () =
  let base, _ = consensus_pair () in
  let d = Torclient.Consdiff.diff ~base ~target:base in
  checki "no commands for identical documents" 0 (List.length d.Torclient.Consdiff.commands);
  match Torclient.Consdiff.patch ~base d with
  | Ok patched -> checkb "identity patch" true (String.equal patched base)
  | Error e -> Alcotest.fail e

let test_consdiff_wrong_base () =
  let base, target = consensus_pair () in
  let d = Torclient.Consdiff.diff ~base ~target in
  checkb "refuses a different base" true
    (Result.is_error (Torclient.Consdiff.patch ~base:target d));
  (* Tampering with the target digest must be caught after patching. *)
  let tampered = { d with Torclient.Consdiff.target_digest = Crypto.Digest32.of_string "x" } in
  checkb "refuses a tampered target digest" true
    (Result.is_error (Torclient.Consdiff.patch ~base tampered))

let test_consdiff_disjoint_documents () =
  (* Even totally different documents roundtrip (as one big rewrite). *)
  let base, _ = consensus_pair () in
  let other =
    Dirdoc.Consensus.serialize
      (Dirdoc.Consensus.create ~valid_after:7200. ~n_votes:9 ~entries:[])
  in
  let d = Torclient.Consdiff.diff ~base ~target:other in
  match Torclient.Consdiff.patch ~base d with
  | Ok patched -> checkb "full rewrite roundtrips" true (String.equal patched other)
  | Error e -> Alcotest.fail e

let suite =
  [
    ("verify: majority rule", `Quick, test_verify_majority);
    ("verify: duplicates and forgeries", `Quick, test_verify_duplicates_and_forgeries);
    ("verify: transplanted signatures", `Quick, test_verify_wrong_document);
    ("freshness windows", `Quick, test_freshness_windows);
    ("circuit eligibility", `Quick, test_eligibility);
    ("circuit BadExit exclusion", `Quick, test_badexit_excluded);
    ("circuit distinct hops", `Quick, test_build_distinct_hops);
    ("circuit errors", `Quick, test_build_errors);
    ("circuit bandwidth weighting", `Quick, test_bandwidth_weighting);
    ("client lifecycle", `Quick, test_client_lifecycle);
    ("client rejects unverified", `Quick, test_client_rejects_unverified);
    ("consdiff roundtrip", `Quick, test_consdiff_roundtrip);
    ("consdiff identity", `Quick, test_consdiff_identity);
    ("consdiff rejects wrong base/target", `Quick, test_consdiff_wrong_base);
    ("consdiff disjoint documents", `Quick, test_consdiff_disjoint_documents);
  ]
