lib/dirdoc/timefmt.mli:
