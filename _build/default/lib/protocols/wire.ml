let request_bytes = 512
let control_bytes = 256
let signature_bytes = Crypto.Signature.wire_size + 128
let digest_bytes = Crypto.Digest32.wire_size

let vote_push_bytes ~n_relays = Dirdoc.Vote.wire_size_for ~n_relays + control_bytes

let consensus_bytes ~n_entries = 1536 + (220 * n_entries) + control_bytes

let dir_connection_timeout = 60.
