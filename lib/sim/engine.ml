(* Pooled event cells, sharded across OCaml domains.

   Single-shard structure (the default) is the PR-3 design: [schedule]
   draws a reusable cell from a free list, the queue holds cell indices
   (immediate ints), and a handle packs (generation, shard, index) so
   [cancel] is a safe O(1) no-op on stale handles.

   Multi-shard structure: nodes are partitioned into [shards]
   contiguous blocks, each shard owning a private clock, event queue
   and cell pool, executed by its own domain under conservative-
   lookahead (CMB-style, null-message-free) synchronization.  A run is
   a sequence of barrier-stepped rounds; in each round shard [d]:

   1. drains cross-shard mail delivered to it (the [round_hook],
      installed by [Net]) and publishes its clock lower bound — the
      head of its queue;
   2. waits on a barrier, then reads every shard's lower bound;
   3. executes events strictly before
        [H_d = (min over s <> d of lb_s) + lookahead]
      (and at or before the run's [until] cap, inclusive), buffering
      sends to other shards as mail;
   4. waits on a second barrier and repeats.  All shards exit
      together when the global minimum bound passes the cap.

   Safety: [lookahead] is the minimum cross-node propagation latency,
   so mail created by shard [s] at time [t >= lb_s] arrives at
   [t + lookahead >= lb_s + lookahead >= H_d] — never in [d]'s past,
   and (because the pop horizon is strict) never tying an event [d]
   already executed.  Progress: the globally-minimal shard always has
   [H_d > lb_d] (lookahead > 0), so every round executes at least one
   event.  [create] falls back to one shard whenever the lookahead is
   zero or unbounded, or there are fewer than two nodes.

   Determinism: equal-time events pop in ascending (creator, counter)
   key order, where the creator is the node owning the event that
   scheduled them and the counter is per-creator.  Both are
   sharding-invariant — per-node execution order never depends on the
   partition — so any shard count replays the same simulation bit for
   bit (see DESIGN.md §10 for the full argument). *)

let idx_bits = 24
let idx_mask = (1 lsl idx_bits) - 1
let shard_bits = 6
let max_shards = 1 lsl shard_bits
let shard_mask = max_shards - 1
let gen_shift = idx_bits + shard_bits

(* Tie-break key: (creator + 1) in the high bits, the creator's event
   counter below.  38 bits of counter per creator, creator ids to 2^24
   — the key stays a positive OCaml int. *)
let key_seq_bits = 38

type cell = {
  mutable time : Simtime.t;
  mutable gen : int;
  mutable state : int; (* 0 free, 1 scheduled, 2 cancelled *)
  mutable kind : int; (* -1: run [action]; >= 0: registered callback id *)
  mutable arg : int;
  mutable owner : int; (* node the event belongs to; -1 for none *)
  mutable action : unit -> unit;
  mutable next_free : int; (* free-list link, -1 ends the list *)
}

let st_free = 0
let st_scheduled = 1
let st_cancelled = 2
let nop () = ()

type handle = int
type callback = int

type shard = {
  mutable clock : Simtime.t;
  queue : int Event_queue.t;
  mutable cells : cell array;
  mutable n_cells : int;
  mutable free_head : int;
  mutable cur_owner : int; (* owner of the executing event; -1 outside *)
  mutable limit : Simtime.t; (* this round's exclusive pop horizon *)
}

type t = {
  shards : shard array;
  nodes : int; (* node-id space partitioned over shards; 0 = untyped *)
  lookahead : Simtime.t;
  mutable counters : int array; (* per-creator event counters, slot = creator+1 *)
  mutable callbacks : (int -> unit) array;
  mutable n_callbacks : int;
  mutable round_hook : int -> unit; (* cross-shard mail drain, set by Net *)
  mutable running_multi : bool;
  mutable profiler : Obs.Profiler.t option;
}

let no_round_hook (_ : int) = ()

let fresh_shard () =
  {
    clock = Simtime.zero;
    queue = Event_queue.create ();
    cells = [||];
    n_cells = 0;
    free_head = -1;
    cur_owner = -1;
    limit = Simtime.never;
  }

let create ?(shards = 1) ?(nodes = 0) ?(lookahead = Simtime.never) () =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  if nodes < 0 then invalid_arg "Engine.create: negative nodes";
  (* Fall back to one shard when sharding is unsafe (no positive finite
     cross-node lookahead) or pointless (fewer than two nodes). *)
  let s =
    if shards = 1 || nodes < 2 then 1
    else if not (lookahead > 0.) || Simtime.is_infinite lookahead then 1
    else min shards (min nodes max_shards)
  in
  {
    shards = Array.init s (fun _ -> fresh_shard ());
    nodes;
    lookahead;
    counters = Array.make (nodes + 1) 0;
    callbacks = [||];
    n_callbacks = 0;
    round_hook = no_round_hook;
    running_multi = false;
    profiler = None;
  }

let shard_count t = Array.length t.shards

let current_shard t =
  if Array.length t.shards = 1 then 0
  else
    let d = Domain_ctx.current () in
    if d < Array.length t.shards then d else 0

let shard_of_node t owner =
  let s = Array.length t.shards in
  if s = 1 || owner < 0 then 0 else owner * s / t.nodes

let now t = t.shards.(current_shard t).clock
let set_round_hook t f = t.round_hook <- f

(* Cross-shard mail feedback bound, called by [Net] when the executing
   shard queues mail for another shard.  Any reply chain triggered by
   that mail needs at least one more hop, so nothing it causes can land
   before [arrival + lookahead]; clamping the round's pop horizon to
   that keeps the solo-shard fast path below sound.  For an event
   executing at [ts], [arrival >= ts + lookahead] gives a clamp of at
   least [ts + 2*lookahead] — beyond the standard window and strictly
   after every event already executed, so the clamp only ever trims the
   solo extension, never an ordinary round. *)
let note_send t ~arrival =
  let sh = t.shards.(current_shard t) in
  let fb = Simtime.add arrival t.lookahead in
  if fb < sh.limit then sh.limit <- fb

let enable_profiler t =
  match t.profiler with
  | Some _ -> ()
  | None -> t.profiler <- Some (Obs.Profiler.create ~shards:(shard_count t))

let profile t = Option.map Obs.Profiler.report t.profiler

let queue_depth t = Event_queue.size t.shards.(current_shard t).queue

let register_callback t f =
  if t.n_callbacks = Array.length t.callbacks then begin
    let fresh = Array.make (max 4 (2 * t.n_callbacks)) f in
    Array.blit t.callbacks 0 fresh 0 t.n_callbacks;
    t.callbacks <- fresh
  end;
  t.callbacks.(t.n_callbacks) <- f;
  t.n_callbacks <- t.n_callbacks + 1;
  t.n_callbacks - 1

(* Take a cell off the shard's free list, allocating one only at a new
   high-water mark of outstanding events. *)
let acquire sh =
  if sh.free_head >= 0 then begin
    let idx = sh.free_head in
    sh.free_head <- sh.cells.(idx).next_free;
    idx
  end
  else begin
    if sh.n_cells = Array.length sh.cells then begin
      let dummy =
        { time = 0.; gen = 0; state = st_free; kind = -1; arg = 0; owner = -1;
          action = nop; next_free = -1 }
      in
      let fresh = Array.make (max 16 (2 * sh.n_cells)) dummy in
      Array.blit sh.cells 0 fresh 0 sh.n_cells;
      sh.cells <- fresh
    end;
    let idx = sh.n_cells in
    if idx > idx_mask then failwith "Engine: event pool exhausted";
    sh.cells.(idx) <-
      { time = 0.; gen = 0; state = st_free; kind = -1; arg = 0; owner = -1;
        action = nop; next_free = -1 };
    sh.n_cells <- sh.n_cells + 1;
    idx
  end

let release sh idx =
  let cell = sh.cells.(idx) in
  cell.gen <- cell.gen + 1;
  cell.state <- st_free;
  cell.action <- nop;
  cell.next_free <- sh.free_head;
  sh.free_head <- idx

(* Only engines created with [nodes = 0] can see creator slots beyond
   the preallocated [nodes + 1]; those are single-shard, so growth is
   single-domain.  Multi-shard engines validate owners at schedule
   time, which pins every slot inside the preallocated array. *)
let ensure_counters t slot =
  if slot >= Array.length t.counters then begin
    let fresh = Array.make (max (slot + 1) (2 * Array.length t.counters)) 0 in
    Array.blit t.counters 0 fresh 0 (Array.length t.counters);
    t.counters <- fresh
  end

let alloc_key t =
  let slot = t.shards.(current_shard t).cur_owner + 1 in
  ensure_counters t slot;
  let seq = t.counters.(slot) in
  t.counters.(slot) <- seq + 1;
  (slot lsl key_seq_bits) lor seq

let enqueue t ~at ~owner ~key ~kind ~arg action =
  let cur = current_shard t in
  if at < t.shards.(cur).clock then
    invalid_arg "Engine.schedule: time is in the past";
  if owner < -1 || (t.nodes > 0 && owner >= t.nodes) then
    invalid_arg "Engine.schedule: owner out of range";
  let tgt = shard_of_node t owner in
  if t.running_multi && tgt <> cur then
    invalid_arg "Engine.schedule: cross-shard schedule during a parallel run";
  let tsh = t.shards.(tgt) in
  let idx = acquire tsh in
  let cell = tsh.cells.(idx) in
  cell.time <- at;
  cell.state <- st_scheduled;
  cell.kind <- kind;
  cell.arg <- arg;
  cell.owner <- owner;
  cell.action <- action;
  (match Event_queue.push_keyed tsh.queue ~time:at ~key idx with
  | () -> ()
  | exception e ->
      release tsh idx;
      raise e);
  (cell.gen lsl gen_shift) lor (tgt lsl idx_bits) lor idx

let default_owner t owner =
  match owner with Some o -> o | None -> t.shards.(current_shard t).cur_owner

let schedule t ?owner ~at action =
  let owner = default_owner t owner in
  enqueue t ~at ~owner ~key:(alloc_key t) ~kind:(-1) ~arg:0 action

let schedule_in t ?owner ~after action =
  if after < 0. then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ?owner ~at:(Simtime.add (now t) after) action

let schedule_call t ?owner ~at callback arg =
  let owner = default_owner t owner in
  enqueue t ~at ~owner ~key:(alloc_key t) ~kind:callback ~arg nop

let schedule_call_keyed t ~owner ~at ~key callback arg =
  enqueue t ~at ~owner ~key ~kind:callback ~arg nop

let cancel t h =
  let sidx = (h lsr idx_bits) land shard_mask in
  if sidx < Array.length t.shards then begin
    let sh = t.shards.(sidx) in
    let idx = h land idx_mask in
    if idx < sh.n_cells then begin
      let cell = sh.cells.(idx) in
      if cell.gen = h lsr gen_shift && cell.state = st_scheduled then
        cell.state <- st_cancelled
    end
  end

let dispatch t sh idx =
  let cell = sh.cells.(idx) in
  (* A cancelled event still advances the clock to its slot, like any
     popped event. *)
  sh.clock <- cell.time;
  let state = cell.state and kind = cell.kind and arg = cell.arg in
  let owner = cell.owner in
  let action = cell.action in
  (* Release before dispatch: the cell may be reacquired by events the
     dispatched code schedules, and the generation bump makes any
     handle still pointing here stale — cancelling a fired event stays
     a no-op. *)
  release sh idx;
  if state = st_scheduled then begin
    sh.cur_owner <- owner;
    if kind >= 0 then t.callbacks.(kind) arg else action ()
  end

let run_single ?until t =
  let sh = t.shards.(0) in
  let horizon = Option.value until ~default:Simtime.never in
  let rec loop n =
    let idx = Event_queue.pop_if_before sh.queue ~horizon ~default:(-1) in
    if idx >= 0 then begin
      dispatch t sh idx;
      loop (n + 1)
    end
    else n
  in
  (* One profiler branch per run, not per event: with profiling off the
     loop is the PR-3 hot loop plus a dead int argument. *)
  (match t.profiler with
  | None -> ignore (loop 0)
  | Some p ->
      let t0 = Obs.Profiler.now () in
      let n = loop 0 in
      Obs.Profiler.add_busy p 0 (Obs.Profiler.now () -. t0);
      Obs.Profiler.add_events p 0 n;
      Obs.Profiler.incr_rounds p 0);
  sh.cur_owner <- -1;
  match until with
  | Some u when sh.clock < u && not (Simtime.is_infinite u) -> sh.clock <- u
  | _ -> ()

(* Reusable generation-counted barrier.  [wait] returns false once the
   barrier is poisoned (a shard died), releasing every waiter so the
   run unwinds instead of deadlocking. *)
module Barrier = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable count : int;
    mutable gen : int;
    mutable poisoned : bool;
  }

  let create parties =
    { m = Mutex.create (); c = Condition.create (); parties; count = 0;
      gen = 0; poisoned = false }

  let wait b =
    Mutex.lock b.m;
    if b.poisoned then begin
      Mutex.unlock b.m;
      false
    end
    else begin
      let g = b.gen in
      b.count <- b.count + 1;
      if b.count = b.parties then begin
        b.count <- 0;
        b.gen <- g + 1;
        Condition.broadcast b.c;
        let ok = not b.poisoned in
        Mutex.unlock b.m;
        ok
      end
      else begin
        while b.gen = g && not b.poisoned do
          Condition.wait b.c b.m
        done;
        let ok = not b.poisoned in
        Mutex.unlock b.m;
        ok
      end
    end

  let poison b =
    Mutex.lock b.m;
    b.poisoned <- true;
    Condition.broadcast b.c;
    Mutex.unlock b.m
end

let run_multi ?until t =
  let s = Array.length t.shards in
  let cap = Option.value until ~default:Simtime.never in
  let lbs = Array.make s Simtime.never in
  let barrier = Barrier.create s in
  let failures = Array.make s None in
  let prof = t.profiler in
  (* Timed barrier wait: the profiler charges blocked time to the shard
     doing the blocking.  One branch per round when profiling is off. *)
  let bwait d =
    match prof with
    | None -> Barrier.wait barrier
    | Some p ->
        let t0 = Obs.Profiler.now () in
        let ok = Barrier.wait barrier in
        Obs.Profiler.add_wait p d (Obs.Profiler.now () -. t0);
        Obs.Profiler.add_barriers p d 1;
        ok
  in
  let worker d =
    Domain_ctx.set d;
    let sh = t.shards.(d) in
    (try
       let continue = ref true in
       while !continue do
         (* Drain mail sent to this shard last round, then publish the
            clock lower bound.  Mail sent in round r is drained before
            round r+1's bounds, so the exit decision below never misses
            pending work. *)
         t.round_hook d;
         lbs.(d) <-
           (match Event_queue.peek_time sh.queue with
           | Some tm -> tm
           | None -> Simtime.never);
         if not (bwait d) then continue := false
         else begin
           let gmin = ref Simtime.never in
           for j = 0 to s - 1 do
             if lbs.(j) < !gmin then gmin := lbs.(j)
           done;
           (* Identical inputs on every shard: all exit together. *)
           if !gmin > cap || Simtime.is_infinite !gmin then continue := false
           else begin
             (* The safe horizon is the GLOBAL bound, own shard
                included: mail is a chain of hops each adding >= one
                lookahead, so anything any shard can still cause —
                including feedback through a neighbour — lands at or
                beyond [gmin + lookahead].  Basing the horizon on the
                other shards alone lets the globally-min shard run
                ahead and receive a reply in its own past. *)
             let strict = Simtime.add !gmin t.lookahead in
             (* Solo-shard fast path: when this shard alone holds the
                global minimum and every other bound already clears the
                standard window, no other shard pops this round, so the
                baseline would spend round after round advancing only
                this shard one lookahead window at a time.  Jump
                straight to the next global minimum instead: run to
                [gother + lookahead], the horizon the final such round
                would have granted.  The only hazard is feedback
                through this shard's own sends — [note_send] clamps
                [sh.limit] to [arrival + lookahead] as mail is queued,
                so a reply can never land at or before anything
                executed here (a send from an event at [ts] clamps to
                [>= ts + 2*lookahead]).  Other shards still pop
                nothing (their heads are at or beyond [gother], their
                horizon stays [strict]), so barrier parity holds and
                the per-shard execution order — hence the result — is
                bit-identical to the baseline rounds. *)
             let gother = ref Simtime.never in
             for j = 0 to s - 1 do
               if j <> d && lbs.(j) < !gother then gother := lbs.(j)
             done;
             sh.limit <-
               (if lbs.(d) = !gmin && !gother >= strict then
                  if Simtime.is_infinite !gother then Simtime.never
                  else Simtime.add !gother t.lookahead
                else strict);
             let rec pops n =
               let idx =
                 Event_queue.pop_if_within sh.queue ~strict:sh.limit ~le:cap
                   ~default:(-1)
               in
               if idx >= 0 then begin
                 dispatch t sh idx;
                 pops (n + 1)
               end
               else n
             in
             (match prof with
             | None -> ignore (pops 0)
             | Some p ->
                 let t0 = Obs.Profiler.now () in
                 let n = pops 0 in
                 Obs.Profiler.add_busy p d (Obs.Profiler.now () -. t0);
                 Obs.Profiler.add_events p d n;
                 Obs.Profiler.incr_rounds p d);
             if not (bwait d) then continue := false
           end
         end
       done
     with e ->
       failures.(d) <- Some (e, Printexc.get_raw_backtrace ());
       Barrier.poison barrier);
    sh.cur_owner <- -1
  in
  t.running_multi <- true;
  let workers = Array.init (s - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
  worker 0;
  Array.iter Domain.join workers;
  t.running_multi <- false;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    failures;
  (* Align the shard clocks on the single-domain convention: the last
     executed event, or [until] when given and reached. *)
  let last = Array.fold_left (fun acc sh -> Float.max acc sh.clock) 0. t.shards in
  let final =
    match until with
    | Some u when last < u && not (Simtime.is_infinite u) -> u
    | _ -> last
  in
  Array.iter (fun sh -> sh.clock <- final) t.shards

let run ?until t =
  if Array.length t.shards = 1 then run_single ?until t else run_multi ?until t

let pending t =
  Array.fold_left (fun acc sh -> acc + Event_queue.size sh.queue) 0 t.shards

(* Arena reset: back to the state [create] left, in O(pool size), with
   every array kept at its high-water capacity.  Registered callbacks
   and the round hook survive — they are wiring installed once per
   [Net], not per run — and the generation bump on every cell makes any
   handle from before the reset stale, so a leftover [cancel] stays a
   no-op.  The rebuilt free lists hand cells out in index order, the
   same order a fresh engine allocates them. *)
let reset t =
  if t.running_multi then invalid_arg "Engine.reset: run in progress";
  Array.iter
    (fun sh ->
      sh.clock <- Simtime.zero;
      Event_queue.clear sh.queue;
      for i = 0 to sh.n_cells - 1 do
        let c = sh.cells.(i) in
        c.gen <- c.gen + 1;
        c.state <- st_free;
        c.kind <- -1;
        c.arg <- 0;
        c.owner <- -1;
        c.action <- nop;
        c.next_free <- (if i + 1 < sh.n_cells then i + 1 else -1)
      done;
      sh.free_head <- (if sh.n_cells > 0 then 0 else -1);
      sh.cur_owner <- -1;
      sh.limit <- Simtime.never)
    t.shards;
  Array.fill t.counters 0 (Array.length t.counters) 0;
  t.profiler <- None
