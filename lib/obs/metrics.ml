(* Fixed histogram geometry, shared by every instance so any two
   histograms merge bucket-for-bucket.  Bucket 0 collects values below
   [lo]; bucket [1 + floor (log10 (v / lo) * per_decade)] holds the
   rest, clamped at the top.  14 decades above 1e-6 reaches 1e8 —
   comfortably past any sim-time latency (horizons are hours). *)

let lo = 1e-6
let per_decade = 16
let decades = 14
let n_buckets = 1 + (decades * per_decade)

(* Exact aggregates live in a float array rather than mutable record
   fields: OCaml boxes every store to a mutable float field of a mixed
   record, and [observe] runs once per delivered message. *)
let agg_sum = 0

let agg_min = 1

let agg_max = 2

type histogram = { buckets : int array; mutable n : int; agg : float array }

let histogram_create () =
  { buckets = Array.make n_buckets 0;
    n = 0;
    agg = [| 0.; infinity; neg_infinity |] }

let bucket_of v =
  if v < lo then 0
  else
    let i = 1 + int_of_float (Float.log10 (v /. lo) *. float_of_int per_decade) in
    if i >= n_buckets then n_buckets - 1 else i

let bucket_upper i =
  if i = 0 then lo
  else lo *. (10. ** (float_of_int i /. float_of_int per_decade))

let observe h v =
  let v = if v < 0. then 0. else v in
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.n <- h.n + 1;
  h.agg.(agg_sum) <- h.agg.(agg_sum) +. v;
  if v < h.agg.(agg_min) then h.agg.(agg_min) <- v;
  if v > h.agg.(agg_max) then h.agg.(agg_max) <- v

let count h = h.n
let sum h = h.agg.(agg_sum)
let min_value h = if h.n = 0 then nan else h.agg.(agg_min)
let max_value h = if h.n = 0 then nan else h.agg.(agg_max)
let mean h = if h.n = 0 then nan else h.agg.(agg_sum) /. float_of_int h.n

let percentile h q =
  if h.n = 0 then nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.n)) in
      if r < 1 then 1 else if r > h.n then h.n else r
    in
    let seen = ref 0 and i = ref 0 in
    while !seen < rank && !i < n_buckets do
      seen := !seen + h.buckets.(!i);
      incr i
    done;
    let upper = bucket_upper (!i - 1) in
    Float.min (Float.max upper h.agg.(agg_min)) h.agg.(agg_max)
  end

let histogram_reset h =
  Array.fill h.buckets 0 n_buckets 0;
  h.n <- 0;
  h.agg.(agg_sum) <- 0.;
  h.agg.(agg_min) <- infinity;
  h.agg.(agg_max) <- neg_infinity

let merge_histogram ~into src =
  for i = 0 to n_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.n <- into.n + src.n;
  into.agg.(agg_sum) <- into.agg.(agg_sum) +. src.agg.(agg_sum);
  if src.agg.(agg_min) < into.agg.(agg_min) then
    into.agg.(agg_min) <- src.agg.(agg_min);
  if src.agg.(agg_max) > into.agg.(agg_max) then
    into.agg.(agg_max) <- src.agg.(agg_max)

let render h =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "n=%d sum=%h min=%h max=%h" h.n
                           h.agg.(agg_sum)
                           (if h.n = 0 then nan else h.agg.(agg_min))
                           (if h.n = 0 then nan else h.agg.(agg_max)));
  for i = 0 to n_buckets - 1 do
    if h.buckets.(i) > 0 then
      Buffer.add_string buf (Printf.sprintf " b%d:%d" i h.buckets.(i))
  done;
  Buffer.contents buf

(* Registry: one hashtable per metric kind, names matched exactly. *)

type counter = int ref
type gauge = float ref

type t = {
  c_tbl : (string, counter) Hashtbl.t;
  g_tbl : (string, gauge) Hashtbl.t;
  h_tbl : (string, histogram) Hashtbl.t;
}

let create () =
  { c_tbl = Hashtbl.create 16;
    g_tbl = Hashtbl.create 16;
    h_tbl = Hashtbl.create 16 }

let find_or_add tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v

let counter t name = find_or_add t.c_tbl name (fun () -> ref 0)
let incr c = Stdlib.incr c
let add c n = c := !c + n
let counter_value c = !c

let gauge t name = find_or_add t.g_tbl name (fun () -> ref 0.)
let set_gauge g v = g := v
let gauge_value g = !g

let histogram t name = find_or_add t.h_tbl name histogram_create
let find_histogram t name = Hashtbl.find_opt t.h_tbl name

let merge_into ~into src =
  Hashtbl.iter (fun name c -> add (counter into name) !c) src.c_tbl;
  Hashtbl.iter
    (fun name g ->
      let dst = gauge into name in
      if !g > !dst then dst := !g)
    src.g_tbl;
  Hashtbl.iter
    (fun name h -> merge_histogram ~into:(histogram into name) h)
    src.h_tbl

let sorted_bindings tbl extract =
  Hashtbl.fold (fun name v acc -> (name, extract v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.c_tbl (fun c -> !c)
let gauges t = sorted_bindings t.g_tbl (fun g -> !g)
let histograms t = sorted_bindings t.h_tbl (fun h -> h)
