lib/protocols/pbft.ml: Crypto Fun Hashtbl Int List Option Printf Tor_sim Wire
