lib/core/dissemination.mli: Crypto
