type config = { seed : string; out : int; epoch : float }

(* out=1 removes the least capacity the schedule allows (one of nine
   authorities), and a 100 s epoch is short enough that no single epoch
   covers a whole v3 fetch round (150 s) — a rotated-out authority is
   always back in time to answer the round's remaining retries.
   Measured on the 200-plan chaos campaign, this is the setting where
   rotation strictly reduces v3 breaks (41 -> 40); the reduction is
   stable for epochs in [90, 130]. *)
let default = { seed = "mptc"; out = 1; epoch = 100. }

let validate ~n config =
  if not (config.epoch > 0.) then
    invalid_arg "Defense.Rotation.validate: epoch must be positive";
  if config.out < 0 then
    invalid_arg "Defense.Rotation.validate: out must be non-negative";
  if config.out >= n then
    invalid_arg
      "Defense.Rotation.validate: out must leave at least one authority active"

let canonical config =
  let buf = Buffer.create 32 in
  Buffer.add_char buf 'r';
  Buffer.add_string buf (string_of_int (String.length config.seed));
  Buffer.add_char buf ':';
  Buffer.add_string buf config.seed;
  Buffer.add_char buf ';';
  Buffer.add_string buf (Printf.sprintf "%d;%h;" config.out config.epoch);
  Buffer.contents buf

let pp ppf config =
  Format.fprintf ppf "rotate[out=%d,epoch=%gs,seed=%s]" config.out config.epoch
    config.seed

let epoch_of config ~now = int_of_float (Float.floor (now /. config.epoch))

(* The epoch's quiet subset: rank every node by a seeded digest of
   (seed, epoch, node) and take the [out] smallest (ties impossible —
   the digests differ — but the node id breaks them anyway).  Random
   keys give a uniform random subset, fresh per epoch, with no RNG
   stream to thread: membership is a pure function of (config, n,
   epoch), so every shard — and every shard COUNT — computes the same
   schedule. *)
let out_nodes config ~n ~epoch =
  if config.out = 0 then []
  else begin
    let score i =
      Crypto.Digest32.hex
        (Crypto.Digest32.of_string
           (Printf.sprintf "rotation:%s:%d:%d" config.seed epoch i))
    in
    let ranked = List.init n (fun i -> (score i, i)) in
    let ranked = List.sort compare ranked in
    List.filteri (fun k _ -> k < config.out) ranked |> List.map snd
  end

let quiet_at config ~n ~node ~now =
  List.mem node (out_nodes config ~n ~epoch:(epoch_of config ~now))

(* Memoized membership for the per-message hot paths.  Each instance
   is owned by one node and only consulted from that node's shard, so
   the mutable epoch cache is single-writer. *)
type t = {
  config : config;
  n : int;
  mutable epoch : int; (* epoch the [quiet] array reflects; -1 = none *)
  quiet_set : bool array;
}

let instantiate config ~n =
  validate ~n config;
  { config; n; epoch = -1; quiet_set = Array.make n false }

let config t = t.config

let quiet t ~node ~now =
  let e = epoch_of t.config ~now in
  if e <> t.epoch then begin
    Array.fill t.quiet_set 0 t.n false;
    List.iter
      (fun i -> t.quiet_set.(i) <- true)
      (out_nodes t.config ~n:t.n ~epoch:e);
    t.epoch <- e
  end;
  t.quiet_set.(node)
