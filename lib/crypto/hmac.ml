let block_size = 64

(* One 64-byte pad buffer serves both HMAC passes: it is filled with
   the (possibly pre-hashed) key, XORed with 0x36 for the inner hash,
   then re-XORed with [0x36 lxor 0x5c] to become the outer pad in
   place.  The single SHA-256 context is recycled with [Sha256.reset],
   so a MAC costs two small buffers total instead of four strings. *)
let mac ~key msg =
  let pad = Bytes.make block_size '\x00' in
  (if String.length key > block_size then
     Bytes.blit_string (Sha256.digest_string key) 0 pad 0 32
   else Bytes.blit_string key 0 pad 0 (String.length key));
  for i = 0 to block_size - 1 do
    Bytes.unsafe_set pad i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get pad i) lxor 0x36))
  done;
  let ctx = Sha256.init () in
  Sha256.feed_bytes ctx pad ~pos:0 ~len:block_size;
  Sha256.feed_string ctx msg;
  let inner = Sha256.finalize ctx in
  for i = 0 to block_size - 1 do
    Bytes.unsafe_set pad i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get pad i) lxor (0x36 lxor 0x5c)))
  done;
  Sha256.reset ctx;
  Sha256.feed_bytes ctx pad ~pos:0 ~len:block_size;
  Sha256.feed_string ctx inner;
  Sha256.finalize ctx

let mac_hex ~key msg = Sha256.hex_of_raw (mac ~key msg)

let equal a b =
  String.length a = String.length b
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code b.[i])) a;
  !diff = 0
