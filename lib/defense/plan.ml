type t = {
  admission : Admission.config option;
  rotation : Rotation.config option;
}

let none = { admission = None; rotation = None }
let admission_only = { admission = Some Admission.default; rotation = None }
let rotation_only = { admission = None; rotation = Some Rotation.default }
let both = { admission = Some Admission.default; rotation = Some Rotation.default }

let is_empty p = p.admission = None && p.rotation = None

let preset = function
  | "none" -> Some none
  | "admission" -> Some admission_only
  | "rotation" -> Some rotation_only
  | "both" -> Some both
  | _ -> None

let validate ~n p =
  Option.iter Admission.validate p.admission;
  Option.iter (Rotation.validate ~n) p.rotation

(* Same conventions as [Fault.canonical]: each defense contributes its
   own tagged chunk, an absent defense the one-character placeholder —
   so structurally equal plans serialize identically and any
   configuration change moves the digest. *)
let canonical p =
  let buf = Buffer.create 64 in
  (match p.admission with
  | None -> Buffer.add_string buf "-;"
  | Some a -> Buffer.add_string buf (Admission.canonical a));
  (match p.rotation with
  | None -> Buffer.add_string buf "-;"
  | Some r -> Buffer.add_string buf (Rotation.canonical r));
  Buffer.contents buf

let digest p = Crypto.Digest32.hex (Crypto.Digest32.of_string (canonical p))

let pp ppf p =
  if is_empty p then Format.pp_print_string ppf "(no defenses)"
  else begin
    Option.iter (Admission.pp ppf) p.admission;
    if p.admission <> None && p.rotation <> None then
      Format.pp_print_char ppf ' ';
    Option.iter (Rotation.pp ppf) p.rotation
  end
