lib/protocols/agreement.ml: Crypto Tor_sim
